"""Tests for reliable k-center clustering and evidence conditioning."""

from __future__ import annotations

import pytest

from repro import RQTreeEngine, UncertainGraph
from repro.apps.clustering import (
    ReliableClustering,
    clustering_coverage,
    reliable_kcenter,
)
from repro.errors import GraphError
from repro.graph.exact import exact_reliability
from repro.graph.generators import figure1_graph, nethept_like, uncertain_path
from repro.graph.transforms import condition_graph


def _two_communities() -> UncertainGraph:
    """Two strong 4-cliques joined by one weak arc."""
    g = UncertainGraph(8)
    for base in (0, 4):
        for i in range(4):
            for j in range(4):
                if i != j:
                    g.add_arc(base + i, base + j, 0.9)
    g.add_arc(3, 4, 0.05)
    return g


class TestReliableKCenter:
    def test_two_communities_need_two_centers(self):
        graph = _two_communities()
        engine = RQTreeEngine.build(graph, seed=0)
        clustering = reliable_kcenter(engine, k=2, eta=0.6)
        assert len(clustering.centers) == 2
        # One center per community.
        sides = {c // 4 for c in clustering.centers}
        assert sides == {0, 1}
        assert clustering_coverage(clustering, graph.num_nodes) == 1.0

    def test_members_reliably_reachable_from_center(self):
        graph = _two_communities()
        engine = RQTreeEngine.build(graph, seed=0)
        clustering = reliable_kcenter(engine, k=2, eta=0.6)
        for node, center in clustering.cluster_of.items():
            assert exact_reliability(graph, [center], node) >= 0.6 - 1e-9

    def test_single_center_covers_half(self):
        graph = _two_communities()
        engine = RQTreeEngine.build(graph, seed=0)
        clustering = reliable_kcenter(engine, k=1, eta=0.6)
        assert len(clustering.centers) == 1
        assert len(clustering.covered) == 4

    def test_members_helper(self):
        graph = _two_communities()
        engine = RQTreeEngine.build(graph, seed=0)
        clustering = reliable_kcenter(engine, k=2, eta=0.6)
        center = clustering.centers[0]
        members = clustering.members(center)
        assert center in members
        assert all(clustering.cluster_of[m] == center for m in members)

    def test_selection_stops_when_nothing_left(self):
        graph = uncertain_path([0.01])  # nothing reliably reachable
        engine = RQTreeEngine.build(graph, seed=0)
        clustering = reliable_kcenter(engine, k=5, eta=0.9)
        # Each node covers only itself; two centers suffice for 2 nodes.
        assert len(clustering.centers) <= 2

    def test_candidate_pool_respected(self):
        graph = _two_communities()
        engine = RQTreeEngine.build(graph, seed=0)
        clustering = reliable_kcenter(
            engine, k=2, eta=0.6, candidates=[0, 1]
        )
        assert set(clustering.centers) <= {0, 1}

    def test_invalid_k(self):
        graph = _two_communities()
        engine = RQTreeEngine.build(graph, seed=0)
        with pytest.raises(ValueError):
            reliable_kcenter(engine, k=0, eta=0.5)

    def test_medium_graph_coverage_grows_with_k(self):
        graph = nethept_like(n=150, seed=4)
        engine = RQTreeEngine.build(graph, seed=4)
        one = reliable_kcenter(engine, k=1, eta=0.4)
        five = reliable_kcenter(engine, k=5, eta=0.4)
        assert clustering_coverage(five, 150) >= clustering_coverage(one, 150)


class TestConditionGraph:
    def test_absent_arc_removed(self, fig1_graph, fig1_names):
        conditioned = condition_graph(
            fig1_graph, absent=[(fig1_names["s"], fig1_names["u"])]
        )
        assert not conditioned.has_arc(fig1_names["s"], fig1_names["u"])
        assert conditioned.num_arcs == fig1_graph.num_arcs - 1

    def test_present_arc_certain(self, fig1_graph, fig1_names):
        conditioned = condition_graph(
            fig1_graph, present=[(fig1_names["s"], fig1_names["u"])]
        )
        assert conditioned.probability(
            fig1_names["s"], fig1_names["u"]
        ) == 1.0

    def test_conditional_reliability_example(self, fig1_graph, fig1_names):
        # R(s, u | s->u absent) = P(s->w) * P(w->u) = 0.6 * 0.5 = 0.3.
        conditioned = condition_graph(
            fig1_graph, absent=[(fig1_names["s"], fig1_names["u"])]
        )
        assert exact_reliability(
            conditioned, [fig1_names["s"]], fig1_names["u"]
        ) == pytest.approx(0.3)

    def test_contradictory_evidence_rejected(self, fig1_graph, fig1_names):
        arc = (fig1_names["s"], fig1_names["u"])
        with pytest.raises(GraphError):
            condition_graph(fig1_graph, present=[arc], absent=[arc])

    def test_unknown_arc_rejected(self, fig1_graph):
        with pytest.raises(GraphError):
            condition_graph(fig1_graph, present=[(2, 0)])

    def test_no_evidence_is_identity(self, fig1_graph):
        conditioned = condition_graph(fig1_graph)
        assert sorted(conditioned.arcs()) == pytest.approx(
            sorted(fig1_graph.arcs())
        )

    def test_input_not_mutated(self, fig1_graph, fig1_names):
        arcs_before = sorted(fig1_graph.arcs())
        condition_graph(
            fig1_graph, absent=[(fig1_names["s"], fig1_names["u"])]
        )
        assert sorted(fig1_graph.arcs()) == arcs_before
