"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import pytest

from repro import RQTreeEngine, UncertainGraph
from repro.graph.generators import (
    figure1_graph,
    nethept_like,
    uncertain_gnp,
    uncertain_grid,
    uncertain_path,
)


@pytest.fixture(scope="session")
def fig1():
    """The paper's Figure 1 run-through example: (graph, name->id map)."""
    return figure1_graph()


@pytest.fixture(scope="session")
def fig1_graph(fig1):
    return fig1[0]


@pytest.fixture(scope="session")
def fig1_names(fig1):
    return fig1[1]


@pytest.fixture(scope="session")
def small_graphs():
    """A zoo of small graphs (<= ~14 arcs) amenable to the exact oracle."""
    zoo = [
        figure1_graph()[0],
        uncertain_path([0.9, 0.8, 0.7]),
        uncertain_gnp(6, 0.3, seed=1),
        uncertain_gnp(7, 0.25, seed=2),
        uncertain_gnp(5, 0.5, (0.3, 0.95), seed=3),
    ]
    return [g for g in zoo if g.num_arcs <= 16]


@pytest.fixture(scope="session")
def grid_graph():
    """A 6x6 bidirectional grid with p = 0.5 (nice partition structure)."""
    return uncertain_grid(6, 6, 0.5)


@pytest.fixture(scope="session")
def medium_graph():
    """A 300-node NetHEPT-like graph for integration-level tests."""
    return nethept_like(n=300, seed=42)


@pytest.fixture(scope="session")
def medium_engine(medium_graph):
    """An RQ-tree engine over the medium graph (built once per session)."""
    return RQTreeEngine.build(medium_graph, seed=7)
