"""Property-based tests (hypothesis) for the core invariants.

These tests check the paper's theorems as universally-quantified
properties on randomly generated uncertain graphs:

* Theorem 1/2:  ``R_out(S, C) <= U_out(S, C)`` and the flow-based value
  agrees with the cut definition.
* Theorem 4:    ``L_R(S, t) <= R(S, t)``.
* Theorem 5:    the source-independent bound dominates the flow bound.
* Observations 1-2 combined: candidate generation never prunes a true
  answer (the no-false-negative guarantee), and RQ-tree-LB never keeps a
  false positive.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import UncertainGraph, build_rqtree
from repro.core.candidates import generate_candidates
from repro.core.outreach import (
    general_outreach_upper_bound,
    outreach_upper_bound,
)
from repro.core.verification import verify_lower_bound
from repro.flow.dinic import dinic_max_flow
from repro.flow.network import FlowNetwork
from repro.flow.push_relabel import push_relabel_max_flow
from repro.graph.exact import (
    exact_outreach,
    exact_reliability,
    exact_reliability_search,
)
from repro.graph.io import graph_from_json, graph_to_json
from repro.graph.paths import most_likely_path_probabilities

# ---------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------
PROBS = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)


@st.composite
def small_uncertain_graphs(draw, max_nodes=6, max_arcs=12):
    """Graphs small enough for the exponential exact oracle."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    arc_count = draw(st.integers(min_value=1, max_value=max_arcs))
    arcs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1), PROBS
            ),
            min_size=1,
            max_size=arc_count,
        )
    )
    g = UncertainGraph(n)
    for u, v, p in arcs:
        if u != v:
            g.add_arc(u, v, p)
    return g


@st.composite
def flow_networks(draw, max_nodes=8, max_edges=16):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            ),
            max_size=max_edges,
        )
    )
    return n, [(u, v, c) for u, v, c in edges if u != v]


COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------
# Flow properties
# ---------------------------------------------------------------------
@COMMON
@given(flow_networks())
def test_flow_engines_agree(data):
    n, edges = data
    net_a = FlowNetwork(n)
    net_b = FlowNetwork(n)
    for u, v, c in edges:
        net_a.add_edge(u, v, c)
        net_b.add_edge(u, v, c)
    a = dinic_max_flow(net_a, 0, n - 1)
    b = push_relabel_max_flow(net_b, 0, n - 1)
    assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


@COMMON
@given(flow_networks())
def test_flow_bounded_by_source_capacity(data):
    n, edges = data
    net = FlowNetwork(n)
    for u, v, c in edges:
        net.add_edge(u, v, c)
    out_capacity = sum(c for u, _, c in edges if u == 0)
    flow = dinic_max_flow(net, 0, n - 1)
    assert flow <= out_capacity + 1e-9


# ---------------------------------------------------------------------
# Bound sandwiches
# ---------------------------------------------------------------------
@COMMON
@given(small_uncertain_graphs())
def test_most_likely_path_is_lower_bound(g):
    probs = most_likely_path_probabilities(g, [0])
    for t, lower in probs.items():
        if t == 0:
            continue
        assert lower <= exact_reliability(g, [0], t) + 1e-9


@COMMON
@given(small_uncertain_graphs(), st.integers(1, 4))
def test_outreach_bound_sandwich(g, k):
    cluster = set(range(min(k, g.num_nodes)))
    if 0 not in cluster:
        cluster.add(0)
    exact = exact_outreach(g, [0], cluster)
    flow_bound = outreach_upper_bound(g, [0], cluster).upper_bound
    cheap_bound = general_outreach_upper_bound(g, cluster)
    assert exact <= flow_bound + 1e-9
    # The flow bound carries a deliberate +1e-9 relative inflation (see
    # outreach._inflate), so allow that margin on top of round-off.
    assert flow_bound <= cheap_bound + 1e-8


# ---------------------------------------------------------------------
# End-to-end guarantees
# ---------------------------------------------------------------------
@COMMON
@given(small_uncertain_graphs(), st.floats(0.1, 0.9))
def test_candidates_contain_every_true_answer(g, eta):
    tree, _ = build_rqtree(g, seed=0, validate=False)
    truth = exact_reliability_search(g, [0], eta)
    result = generate_candidates(g, tree, [0], eta)
    assert truth <= result.candidates


@COMMON
@given(small_uncertain_graphs(), st.floats(0.1, 0.9))
def test_lb_answers_are_always_correct(g, eta):
    tree, _ = build_rqtree(g, seed=0, validate=False)
    candidates = generate_candidates(g, tree, [0], eta).candidates
    answer = verify_lower_bound(g, [0], eta, candidates)
    for t in answer:
        assert exact_reliability(g, [0], t) >= eta * (1 - 1e-6)


@COMMON
@given(small_uncertain_graphs(), st.floats(0.1, 0.9))
def test_multi_source_candidates_contain_truth(g, eta):
    sources = [0, g.num_nodes - 1]
    tree, _ = build_rqtree(g, seed=0, validate=False)
    truth = exact_reliability_search(g, sources, eta)
    for mode in ("greedy", "exact"):
        result = generate_candidates(
            g, tree, sources, eta, multi_source_mode=mode
        )
        assert truth <= result.candidates


# ---------------------------------------------------------------------
# Structural round trips
# ---------------------------------------------------------------------
@COMMON
@given(small_uncertain_graphs())
def test_graph_json_round_trip(g):
    restored = graph_from_json(graph_to_json(g))
    assert restored.num_nodes == g.num_nodes
    assert sorted(restored.arcs()) == sorted(g.arcs())


@COMMON
@given(small_uncertain_graphs())
def test_rqtree_invariants_on_arbitrary_graphs(g):
    tree, _ = build_rqtree(g, seed=1)
    tree.validate()
    assert tree.num_clusters == 2 * g.num_nodes - 1


@COMMON
@given(small_uncertain_graphs())
def test_reliability_monotone_under_arc_addition(g):
    # Adding an arc can only increase any reliability value.
    target = g.num_nodes - 1
    before = exact_reliability(g, [0], target)
    g2 = g.copy()
    # Add (or strengthen) an arc 0 -> 1.
    if g.num_nodes >= 2:
        g2.add_arc(0, 1, 0.5)
        after = exact_reliability(g2, [0], target)
        assert after >= before - 1e-9
