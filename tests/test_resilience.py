"""End-to-end tests of the resilience subsystem.

Every degradation path is *provoked*, not just reasoned about:

* deterministic fault injection (:class:`repro.resilience.FaultPlan`)
  at the named points compiled into the library;
* numpy→python backend fallback, byte-identical to an up-front
  ``backend="python"`` run;
* budgeted queries returning partial, statused results instead of
  raising;
* clean :class:`ReproError` surfaces (library and CLI).
"""

from __future__ import annotations

import logging

import pytest

from repro import (
    CONFIRMED,
    REJECTED,
    UNVERIFIED,
    FaultPlan,
    InjectedFault,
    QueryBudget,
    QueryDeadlineError,
    ReproError,
    RQTreeEngine,
    UncertainGraph,
)
from repro.cli import main
from repro.core.verification import (
    verify_lower_bound_report,
    verify_sampling,
    verify_sampling_report,
)
from repro.graph.generators import nethept_like, uncertain_gnp
from repro.graph.io import write_edge_list
from repro.graph.sampling import ReachabilityFrequencyEstimator
from repro.resilience import INJECTION_POINTS, fault_point, wilson_interval

#: A budget whose deadline is long past the moment it starts.
EXPIRED = QueryBudget(deadline_seconds=1e-9)


@pytest.fixture(scope="module")
def er2000():
    """The acceptance-scale workload: n=2000 ER graph plus its engine."""
    graph = uncertain_gnp(2000, 8.0 / 2000, seed=42)
    return graph, RQTreeEngine.build(graph, seed=0)


@pytest.fixture(scope="module")
def small_engine():
    graph = nethept_like(n=60, seed=3)
    return graph, RQTreeEngine.build(graph, seed=0)


# ----------------------------------------------------------------------
# Fault-injection harness
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultPlan({"no.such.point": 1})

    def test_bad_triggers_rejected(self):
        with pytest.raises(ValueError, match="always"):
            FaultPlan({"mc.kernel.chunk": "sometimes"})
        with pytest.raises(ValueError, match=">= 1"):
            FaultPlan({"mc.kernel.chunk": 0})

    def test_fault_point_is_noop_without_plan(self):
        fault_point("mc.kernel.chunk")  # must not raise

    def test_nth_hit_semantics(self):
        plan = FaultPlan({"mc.kernel.chunk": 3})
        with plan:
            fault_point("mc.kernel.chunk")
            fault_point("mc.kernel.chunk")
            with pytest.raises(InjectedFault) as excinfo:
                fault_point("mc.kernel.chunk")
            fault_point("mc.kernel.chunk")  # only the 3rd hit fires
        assert excinfo.value.point == "mc.kernel.chunk"
        assert excinfo.value.hit == 3
        assert plan.hits("mc.kernel.chunk") == 4

    def test_always_and_hit_collections(self):
        with FaultPlan({"csr.snapshot": "always"}):
            with pytest.raises(InjectedFault):
                fault_point("csr.snapshot")
        with FaultPlan({"csr.snapshot": {2, 4}}):
            fault_point("csr.snapshot")
            with pytest.raises(InjectedFault):
                fault_point("csr.snapshot")
            fault_point("csr.snapshot")
            with pytest.raises(InjectedFault):
                fault_point("csr.snapshot")

    def test_seeded_plans_are_reproducible(self):
        def schedule(plan, hits=50):
            fired = []
            with plan:
                for i in range(hits):
                    try:
                        fault_point("mc.kernel.chunk")
                    except InjectedFault:
                        fired.append(i)
            return fired

        a = schedule(FaultPlan.seeded(7, ["mc.kernel.chunk"], 0.3))
        b = schedule(FaultPlan.seeded(7, ["mc.kernel.chunk"], 0.3))
        c = schedule(FaultPlan.seeded(8, ["mc.kernel.chunk"], 0.3))
        assert a == b
        assert a != c
        assert 0 < len(a) < 50

    def test_nesting_rejected(self):
        with FaultPlan({}):
            with pytest.raises(RuntimeError, match="already active"):
                with FaultPlan({}):
                    pass

    def test_plan_uninstalled_after_exit(self):
        with pytest.raises(InjectedFault):
            with FaultPlan({"csr.snapshot": "always"}):
                fault_point("csr.snapshot")
        fault_point("csr.snapshot")  # no plan active any more

    def test_injected_fault_is_repro_error(self):
        assert issubclass(InjectedFault, ReproError)

    def test_documented_points_exist(self):
        assert {
            "csr.snapshot",
            "mc.kernel.chunk",
            "candidates.generate",
            "rqtree.serialize",
            "rqtree.deserialize",
        } <= INJECTION_POINTS


# ----------------------------------------------------------------------
# Backend fallback ladder
# ----------------------------------------------------------------------
class TestBackendFallback:
    def test_estimator_fallback_is_byte_identical(self, er2000):
        graph, _ = er2000
        reference = ReachabilityFrequencyEstimator(
            graph, [0], seed=11, backend="python"
        ).run(300)
        with FaultPlan({"mc.kernel.chunk": "always"}) as plan:
            fallen = ReachabilityFrequencyEstimator(
                graph, [0], seed=11, backend="auto"
            ).run(300)
        assert plan.hits("mc.kernel.chunk") >= 1
        assert fallen.fallbacks == 1
        assert fallen.backend == "python"
        assert fallen.counts() == reference.counts()

    def test_csr_snapshot_fault_also_falls_back(self, er2000):
        graph, _ = er2000
        reference = ReachabilityFrequencyEstimator(
            graph, [0], seed=5, backend="python"
        ).run(100)
        with FaultPlan({"csr.snapshot": "always"}):
            fallen = ReachabilityFrequencyEstimator(
                graph, [0], seed=5, backend="auto"
            ).run(100)
        assert fallen.fallbacks == 1
        assert fallen.counts() == reference.counts()

    def test_fallback_logs_structured_warning(self, er2000, caplog):
        graph, _ = er2000
        with caplog.at_level(logging.WARNING, logger="repro.resilience"):
            with FaultPlan({"mc.kernel.chunk": "always"}):
                ReachabilityFrequencyEstimator(
                    graph, [0], seed=5, backend="auto"
                ).run(50)
        records = [
            r for r in caplog.records
            if getattr(r, "event", None) == "backend_fallback"
        ]
        assert len(records) == 1
        assert records[0].error_type == "InjectedFault"
        assert records[0].fallback_backend == "python"

    def test_explicit_numpy_still_raises(self, er2000):
        graph, _ = er2000
        with FaultPlan({"mc.kernel.chunk": 1}):
            with pytest.raises(InjectedFault):
                ReachabilityFrequencyEstimator(
                    graph, [0], seed=5, backend="numpy"
                ).run(50)

    def test_engine_auto_matches_python_under_fault_storm(self, er2000):
        """Acceptance: a fault plan killing every numpy kernel chunk
        leaves backend="auto" answers byte-identical to
        backend="python"."""
        graph, engine = er2000
        reference = engine.query(
            [0], eta=0.05, method="mc", num_samples=400, seed=7,
            backend="python",
        )
        with FaultPlan({"mc.kernel.chunk": "always"}) as plan:
            fallen = engine.query(
                [0], eta=0.05, method="mc", num_samples=400, seed=7,
                backend="auto",
            )
        assert plan.hits("mc.kernel.chunk") >= 1  # numpy path was tried
        assert fallen.backend_fallbacks == 1
        assert fallen.nodes == reference.nodes
        assert fallen.statuses == reference.statuses

    def test_no_fallbacks_without_faults(self, er2000):
        graph, engine = er2000
        result = engine.query(
            [0], eta=0.05, method="mc", num_samples=200, seed=7,
            backend="auto",
        )
        assert result.backend_fallbacks == 0


# ----------------------------------------------------------------------
# Clean ReproError surfaces for non-recoverable injection points
# ----------------------------------------------------------------------
class TestFaultSurfaces:
    def test_candidate_generation_fault_surfaces_as_repro_error(
        self, small_engine
    ):
        _, engine = small_engine
        with FaultPlan({"candidates.generate": 1}):
            with pytest.raises(ReproError):
                engine.query(0, eta=0.4)

    def test_serialization_faults(self, small_engine, tmp_path):
        _, engine = small_engine
        path = tmp_path / "index.json"
        with FaultPlan({"rqtree.serialize": 1}):
            with pytest.raises(InjectedFault):
                engine.tree.save(path)
        engine.tree.save(path)
        with FaultPlan({"rqtree.deserialize": 1}):
            with pytest.raises(InjectedFault):
                type(engine.tree).load(path)

    def test_query_recovers_after_plan_removed(self, small_engine):
        _, engine = small_engine
        with FaultPlan({"candidates.generate": 1}):
            with pytest.raises(ReproError):
                engine.query(0, eta=0.4)
        result = engine.query(0, eta=0.4)
        assert result.nodes  # the source at minimum


# ----------------------------------------------------------------------
# Query budgets and graceful degradation
# ----------------------------------------------------------------------
class TestQueryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueryBudget(deadline_seconds=0)
        with pytest.raises(ValueError):
            QueryBudget(max_worlds=0)
        with pytest.raises(ValueError):
            QueryBudget(max_candidate_nodes=0)
        with pytest.raises(ValueError):
            QueryBudget(confidence=0.4)

    def test_wilson_interval_sanity(self):
        low, high = wilson_interval(80, 100)
        assert 0.0 <= low < 0.8 < high <= 1.0
        tight_low, tight_high = wilson_interval(8000, 10000)
        assert (tight_high - tight_low) < (high - low)
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_deadline_expiry_returns_partial_result(self, er2000):
        """Acceptance: 50 ms deadline on the n=2000 graph returns a
        degraded partial result, never an unhandled exception."""
        graph, engine = er2000
        result = engine.query(
            [0], eta=0.9, method="mc", num_samples=20000, seed=1,
            budget=QueryBudget(deadline_seconds=0.05),
        )
        assert result.degraded
        assert result.degraded_reason
        assert result.worlds_used < 20000
        candidates = result.candidate_result.candidates
        assert set(result.statuses) == candidates
        assert result.unverified  # some candidates ran out of budget
        assert result.nodes == {
            n for n, s in result.statuses.items() if s == CONFIRMED
        }
        assert result.achieved_confidence < 1.0
        # Sources are answers by definition even in a zero-world run.
        assert result.statuses[0] == CONFIRMED

    def test_expired_deadline_degrades_candidates_to_root(self, small_engine):
        graph, engine = small_engine
        result = engine.query(0, eta=0.4, budget=EXPIRED)
        assert result.degraded
        assert result.candidate_result.degraded
        assert result.candidate_result.candidates == set(graph.nodes())
        assert set(result.statuses) == set(graph.nodes())
        assert result.statuses[0] == CONFIRMED
        assert all(
            status in (CONFIRMED, UNVERIFIED)
            for status in result.statuses.values()
        )

    def test_generous_deadline_is_not_degraded(self, small_engine):
        _, engine = small_engine
        result = engine.query(
            0, eta=0.4, method="mc", num_samples=200, seed=2,
            budget=QueryBudget(deadline_seconds=60.0),
        )
        assert not result.degraded
        assert result.achieved_confidence == 1.0
        assert not result.unverified

    def test_max_worlds_cap(self, small_engine):
        _, engine = small_engine
        result = engine.query(
            0, eta=0.4, method="mc", num_samples=5000, seed=2,
            budget=QueryBudget(deadline_seconds=60.0, max_worlds=64),
        )
        assert result.worlds_used <= 64
        # A capped-but-completed estimate is coarser, not partial.
        assert not result.unverified
        assert result.achieved_confidence == 1.0

    def test_max_candidate_nodes_cap(self, small_engine):
        graph, engine = small_engine
        result = engine.query(
            0, eta=0.4, method="mc", num_samples=200, seed=2,
            budget=QueryBudget(
                deadline_seconds=60.0, max_candidate_nodes=3
            ),
        )
        candidates = result.candidate_result.candidates
        if len(candidates) > 3:
            assert result.degraded
            assert result.unverified
            assert "cap" in (result.degraded_reason or "")
        assert set(result.statuses) == candidates

    def test_budgeted_lb_method(self, small_engine):
        _, engine = small_engine
        unbudgeted = engine.query(0, eta=0.4, method="lb")
        budgeted = engine.query(
            0, eta=0.4, method="lb",
            budget=QueryBudget(deadline_seconds=60.0),
        )
        assert budgeted.nodes == unbudgeted.nodes
        assert not budgeted.degraded
        expired = engine.query(0, eta=0.4, method="lb", budget=EXPIRED)
        assert expired.degraded
        assert expired.statuses[0] == CONFIRMED
        assert all(
            s in (CONFIRMED, UNVERIFIED) for s in expired.statuses.values()
        )

    def test_budgeted_lb_plus_method(self, small_engine):
        _, engine = small_engine
        expired = engine.query(0, eta=0.4, method="lb+", budget=EXPIRED)
        assert expired.degraded
        assert expired.unverified
        fine = engine.query(
            0, eta=0.4, method="lb+",
            budget=QueryBudget(deadline_seconds=60.0),
        )
        assert fine.nodes == engine.query(0, eta=0.4, method="lb+").nodes

    def test_unbudgeted_statuses_cover_all_candidates(self, small_engine):
        _, engine = small_engine
        result = engine.query(0, eta=0.4, method="mc", seed=2)
        assert set(result.statuses) == result.candidate_result.candidates
        assert set(result.statuses.values()) <= {CONFIRMED, REJECTED}
        assert not result.degraded

    def test_set_returning_verifiers_raise_on_expiry(self, small_engine):
        graph, engine = small_engine
        candidates = set(graph.nodes())
        with pytest.raises(QueryDeadlineError):
            verify_sampling(
                graph, [0], 0.4, candidates, num_samples=100, seed=1,
                budget=EXPIRED,
            )
        report = verify_sampling_report(
            graph, [0], 0.4, candidates, num_samples=100, seed=1,
            budget=EXPIRED,
        )
        assert report.degraded
        assert report.unverified

    def test_lower_bound_report_expired(self, small_engine):
        graph, _ = small_engine
        report = verify_lower_bound_report(
            graph, [0], 0.4, set(graph.nodes()), budget=EXPIRED
        )
        assert report.degraded
        assert report.kept == {0}
        assert report.statuses[0] == CONFIRMED

    def test_unbudgeted_mc_query_matches_seed_semantics(self, small_engine):
        """budget=None must reproduce the seed pipeline exactly: the
        engine answer equals a direct ``verify_sampling`` run (one
        estimator pass thresholded at eta*K over the candidate set)."""
        graph, engine = small_engine
        result = engine.query(0, eta=0.4, method="mc", num_samples=150,
                              seed=9, backend="python")
        candidates = engine.candidates(0, 0.4).candidates
        assert result.nodes == verify_sampling(
            graph, [0], 0.4, candidates, num_samples=150, seed=9,
            backend="python",
        )


# ----------------------------------------------------------------------
# CLI error and degradation surfaces
# ----------------------------------------------------------------------
class TestCLI:
    @pytest.fixture()
    def graph_file(self, tmp_path):
        graph = nethept_like(n=40, seed=1)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        return str(path)

    def test_repro_error_exits_2_with_one_line(self, graph_file, capsys):
        code = main([
            "query", "--graph", graph_file, "--sources", "0",
            "--eta", "1.5",
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "InvalidThresholdError" in captured.err
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_injected_fault_exits_2(self, graph_file, capsys):
        with FaultPlan({"candidates.generate": 1}):
            code = main([
                "query", "--graph", graph_file, "--sources", "0",
                "--eta", "0.5",
            ])
        captured = capsys.readouterr()
        assert code == 2
        assert "InjectedFault" in captured.err

    def test_degraded_query_exits_0_with_marker(self, graph_file, capsys):
        code = main([
            "query", "--graph", graph_file, "--sources", "0",
            "--eta", "0.5", "--method", "mc",
            "--deadline-ms", "0.0001",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "DEGRADED" in captured.out

    def test_unbudgeted_query_has_no_marker(self, graph_file, capsys):
        code = main([
            "query", "--graph", graph_file, "--sources", "0",
            "--eta", "0.5",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "DEGRADED" not in captured.out
