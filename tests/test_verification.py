"""Unit tests for the verification phase (Section 5)."""

from __future__ import annotations

import pytest

from repro.core.verification import verify_lower_bound, verify_sampling
from repro.errors import EmptySourceSetError, InvalidThresholdError
from repro.graph.exact import exact_reliability, exact_reliability_search
from repro.graph.generators import uncertain_gnp, uncertain_path


class TestLowerBoundVerification:
    def test_perfect_precision_on_random_graphs(self):
        # Section 5.1: every node kept by the LB verifier truly satisfies
        # the query (no false positives, ever).
        for seed in range(6):
            g = uncertain_gnp(6, 0.3, seed=seed)
            if g.num_arcs > 16 or g.num_arcs == 0:
                continue
            candidates = set(g.nodes())
            for eta in (0.3, 0.5, 0.8):
                kept = verify_lower_bound(g, [0], eta, candidates)
                for t in kept:
                    assert exact_reliability(g, [0], t) >= eta - 1e-9

    def test_keeps_strong_direct_paths(self):
        g = uncertain_path([0.9, 0.9])
        # Path probabilities: node 1 -> 0.9, node 2 -> 0.81; both >= 0.8.
        assert verify_lower_bound(g, [0], 0.8, {0, 1, 2}) == {0, 1, 2}
        # At eta = 0.85 node 2 (0.81) drops out.
        assert verify_lower_bound(g, [0], 0.85, {0, 1, 2}) == {0, 1}

    def test_source_always_kept(self):
        g = uncertain_path([0.1])
        assert 0 in verify_lower_bound(g, [0], 0.9, {0, 1})

    def test_respects_candidate_restriction(self):
        # Without node 1 in the candidate set, node 2 is unreachable.
        g = uncertain_path([0.9, 0.9])
        kept = verify_lower_bound(g, [0], 0.5, {0, 2})
        assert kept == {0}

    def test_misses_multipath_reliability(self, fig1_graph, fig1_names):
        # u's reliability from s is 0.65 but its best single path is
        # s->u at 0.5; with eta = 0.6 the LB verifier must drop u
        # (a false negative — the documented trade-off of RQ-tree-LB).
        kept = verify_lower_bound(
            fig1_graph, [fig1_names["s"]], 0.6, set(range(5))
        )
        assert fig1_names["u"] not in kept
        assert fig1_names["w"] in kept  # direct 0.6 arc

    def test_eta_boundary_inclusive(self):
        g = uncertain_path([0.6])
        kept = verify_lower_bound(g, [0], 0.6, {0, 1})
        assert 1 in kept  # path probability exactly eta

    def test_multi_source(self):
        g = uncertain_path([0.2, 0.9])
        kept = verify_lower_bound(g, [0, 1], 0.8, {0, 1, 2})
        assert kept == {0, 1, 2}

    def test_invalid_eta_rejected(self):
        g = uncertain_path([0.5])
        with pytest.raises(InvalidThresholdError):
            verify_lower_bound(g, [0], 1.5, {0, 1})

    def test_empty_sources_rejected(self):
        g = uncertain_path([0.5])
        with pytest.raises(EmptySourceSetError):
            verify_lower_bound(g, [], 0.5, {0, 1})


class TestSamplingVerification:
    def test_matches_exact_answer_on_figure1(self, fig1_graph, fig1_names):
        kept = verify_sampling(
            fig1_graph,
            [fig1_names["s"]],
            0.5,
            set(range(5)),
            num_samples=4000,
            seed=3,
        )
        expected = exact_reliability_search(fig1_graph, [fig1_names["s"]], 0.5)
        assert kept == expected

    def test_recovers_multipath_nodes_lb_misses(self, fig1_graph, fig1_names):
        # The complementary strength of RQ-tree-MC: u (R = 0.65) is kept
        # at eta = 0.6 even though its best path is only 0.5.
        kept = verify_sampling(
            fig1_graph,
            [fig1_names["s"]],
            0.6,
            set(range(5)),
            num_samples=4000,
            seed=3,
        )
        assert fig1_names["u"] in kept

    def test_deterministic_with_seed(self, fig1_graph):
        a = verify_sampling(
            fig1_graph, [0], 0.5, set(range(5)), num_samples=200, seed=9
        )
        b = verify_sampling(
            fig1_graph, [0], 0.5, set(range(5)), num_samples=200, seed=9
        )
        assert a == b

    def test_restricted_to_candidates(self, fig1_graph, fig1_names):
        candidates = {fig1_names["s"], fig1_names["w"]}
        kept = verify_sampling(
            fig1_graph, [fig1_names["s"]], 0.3, candidates,
            num_samples=500, seed=1,
        )
        assert kept <= candidates

    def test_invalid_sample_count_rejected(self, fig1_graph):
        with pytest.raises(ValueError):
            verify_sampling(fig1_graph, [0], 0.5, {0}, num_samples=0)

    def test_invalid_eta_rejected(self, fig1_graph):
        with pytest.raises(InvalidThresholdError):
            verify_sampling(fig1_graph, [0], 0.0, {0})
