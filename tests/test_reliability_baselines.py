"""Unit tests for the MC-Sampling and RHT-sampling baselines."""

from __future__ import annotations

import pytest

from repro.errors import (
    EmptySourceSetError,
    InvalidThresholdError,
    NodeNotFoundError,
)
from repro.graph.exact import exact_reliability, exact_reliability_search
from repro.graph.generators import uncertain_gnp, uncertain_path
from repro.reliability.estimators import make_method_suite
from repro.reliability.montecarlo import mc_reliability, mc_sampling_search
from repro.reliability.rht import rht_reliability, rht_reliability_search


class TestMCSampling:
    def test_matches_exact_on_figure1(self, fig1_graph, fig1_names):
        result = mc_sampling_search(
            fig1_graph, fig1_names["s"], 0.5, num_samples=4000, seed=1
        )
        expected = exact_reliability_search(fig1_graph, [fig1_names["s"]], 0.5)
        assert result.nodes == expected

    def test_frequency_estimates_reliability(self, fig1_graph, fig1_names):
        estimate = mc_reliability(
            fig1_graph, fig1_names["s"], fig1_names["u"],
            num_samples=5000, seed=2,
        )
        assert estimate == pytest.approx(0.65, abs=0.03)

    def test_sources_always_in_answer(self):
        g = uncertain_path([0.01])
        result = mc_sampling_search(g, 0, 0.99, num_samples=50, seed=0)
        assert 0 in result.nodes

    def test_deterministic_given_seed(self, fig1_graph):
        a = mc_sampling_search(fig1_graph, 0, 0.5, num_samples=300, seed=7)
        b = mc_sampling_search(fig1_graph, 0, 0.5, num_samples=300, seed=7)
        assert a.nodes == b.nodes
        assert a.frequencies == b.frequencies

    def test_result_metadata(self, fig1_graph):
        result = mc_sampling_search(fig1_graph, 0, 0.5, num_samples=100, seed=0)
        assert result.num_samples == 100
        assert result.seconds >= 0.0

    def test_invalid_inputs(self, fig1_graph):
        with pytest.raises(InvalidThresholdError):
            mc_sampling_search(fig1_graph, 0, 1.0)
        with pytest.raises(ValueError):
            mc_sampling_search(fig1_graph, 0, 0.5, num_samples=0)
        with pytest.raises(EmptySourceSetError):
            mc_sampling_search(fig1_graph, [], 0.5)


class TestRHTReliability:
    def test_exact_on_single_path(self):
        # One path: the factoring decomposition terminates exactly.
        g = uncertain_path([0.8, 0.5])
        assert rht_reliability(g, 0, 2, seed=0) == pytest.approx(0.4)

    def test_figure1_value(self, fig1_graph, fig1_names):
        estimate = rht_reliability(
            fig1_graph, fig1_names["s"], fig1_names["u"], budget=64, seed=1
        )
        assert estimate == pytest.approx(0.65, abs=0.05)

    def test_unreachable_target(self):
        g = uncertain_path([0.5])
        g2 = g.copy()
        extra = g2.add_node()
        assert rht_reliability(g2, 0, extra, seed=0) == 0.0

    def test_target_in_sources(self):
        g = uncertain_path([0.5])
        assert rht_reliability(g, 0, 0) == 1.0

    def test_zero_budget_degenerates_to_mc(self, fig1_graph, fig1_names):
        estimate = rht_reliability(
            fig1_graph,
            fig1_names["s"],
            fig1_names["u"],
            budget=0,
            fallback_samples=3000,
            seed=5,
        )
        assert estimate == pytest.approx(0.65, abs=0.05)

    def test_estimates_close_to_exact_on_random_graphs(self):
        for seed in range(4):
            g = uncertain_gnp(6, 0.3, seed=seed)
            if g.num_arcs > 16 or g.num_arcs == 0:
                continue
            for target in range(1, 4):
                exact = exact_reliability(g, [0], target)
                estimate = rht_reliability(
                    g, 0, target, budget=128, fallback_samples=200, seed=seed
                )
                assert estimate == pytest.approx(exact, abs=0.08)

    def test_missing_nodes_rejected(self, fig1_graph):
        with pytest.raises(NodeNotFoundError):
            rht_reliability(fig1_graph, 99, 0)
        with pytest.raises(NodeNotFoundError):
            rht_reliability(fig1_graph, 0, 99)


class TestRHTSearch:
    def test_matches_exact_on_figure1(self, fig1_graph, fig1_names):
        result = rht_reliability_search(
            fig1_graph, fig1_names["s"], 0.5,
            budget=64, fallback_samples=400, seed=3,
        )
        expected = exact_reliability_search(fig1_graph, [fig1_names["s"]], 0.5)
        assert result.nodes == expected

    def test_reliabilities_reported_per_node(self, fig1_graph):
        result = rht_reliability_search(fig1_graph, 0, 0.5, seed=0)
        assert set(result.reliabilities) == set(range(5))
        assert result.reliabilities[0] == 1.0

    def test_invalid_eta(self, fig1_graph):
        with pytest.raises(InvalidThresholdError):
            rht_reliability_search(fig1_graph, 0, 0.0)


class TestMethodSuite:
    def test_suite_keys(self, medium_engine):
        suite = make_method_suite(medium_engine, num_samples=50, seed=0)
        assert set(suite) == {"rq-tree-lb", "rq-tree-mc", "mc-sampling"}

    def test_suite_with_rht(self, medium_engine):
        suite = make_method_suite(medium_engine, include_rht=True)
        assert "rht-sampling" in suite

    def test_methods_answer_queries(self, medium_engine):
        suite = make_method_suite(medium_engine, num_samples=50, seed=0)
        for name, method in suite.items():
            answer = method(medium_engine.graph, [0], 0.6)
            assert 0 in answer, name


class TestMethodSuiteLbPlus:
    def test_lb_plus_opt_in(self, medium_engine):
        suite = make_method_suite(medium_engine, include_lb_plus=True)
        assert "rq-tree-lb+" in suite
        answer = suite["rq-tree-lb+"](medium_engine.graph, [0], 0.6)
        assert 0 in answer

    def test_lb_plus_superset_of_lb(self, medium_engine):
        suite = make_method_suite(medium_engine, include_lb_plus=True)
        lb = suite["rq-tree-lb"](medium_engine.graph, [0], 0.5)
        lb_plus = suite["rq-tree-lb+"](medium_engine.graph, [0], 0.5)
        assert lb <= lb_plus
