"""Unit tests for the CSR snapshot and batched MC kernel (repro.accel)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import (
    AUTO_NODE_THRESHOLD,
    BACKENDS,
    CSRGraph,
    csr_snapshot,
    numpy_available,
    resolve_backend,
    sample_reach_batch,
)
from repro.accel import mc_kernel
from repro.errors import BackendUnavailableError
from repro.graph.generators import uncertain_gnp
from repro.graph.sampling import WorldSampler
from repro.graph.uncertain import UncertainGraph


def test_numpy_available_here():
    assert numpy_available()


# ----------------------------------------------------------------------
# CSR snapshots
# ----------------------------------------------------------------------
def test_csr_roundtrip_matches_adjacency(fig1_graph):
    csr = csr_snapshot(fig1_graph)
    assert csr.num_nodes == fig1_graph.num_nodes
    assert csr.num_arcs == fig1_graph.num_arcs
    for u in range(fig1_graph.num_nodes):
        lo, hi = int(csr.indptr[u]), int(csr.indptr[u + 1])
        forward = dict(
            zip(csr.indices[lo:hi].tolist(), csr.probs[lo:hi].tolist())
        )
        assert forward == fig1_graph.successors(u)
        lo, hi = int(csr.rev_indptr[u]), int(csr.rev_indptr[u + 1])
        reverse = dict(
            zip(
                csr.rev_indices[lo:hi].tolist(),
                csr.rev_probs[lo:hi].tolist(),
            )
        )
        assert reverse == fig1_graph.predecessors(u)
    assert csr.out_degrees().sum() == fig1_graph.num_arcs


def test_csr_arrays_are_readonly(fig1_graph):
    csr = csr_snapshot(fig1_graph)
    for array in (csr.indptr, csr.indices, csr.probs, csr.probs_f32,
                  csr.rev_indptr, csr.rev_indices, csr.rev_probs):
        with pytest.raises(ValueError):
            array[0] = 0


def test_csr_snapshot_cached_until_mutation():
    g = uncertain_gnp(20, 0.2, seed=3)
    first = csr_snapshot(g)
    assert csr_snapshot(g) is first  # cache hit while version unchanged
    version = g.version
    g.add_arc(0, 19, 0.5)
    assert g.version > version
    rebuilt = csr_snapshot(g)
    assert rebuilt is not first
    assert rebuilt.num_arcs == first.num_arcs + 1
    assert csr_snapshot(g) is rebuilt


def test_csr_snapshot_invalidated_by_every_mutation_kind():
    g = UncertainGraph(2)
    g.add_arc(0, 1, 0.5)
    for mutate in (
        lambda: g.add_node(),
        lambda: g.add_arc(1, 0, 0.25),
        lambda: g.remove_arc(1, 0),
    ):
        before = csr_snapshot(g)
        mutate()
        assert csr_snapshot(g) is not before


def test_csr_rejects_non_graph():
    with pytest.raises(TypeError, match="materialize"):
        CSRGraph({0: {1: 0.5}})  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Batched kernel mechanics
# ----------------------------------------------------------------------
def test_batch_rejects_nonpositive_worlds(fig1_graph):
    with pytest.raises(ValueError, match="num_worlds"):
        sample_reach_batch(
            fig1_graph, [0], 0, np.random.default_rng(0)
        )


def test_batch_empty_sources(fig1_graph):
    batch = sample_reach_batch(
        fig1_graph, [], 50, np.random.default_rng(0)
    )
    assert batch.counts.sum() == 0
    assert (batch.world_sizes == 0).all()
    assert batch.num_worlds == 50


def test_batch_sources_always_reached(fig1_graph):
    batch = sample_reach_batch(
        fig1_graph, [0, 3], 64, np.random.default_rng(1)
    )
    assert batch.counts[0] == 64
    assert batch.counts[3] == 64
    assert (batch.world_sizes >= 2).all()


def test_batch_sources_outside_allowed_are_dropped(fig1_graph):
    batch = sample_reach_batch(
        fig1_graph, [0], 40, np.random.default_rng(2), allowed={1, 2}
    )
    assert batch.counts.sum() == 0


def test_batch_max_hops_zero_is_sources_only(fig1_graph):
    batch = sample_reach_batch(
        fig1_graph, [0], 40, np.random.default_rng(3), max_hops=0
    )
    assert batch.counts[0] == 40
    assert batch.counts.sum() == 40


def test_batch_deterministic_per_seed(fig1_graph):
    a = sample_reach_batch(fig1_graph, [0], 500, np.random.default_rng(11))
    b = sample_reach_batch(fig1_graph, [0], 500, np.random.default_rng(11))
    assert (a.counts == b.counts).all()
    assert (a.world_sizes == b.world_sizes).all()
    c = sample_reach_batch(fig1_graph, [0], 500, np.random.default_rng(12))
    assert not (a.counts == c.counts).all()


def test_batch_chunked_run_covers_all_worlds(fig1_graph, monkeypatch):
    # Force a tiny chunk so the accumulation loop runs many times.
    monkeypatch.setattr(mc_kernel, "_chunk_size", lambda csr, w: 7)
    batch = sample_reach_batch(
        fig1_graph, [0], 100, np.random.default_rng(5)
    )
    assert batch.num_worlds == 100
    assert batch.counts[0] == 100
    assert batch.world_sizes.shape == (100,)
    # frequencies remain sane estimates despite chunking
    assert 0.4 < batch.counts[3] / 100 < 0.9


def test_batch_accepts_prebuilt_csr(fig1_graph):
    csr = csr_snapshot(fig1_graph)
    batch = sample_reach_batch(csr, [0], 64, np.random.default_rng(7))
    assert batch.counts[0] == 64


def test_batch_isolated_node_graph():
    g = UncertainGraph(3)  # no arcs at all
    batch = sample_reach_batch(g, [1], 16, np.random.default_rng(0))
    assert batch.counts.tolist() == [0, 16, 0]


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
def test_resolve_backend_explicit():
    assert resolve_backend("python", 10_000) == "python"
    assert resolve_backend("numpy", 1) == "numpy"


def test_resolve_backend_auto_threshold():
    assert resolve_backend("auto", AUTO_NODE_THRESHOLD - 1) == "python"
    assert resolve_backend("auto", AUTO_NODE_THRESHOLD) == "numpy"
    # unknown problem size stays on the reference implementation
    assert resolve_backend("auto", None) == "python"


def test_resolve_backend_unknown_name():
    with pytest.raises(BackendUnavailableError, match="cython"):
        resolve_backend("cython", 100)
    assert "cython" not in BACKENDS


# ----------------------------------------------------------------------
# WorldSampler arc-list snapshot
# ----------------------------------------------------------------------
def test_world_sampler_snapshot_tracks_mutation():
    g = UncertainGraph(3)
    g.add_arc(0, 1, 1.0)
    sampler = WorldSampler(g, seed=0)
    assert sampler.sample_world() == [(0, 1)]
    # Mutating the graph between samples must invalidate the arc-list
    # snapshot: the new certain arc shows up in the very next world.
    g.add_arc(1, 2, 1.0)
    assert sorted(sampler.sample_world()) == [(0, 1), (1, 2)]
    g.remove_arc(0, 1)
    assert sampler.sample_world() == [(1, 2)]


def test_world_sampler_seeded_sequences_unchanged():
    g = uncertain_gnp(12, 0.3, seed=4)
    a = WorldSampler(g, seed=9)
    b = WorldSampler(g, seed=9)
    for _ in range(5):
        assert a.sample_world() == b.sample_world()


# ----------------------------------------------------------------------
# Shared coin blocks (cross-query world batching)
# ----------------------------------------------------------------------
def test_coin_block_bits_match_private_draw():
    g = uncertain_gnp(30, 0.2, seed=5)
    csr = csr_snapshot(g)
    from repro.accel.coins import CoinBlock

    block = CoinBlock(seed=11, num_worlds=24)
    shared = block.coins(csr, 0, 24)
    rng = np.random.default_rng(11)
    raw = (
        rng.random((csr.num_arcs, 24), dtype=np.float32)
        < csr.rev_probs_f32[:, None]
    )
    # Identical to a private draw bit for bit: the packed bytes match
    # np.packbits exactly and the pad columns (zero-filled to uint64
    # lane width) carry no coins.
    private = np.packbits(raw, axis=1)
    assert np.array_equal(shared[:, : private.shape[1]], private)
    assert not shared[:, private.shape[1]:].any()
    from repro.accel.coins import pack_world_bits

    assert np.array_equal(shared, pack_world_bits(raw))
    assert block.draws == 1
    # Second consumer reuses the cached chunk verbatim.
    assert block.coins(csr, 0, 24) is shared
    assert block.hits == 1


def test_coin_block_sharing_preserves_batch_results():
    g = uncertain_gnp(40, 0.25, seed=6)
    from repro.accel.coins import CoinBlock

    private = sample_reach_batch(g, [0, 3], 200, np.random.default_rng(21))
    block = CoinBlock(seed=21, num_worlds=200)
    shared_a = sample_reach_batch(
        g, [0, 3], 200, np.random.default_rng(21), coin_source=block
    )
    # A different query sharing the same block: different sources and a
    # hop budget, still byte-identical to its own private run.
    shared_b = sample_reach_batch(
        g, [5], 200, np.random.default_rng(21), coin_source=block, max_hops=2
    )
    private_b = sample_reach_batch(
        g, [5], 200, np.random.default_rng(21), max_hops=2
    )
    assert np.array_equal(private.counts, shared_a.counts)
    assert np.array_equal(private.world_sizes, shared_a.world_sizes)
    assert np.array_equal(private_b.counts, shared_b.counts)


def test_coin_block_rejects_mutated_graph():
    g = uncertain_gnp(20, 0.3, seed=7)
    from repro.accel.coins import CoinBlock

    block = CoinBlock(seed=1, num_worlds=16)
    block.coins(csr_snapshot(g), 0, 16)
    g.add_arc(0, 19, 0.5)
    with pytest.raises(RuntimeError, match="mutated"):
        block.coins(csr_snapshot(g), 0, 16)


def test_coin_block_rejects_misaligned_partition():
    g = uncertain_gnp(20, 0.3, seed=8)
    csr = csr_snapshot(g)
    from repro.accel.coins import CoinBlock

    block = CoinBlock(seed=1, num_worlds=64)
    block.coins(csr, 0, 32)
    with pytest.raises(RuntimeError, match="misaligned"):
        block.coins(csr, 0, 16)
    with pytest.raises(RuntimeError, match="non-sequential"):
        block.coins(csr, 48, 16)
    with pytest.raises(ValueError, match="outside"):
        block.coins(csr, 32, 64)


# ----------------------------------------------------------------------
# Thread-safety of the version-keyed CSR snapshot cache
# ----------------------------------------------------------------------
def test_csr_snapshot_threaded_hammer_with_mutations():
    import threading

    g = uncertain_gnp(120, 0.05, seed=9)
    # version -> arc count, recorded by the mutator before and after
    # every mutation; any snapshot must match the arc count of the
    # version it claims to be.
    recorded = {g.version: g.num_arcs}
    record_lock = threading.Lock()
    stop = threading.Event()
    failures = []

    def mutator():
        node = 0
        while not stop.is_set():
            g.add_arc(node % 120, (node * 7 + 1) % 120, 0.5)
            with record_lock:
                recorded[g.version] = g.num_arcs
            node += 1

    def reader():
        try:
            for _ in range(300):
                snap = csr_snapshot(g)
                with record_lock:
                    expected = recorded.get(snap.version)
                if expected is not None and snap.num_arcs != expected:
                    failures.append(
                        f"torn snapshot: version {snap.version} has "
                        f"{snap.num_arcs} arcs, expected {expected}"
                    )
                assert snap.indptr[-1] == snap.num_arcs
                assert snap.rev_indptr[-1] == snap.num_arcs
        except Exception as error:  # noqa: BLE001 - surfaced below
            failures.append(repr(error))

    readers = [threading.Thread(target=reader) for _ in range(8)]
    mut = threading.Thread(target=mutator, daemon=True)
    mut.start()
    for thread in readers:
        thread.start()
    for thread in readers:
        thread.join()
    stop.set()
    mut.join(timeout=10)
    assert not failures, failures[:3]


def test_csr_snapshot_cache_reused_until_mutation():
    g = uncertain_gnp(25, 0.2, seed=10)
    first = csr_snapshot(g)
    assert csr_snapshot(g) is first
    g.add_arc(0, 24, 0.9)
    second = csr_snapshot(g)
    assert second is not first
    assert second.version == g.version


def test_csr_snapshot_cache_key_includes_epoch():
    # A live-update epoch publish can advance the epoch without a
    # structural mutation; the cache is keyed on the (version, epoch)
    # pair, so the snapshot must still refresh.
    g = uncertain_gnp(25, 0.2, seed=10)
    first = csr_snapshot(g)
    g.set_epoch(g.epoch + 1)
    second = csr_snapshot(g)
    assert second is not first
    assert (second.version, second.epoch) == (g.version, g.epoch)
    assert csr_snapshot(g) is second


def test_csr_snapshot_hammer_under_epoch_advancement():
    """Readers racing a mutator that also publishes epochs.

    The live update plane's apply loop is exactly this shape: arcs
    change, then ``set_epoch`` stamps the generation.  Any snapshot a
    reader obtains must be internally consistent and carry a
    ``(version, epoch)`` pair the mutator actually produced.
    """
    import threading

    g = uncertain_gnp(120, 0.05, seed=9)
    recorded = {(g.version, g.epoch): g.num_arcs}
    record_lock = threading.Lock()
    stop = threading.Event()
    failures = []

    def mutator():
        node = 0
        epoch = g.epoch
        while not stop.is_set():
            g.add_arc(node % 120, (node * 7 + 1) % 120, 0.5)
            if node % 5 == 0:
                epoch += 1
                g.set_epoch(epoch)
            with record_lock:
                recorded[(g.version, g.epoch)] = g.num_arcs
            node += 1

    def reader():
        try:
            for _ in range(300):
                snap = csr_snapshot(g)
                with record_lock:
                    expected = recorded.get((snap.version, snap.epoch))
                if expected is not None and snap.num_arcs != expected:
                    failures.append(
                        f"torn snapshot: generation "
                        f"({snap.version}, {snap.epoch}) has "
                        f"{snap.num_arcs} arcs, expected {expected}"
                    )
                assert snap.indptr[-1] == snap.num_arcs
                assert snap.rev_indptr[-1] == snap.num_arcs
        except Exception as error:  # noqa: BLE001 - surfaced below
            failures.append(repr(error))

    readers = [threading.Thread(target=reader) for _ in range(8)]
    mut = threading.Thread(target=mutator, daemon=True)
    mut.start()
    for thread in readers:
        thread.start()
    for thread in readers:
        thread.join()
    stop.set()
    mut.join(timeout=10)
    assert not failures, failures[:3]
