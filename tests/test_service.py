"""Tests for the concurrent query-serving layer (repro.service).

The load-bearing guarantee is *concurrent-vs-serial parity*: any
workload pushed through the worker pool — whatever the worker count,
batching, caching, injected faults, or expired budgets — must produce
byte-identical per-query answers to running the same queries serially
against the bare engine.  The rest covers the layer's own machinery:
admission control and load shedding, the TTL'd result cache,
single-flight deduplication, the metrics registry, and the HTTP API.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.caching import CachingRQTreeEngine
from repro.errors import EmptySourceSetError, InjectedFault
from repro.resilience import FaultPlan, QueryBudget
from repro.service import (
    MetricsRegistry,
    ReliabilityService,
    TTLResultCache,
    get_registry,
    set_registry,
)
from repro.service.batcher import BatchKey, WorldBatcher
from repro.service.metrics import Counter, Gauge, Histogram
from repro.service.pool import AdmissionPolicy, WorkerPool


@pytest.fixture()
def fresh_registry():
    """Isolate the process-global metrics registry for one test."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def fingerprint(result):
    """Everything observable about an answer, hashable for comparison."""
    return (
        tuple(sorted(result.nodes)),
        tuple(sorted(result.statuses.items())),
        tuple(sorted(result.candidate_result.candidates)),
        result.degraded,
        result.degraded_reason,
        result.worlds_used,
        result.achieved_confidence,
        result.method,
        result.eta,
        tuple(result.sources),
    )


def mixed_workload(num_queries=200, num_nodes=300):
    """A deterministic mix of lb / lb+ / mc / budgeted / numpy queries."""
    specs = []
    for i in range(num_queries):
        sources = (
            [(i * 13) % num_nodes]
            if i % 3
            else [(i * 7) % num_nodes, (i * 11 + 5) % num_nodes]
        )
        eta = (0.3, 0.5, 0.7)[i % 3]
        mode = i % 10
        if mode < 4:
            specs.append(dict(
                sources=sources, eta=eta, method="lb",
                max_hops=3 if i % 5 == 0 else None,
            ))
        elif mode < 6:
            specs.append(dict(sources=sources, eta=eta, method="lb+"))
        elif mode < 8:
            specs.append(dict(
                sources=sources, eta=eta, method="mc",
                num_samples=300, seed=100 + i % 4, backend="auto",
            ))
        elif mode == 8:
            specs.append(dict(
                sources=sources, eta=eta, method="mc",
                num_samples=512, seed=77, backend="numpy",
            ))
        else:
            # An immediately-expired budget: degrades identically
            # whether it runs serially or through the pool.
            specs.append(dict(
                sources=sources, eta=eta, method="mc",
                num_samples=300, seed=5,
                budget=QueryBudget(deadline_seconds=1e-9),
            ))
    return specs


# ----------------------------------------------------------------------
# Concurrent-vs-serial parity (the tentpole guarantee)
# ----------------------------------------------------------------------
def test_pool_parity_200_query_mixed_workload(medium_engine):
    specs = mixed_workload(200)
    serial = [fingerprint(medium_engine.query(**spec)) for spec in specs]

    wide = AdmissionPolicy(max_in_flight=1000)
    service = ReliabilityService(medium_engine, workers=8, admission=wide)
    with service:
        futures = [service.submit(**spec) for spec in specs]
        concurrent = [fingerprint(f.result(timeout=120)) for f in futures]
    assert concurrent == serial

    # And again with batching disabled: sharing must be an optimization,
    # never a semantic.
    service = ReliabilityService(
        medium_engine, workers=8, admission=wide, enable_batching=False
    )
    with service:
        futures = [service.submit(**spec) for spec in specs]
        unbatched = [fingerprint(f.result(timeout=120)) for f in futures]
    assert unbatched == serial


def test_pool_parity_under_injected_faults(medium_engine):
    specs = [
        dict(sources=[i], eta=0.5, method="mc", num_samples=256,
             seed=3, backend="numpy")
        for i in range(12)
    ]
    # Every kernel chunk faults; backend="numpy" must propagate the
    # failure — serially and through the pool alike.
    with FaultPlan({"mc.kernel.chunk": "always"}):
        for spec in specs[:3]:
            with pytest.raises(InjectedFault):
                medium_engine.query(**spec)
        service = ReliabilityService(medium_engine, workers=8)
        with service:
            futures = [service.submit(**spec) for spec in specs]
            for future in futures:
                with pytest.raises(InjectedFault):
                    future.result(timeout=60)


def test_pool_parity_fault_fallback_matches_python_backend(medium_engine):
    # backend="auto" under a kernel fault degrades to the python path;
    # the answers must match an explicit backend="python" run, and the
    # pool must not change that.
    specs = [
        dict(sources=[i * 5], eta=0.4, method="mc", num_samples=200, seed=11)
        for i in range(8)
    ]
    reference = [
        fingerprint(medium_engine.query(backend="python", **spec))
        for spec in specs
    ]
    with FaultPlan({"mc.kernel.chunk": "always"}):
        serial = [
            fingerprint(medium_engine.query(backend="auto", **spec))
            for spec in specs
        ]
        service = ReliabilityService(medium_engine, workers=4)
        with service:
            futures = [
                service.submit(backend="auto", **spec) for spec in specs
            ]
            pooled = [fingerprint(f.result(timeout=60)) for f in futures]
    assert serial == reference
    assert pooled == reference


def test_invalid_parameters_raise_synchronously(medium_engine):
    service = ReliabilityService(medium_engine, workers=1)
    with pytest.raises(EmptySourceSetError):
        service.submit([], 0.5)


# ----------------------------------------------------------------------
# Admission control and load shedding
# ----------------------------------------------------------------------
def test_shedding_beyond_max_in_flight(medium_engine, fresh_registry):
    service = ReliabilityService(
        medium_engine,
        workers=2,
        admission=AdmissionPolicy(max_in_flight=2),
    )
    # Submit before start(): the first two are admitted and queued, the
    # rest are shed deterministically.
    futures = [
        service.submit([i], 0.5, method="mc", num_samples=100, seed=i)
        for i in range(5)
    ]
    shed = [f for f in futures if f.done()]
    assert len(shed) == 3
    for future in shed:
        result = future.result()
        assert result.degraded
        assert "in-flight" in result.degraded_reason
        assert result.nodes == set()
        assert result.achieved_confidence == 0.0
    with service:
        for future in futures:
            future.result(timeout=60)
    assert fresh_registry.counter("service.shed").value == 3


def test_queue_deadline_sheds_stale_requests(medium_engine, fresh_registry):
    service = ReliabilityService(
        medium_engine,
        workers=1,
        admission=AdmissionPolicy(
            max_in_flight=64, queue_deadline_seconds=1e-9
        ),
    )
    future = service.submit([0], 0.5)
    with service:
        result = future.result(timeout=60)
    assert result.degraded
    assert "queue deadline" in result.degraded_reason
    assert fresh_registry.counter("service.shed").value == 1


def test_admission_policy_validation():
    with pytest.raises(ValueError, match="max_in_flight"):
        AdmissionPolicy(max_in_flight=0)
    with pytest.raises(ValueError, match="queue_deadline_seconds"):
        AdmissionPolicy(queue_deadline_seconds=0.0)


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
def test_ttl_cache_hit_returns_same_object(medium_engine, fresh_registry):
    service = ReliabilityService(medium_engine, workers=1)
    with service:
        first = service.query([3], 0.5, timeout=60)
        second = service.query([3], 0.5, timeout=60)
    assert second is first
    stats = service.cache.stats
    assert stats.hits == 1 and stats.misses == 1


def test_unseeded_mc_bypasses_cache(medium_engine):
    service = ReliabilityService(medium_engine, workers=1)
    with service:
        service.query([3], 0.5, method="mc", num_samples=50, timeout=60)
    assert service.cache.stats.bypasses == 1
    assert len(service.cache) == 0


def test_cache_key_includes_graph_version():
    key_v1 = TTLResultCache.make_key(
        1, [2, 1], 0.5, "lb", 1000, None, "greedy", None, "auto"
    )
    key_v2 = TTLResultCache.make_key(
        2, [2, 1], 0.5, "lb", 1000, None, "greedy", None, "auto"
    )
    assert key_v1 != key_v2
    # source order is irrelevant; an int source equals its singleton
    assert key_v1 == TTLResultCache.make_key(
        1, [1, 2], 0.5, "lb", 1000, None, "greedy", None, "auto"
    )
    assert TTLResultCache.make_key(
        1, 7, 0.5, "lb", 1000, None, "greedy", None, "auto"
    ) == TTLResultCache.make_key(
        1, [7], 0.5, "lb", 1000, None, "greedy", None, "auto"
    )


def test_graph_mutation_invalidates_service_cache(medium_graph):
    from repro.core.engine import RQTreeEngine

    graph = medium_graph.copy() if hasattr(medium_graph, "copy") else None
    if graph is None:
        pytest.skip("graph copy unsupported")
    engine = RQTreeEngine.build(graph, seed=3)
    service = ReliabilityService(engine, workers=1)
    with service:
        service.query([3], 0.5, timeout=60)
        graph.add_arc(0, graph.num_nodes - 1, 0.5)
        engine.bounds_cache.clear()
        service.query([3], 0.5, timeout=60)
    # The mutation changed graph.version, so the second query keys
    # differently and cannot replay the stale answer.
    assert service.cache.stats.hits == 0
    assert service.cache.stats.misses == 2


def test_ttl_cache_expiry_and_lru():
    clock = [0.0]
    cache = TTLResultCache(capacity=2, ttl_seconds=10.0,
                           clock=lambda: clock[0])
    cache.put("a", "ra")
    cache.put("b", "rb")
    assert cache.get("a") == "ra"
    clock[0] = 5.0
    cache.put("c", "rc")  # evicts LRU ("b": "a" was touched above)
    assert cache.stats.evictions == 1
    assert cache.get("b") is None
    clock[0] = 11.0
    assert cache.get("a") is None  # expired
    assert cache.stats.expirations == 1
    assert cache.get("c") == "rc"  # inserted at t=5, still live
    clock[0] = 20.0
    assert cache.purge_expired() == 1
    assert len(cache) == 0


def test_ttl_cache_validation():
    with pytest.raises(ValueError, match="capacity"):
        TTLResultCache(capacity=0)
    with pytest.raises(ValueError, match="ttl_seconds"):
        TTLResultCache(ttl_seconds=0.0)


# ----------------------------------------------------------------------
# Single-flight deduplication
# ----------------------------------------------------------------------
def test_identical_inflight_queries_are_deduplicated(
    medium_engine, fresh_registry
):
    service = ReliabilityService(medium_engine, workers=1)
    # Both submitted before start(): the second must piggyback on the
    # first instead of re-running the query.
    leader = service.submit([4], 0.5, method="mc", num_samples=100, seed=9)
    follower = service.submit([4], 0.5, method="mc", num_samples=100, seed=9)
    with service:
        a = leader.result(timeout=60)
        b = follower.result(timeout=60)
    assert b is a
    assert fresh_registry.counter("service.deduped").value == 1
    assert fresh_registry.counter("engine.queries").value == 1


# ----------------------------------------------------------------------
# World batching
# ----------------------------------------------------------------------
def test_batcher_refcounts_blocks(fresh_registry):
    batcher = WorldBatcher()
    key = BatchKey(graph_version=1, seed=5, num_worlds=100)
    block_a = batcher.lease(key)
    block_b = batcher.lease(key)
    assert block_b is block_a
    assert batcher.active_blocks == 1
    batcher.release(key)
    assert batcher.active_blocks == 1  # one holder left
    batcher.release(key)
    assert batcher.active_blocks == 0  # dropped with the last holder
    assert batcher.lease(key) is not block_a  # a fresh block now
    batcher.release(key)
    batcher.release(key)  # over-release is a no-op


def test_batching_eligibility_rules():
    eligible = WorldBatcher.eligible
    assert eligible("mc", 7, None, "auto")
    assert eligible("mc", 7, None, "numpy")
    assert not eligible("lb", 7, None, "auto")       # no sampling
    assert not eligible("mc", None, None, "auto")    # unseeded: fresh draws
    assert not eligible("mc", 7, QueryBudget(max_worlds=10), "auto")
    assert not eligible("mc", 7, None, "python")     # never hits the kernel


def test_concurrent_same_key_queries_share_coins(
    medium_engine, fresh_registry
):
    # Run many identical-signature, different-source queries through a
    # wide pool; with batching on, coin chunks are drawn far fewer
    # times than there are kernel calls.
    specs = [
        dict(sources=[i * 3], eta=0.4, method="mc", num_samples=2000,
             seed=123, backend="numpy")
        for i in range(10)
    ]
    serial = [fingerprint(medium_engine.query(**spec)) for spec in specs]
    service = ReliabilityService(medium_engine, workers=8)
    with service:
        futures = [service.submit(**spec) for spec in specs]
        pooled = [fingerprint(f.result(timeout=120)) for f in futures]
    assert pooled == serial
    reused = fresh_registry.counter("service.batcher.chunks_reused").value
    assert reused > 0  # at least one query reused another's draw


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
def test_pool_drains_submissions_made_before_start():
    seen = []
    pool = WorkerPool(seen.append, workers=2)
    for i in range(10):
        pool.submit(i)
    pool.start()
    pool.stop(drain=True)
    assert sorted(seen) == list(range(10))
    with pytest.raises(RuntimeError, match="stopped"):
        pool.submit(11)


def test_pool_survives_handler_exceptions():
    processed = []

    def handler(item):
        if item % 2:
            raise RuntimeError("boom")
        processed.append(item)

    pool = WorkerPool(handler, workers=1)
    pool.start()
    for i in range(6):
        pool.submit(i)
    pool.stop(drain=True)
    assert processed == [0, 2, 4]


def test_pool_validation():
    with pytest.raises(ValueError, match="workers"):
        WorkerPool(lambda item: None, workers=0)


def test_pool_restart_raises_typed_error():
    # Regression: restarting a stopped pool used to raise a bare
    # RuntimeError; supervised-restart callers need a typed surface
    # that spells out the replace-don't-revive contract.
    from repro.errors import ReproError, WorkerPoolRestartError

    pool = WorkerPool(lambda item: None, workers=1)
    pool.start()
    pool.start()  # idempotent while running
    pool.stop()
    with pytest.raises(WorkerPoolRestartError, match="new WorkerPool"):
        pool.start()
    # The typed error stays catchable by both legacy and library-wide
    # handlers.
    assert issubclass(WorkerPoolRestartError, RuntimeError)
    assert issubclass(WorkerPoolRestartError, ReproError)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_counter_and_gauge_semantics():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError, match="negative"):
        counter.inc(-1)
    gauge = Gauge("g")
    gauge.set(10)
    gauge.dec(3)
    gauge.inc()
    assert gauge.value == 8


def test_histogram_quantiles_and_snapshot():
    histogram = Histogram("h", buckets=[1.0, 2.0, 4.0, 8.0])
    for value in [0.5, 1.5, 1.5, 3.0, 10.0]:
        histogram.observe(value)
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 5
    assert snapshot["sum"] == pytest.approx(16.5)
    assert snapshot["min"] == 0.5 and snapshot["max"] == 10.0
    assert snapshot["overflow"] == 1
    assert snapshot["p50"] <= snapshot["p90"] <= snapshot["p99"]
    # quantiles stay inside the observed range even with overflow
    assert 0.5 <= histogram.quantile(0.01) <= 10.0
    assert histogram.quantile(1.0) == 10.0
    json.dumps(snapshot)


def test_histogram_validation():
    with pytest.raises(ValueError, match="sorted"):
        Histogram("h", buckets=[2.0, 1.0])
    histogram = Histogram("h")
    with pytest.raises(ValueError, match="q must be"):
        histogram.quantile(-0.1)
    with pytest.raises(ValueError, match="q must be"):
        histogram.quantile(1.1)
    # the closed endpoints are valid: q=0 -> observed min, q=1 -> max
    assert histogram.quantile(0.0) == 0.0  # empty histogram
    assert histogram.quantile(0.5) == 0.0


def test_registry_snapshot_and_name_collisions(fresh_registry):
    fresh_registry.counter("events").inc(3)
    fresh_registry.gauge("depth").set(2)
    with fresh_registry.timer("latency"):
        pass
    with pytest.raises(ValueError, match="different instrument type"):
        fresh_registry.gauge("events")
    snapshot = fresh_registry.snapshot()
    assert snapshot["counters"]["events"] == 3
    assert snapshot["gauges"]["depth"] == 2
    assert snapshot["histograms"]["latency"]["count"] == 1
    json.dumps(snapshot)
    assert fresh_registry.names() == ["depth", "events", "latency"]
    assert get_registry() is fresh_registry


def test_service_snapshot_merges_cache_stats(medium_engine, fresh_registry):
    caching = CachingRQTreeEngine(medium_engine)
    caching.query([2], 0.5)
    caching.query([2], 0.5)
    service = ReliabilityService(caching, workers=1)
    with service:
        service.query([2], 0.5, timeout=60)
    snapshot = service.metrics_snapshot()
    json.dumps(snapshot)
    assert snapshot["service"]["engine_cache"]["hits"] == 1
    assert snapshot["service"]["result_cache"]["misses"] == 1
    assert snapshot["service"]["workers"] == 1
    assert snapshot["counters"]["engine.queries"] >= 2
    assert "engine.filter_seconds" in snapshot["histograms"]


# ----------------------------------------------------------------------
# HTTP API
# ----------------------------------------------------------------------
def test_http_api_end_to_end(medium_engine):
    from urllib.error import HTTPError
    from urllib.request import Request, urlopen

    from repro.service.http_api import ServiceHTTPServer

    service = ReliabilityService(medium_engine, workers=2)
    server = ServiceHTTPServer(service, host="127.0.0.1", port=0)
    with server:
        base = server.url

        with urlopen(f"{base}/healthz", timeout=30) as response:
            health = json.load(response)
        assert health["status"] == "ok"
        assert health["nodes"] == medium_engine.graph.num_nodes

        body = json.dumps({
            "sources": [3], "eta": 0.5, "method": "mc",
            "num_samples": 200, "seed": 4,
        }).encode()
        request = Request(
            f"{base}/query", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urlopen(request, timeout=60) as response:
            reply = json.load(response)
        expected = medium_engine.query(
            [3], 0.5, method="mc", num_samples=200, seed=4
        )
        assert reply["nodes"] == sorted(expected.nodes)
        assert reply["degraded"] is False
        assert set(reply["statuses"]) == {
            str(n) for n in expected.statuses
        }

        # budgeted query over the wire
        body = json.dumps({
            "sources": [3], "eta": 0.5, "method": "mc",
            "num_samples": 200, "seed": 4, "deadline_ms": 1e-6,
        }).encode()
        request = Request(
            f"{base}/query", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urlopen(request, timeout=60) as response:
            degraded = json.load(response)
        assert degraded["degraded"] is True

        with urlopen(f"{base}/metrics", timeout=30) as response:
            snapshot = json.load(response)
        assert snapshot["counters"]["service.completed"] >= 2
        assert "result_cache" in snapshot["service"]

        # malformed bodies are 400, unknown paths 404
        for bad in (b"not json", b'{"eta": 0.5}',
                    b'{"sources": [3], "eta": "high"}'):
            request = Request(
                f"{base}/query", data=bad,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(HTTPError) as excinfo:
                urlopen(request, timeout=30)
            assert excinfo.value.code == 400
        with pytest.raises(HTTPError) as excinfo:
            urlopen(f"{base}/nope", timeout=30)
        assert excinfo.value.code == 404


def test_bench_serve_in_process(tmp_path, capsys, fresh_registry):
    from repro.cli import main
    from repro.graph.generators import nethept_like
    from repro.graph.io import write_edge_list

    graph_path = tmp_path / "g.txt"
    write_edge_list(nethept_like(n=120, seed=3), str(graph_path))
    metrics_path = tmp_path / "metrics.json"
    code = main([
        "bench-serve", "--graph", str(graph_path),
        "--queries", "12", "--concurrency", "4", "--workers", "2",
        "--method", "mc", "--samples", "100", "--seed", "2",
        "--check", "--metrics-out", str(metrics_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["counters"]["service.completed"] == 12

    # repro stats renders the snapshot
    code = main(["stats", "--metrics", str(metrics_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "service counters" in out
    assert "result cache statistics" in out
