"""Tests for incremental index maintenance (DynamicRQTreeEngine)."""

from __future__ import annotations

import pytest

from repro import DynamicRQTreeEngine, RQTreeEngine, UncertainGraph
from repro.core.builder import build_rqtree, rebuild_subtree, split_cluster
from repro.graph.exact import exact_reliability_search
from repro.graph.generators import nethept_like, uncertain_gnp, uncertain_path


class TestSplitCluster:
    def test_binary_split(self, grid_graph):
        parts = split_cluster(
            grid_graph, set(range(grid_graph.num_nodes)),
            branching=2, max_imbalance=0.1, seed=0, strategy="multilevel",
        )
        assert len(parts) == 2
        assert set().union(*parts) == set(range(grid_graph.num_nodes))

    def test_four_way_split(self, grid_graph):
        parts = split_cluster(
            grid_graph, set(range(grid_graph.num_nodes)),
            branching=4, max_imbalance=0.1, seed=0, strategy="multilevel",
        )
        assert len(parts) == 4
        sizes = sorted(len(p) for p in parts)
        assert sizes[0] >= 1
        union = set().union(*parts)
        assert union == set(range(grid_graph.num_nodes))
        total = sum(len(p) for p in parts)
        assert total == grid_graph.num_nodes  # disjoint

    def test_branching_larger_than_cluster(self, grid_graph):
        parts = split_cluster(
            grid_graph, {0, 1, 2},
            branching=8, max_imbalance=0.1, seed=0, strategy="multilevel",
        )
        assert sorted(len(p) for p in parts) == [1, 1, 1]


class TestBranchingFactor:
    @pytest.mark.parametrize("branching", [2, 3, 4])
    def test_valid_trees(self, branching):
        g = uncertain_gnp(40, 0.15, seed=3)
        tree, _ = build_rqtree(g, seed=0, branching=branching)
        tree.validate()

    def test_higher_branching_gives_shorter_tree(self):
        g = nethept_like(n=200, seed=1)
        tree2, _ = build_rqtree(g, seed=0, branching=2)
        tree4, _ = build_rqtree(g, seed=0, branching=4)
        assert tree4.height <= tree2.height

    def test_branching_below_two_rejected(self):
        g = uncertain_path([0.5])
        with pytest.raises(ValueError):
            build_rqtree(g, branching=1)

    def test_queries_correct_with_branching_four(self):
        for seed in range(3):
            g = uncertain_gnp(7, 0.25, seed=seed)
            if g.num_arcs > 16 or g.num_arcs == 0:
                continue
            tree, _ = build_rqtree(g, seed=seed, branching=4)
            engine = RQTreeEngine(g, tree)
            truth = exact_reliability_search(g, [0], 0.4)
            answer = engine.query(0, 0.4, method="lb").nodes
            assert answer <= truth  # LB: no false positives


class TestRebuildSubtree:
    def test_rebuild_root_equivalent_to_full_build(self, grid_graph):
        tree, _ = build_rqtree(grid_graph, seed=0)
        rebuilt = rebuild_subtree(grid_graph, tree, tree.root, seed=1)
        rebuilt.validate()
        assert rebuilt.num_clusters == tree.num_clusters

    def test_rebuild_preserves_other_branches(self, grid_graph):
        tree, _ = build_rqtree(grid_graph, seed=0)
        target = tree.clusters[tree.root].children[0]
        sibling = tree.clusters[tree.root].children[1]
        sibling_members = tree.clusters[sibling].members
        rebuilt = rebuild_subtree(grid_graph, tree, target, seed=5)
        rebuilt.validate()
        # The sibling cluster still exists with identical membership.
        found = any(
            c.members == sibling_members for c in rebuilt.clusters
        )
        assert found

    def test_rebuild_bad_index_rejected(self, grid_graph):
        tree, _ = build_rqtree(grid_graph, seed=0)
        with pytest.raises(ValueError):
            rebuild_subtree(grid_graph, tree, 10**6)

    def test_rebuilt_tree_answers_queries(self, grid_graph):
        tree, _ = build_rqtree(grid_graph, seed=0)
        target = tree.clusters[tree.root].children[0]
        rebuilt = rebuild_subtree(grid_graph, tree, target, seed=2)
        engine_a = RQTreeEngine(grid_graph, tree)
        engine_b = RQTreeEngine(grid_graph, rebuilt)
        # LB answers are clustering-independent (exactness guarantee).
        assert engine_a.query(0, 0.4).nodes == engine_b.query(0, 0.4).nodes


class TestDynamicEngine:
    def _fresh(self, n=60, seed=2, threshold=0.25):
        graph = nethept_like(n=n, seed=seed)
        return DynamicRQTreeEngine(
            graph, damage_threshold=threshold, seed=seed
        )

    def test_queries_work_out_of_the_box(self):
        dyn = self._fresh()
        result = dyn.query(0, 0.5)
        assert 0 in result.nodes

    def test_add_arc_visible_to_queries(self):
        g = UncertainGraph(4)
        g.add_arc(0, 1, 0.9)
        dyn = DynamicRQTreeEngine(g, seed=0)
        assert 3 not in dyn.query(0, 0.5).nodes
        dyn.add_arc(1, 3, 0.95)
        assert 3 in dyn.query(0, 0.5).nodes
        assert dyn.stats.arcs_added == 1

    def test_remove_arc_visible_to_queries(self):
        g = UncertainGraph(3)
        g.add_arc(0, 1, 0.9)
        g.add_arc(1, 2, 0.9)
        dyn = DynamicRQTreeEngine(g, seed=0)
        assert 2 in dyn.query(0, 0.5).nodes
        dyn.remove_arc(1, 2)
        assert 2 not in dyn.query(0, 0.5).nodes
        assert dyn.stats.arcs_removed == 1

    def test_update_probability(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 0.9)
        dyn = DynamicRQTreeEngine(g, seed=0)
        dyn.update_probability(0, 1, 0.2)
        assert dyn.graph.probability(0, 1) == pytest.approx(0.2)
        assert 1 not in dyn.query(0, 0.5).nodes

    def test_heavy_updates_trigger_rebuild(self):
        dyn = self._fresh(n=40, threshold=0.05)
        # Hammer arcs across the top split until a rebuild fires.
        tree = dyn.tree
        left = sorted(tree.clusters[tree.clusters[tree.root].children[0]].members)
        right = sorted(tree.clusters[tree.clusters[tree.root].children[1]].members)
        for i in range(12):
            dyn.add_arc(left[i % len(left)], right[i % len(right)], 0.8)
        assert dyn.stats.subtree_rebuilds >= 1

    def test_rebuilt_index_is_valid_and_correct(self):
        dyn = self._fresh(n=40, threshold=0.05)
        tree = dyn.tree
        left = sorted(tree.clusters[tree.clusters[tree.root].children[0]].members)
        right = sorted(tree.clusters[tree.clusters[tree.root].children[1]].members)
        for i in range(12):
            dyn.add_arc(left[i % len(left)], right[i % len(right)], 0.8)
        dyn.tree.validate()
        # LB query still never returns false positives (spot-check with
        # MC at high sample count on a few nodes).
        result = dyn.query(left[0], 0.6)
        assert left[0] in result.nodes

    def test_force_rebuild(self):
        dyn = self._fresh()
        before = dyn.stats.subtree_rebuilds
        dyn.force_rebuild()
        assert dyn.stats.subtree_rebuilds == before + 1
        dyn.tree.validate()

    def test_lb_answers_match_static_rebuild(self):
        # After a batch of updates, the dynamic engine's LB answers must
        # equal a from-scratch engine's on the same mutated graph
        # (LB answers are clustering-independent).
        dyn = self._fresh(n=50, threshold=0.3)
        updates = [(1, 40, 0.9), (2, 30, 0.7), (5, 45, 0.6)]
        for u, v, p in updates:
            dyn.add_arc(u, v, p)
        static = RQTreeEngine.build(dyn.graph, seed=11)
        for s in (1, 2, 5):
            assert dyn.query(s, 0.5).nodes == static.query(s, 0.5).nodes

    def test_invalid_threshold(self):
        g = UncertainGraph(2)
        with pytest.raises(ValueError):
            DynamicRQTreeEngine(g, damage_threshold=0.0)
