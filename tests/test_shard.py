"""Tests for the sharded serving tier (repro.shard).

The load-bearing guarantee is *shard-count invariance*: on a seeded
workload, a sharded engine — whatever ``K``, execution mode, injected
faults, or expired budgets — must answer exactly like the plain
single-process engine for ``method="lb"``, bit-identically across shard
counts for ``method="mc"`` at ``mc_refine_floor=0``, and *soundly*
(never-wrong subsets) whenever it reports a degraded answer.  The rest
covers the tier's own machinery: the partition plan, the picklable
worker payloads, the process transport, and the service integration.
"""

from __future__ import annotations

import pickle

import pytest

from repro import RQTreeEngine
from repro.errors import PartitionError, ShardUnavailableError
from repro.graph.exact import exact_reliability_search
from repro.graph.generators import uncertain_gnp, uncertain_path
from repro.graph.uncertain import UncertainGraph
from repro.resilience import CONFIRMED, UNVERIFIED, FaultPlan, QueryBudget
from repro.service.metrics import MetricsRegistry, set_registry
from repro.shard import (
    InlineShardClient,
    ShardedRQTreeEngine,
    ShardRuntime,
    build_shard_payload,
    build_shard_plan,
)

ETAS = (0.15, 0.35, 0.6)
SOURCES = (0, 57, 123, 222, 299)


@pytest.fixture()
def fresh_registry():
    """Isolate the process-global metrics registry for one test."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


@pytest.fixture(scope="module")
def sharded1(medium_graph):
    with ShardedRQTreeEngine.build(
        medium_graph, shards=1, seed=7, mode="inline"
    ) as engine:
        yield engine


@pytest.fixture(scope="module")
def sharded4(medium_graph):
    with ShardedRQTreeEngine.build(
        medium_graph, shards=4, seed=7, mode="inline"
    ) as engine:
        yield engine


def fingerprint(result):
    """Everything observable about an answer, hashable for comparison."""
    return (
        tuple(sorted(result.nodes)),
        tuple(sorted(result.statuses.items())),
        result.degraded,
        result.worlds_used,
        result.method,
        result.eta,
        tuple(result.sources),
    )


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_partitions_the_node_set(self, medium_graph):
        plan = build_shard_plan(medium_graph, 4, seed=7)
        assert plan.num_shards == 4
        seen = set()
        for shard_id, members in enumerate(plan.shard_nodes):
            assert list(members) == sorted(members)
            assert not seen.intersection(members)
            seen.update(members)
            for node in members:
                assert plan.owner(node) == shard_id
        assert seen == set(range(medium_graph.num_nodes))

    def test_frontier_is_exactly_the_crossing_arcs(self, medium_graph):
        plan = build_shard_plan(medium_graph, 4, seed=7)
        crossing = {
            (u, v, p)
            for u, v, p in medium_graph.arcs()
            if plan.shard_of[u] != plan.shard_of[v]
        }
        assert set(plan.frontier_arcs) == crossing
        # (a disconnected graph can legitimately split with an empty
        # frontier, as nethept_like does here)
        assert 0.0 <= plan.frontier_fraction < 1.0
        assert plan.num_arcs == medium_graph.num_arcs
        dense = uncertain_gnp(60, 0.1, seed=4)
        dense_plan = build_shard_plan(dense, 4, seed=7)
        assert dense_plan.frontier_arcs
        assert 0.0 < dense_plan.frontier_fraction < 1.0

    def test_single_shard_has_no_frontier(self, medium_graph):
        plan = build_shard_plan(medium_graph, 1, seed=7)
        assert plan.shard_nodes == (
            tuple(range(medium_graph.num_nodes)),
        )
        assert plan.frontier_arcs == ()
        assert plan.frontier_fraction == 0.0

    def test_deterministic_for_a_seed(self, medium_graph):
        assert build_shard_plan(medium_graph, 4, seed=7) == build_shard_plan(
            medium_graph, 4, seed=7
        )

    def test_odd_shard_counts(self, medium_graph):
        for k in (3, 5):
            plan = build_shard_plan(medium_graph, k, seed=7)
            assert plan.num_shards == k
            assert sum(len(p) for p in plan.shard_nodes) == (
                medium_graph.num_nodes
            )

    def test_rejects_bad_shard_counts(self, medium_graph):
        with pytest.raises(PartitionError):
            build_shard_plan(medium_graph, 0)
        with pytest.raises(PartitionError):
            build_shard_plan(medium_graph, medium_graph.num_nodes + 1)
        with pytest.raises(PartitionError):
            build_shard_plan(UncertainGraph(0), 1)

    def test_describe_mentions_sizes_and_frontier(self, medium_graph):
        text = build_shard_plan(medium_graph, 2, seed=7).describe()
        assert "2 shard(s)" in text
        assert "frontier" in text


# ----------------------------------------------------------------------
# Worker payloads and the shard runtime
# ----------------------------------------------------------------------
class TestShardRuntime:
    def test_payload_is_picklable(self, medium_graph):
        plan = build_shard_plan(medium_graph, 2, seed=7)
        payload = build_shard_payload(medium_graph, plan, 0, seed=7)
        clone = pickle.loads(pickle.dumps(payload))
        assert clone["shard_id"] == 0
        assert clone["num_nodes"] == len(plan.shard_nodes[0])
        assert clone["global_ids"] == list(plan.shard_nodes[0])

    def test_runtime_answers_in_global_ids(self, medium_graph):
        plan = build_shard_plan(medium_graph, 2, seed=7)
        shard_id = plan.owner(0)
        runtime = ShardRuntime(
            build_shard_payload(medium_graph, plan, shard_id, seed=7)
        )
        response = runtime.handle({"sources": [0], "eta": 0.3})
        members = set(plan.shard_nodes[shard_id])
        assert set(response["kept"]) <= members
        assert set(response["candidates"]) <= members
        # A shard-local certificate is globally sound: every kept node
        # must also be in the whole-graph answer.
        whole = RQTreeEngine.build(medium_graph, seed=7)
        assert set(response["kept"]) <= set(
            whole.query(0, eta=0.3, method="lb").nodes
        )


# ----------------------------------------------------------------------
# Parity: sharded vs single-engine, across shard counts
# ----------------------------------------------------------------------
class TestInlineParity:
    def test_lb_matches_plain_engine_for_any_shard_count(
        self, medium_engine, sharded1, sharded4
    ):
        for source in SOURCES:
            for eta in ETAS:
                expect = set(
                    medium_engine.query(source, eta=eta, method="lb").nodes
                )
                for sharded in (sharded1, sharded4):
                    result = sharded.query(source, eta=eta, method="lb")
                    assert set(result.nodes) == expect, (source, eta)
                    assert not result.degraded
                    assert all(
                        result.statuses[n] == CONFIRMED
                        for n in result.nodes
                    )

    def test_lb_multi_source_parity(self, medium_engine, sharded4):
        sources = [3, 200, 77]  # spans several shards
        for eta in ETAS:
            expect = set(
                medium_engine.query(sources, eta=eta, method="lb").nodes
            )
            got = sharded4.query(sources, eta=eta, method="lb")
            assert set(got.nodes) == expect
            assert list(got.sources) == sources

    def test_lb_hop_bounded_parity(self, medium_engine, sharded4):
        expect = set(
            medium_engine.query(9, eta=0.3, method="lb", max_hops=3).nodes
        )
        got = sharded4.query(9, eta=0.3, method="lb", max_hops=3)
        assert set(got.nodes) == expect

    def test_lbplus_extends_lb_and_is_sound(self, sharded4):
        small = uncertain_gnp(40, 0.12, seed=9)
        exact = exact_reliability_search  # brute oracle on tiny graphs
        with ShardedRQTreeEngine.build(
            small, shards=2, seed=1, mode="inline"
        ) as sharded:
            for eta in (0.25, 0.5):
                lb = set(sharded.query(0, eta=eta, method="lb").nodes)
                lbp = sharded.query(0, eta=eta, method="lb+")
                assert lb <= set(lbp.nodes)
        # and on the medium graph, lb+ never loses lb's certificates
        lb = set(sharded4.query(0, eta=0.3, method="lb").nodes)
        lbp = sharded4.query(0, eta=0.3, method="lb+")
        assert lb <= set(lbp.nodes)
        assert all(lbp.statuses[n] == CONFIRMED for n in lbp.nodes)

    def test_mc_identical_across_shard_counts_at_floor_zero(
        self, medium_graph
    ):
        # With the refinement floor disabled the pool is the whole node
        # set regardless of the partition, so the sampling pass sees the
        # same inputs and the answers are bit-identical.
        results = []
        for shards in (1, 4):
            with ShardedRQTreeEngine.build(
                medium_graph, shards=shards, seed=7, mode="inline",
                mc_refine_floor=0.0,
            ) as sharded:
                results.append(
                    fingerprint(
                        sharded.query(
                            [0, 150], eta=0.4, method="mc",
                            num_samples=400, seed=11,
                        )
                    )
                )
        assert results[0] == results[1]

    def test_mc_agrees_with_exact_on_clear_margins(self):
        # Path reliabilities 0.9, 0.54, 0.108 — far from eta = 0.3, so
        # 1000 worlds decide every node with overwhelming probability.
        graph = uncertain_path([0.9, 0.6, 0.2])
        with ShardedRQTreeEngine.build(
            graph, shards=2, seed=0, mode="inline"
        ) as sharded:
            result = sharded.query(0, eta=0.3, method="mc",
                                   num_samples=1000, seed=5)
        assert set(result.nodes) == exact_reliability_search(graph, [0], 0.3)

    def test_validation_matches_single_engine(self, sharded4):
        from repro.errors import InvalidThresholdError, NodeNotFoundError

        with pytest.raises(NodeNotFoundError):
            sharded4.query(10_000, eta=0.5)
        with pytest.raises(InvalidThresholdError):
            sharded4.query(0, eta=1.5)
        with pytest.raises(ValueError):
            sharded4.query(0, eta=0.5, method="bogus")
        with pytest.raises(ValueError):
            sharded4.query(0, eta=0.5, method="lb+", max_hops=2)

    def test_shard_metrics_are_namespaced(self, medium_graph,
                                          fresh_registry):
        with ShardedRQTreeEngine.build(
            medium_graph, shards=2, seed=7, mode="inline"
        ) as sharded:
            sharded.query(0, eta=0.3)
        snapshot = fresh_registry.snapshot()
        assert snapshot["counters"]["shard.queries"] == 1
        owner = build_shard_plan(medium_graph, 2, seed=7).owner(0)
        assert snapshot["counters"][f"shard.{owner}.queries"] == 1
        assert "shard.scatter_seconds" in snapshot["histograms"]
        assert "shard.refine_seconds" in snapshot["histograms"]


# ----------------------------------------------------------------------
# Degradation: budgets, faults, lifecycle
# ----------------------------------------------------------------------
class TestDegradation:
    def test_expired_budget_answers_are_sound(self, medium_engine,
                                              sharded4):
        budget = QueryBudget(deadline_seconds=1e-9)
        result = sharded4.query(0, eta=0.3, method="lb", budget=budget)
        assert result.degraded
        assert result.degraded_reason
        truth = set(medium_engine.query(0, eta=0.3, method="lb").nodes)
        assert set(result.nodes) <= truth          # never wrong
        assert 0 in result.nodes                   # sources stay in
        assert all(
            result.statuses[n] in (CONFIRMED, UNVERIFIED)
            for n in result.statuses
        )

    def test_faulted_shards_degrade_but_lb_stays_exact(
        self, medium_engine, sharded4
    ):
        # Fault plans are process-global, so they reach inline shards.
        expect = set(medium_engine.query(0, eta=0.3, method="lb").nodes)
        plan = FaultPlan({"shard.handle": "always"})
        with plan:
            result = sharded4.query(0, eta=0.3, method="lb")
        assert plan.hits("shard.handle") >= 1
        assert result.degraded
        assert "shard" in result.degraded_reason
        # The gateway's refinement recomputes lb from the whole graph,
        # so even a query that lost every shard answers exactly.
        assert set(result.nodes) == expect

    def test_seeded_fault_storm_never_changes_lb_answers(
        self, medium_engine, sharded4
    ):
        expects = {
            (s, eta): set(
                medium_engine.query(s, eta=eta, method="lb").nodes
            )
            for s in (0, 123) for eta in (0.2, 0.5)
        }
        with FaultPlan.seeded(3, ["shard.handle"], probability=0.5):
            for (s, eta), expect in expects.items():
                got = sharded4.query(s, eta=eta, method="lb")
                assert set(got.nodes) == expect

    def test_closed_engine_refuses_queries(self, medium_graph):
        sharded = ShardedRQTreeEngine.build(
            medium_graph, shards=2, seed=7, mode="inline"
        )
        sharded.close()
        sharded.close()  # idempotent
        with pytest.raises(ShardUnavailableError):
            sharded.query(0, eta=0.5)


# ----------------------------------------------------------------------
# Process mode (spawned workers)
# ----------------------------------------------------------------------
class TestProcessMode:
    def test_process_shards_match_plain_engine(self):
        graph = uncertain_gnp(120, 0.04, seed=5)
        plain = RQTreeEngine.build(graph, seed=3)
        with ShardedRQTreeEngine.build(
            graph, shards=2, seed=3, mode="process"
        ) as sharded:
            assert sharded.num_shards == 2
            assert sharded.tree_height >= 1
            for sources, eta in (([0], 0.3), ([5, 60], 0.5), ([17], 0.7)):
                expect = set(
                    plain.query(sources, eta=eta, method="lb").nodes
                )
                got = sharded.query(sources, eta=eta, method="lb")
                assert set(got.nodes) == expect
                assert not got.degraded

    def test_cross_shard_scatter_is_not_degraded(self):
        # Regression: the gateway submits to every owning shard before
        # waiting, so shard B's response can land while the gateway is
        # still blocked on shard A.  The receiver thread used to pop the
        # pending entry on arrival, making the later wait() report
        # "unknown request handle" and needlessly degrade the query.
        graph = uncertain_gnp(120, 0.04, seed=5)
        plain = RQTreeEngine.build(graph, seed=3)
        with ShardedRQTreeEngine.build(
            graph, shards=3, seed=3, mode="process"
        ) as sharded:
            owners = {node: sharded.plan.owner(node) for node in range(120)}
            by_owner = {}
            for node, owner in owners.items():
                by_owner.setdefault(owner, node)
            sources = sorted(by_owner.values())  # one source per shard
            assert len({owners[s] for s in sources}) == sharded.num_shards
            for _ in range(3):  # repeat: the race was timing-dependent
                got = sharded.query(sources, eta=0.4, method="lb")
                assert not got.degraded, got.degraded_reason
                assert set(got.nodes) == set(
                    plain.query(sources, eta=0.4, method="lb").nodes
                )

    def test_dead_worker_degrades_but_lb_stays_exact(self):
        graph = uncertain_gnp(80, 0.05, seed=6)
        plain = RQTreeEngine.build(graph, seed=2)
        with ShardedRQTreeEngine.build(
            graph, shards=2, seed=2, mode="process"
        ) as sharded:
            victim = sharded.plan.owner(0)
            sharded._clients[victim]._process.terminate()
            sharded._clients[victim]._process.join(timeout=10)
            result = sharded.query(0, eta=0.4, method="lb")
            assert result.degraded
            assert set(result.nodes) == set(
                plain.query(0, eta=0.4, method="lb").nodes
            )


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------
class TestServiceIntegration:
    def test_service_with_shards_matches_plain(self, medium_graph,
                                               fresh_registry):
        from repro.service import ReliabilityService

        plain = RQTreeEngine.build(medium_graph, seed=7)
        service = ReliabilityService(
            plain, workers=2, shards=2, shard_mode="inline", shard_seed=7
        )
        service.start()
        try:
            expect = set(plain.query(0, eta=0.3, method="lb").nodes)
            result = service.query(0, 0.3, method="lb")
            assert set(result.nodes) == expect
            snapshot = service.metrics_snapshot()
            assert snapshot["service"]["shards"] == 2
            assert snapshot["service"]["shard_mode"] == "inline"
        finally:
            service.stop()

    def test_service_rejects_double_sharding(self, medium_graph):
        from repro.service import ReliabilityService

        with ShardedRQTreeEngine.build(
            medium_graph, shards=2, seed=7, mode="inline"
        ) as sharded:
            with pytest.raises(ValueError):
                ReliabilityService(sharded, shards=2)

    def test_inline_client_reports_runtime_errors(self, medium_graph):
        plan = build_shard_plan(medium_graph, 2, seed=7)
        client = InlineShardClient(
            build_shard_payload(medium_graph, plan, 0, seed=7)
        )
        handle = client.submit({"sources": [0]})  # missing eta
        with pytest.raises(ShardUnavailableError):
            client.wait(handle)
