"""Tests for the seed-derivation scheme (repro.seeding).

The scheme is a library-wide contract — every place one seed fans out
into many streams derives children through it — so these tests pin
determinism, independence (no collisions across large fan-outs, no
overlap between nearby roots), and the spawn/derive equivalence.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.seeding import derive_seed, spawn_seeds


def test_derive_is_deterministic():
    assert derive_seed(42, "tag", 0) == derive_seed(42, "tag", 0)
    assert derive_seed(0) == derive_seed(0)


def test_derive_distinguishes_every_key_component():
    base = derive_seed(42, "tag", 0)
    assert derive_seed(43, "tag", 0) != base       # root
    assert derive_seed(42, "other", 0) != base     # namespace
    assert derive_seed(42, "tag", 1) != base       # index


def test_derived_seeds_are_valid_for_both_rngs():
    seed = derive_seed(7, "both-rngs", 3)
    assert 0 <= seed < 2 ** 63
    random.Random(seed).random()
    np.random.default_rng(seed).random()


def test_no_collisions_across_large_fanout():
    seeds = set()
    for root in range(5):
        seeds.update(spawn_seeds(root, 2000, "fanout"))
    # 5 roots x 2000 children: all distinct (the seed+i scheme this
    # replaces would give ~8000 collisions here).
    assert len(seeds) == 5 * 2000


def test_nearby_roots_share_no_children():
    a = set(spawn_seeds(0, 500, "workload"))
    b = set(spawn_seeds(1, 500, "workload"))
    assert not a & b


def test_spawn_matches_derive():
    assert spawn_seeds(9, 10, "tag") == [
        derive_seed(9, "tag", index) for index in range(10)
    ]
    assert spawn_seeds(9, 10, "tag", 4)[3] == derive_seed(9, "tag", 4, 3)


def test_spawn_rejects_negative_count():
    with pytest.raises(ValueError, match="non-negative"):
        spawn_seeds(0, -1, "tag")
    assert spawn_seeds(0, 0, "tag") == []


def test_negative_roots_are_distinct_streams():
    assert derive_seed(-1, "tag") != derive_seed(1, "tag")
    assert derive_seed(-1, "tag") != derive_seed(-2, "tag")
    assert derive_seed(-5, "tag", 0) == derive_seed(-5, "tag", 0)


def test_scheme_is_pinned():
    # Frozen expected values: a change here silently reshuffles every
    # derived stream in the library (harness workloads, maintenance
    # rebuilds, service seeds), so it must be a deliberate decision.
    assert derive_seed(0, "pin") == derive_seed(0, "pin")
    pinned = np.random.SeedSequence(
        [0, int.from_bytes(__import__("hashlib").sha256(b"pin").digest()[:8],
                           "big")]
    ).generate_state(1, np.uint64)[0]
    assert derive_seed(0, "pin") == int(pinned) & ((1 << 63) - 1)
