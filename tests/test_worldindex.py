"""Tests for the sampled-worlds index."""

from __future__ import annotations

import pytest

from repro import UncertainGraph
from repro.core.worldindex import WorldIndex
from repro.errors import (
    EmptySourceSetError,
    GraphError,
    InvalidThresholdError,
    NodeNotFoundError,
)
from repro.graph.exact import exact_reliability, exact_reliability_search
from repro.graph.generators import figure1_graph, nethept_like, uncertain_path
from repro.influence.spread import expected_spread_mc


class TestConstruction:
    def test_world_count(self, fig1_graph):
        index = WorldIndex(fig1_graph, num_worlds=50, seed=0)
        assert index.num_worlds == 50
        assert len(index.worlds) == 50

    def test_deterministic_given_seed(self, fig1_graph):
        a = WorldIndex(fig1_graph, num_worlds=20, seed=3)
        b = WorldIndex(fig1_graph, num_worlds=20, seed=3)
        assert a.to_json() == b.to_json()

    def test_invalid_world_count(self, fig1_graph):
        with pytest.raises(ValueError):
            WorldIndex(fig1_graph, num_worlds=0)

    def test_certain_arcs_in_every_world(self):
        g = uncertain_path([1.0, 1.0])
        index = WorldIndex(g, num_worlds=25, seed=0)
        for adjacency in index.worlds:
            assert 1 in adjacency.get(0, [])
            assert 2 in adjacency.get(1, [])


class TestQueries:
    def test_figure1_answer(self, fig1_graph, fig1_names):
        index = WorldIndex(fig1_graph, num_worlds=4000, seed=1)
        answer = index.query(fig1_names["s"], 0.5)
        expected = exact_reliability_search(fig1_graph, [fig1_names["s"]], 0.5)
        assert answer == expected

    def test_reliability_estimate(self, fig1_graph, fig1_names):
        index = WorldIndex(fig1_graph, num_worlds=4000, seed=2)
        estimate = index.reliability(fig1_names["s"], fig1_names["u"])
        assert estimate == pytest.approx(0.65, abs=0.03)

    def test_deterministic_answers(self, fig1_graph):
        index = WorldIndex(fig1_graph, num_worlds=100, seed=0)
        assert index.query(0, 0.5) == index.query(0, 0.5)

    def test_multi_source(self):
        g = UncertainGraph(3)
        g.add_arc(0, 2, 0.5)
        g.add_arc(1, 2, 0.5)
        index = WorldIndex(g, num_worlds=4000, seed=4)
        # R({0,1}, 2) = 0.75.
        assert index.reliability([0, 1], 2) == pytest.approx(0.75, abs=0.03)

    def test_max_hops(self):
        g = uncertain_path([1.0, 1.0, 1.0])
        index = WorldIndex(g, num_worlds=10, seed=0)
        assert index.query(0, 0.5, max_hops=2) == {0, 1, 2}
        assert index.query(0, 0.5) == {0, 1, 2, 3}

    def test_expected_spread(self, fig1_graph, fig1_names):
        index = WorldIndex(fig1_graph, num_worlds=4000, seed=5)
        via_index = index.expected_spread(fig1_names["s"])
        via_mc = expected_spread_mc(
            fig1_graph, [fig1_names["s"]], num_samples=4000, seed=6
        )
        assert via_index == pytest.approx(via_mc, abs=0.15)

    def test_validation(self, fig1_graph):
        index = WorldIndex(fig1_graph, num_worlds=10, seed=0)
        with pytest.raises(InvalidThresholdError):
            index.query(0, 1.0)
        with pytest.raises(EmptySourceSetError):
            index.query([], 0.5)
        with pytest.raises(NodeNotFoundError):
            index.query(99, 0.5)
        with pytest.raises(NodeNotFoundError):
            index.reliability(0, 99)


class TestPersistence:
    def test_json_round_trip(self, fig1_graph):
        index = WorldIndex(fig1_graph, num_worlds=30, seed=7)
        restored = WorldIndex.from_json(index.to_json())
        assert restored.query(0, 0.5) == index.query(0, 0.5)
        assert restored.num_worlds == 30

    def test_file_round_trip(self, tmp_path, fig1_graph):
        index = WorldIndex(fig1_graph, num_worlds=30, seed=7)
        path = tmp_path / "worlds.json"
        index.save(path)
        restored = WorldIndex.load(path)
        assert restored.to_json() == index.to_json()

    def test_bad_format_rejected(self):
        with pytest.raises(GraphError):
            WorldIndex.from_json({"format": "nope"})

    def test_world_count_mismatch_rejected(self, fig1_graph):
        doc = WorldIndex(fig1_graph, num_worlds=5, seed=0).to_json()
        doc["worlds"] = doc["worlds"][:-1]
        with pytest.raises(GraphError):
            WorldIndex.from_json(doc)


class TestTradeoffs:
    def test_storage_grows_with_k(self):
        graph = nethept_like(n=100, seed=1)
        small = WorldIndex(graph, num_worlds=10, seed=0)
        large = WorldIndex(graph, num_worlds=100, seed=0)
        assert large.storage_size_estimate() > small.storage_size_estimate()

    def test_accuracy_matches_exact_on_small_graphs(self):
        g = uncertain_path([0.8, 0.6])
        index = WorldIndex(g, num_worlds=5000, seed=1)
        assert index.reliability(0, 2) == pytest.approx(
            exact_reliability(g, [0], 2), abs=0.02
        )
