"""Tests for the cluster-bounds cache."""

from __future__ import annotations

import pytest

from repro import DynamicRQTreeEngine, RQTreeEngine
from repro.core.bounds_cache import ClusterBoundsCache
from repro.core.outreach import general_outreach_upper_bound
from repro.graph.generators import nethept_like, uncertain_path


@pytest.fixture()
def engine():
    return RQTreeEngine.build(nethept_like(n=80, seed=3), seed=3)


class TestCache:
    def test_get_computes_once(self, engine):
        cache = ClusterBoundsCache()
        cluster = engine.tree.clusters[engine.tree.root]
        a = cache.get(engine.graph, cluster)
        b = cache.get(engine.graph, cluster)
        assert a == b
        assert cache.hits == 1
        assert cache.misses == 1

    def test_value_matches_theorem5_bound(self, engine):
        cache = ClusterBoundsCache()
        for cluster in list(engine.tree.leaves())[:5]:
            cached = cache.get(engine.graph, cluster)
            direct = general_outreach_upper_bound(
                engine.graph, cluster.members
            )
            # The cache adds the conservative inflation; it can only be
            # (infinitesimally) larger.
            assert cached >= direct - 1e-12
            assert cached <= direct + 1e-8

    def test_invalidate_specific(self, engine):
        cache = ClusterBoundsCache()
        cluster = engine.tree.clusters[engine.tree.leaf_of(0)]
        cache.get(engine.graph, cluster)
        assert cache.peek(cluster.index) is not None
        cache.invalidate([cluster.index])
        assert cache.peek(cluster.index) is None

    def test_clear(self, engine):
        cache = ClusterBoundsCache()
        for node in range(5):
            cache.get(
                engine.graph,
                engine.tree.clusters[engine.tree.leaf_of(node)],
            )
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0


class TestEngineIntegration:
    def test_answers_identical_with_and_without_cache(self):
        graph = nethept_like(n=100, seed=4)
        engine_cached = RQTreeEngine.build(graph, seed=4)
        engine_plain = RQTreeEngine(graph, engine_cached.tree)
        # Disable the second engine's cache by replacing it with a
        # never-hitting stand-in: easiest is to just compare against
        # candidates computed with bounds_cache=None.
        from repro.core.candidates import generate_candidates

        for s in (0, 10, 50, 99):
            for eta in (0.3, 0.6, 0.9):
                with_cache = engine_cached.query(s, eta).nodes
                plain = generate_candidates(
                    graph, engine_cached.tree, [s], eta
                )
                from repro.core.verification import verify_lower_bound

                without_cache = verify_lower_bound(
                    graph, [s], eta, plain.candidates
                )
                assert with_cache == without_cache

    def test_repeat_queries_hit_cache(self):
        graph = nethept_like(n=100, seed=4)
        engine = RQTreeEngine.build(graph, seed=4)
        engine.query(0, 0.6)
        hits_before = engine.bounds_cache.hits
        engine.query(0, 0.6)
        assert engine.bounds_cache.hits > hits_before

    def test_multi_source_uses_cache(self):
        graph = nethept_like(n=100, seed=4)
        engine = RQTreeEngine.build(graph, seed=4)
        engine.query([0, 50], 0.6)
        total = engine.bounds_cache.hits + engine.bounds_cache.misses
        assert total > 0

    def test_dynamic_engine_invalidates_on_update(self):
        graph = uncertain_path([0.3, 0.3, 0.3, 0.3])
        dyn = DynamicRQTreeEngine(graph, seed=0)
        # Prime the cache and verify the update path clears affected
        # clusters.
        dyn.query(0, 0.5)
        cached_before = len(dyn._engine.bounds_cache)
        dyn.add_arc(0, 4, 0.9)
        # The leaf of node 0 crossed by the new arc must be invalidated.
        leaf_index = dyn.tree.leaf_of(0)
        assert dyn._engine.bounds_cache.peek(leaf_index) is None
        # Queries remain correct after the update.
        assert 4 in dyn.query(0, 0.5).nodes

    def test_dynamic_update_changes_cached_answer_correctly(self):
        # The regression the cache could introduce: a stale bound that
        # wrongly accepts a cluster after an arc insertion.
        graph = uncertain_path([0.2])
        graph_copy = graph.copy()
        extra = graph_copy.add_node()  # node 2, isolated
        dyn = DynamicRQTreeEngine(graph_copy, seed=0)
        assert extra not in dyn.query(0, 0.5).nodes
        dyn.add_arc(0, extra, 0.9)
        assert extra in dyn.query(0, 0.5).nodes
