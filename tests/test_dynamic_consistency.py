"""Consistency of :class:`DynamicRQTreeEngine` under interleaved updates.

The paper's correctness guarantee (Theorem 3 / Section 5.1) holds for
*any* hierarchical partition of the node set, so a dynamic engine whose
tree has drifted through incremental subtree rebuilds must answer
exact-precision queries identically to a from-scratch index built over
the same final graph.  These tests mutate a graph through a scripted
interleaving of ``add_arc`` / ``remove_arc`` / ``update_probability``
— sized to actually trigger incremental rebuilds — and then compare
answers against ``force_rebuild()``.
"""

from __future__ import annotations

import random

import pytest

from repro import DynamicRQTreeEngine, RQTreeEngine
from repro.graph.generators import uncertain_gnp

ETAS = (0.2, 0.4, 0.6)
PROBE_SOURCES = (0, 7, 23, 55)


def _mutate(dyn: DynamicRQTreeEngine, rng: random.Random, steps: int) -> None:
    """Apply *steps* interleaved mutations chosen by *rng*."""
    n = dyn.graph.num_nodes
    for _ in range(steps):
        op = rng.random()
        arcs = list(dyn.graph.arcs())
        if op < 0.4 or not arcs:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                dyn.add_arc(u, v, rng.uniform(0.1, 0.9))
        elif op < 0.7:
            u, v, _ = arcs[rng.randrange(len(arcs))]
            dyn.remove_arc(u, v)
        else:
            u, v, _ = arcs[rng.randrange(len(arcs))]
            dyn.update_probability(u, v, rng.uniform(0.1, 0.9))


@pytest.fixture(scope="module")
def mutated():
    graph = uncertain_gnp(80, 4.0 / 80, seed=13)
    dyn = DynamicRQTreeEngine(graph, damage_threshold=0.05, seed=0)
    _mutate(dyn, random.Random(99), 120)
    return dyn


def _answers(engine, method: str):
    return {
        (s, eta): frozenset(engine.query(s, eta, method=method).nodes)
        for s in PROBE_SOURCES
        for eta in ETAS
    }


def test_mutations_actually_triggered_incremental_rebuilds(mutated):
    # The scenario is only meaningful if the low damage threshold made
    # the engine repartition subtrees along the way.
    assert mutated.stats.subtree_rebuilds > 0
    assert mutated.stats.arcs_added > 0
    assert mutated.stats.arcs_removed > 0


def test_lb_answers_match_from_scratch_rebuild(mutated):
    incremental = _answers(mutated, "lb")
    mutated.force_rebuild()
    assert _answers(mutated, "lb") == incremental


def test_lb_plus_answers_match_from_scratch_rebuild(mutated):
    incremental = _answers(mutated, "lb+")
    mutated.force_rebuild()
    assert _answers(mutated, "lb+") == incremental


def test_answers_independent_of_tree_seed(mutated):
    """A completely different partition over the same final graph gives
    the same exact-precision answers (candidate sets may differ)."""
    fresh = RQTreeEngine.build(mutated.graph, seed=1234)
    assert _answers(fresh, "lb") == _answers(mutated, "lb")


def test_incremental_tree_stays_valid(mutated):
    mutated.tree.validate()
    assert mutated.tree.num_graph_nodes == mutated.graph.num_nodes
