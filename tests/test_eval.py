"""Unit tests for the evaluation harness (metrics, workloads, reporting)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.eval.harness import mean_or_zero, run_quality_experiment
from repro.eval.metrics import (
    PrecisionRecall,
    f1_score,
    jaccard,
    precision,
    recall,
)
from repro.eval.reporting import empirical_cdf, format_series, format_table
from repro.eval.workload import multi_source_workload, single_source_workload
from repro.graph.generators import uncertain_path
from repro.graph.uncertain import UncertainGraph


class TestMetrics:
    def test_perfect_prediction(self):
        assert precision({1, 2}, {1, 2}) == 1.0
        assert recall({1, 2}, {1, 2}) == 1.0
        assert f1_score({1, 2}, {1, 2}) == 1.0
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_partial_overlap(self):
        predicted, truth = {1, 2, 3}, {2, 3, 4, 5}
        assert precision(predicted, truth) == pytest.approx(2 / 3)
        assert recall(predicted, truth) == pytest.approx(0.5)
        assert jaccard(predicted, truth) == pytest.approx(2 / 5)

    def test_empty_conventions(self):
        assert precision(set(), {1}) == 1.0
        assert recall({1}, set()) == 1.0
        assert jaccard(set(), set()) == 1.0

    def test_disjoint_sets(self):
        assert precision({1}, {2}) == 0.0
        assert recall({1}, {2}) == 0.0
        assert f1_score({1}, {2}) == 0.0

    def test_precision_recall_bundle(self):
        pr = PrecisionRecall.of({1, 2}, {2, 3})
        assert pr.precision == pytest.approx(0.5)
        assert pr.recall == pytest.approx(0.5)
        assert pr.f1 == pytest.approx(0.5)

    def test_f1_zero_division(self):
        assert PrecisionRecall(0.0, 0.0).f1 == 0.0

    def test_mean_or_zero(self):
        assert mean_or_zero([]) == 0.0
        assert mean_or_zero([1.0, 3.0]) == 2.0


class TestWorkloads:
    def test_single_source_count_and_membership(self, medium_graph):
        queries = single_source_workload(medium_graph, 10, seed=0)
        assert len(queries) == 10
        assert all(q in medium_graph for q in queries)

    def test_single_source_requires_out_degree(self, medium_graph):
        queries = single_source_workload(medium_graph, 20, seed=1)
        assert all(medium_graph.out_degree(q) > 0 for q in queries)

    def test_single_source_determinism(self, medium_graph):
        a = single_source_workload(medium_graph, 5, seed=3)
        b = single_source_workload(medium_graph, 5, seed=3)
        assert a == b

    def test_single_source_rejects_empty(self):
        with pytest.raises(GraphError):
            single_source_workload(UncertainGraph(0), 3)

    def test_single_source_rejects_bad_count(self, medium_graph):
        with pytest.raises(ValueError):
            single_source_workload(medium_graph, 0)

    def test_multi_source_shape(self, medium_graph):
        queries = multi_source_workload(
            medium_graph, 4, set_size=3, diameter=4, seed=0
        )
        assert len(queries) == 4
        for q in queries:
            assert len(q) == 3
            assert len(set(q)) == 3

    def test_multi_source_nodes_are_close(self, medium_graph):
        from repro.graph.traversal import induced_ball

        queries = multi_source_workload(
            medium_graph, 5, set_size=3, diameter=2, seed=1
        )
        radius = 2  # ball radius used for d = 2 is ceil(d/2) = 1, so any
        # two members are within 2 undirected hops of the center.
        for q in queries:
            # All members fit in *some* node's radius-1 ball; verify via
            # the first member's radius-2 ball as a conservative check.
            ball = induced_ball(medium_graph, q[0], radius)
            assert set(q) <= ball

    def test_multi_source_determinism(self, medium_graph):
        a = multi_source_workload(medium_graph, 3, 2, 4, seed=9)
        b = multi_source_workload(medium_graph, 3, 2, 4, seed=9)
        assert a == b

    def test_multi_source_degrades_gracefully(self):
        # A path graph has tiny balls; request more nodes than fit.
        g = uncertain_path([0.5] * 5)
        queries = multi_source_workload(
            g, 2, set_size=4, diameter=2, seed=0, max_attempts=5
        )
        for q in queries:
            assert 1 <= len(q) <= 4

    def test_multi_source_validation(self, medium_graph):
        with pytest.raises(ValueError):
            multi_source_workload(medium_graph, 0, 2, 2)
        with pytest.raises(ValueError):
            multi_source_workload(medium_graph, 1, 2, 0)


class TestHarness:
    def test_quality_experiment_rows(self, medium_engine):
        workload = [[0], [10], [20]]
        rows = run_quality_experiment(
            medium_engine, workload, eta=0.6, num_samples=100, seed=0
        )
        assert set(rows) == {"lb", "mc", "mc-sampling"}
        lb = rows["lb"]
        assert lb.precision == pytest.approx(1.0)  # perfect precision
        assert 0.0 <= lb.recall <= 1.0
        assert lb.seconds >= 0.0
        assert rows["mc-sampling"].precision == 1.0

    def test_quality_experiment_single_method(self, medium_engine):
        rows = run_quality_experiment(
            medium_engine, [[0]], eta=0.5, num_samples=50, methods=("lb",)
        )
        assert set(rows) == {"lb", "mc-sampling"}


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.0], ["beta", 2.5]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_float_formatting(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_format_series(self):
        text = format_series("spread", [(1, 10.0), (2, 20.0)], "k", "sigma")
        assert "spread" in text
        assert text.count("\n") == 2

    def test_empirical_cdf(self):
        points = empirical_cdf([0.1, 0.5, 0.9], [0.0, 0.5, 1.0])
        assert points == [(0.0, 0.0), (0.5, pytest.approx(2 / 3)), (1.0, 1.0)]

    def test_empirical_cdf_empty_values(self):
        assert empirical_cdf([], [0.5]) == [(0.5, 0.0)]

    def test_empirical_cdf_monotone(self):
        import random

        rng = random.Random(0)
        values = [rng.random() for _ in range(100)]
        grid = [i / 10 for i in range(11)]
        cdf = empirical_cdf(values, grid)
        ys = [y for _, y in cdf]
        assert ys == sorted(ys)
        assert ys[-1] == 1.0


class TestAsciiHistogram:
    def test_bars_scale_to_peak(self):
        from repro.eval.reporting import ascii_histogram

        text = ascii_histogram(
            [(0.0, 0.5, 10), (0.5, 1.0, 5)], width=10, title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_empty_bins(self):
        from repro.eval.reporting import ascii_histogram

        assert ascii_histogram([]) == ""

    def test_all_zero_counts(self):
        from repro.eval.reporting import ascii_histogram

        text = ascii_histogram([(0.0, 1.0, 0)])
        assert "#" not in text

    def test_invalid_width(self):
        from repro.eval.reporting import ascii_histogram

        with pytest.raises(ValueError):
            ascii_histogram([(0.0, 1.0, 1)], width=0)
