"""Tests for graph statistics and bootstrap confidence intervals."""

from __future__ import annotations

import statistics as st

import pytest

from repro import UncertainGraph
from repro.eval.bootstrap import (
    ConfidenceInterval,
    bootstrap_mean,
    bootstrap_statistic,
)
from repro.graph.generators import uncertain_path
from repro.graph.statistics import (
    degree_histogram,
    expected_num_arcs,
    expected_out_degree,
    probability_histogram,
    summarize,
)


class TestDegreeHistogram:
    def test_out_direction(self, fig1_graph):
        histogram = degree_histogram(fig1_graph, "out")
        assert sum(histogram.values()) == fig1_graph.num_nodes
        assert sum(d * c for d, c in histogram.items()) == fig1_graph.num_arcs

    def test_in_direction(self, fig1_graph):
        histogram = degree_histogram(fig1_graph, "in")
        assert sum(d * c for d, c in histogram.items()) == fig1_graph.num_arcs

    def test_total_direction(self, fig1_graph):
        histogram = degree_histogram(fig1_graph, "total")
        assert sum(d * c for d, c in histogram.items()) == 2 * fig1_graph.num_arcs

    def test_invalid_direction(self, fig1_graph):
        with pytest.raises(ValueError):
            degree_histogram(fig1_graph, "sideways")


class TestProbabilityHistogram:
    def test_bins_cover_all_arcs(self, fig1_graph):
        bins = probability_histogram(fig1_graph, num_bins=5)
        assert sum(count for _, _, count in bins) == fig1_graph.num_arcs
        assert len(bins) == 5

    def test_probability_one_lands_in_last_bin(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 1.0)
        bins = probability_histogram(g, num_bins=4)
        assert bins[-1][2] == 1

    def test_invalid_bins(self, fig1_graph):
        with pytest.raises(ValueError):
            probability_histogram(fig1_graph, num_bins=0)


class TestExpectedMeasures:
    def test_expected_arcs(self):
        g = uncertain_path([0.25, 0.75])
        assert expected_num_arcs(g) == pytest.approx(1.0)

    def test_expected_out_degree(self):
        g = uncertain_path([0.25, 0.75])
        assert expected_out_degree(g) == pytest.approx(1.0 / 3)

    def test_empty_graph(self):
        assert expected_out_degree(UncertainGraph(0)) == 0.0


class TestSummarize:
    def test_figure1_summary(self, fig1_graph):
        summary = summarize(fig1_graph)
        assert summary.num_nodes == 5
        assert summary.num_arcs == 8
        assert 0.0 < summary.mean_probability < 1.0
        assert summary.isolated_nodes == 0
        # Exactly the v <-> t pair is reciprocal: 2 of 8 arcs.
        assert summary.reciprocity == pytest.approx(0.25)

    def test_empty_graph_summary(self):
        summary = summarize(UncertainGraph(3))
        assert summary.num_arcs == 0
        assert summary.mean_probability == 0.0
        assert summary.isolated_nodes == 3

    def test_median_even_count(self):
        g = UncertainGraph(3)
        g.add_arc(0, 1, 0.2)
        g.add_arc(1, 2, 0.8)
        assert summarize(g).median_probability == pytest.approx(0.5)

    def test_as_rows(self, fig1_graph):
        rows = summarize(fig1_graph).as_rows()
        assert ("nodes", 5) in rows


class TestBootstrap:
    def test_point_estimate_is_sample_mean(self):
        ci = bootstrap_mean([1.0, 2.0, 3.0], seed=0)
        assert ci.estimate == pytest.approx(2.0)

    def test_interval_brackets_estimate(self):
        ci = bootstrap_mean([1.0, 5.0, 2.0, 4.0, 3.0], seed=1)
        assert ci.low <= ci.estimate <= ci.high

    def test_constant_sample_collapses(self):
        ci = bootstrap_mean([2.0] * 10, seed=0)
        assert ci.low == ci.high == 2.0
        assert ci.width == 0.0

    def test_contains(self):
        ci = ConfidenceInterval(estimate=2.0, low=1.0, high=3.0, confidence=0.95)
        assert ci.contains(2.5)
        assert not ci.contains(4.0)

    def test_deterministic_with_seed(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        a = bootstrap_mean(values, seed=9)
        b = bootstrap_mean(values, seed=9)
        assert (a.low, a.high) == (b.low, b.high)

    def test_higher_confidence_widens_interval(self):
        values = [1.0, 4.0, 2.0, 8.0, 3.0, 7.0, 5.0]
        narrow = bootstrap_mean(values, confidence=0.5, seed=2)
        wide = bootstrap_mean(values, confidence=0.99, seed=2)
        assert wide.width >= narrow.width

    def test_custom_statistic(self):
        ci = bootstrap_statistic(
            [1.0, 2.0, 100.0], st.median, seed=0
        )
        assert ci.estimate == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], num_resamples=0)
