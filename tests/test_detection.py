"""Tests for reliability detection, scoring, and top-k search."""

from __future__ import annotations

import pytest

from repro import RQTreeEngine
from repro.core.detection import (
    detect_reliability,
    reliability_scores,
    top_k_reliable,
)
from repro.errors import EmptySourceSetError, NodeNotFoundError
from repro.graph.exact import exact_reliability
from repro.graph.generators import figure1_graph, uncertain_gnp, uncertain_path


@pytest.fixture(scope="module")
def fig1_engine():
    g, names = figure1_graph()
    return g, names, RQTreeEngine.build(g, seed=0)


class TestDetectReliability:
    def test_brackets_exact_value(self, fig1_engine):
        g, names, engine = fig1_engine
        result = detect_reliability(
            engine, names["s"], names["u"],
            tolerance=0.05, method="mc", num_samples=3000, seed=1,
        )
        # R(s, u) = 0.65 exactly (Example 1).
        assert result.low <= 0.65 + 0.05
        assert result.high >= 0.65 - 0.05
        assert result.width <= 0.05 + 1e-12

    def test_lb_method_brackets_path_probability(self, fig1_engine):
        g, names, engine = fig1_engine
        # LB semantics: the bracketed value is L_R(s, u) = 0.5.
        result = detect_reliability(
            engine, names["s"], names["u"], tolerance=0.02, method="lb"
        )
        assert result.low <= 0.5 <= result.high + 0.02

    def test_target_is_source(self, fig1_engine):
        _, names, engine = fig1_engine
        result = detect_reliability(engine, names["s"], names["s"])
        assert result.low == result.high == 1.0
        assert result.queries_issued == 0

    def test_unreachable_target(self):
        g = uncertain_path([0.5])
        g2 = g.copy()
        isolated = g2.add_node()
        engine = RQTreeEngine.build(g2, seed=0)
        result = detect_reliability(
            engine, 0, isolated, tolerance=0.1, method="lb"
        )
        assert result.high <= 0.1 + 1e-12

    def test_query_count_is_logarithmic(self, fig1_engine):
        _, names, engine = fig1_engine
        result = detect_reliability(
            engine, names["s"], names["w"], tolerance=0.01, method="lb"
        )
        # ceil(log2(1 / 0.01)) = 7 probes.
        assert result.queries_issued <= 8

    def test_invalid_tolerance(self, fig1_engine):
        _, names, engine = fig1_engine
        with pytest.raises(ValueError):
            detect_reliability(engine, names["s"], names["w"], tolerance=0.0)

    def test_missing_target(self, fig1_engine):
        _, names, engine = fig1_engine
        with pytest.raises(NodeNotFoundError):
            detect_reliability(engine, names["s"], 99)


class TestReliabilityScores:
    def test_lb_scores_are_lower_bounds(self):
        for seed in range(3):
            g = uncertain_gnp(6, 0.3, seed=seed)
            if g.num_arcs > 16 or g.num_arcs == 0:
                continue
            engine = RQTreeEngine.build(g, seed=seed)
            scores = reliability_scores(engine, 0, 0.2, method="lb")
            for node, score in scores.items():
                if node == 0:
                    continue
                assert score <= exact_reliability(g, [0], node) + 1e-9

    def test_sources_score_one(self, fig1_engine):
        _, names, engine = fig1_engine
        scores = reliability_scores(engine, names["s"], 0.3)
        assert scores[names["s"]] == 1.0

    def test_mc_scores_near_exact(self, fig1_engine):
        g, names, engine = fig1_engine
        scores = reliability_scores(
            engine, names["s"], 0.3, method="mc", num_samples=4000, seed=2
        )
        assert scores[names["u"]] == pytest.approx(0.65, abs=0.04)

    def test_scores_respect_eta_filter(self, fig1_engine):
        _, names, engine = fig1_engine
        scores = reliability_scores(engine, names["s"], 0.55, method="lb")
        for node, score in scores.items():
            if node != names["s"]:
                assert score >= 0.55

    def test_unknown_method(self, fig1_engine):
        _, names, engine = fig1_engine
        with pytest.raises(ValueError):
            reliability_scores(engine, names["s"], 0.5, method="magic")

    def test_empty_sources(self, fig1_engine):
        _, _, engine = fig1_engine
        with pytest.raises(EmptySourceSetError):
            reliability_scores(engine, [], 0.5)


class TestTopK:
    def test_ranked_by_score(self, fig1_engine):
        _, names, engine = fig1_engine
        ranked = top_k_reliable(engine, names["s"], 3, method="lb")
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_best_node_is_strongest_neighbour(self, fig1_engine):
        _, names, engine = fig1_engine
        ranked = top_k_reliable(engine, names["s"], 1, method="lb")
        assert ranked[0][0] == names["w"]  # direct 0.6 arc wins

    def test_k_larger_than_reachable(self):
        g = uncertain_path([0.9])
        engine = RQTreeEngine.build(g, seed=0)
        ranked = top_k_reliable(engine, 0, 10)
        assert len(ranked) == 1  # only node 1 is reachable

    def test_sources_excluded_by_default(self, fig1_engine):
        _, names, engine = fig1_engine
        ranked = top_k_reliable(engine, names["s"], 4)
        assert names["s"] not in {node for node, _ in ranked}

    def test_include_sources_flag(self, fig1_engine):
        _, names, engine = fig1_engine
        ranked = top_k_reliable(
            engine, names["s"], 5, include_sources=True
        )
        assert ranked[0] == (names["s"], 1.0)

    def test_deterministic_lb(self, fig1_engine):
        _, names, engine = fig1_engine
        a = top_k_reliable(engine, names["s"], 3)
        b = top_k_reliable(engine, names["s"], 3)
        assert a == b

    def test_invalid_k(self, fig1_engine):
        _, names, engine = fig1_engine
        with pytest.raises(ValueError):
            top_k_reliable(engine, names["s"], 0)

    def test_eta_floor_terminates_on_sparse_graph(self):
        g = uncertain_path([0.05])
        engine = RQTreeEngine.build(g, seed=0)
        ranked = top_k_reliable(engine, 0, 5, eta_floor=0.01)
        assert len(ranked) <= 1
