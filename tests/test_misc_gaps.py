"""Gap-filling tests: paths not covered by the per-module suites."""

from __future__ import annotations

import pytest

from repro import RQTreeEngine, UncertainGraph
from repro.graph.exact import exact_reliability_search
from repro.graph.generators import nethept_like, uncertain_gnp, uncertain_path
from repro.influence.spread import DEFAULT_THRESHOLDS, expected_spread_histogram
from repro.reliability.estimators import make_method_suite


class TestPushRelabelEngineEndToEnd:
    def test_queries_match_dinic_engine(self):
        graph = nethept_like(n=100, seed=8)
        dinic_engine = RQTreeEngine.build(graph, seed=8, flow_engine="dinic")
        pr_engine = RQTreeEngine(
            graph, dinic_engine.tree, flow_engine="push_relabel"
        )
        for s in (0, 25, 50, 99):
            for eta in (0.3, 0.6, 0.9):
                assert (
                    dinic_engine.query(s, eta).nodes
                    == pr_engine.query(s, eta).nodes
                ), (s, eta)

    def test_push_relabel_lb_has_no_false_positives(self):
        for seed in range(3):
            g = uncertain_gnp(7, 0.25, seed=seed)
            if g.num_arcs > 16 or g.num_arcs == 0:
                continue
            engine = RQTreeEngine.build(
                g, seed=seed, flow_engine="push_relabel"
            )
            truth = exact_reliability_search(g, [0], 0.4)
            assert engine.query(0, 0.4).nodes <= truth


class TestMethodSuiteRHTPath:
    def test_rht_method_answers(self):
        graph = nethept_like(n=40, seed=2)
        engine = RQTreeEngine.build(graph, seed=2)
        suite = make_method_suite(
            engine, num_samples=100, rht_budget=16, seed=0, include_rht=True
        )
        answer = suite["rht-sampling"](graph, [0], 0.4)
        assert 0 in answer


class TestSpreadHistogramDefaults:
    def test_default_thresholds_ascending(self):
        assert list(DEFAULT_THRESHOLDS) == sorted(DEFAULT_THRESHOLDS)

    def test_unsorted_thresholds_accepted(self):
        graph = uncertain_path([0.9, 0.9])
        engine = RQTreeEngine.build(graph, seed=0)
        forward = expected_spread_histogram(
            engine, [0], thresholds=(0.2, 0.8)
        )
        backward = expected_spread_histogram(
            engine, [0], thresholds=(0.8, 0.2)
        )
        assert forward == pytest.approx(backward)

    def test_histogram_never_negative(self):
        graph = uncertain_path([0.5])
        engine = RQTreeEngine.build(graph, seed=0)
        assert expected_spread_histogram(engine, [0]) >= 0.0


class TestQueryResultExplainMC:
    def test_mc_explain_reports_method(self):
        graph = nethept_like(n=60, seed=1)
        engine = RQTreeEngine.build(graph, seed=1)
        text = engine.query(
            0, 0.5, method="mc", num_samples=50, seed=0
        ).explain()
        assert "rq-tree-mc" in text
        assert "verification [mc]" in text


class TestSubgraphViewParentAccess:
    def test_parent_property(self):
        graph = uncertain_path([0.5, 0.5])
        view = graph.subgraph([0, 1])
        assert view.parent is graph
        assert view.members == {0, 1}

    def test_num_arcs_recomputed_after_parent_mutation(self):
        graph = UncertainGraph(3)
        graph.add_arc(0, 1, 0.5)
        view = graph.subgraph([0, 1, 2])
        assert view.num_arcs == 1
        graph.add_arc(1, 2, 0.5)
        assert view.num_arcs == 2  # the view is live


class TestEngineBoundsCacheSharing:
    def test_candidates_and_query_share_cache(self):
        graph = nethept_like(n=60, seed=5)
        engine = RQTreeEngine.build(graph, seed=5)
        engine.candidates(0, 0.6)
        misses_after_first = engine.bounds_cache.misses
        engine.query(0, 0.6)
        # The query's traversal reuses the candidates() entries.
        assert engine.bounds_cache.misses == misses_after_first
