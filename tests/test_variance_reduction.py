"""Tests for variance-reduced MC estimators and certain-SCC condensation."""

from __future__ import annotations

import random
import statistics

import pytest

from repro import UncertainGraph
from repro.errors import EmptySourceSetError, NodeNotFoundError
from repro.graph.condense import contract_certain_sccs
from repro.graph.exact import exact_reliability, exact_reliability_search
from repro.graph.generators import uncertain_gnp, uncertain_path
from repro.reliability.montecarlo import mc_reliability
from repro.reliability.variance_reduction import (
    antithetic_reliability,
    stratified_reliability,
)


class TestAntithetic:
    def test_unbiased_on_figure1(self, fig1_graph, fig1_names):
        estimate = antithetic_reliability(
            fig1_graph, [fig1_names["s"]], fig1_names["u"],
            num_pairs=3000, seed=1,
        )
        assert estimate == pytest.approx(0.65, abs=0.02)

    def test_matches_exact_on_random_graphs(self):
        for seed in range(3):
            g = uncertain_gnp(6, 0.3, seed=seed)
            if g.num_arcs > 16 or g.num_arcs == 0:
                continue
            exact = exact_reliability(g, [0], 3)
            estimate = antithetic_reliability(
                g, [0], 3, num_pairs=3000, seed=seed
            )
            assert estimate == pytest.approx(exact, abs=0.03)

    def test_variance_not_worse_than_crude(self, fig1_graph, fig1_names):
        # Replicate both estimators many times at equal world budgets;
        # the antithetic spread must not exceed the crude spread by a
        # meaningful margin (theory: it is <=; allow noise slack).
        crude, antithetic = [], []
        for rep in range(30):
            crude.append(
                mc_reliability(
                    fig1_graph, fig1_names["s"], fig1_names["u"],
                    num_samples=100, seed=rep,
                )
            )
            antithetic.append(
                antithetic_reliability(
                    fig1_graph, [fig1_names["s"]], fig1_names["u"],
                    num_pairs=50, seed=rep,
                )
            )
        var_crude = statistics.pvariance(crude)
        var_anti = statistics.pvariance(antithetic)
        assert var_anti <= var_crude * 1.5

    def test_target_in_sources(self, fig1_graph):
        assert antithetic_reliability(fig1_graph, [0], 0) == 1.0

    def test_validation(self, fig1_graph):
        with pytest.raises(EmptySourceSetError):
            antithetic_reliability(fig1_graph, [], 1)
        with pytest.raises(NodeNotFoundError):
            antithetic_reliability(fig1_graph, [0], 99)
        with pytest.raises(ValueError):
            antithetic_reliability(fig1_graph, [0], 1, num_pairs=0)


class TestStratified:
    def test_unbiased_on_figure1(self, fig1_graph, fig1_names):
        estimate = stratified_reliability(
            fig1_graph, [fig1_names["s"]], fig1_names["u"],
            num_samples=4000, num_strata_arcs=4, seed=2,
        )
        assert estimate == pytest.approx(0.65, abs=0.02)

    def test_full_stratification_is_exact(self):
        # k >= #arcs: every stratum is a fully determined world, so the
        # estimate equals the exact reliability regardless of sampling.
        g = uncertain_path([0.7, 0.4])
        estimate = stratified_reliability(
            g, [0], 2, num_samples=10, num_strata_arcs=2, seed=0
        )
        assert estimate == pytest.approx(0.28, abs=1e-12)

    def test_zero_strata_degenerates_to_crude(self, fig1_graph, fig1_names):
        estimate = stratified_reliability(
            fig1_graph, [fig1_names["s"]], fig1_names["w"],
            num_samples=4000, num_strata_arcs=0, seed=3,
        )
        assert estimate == pytest.approx(0.6, abs=0.03)

    def test_variance_reduction_vs_crude(self, fig1_graph, fig1_names):
        crude, stratified = [], []
        for rep in range(30):
            crude.append(
                mc_reliability(
                    fig1_graph, fig1_names["s"], fig1_names["u"],
                    num_samples=120, seed=100 + rep,
                )
            )
            stratified.append(
                stratified_reliability(
                    fig1_graph, [fig1_names["s"]], fig1_names["u"],
                    num_samples=120, num_strata_arcs=4, seed=100 + rep,
                )
            )
        var_crude = statistics.pvariance(crude)
        var_strat = statistics.pvariance(stratified)
        assert var_strat <= var_crude * 1.1

    def test_empty_graph(self):
        g = UncertainGraph(2)
        assert stratified_reliability(g, [0], 1, num_samples=10) == 0.0

    def test_validation(self, fig1_graph):
        with pytest.raises(ValueError):
            stratified_reliability(fig1_graph, [0], 1, num_samples=0)
        with pytest.raises(ValueError):
            stratified_reliability(
                fig1_graph, [0], 1, num_strata_arcs=-1
            )


class TestCondensation:
    def test_no_certain_arcs_is_identity(self, fig1_graph):
        condensation = contract_certain_sccs(fig1_graph)
        assert condensation.graph.num_nodes == fig1_graph.num_nodes
        assert condensation.num_contracted == 0

    def test_certain_cycle_contracts(self):
        g = UncertainGraph(4)
        g.add_arc(0, 1, 1.0)
        g.add_arc(1, 0, 1.0)   # certain 2-cycle {0, 1}
        g.add_arc(1, 2, 0.5)
        g.add_arc(2, 3, 0.7)
        condensation = contract_certain_sccs(g)
        assert condensation.graph.num_nodes == 3
        assert condensation.num_contracted == 1
        rep = condensation.representative_of
        assert rep[0] == rep[1]
        assert rep[2] != rep[0]

    def test_one_way_certain_arc_does_not_contract(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 1.0)  # no way back: not strongly connected
        condensation = contract_certain_sccs(g)
        assert condensation.graph.num_nodes == 2

    def test_reliability_preserved(self):
        g = UncertainGraph(5)
        g.add_arc(0, 1, 1.0)
        g.add_arc(1, 0, 1.0)
        g.add_arc(1, 2, 0.6)
        g.add_arc(2, 3, 0.5)
        g.add_arc(0, 4, 0.3)
        condensation = contract_certain_sccs(g)
        rep = condensation.representative_of
        for target in range(2, 5):
            original = exact_reliability(g, [0], target)
            condensed = exact_reliability(
                condensation.graph, [rep[0]], rep[target]
            )
            assert condensed == pytest.approx(original)

    def test_search_answers_expand_correctly(self):
        g = UncertainGraph(4)
        g.add_arc(0, 1, 1.0)
        g.add_arc(1, 0, 1.0)
        g.add_arc(1, 2, 0.9)
        g.add_arc(2, 3, 0.1)
        condensation = contract_certain_sccs(g)
        projected = condensation.project_sources([0])
        answer = exact_reliability_search(
            condensation.graph, projected, 0.5
        )
        expanded = condensation.expand_answer(answer)
        direct = exact_reliability_search(g, [0], 0.5)
        assert expanded == direct

    def test_internal_uncertain_arc_disappears(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 1.0)
        g.add_arc(1, 0, 1.0)
        g.add_arc(0, 1, 0.5)  # noisy-ors into the certain arc anyway
        condensation = contract_certain_sccs(g)
        assert condensation.graph.num_nodes == 1
        assert condensation.graph.num_arcs == 0
