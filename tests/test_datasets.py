"""Unit tests for the named dataset registry."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DATASETS,
    dataset_names,
    load_dataset,
    paper_scale_note,
)


class TestRegistry:
    def test_all_paper_datasets_present(self):
        expected = {
            "dblp2", "dblp5", "dblp10", "flickr",
            "biomine", "lastfm", "webgraph", "nethept",
        }
        assert set(dataset_names()) == expected

    def test_load_by_name(self):
        g = load_dataset("lastfm", n=100, seed=0)
        assert g.num_nodes == 100

    def test_load_is_case_insensitive(self):
        g = load_dataset("LastFM", n=50, seed=0)
        assert g.num_nodes == 50

    def test_default_size_used_when_n_zero(self):
        g = load_dataset("nethept", seed=0)
        assert g.num_nodes == DATASETS["nethept"].default_n

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("imdb")

    def test_determinism(self):
        a = load_dataset("dblp5", n=128, seed=4)
        b = load_dataset("dblp5", n=128, seed=4)
        assert sorted(a.arcs()) == sorted(b.arcs())

    def test_seed_changes_graph(self):
        a = load_dataset("dblp5", n=128, seed=1)
        b = load_dataset("dblp5", n=128, seed=2)
        assert sorted(a.arcs()) != sorted(b.arcs())

    def test_scale_notes(self):
        for name in dataset_names():
            note = paper_scale_note(name)
            assert name in note
            assert "paper used" in note

    def test_scale_note_unknown_dataset(self):
        with pytest.raises(KeyError):
            paper_scale_note("unknown")

    def test_dblp_variants_share_topology_scale(self):
        g2 = load_dataset("dblp2", n=256, seed=0)
        g10 = load_dataset("dblp10", n=256, seed=0)
        # Same generator seed and topology parameters: same arc set,
        # different probabilities.
        assert {(u, v) for u, v, _ in g2.arcs()} == {
            (u, v) for u, v, _ in g10.arcs()
        }
