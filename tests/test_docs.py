"""Executable documentation: every fenced Python block must run.

Docs rot silently — examples keep compiling in the reader's head long
after the API moved on.  This suite extracts every ```python fence
from README.md and docs/*.md and executes it, top to bottom, in one
namespace per file (so later blocks can use names earlier blocks
defined, exactly as a reader would).  Blocks that are genuinely not
Python (grammar sketches, pseudo-code) must use a different fence
language (```text); that is a documentation convention this test
enforces by construction.

Also checks that every relative Markdown link in the prose points at a
file that exists, so renames can't leave dead references behind.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files whose ```python blocks must execute green.
EXECUTABLE_DOCS = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

#: Files whose relative links must resolve (superset of the above).
LINKED_DOCS = sorted(
    EXECUTABLE_DOCS
    + [REPO_ROOT / "DESIGN.md", REPO_ROOT / "EXPERIMENTS.md"]
)

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)(?:#[^)]*)?\)")


def _python_blocks(path: Path):
    return _FENCE.findall(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize(
    "doc", EXECUTABLE_DOCS, ids=[p.name for p in EXECUTABLE_DOCS]
)
def test_python_blocks_execute(doc):
    blocks = _python_blocks(doc)
    if not blocks:
        pytest.skip(f"{doc.name} has no python blocks")
    namespace = {"__name__": f"doc_{doc.stem}"}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"{doc.name}[block {index}]", "exec"),
                 namespace)
        except Exception as error:  # noqa: BLE001 - reported with context
            pytest.fail(
                f"{doc.name} python block #{index} failed "
                f"({type(error).__name__}: {error}):\n{block}"
            )


@pytest.mark.parametrize(
    "doc", LINKED_DOCS, ids=[p.name for p in LINKED_DOCS]
)
def test_relative_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    dead = []
    for target in _LINK.findall(text):
        if "://" in target or target.startswith("mailto:"):
            continue
        if not (doc.parent / target).exists():
            dead.append(target)
    assert not dead, f"{doc.name} has dead relative links: {dead}"
