"""Tests for the self-healing shard fabric (repro.shard.supervisor).

The contract under test: with supervision on, worker death is an
*operational* event, not a *correctness* event.  Queries in flight when
a worker dies are redispatched onto its respawned replacement (or
degrade with a structured reason — never hang), the per-shard circuit
breaker walks healthy -> open-circuit -> half-open -> healthy, a
crash-looping shard parks with its last error instead of burning CPU
forever, and ``method="lb"`` answers stay bit-identical to a fault-free
run throughout (the gateway's refinement pass recomputes lb exactly,
whatever the shards managed to contribute).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro import RQTreeEngine
from repro.errors import ShardUnavailableError
from repro.graph.generators import uncertain_gnp
from repro.resilience import FaultPlan
from repro.service.metrics import MetricsRegistry, set_registry
from repro.shard import ShardedRQTreeEngine, SupervisorPolicy
from repro.shard.supervisor import (
    SHARD_HEALTHY,
    SHARD_PARKED,
)

#: Tight intervals so breaker transitions happen at test speed.
FAST = SupervisorPolicy(
    ping_interval_seconds=0.02,
    ping_timeout_seconds=2.0,
    backoff_base_seconds=0.01,
    backoff_max_seconds=0.05,
)


@pytest.fixture()
def fresh_registry():
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def wait_until(predicate, timeout=30.0, interval=0.01, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def all_healthy(engine):
    return all(
        s["state"] == SHARD_HEALTHY for s in engine.shard_states().values()
    )


def fingerprint(result):
    return (
        tuple(sorted(result.nodes)),
        tuple(sorted(result.statuses.items())),
        result.worlds_used,
        result.method,
        result.eta,
        tuple(result.sources),
    )


# ----------------------------------------------------------------------
# Inline mode: the state machine, deterministically provoked
# ----------------------------------------------------------------------
class TestInlineSupervision:
    @pytest.fixture()
    def graph(self):
        return uncertain_gnp(120, 0.04, seed=5)

    @pytest.fixture()
    def plain(self, graph):
        return RQTreeEngine.build(graph, seed=3)

    @pytest.fixture()
    def supervised(self, graph):
        with ShardedRQTreeEngine.build(
            graph, shards=2, seed=3, mode="inline",
            supervise=True, supervisor_policy=FAST,
        ) as engine:
            yield engine

    def test_supervised_answers_match_unsupervised(
        self, plain, supervised
    ):
        assert supervised.supervisor is not None
        for sources, eta in (([0], 0.3), ([5, 60], 0.5), ([17], 0.7)):
            expect = set(plain.query(sources, eta=eta, method="lb").nodes)
            got = supervised.query(sources, eta=eta, method="lb")
            assert set(got.nodes) == expect
            assert not got.degraded
            assert got.shards_recovered == 0
        states = supervised.shard_states()
        assert set(states) == {0, 1}
        for state in states.values():
            assert state["state"] == SHARD_HEALTHY
            assert state["reason"] is None

    def test_unsupervised_states_report_liveness(self, graph):
        with ShardedRQTreeEngine.build(
            graph, shards=2, seed=3, mode="inline"
        ) as engine:
            assert engine.supervisor is None
            states = engine.shard_states()
            assert set(states) == {0, 1}
            for state in states.values():
                assert state["state"] == SHARD_HEALTHY

    def test_killed_client_recovers_in_flight_query(
        self, plain, supervised
    ):
        victim = supervised.plan.owner(0)
        supervised.supervisor.client(victim).close()
        result = supervised.query(0, eta=0.4, method="lb")
        # The in-flight sub-query was redispatched onto the respawned
        # worker: answered, not degraded, and marked as recovered.
        assert not result.degraded, result.degraded_reason
        assert result.shards_recovered >= 1
        assert set(result.nodes) == set(
            plain.query(0, eta=0.4, method="lb").nodes
        )
        wait_until(
            lambda: supervised.shard_states()[victim]["state"]
            == SHARD_HEALTHY
            and supervised.shard_states()[victim]["respawns"] >= 1,
            message="respawned shard back to healthy",
        )

    def test_crash_loop_parks_with_reason(
        self, graph, plain, fresh_registry
    ):
        policy = SupervisorPolicy(
            ping_interval_seconds=0.02,
            backoff_base_seconds=0.005,
            backoff_max_seconds=0.01,
            max_respawns=2,
            crash_window_seconds=60.0,
        )
        with ShardedRQTreeEngine.build(
            graph, shards=2, seed=3, mode="inline",
            supervise=True, supervisor_policy=policy,
        ) as engine:
            victim = engine.plan.owner(0)
            with FaultPlan({"supervisor.respawn": "always"}):
                engine.supervisor.client(victim).close()
                wait_until(
                    lambda: engine.shard_states()[victim]["state"]
                    == SHARD_PARKED,
                    message="crash-looping shard to park",
                )
            state = engine.shard_states()[victim]
            assert "crash-loop budget exhausted" in state["reason"]
            # Parked shards fail fast at submit with a structured reason
            # that survives into the degraded answer...
            with pytest.raises(ShardUnavailableError, match="parked"):
                engine.supervisor.submit(victim, {"sources": [0]})
            result = engine.query(0, eta=0.4, method="lb")
            assert result.degraded
            assert "parked" in result.degraded_reason
            # ...while refinement keeps the lb node set exact.
            assert set(result.nodes) == set(
                plain.query(0, eta=0.4, method="lb").nodes
            )
            snapshot = fresh_registry.snapshot()
            assert snapshot["counters"]["shard.supervisor.parked"] >= 1
            # A park is terminal: no further respawn attempts burn CPU.
            respawns = snapshot["counters"]["shard.supervisor.respawns"]
            time.sleep(0.1)
            assert (
                fresh_registry.snapshot()["counters"][
                    "shard.supervisor.respawns"
                ]
                == respawns
            )

    def test_failed_probe_backs_off_then_recovers(
        self, graph, fresh_registry
    ):
        with ShardedRQTreeEngine.build(
            graph, shards=2, seed=3, mode="inline",
            supervise=True, supervisor_policy=FAST,
        ) as engine:
            victim = engine.plan.owner(0)
            with FaultPlan({"supervisor.probe": 1}):
                engine.supervisor.client(victim).close()
                wait_until(
                    lambda: engine.shard_states()[victim]["state"]
                    == SHARD_HEALTHY
                    and engine.shard_states()[victim]["respawns"] >= 1,
                    message="recovery after one failed probe",
                )
            counters = fresh_registry.snapshot()["counters"]
            assert counters["shard.supervisor.respawn_failures"] >= 1
            assert counters["shard.supervisor.recoveries"] >= 1

    def test_application_errors_do_not_cycle_workers(self, supervised):
        # A malformed request is the *request's* fault: the worker
        # answered, so the breaker must not trip (cycling a healthy
        # worker over a bad request would amplify a client bug into an
        # availability incident).
        victim = 0
        dispatch = supervised.supervisor.submit(
            victim, {"sources": [0]}  # missing eta
        )
        with pytest.raises(ShardUnavailableError):
            supervised.supervisor.wait(dispatch)
        assert supervised.shard_states()[victim]["state"] == SHARD_HEALTHY
        assert supervised.shard_states()[victim]["respawns"] == 0

    def test_hedge_delay_derives_from_observed_latency(self, supervised):
        assert supervised.supervisor.hedge_delay(0) is None  # no samples
        for _ in range(10):
            supervised.query(0, eta=0.4, method="lb")
        delay = supervised.supervisor.hedge_delay(
            supervised.plan.owner(0)
        )
        assert delay is not None
        assert 0.01 <= delay <= 1.0


# ----------------------------------------------------------------------
# Process mode: real workers, real SIGKILL
# ----------------------------------------------------------------------
class TestProcessSupervision:
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_sigkill_mid_query_completes(self, transport):
        graph = uncertain_gnp(120, 0.04, seed=5)
        plain = RQTreeEngine.build(graph, seed=3)
        with ShardedRQTreeEngine.build(
            graph, shards=2, seed=3, mode="process",
            transport=transport,
            supervise=True, supervisor_policy=FAST,
        ) as engine:
            victim = engine.plan.owner(0)
            pid = engine.supervisor.client(victim)._process.pid
            # Freeze the victim so the sub-query is guaranteed to still
            # be in flight when the SIGKILL lands.
            os.kill(pid, signal.SIGSTOP)
            outcome = {}

            def run():
                outcome["result"] = engine.query(0, eta=0.4, method="lb")

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.2)  # let the scatter reach the frozen worker
            os.kill(pid, signal.SIGKILL)
            thread.join(timeout=120.0)
            assert not thread.is_alive(), "query hung after worker SIGKILL"
            result = outcome["result"]
            # Redispatched or degraded-with-reason — and exact either
            # way, because refinement recomputes lb in the gateway.
            if result.degraded:
                assert result.degraded_reason
            else:
                assert result.shards_recovered >= 1
            assert set(result.nodes) == set(
                plain.query(0, eta=0.4, method="lb").nodes
            )
            wait_until(
                lambda: all_healthy(engine),
                message="killed worker back to healthy",
            )

    def test_fault_storm_heals_and_stays_bit_identical(self):
        graph = uncertain_gnp(150, 0.04, seed=9)
        schedule = [
            ([node], eta)
            for node in (0, 31, 77, 104, 149)
            for eta in (0.25, 0.5)
        ]
        queries = [schedule[i % len(schedule)] for i in range(200)]

        def shm_segments():
            try:
                return {
                    name for name in os.listdir("/dev/shm")
                    if name.startswith("psm_")
                }
            except FileNotFoundError:  # pragma: no cover - non-Linux
                return set()

        before = shm_segments()
        # Fault-free reference run: same engine shape, no kills.
        with ShardedRQTreeEngine.build(
            graph, shards=3, seed=4, mode="process",
            supervise=True, supervisor_policy=FAST,
        ) as engine:
            expected = [
                fingerprint(engine.query(s, eta=eta, method="lb"))
                for s, eta in queries
            ]

        kills = {shard_id: 0 for shard_id in range(3)}
        with ShardedRQTreeEngine.build(
            graph, shards=3, seed=4, mode="process",
            supervise=True, supervisor_policy=FAST,
        ) as engine:
            for index, (sources, eta) in enumerate(queries):
                if index % 20 == 10:
                    target = (index // 20) % 3
                    client = engine.supervisor.client(target)
                    if client._process.is_alive():
                        os.kill(client._process.pid, signal.SIGKILL)
                        kills[target] += 1
                result = engine.query(sources, eta=eta, method="lb")
                # The lb *answer* is bit-identical always (refinement
                # recomputes it exactly); the full fingerprint —
                # including the candidate pool's rejection statuses —
                # matches whenever the supervisor recovered the shard
                # rather than failing fast on an open breaker.
                assert tuple(sorted(result.nodes)) == expected[index][0], (
                    f"query {index} nodes diverged under faults"
                )
                if not result.degraded:
                    assert fingerprint(result) == expected[index], (
                        f"query {index} diverged under faults"
                    )
            assert all(count >= 1 for count in kills.values()), kills
            wait_until(
                lambda: all_healthy(engine),
                message="all shards healthy after the storm",
            )
            states = engine.shard_states()
            assert sum(s["respawns"] for s in states.values()) >= sum(
                kills.values()
            )
        leaked = shm_segments() - before
        assert not leaked, f"leaked shm segments: {leaked}"
