"""Unit and integration tests for the RQTreeEngine facade."""

from __future__ import annotations

import pytest

from repro import RQTree, RQTreeEngine, UncertainGraph, build_rqtree
from repro.errors import EmptySourceSetError
from repro.graph.exact import exact_reliability_search
from repro.graph.generators import uncertain_gnp


class TestConstruction:
    def test_build_classmethod(self, fig1_graph):
        engine = RQTreeEngine.build(fig1_graph, seed=0)
        assert engine.build_report is not None
        assert engine.tree.num_graph_nodes == fig1_graph.num_nodes

    def test_mismatched_tree_rejected(self, fig1_graph):
        tree, _ = build_rqtree(UncertainGraph(3))
        with pytest.raises(ValueError):
            RQTreeEngine(fig1_graph, tree)

    def test_wrap_prebuilt_tree(self, fig1_graph):
        tree, report = build_rqtree(fig1_graph, seed=0)
        engine = RQTreeEngine(fig1_graph, tree, build_report=report)
        result = engine.query(0, 0.5)
        assert 0 in result.nodes


class TestQueryCorrectness:
    def test_figure1_lb_answer(self, fig1_graph, fig1_names):
        engine = RQTreeEngine.build(fig1_graph, seed=1)
        result = engine.query(fig1_names["s"], 0.5, method="lb")
        # LB keeps s, w (direct 0.6) and u (path s->u 0.5 >= 0.5).
        assert result.nodes == {
            fig1_names["s"],
            fig1_names["w"],
            fig1_names["u"],
        }

    def test_figure1_mc_matches_exact(self, fig1_graph, fig1_names):
        engine = RQTreeEngine.build(fig1_graph, seed=1)
        result = engine.query(
            fig1_names["s"], 0.5, method="mc", num_samples=4000, seed=2
        )
        expected = exact_reliability_search(fig1_graph, [fig1_names["s"]], 0.5)
        assert result.nodes == expected

    def test_lb_has_no_false_positives(self):
        for seed in range(5):
            g = uncertain_gnp(7, 0.25, seed=seed)
            if g.num_arcs > 16 or g.num_arcs == 0:
                continue
            engine = RQTreeEngine.build(g, seed=seed)
            for eta in (0.3, 0.6):
                truth = exact_reliability_search(g, [0], eta)
                answer = engine.query(0, eta, method="lb").nodes
                assert answer <= truth

    def test_mc_answer_subset_of_candidates(self, medium_engine):
        result = medium_engine.query(0, 0.5, method="mc", num_samples=200, seed=0)
        assert result.nodes <= result.candidate_result.candidates

    def test_multi_source_query(self, medium_engine):
        result = medium_engine.query([0, 100, 200], 0.6, method="lb")
        assert {0, 100, 200} <= result.nodes

    def test_multi_source_exact_mode(self, medium_engine):
        result = medium_engine.query(
            [0, 100], 0.6, method="lb", multi_source_mode="exact"
        )
        assert {0, 100} <= result.nodes

    def test_int_source_normalized(self, medium_engine):
        a = medium_engine.query(5, 0.6)
        b = medium_engine.query([5], 0.6)
        assert a.nodes == b.nodes

    def test_unknown_method_rejected(self, medium_engine):
        with pytest.raises(ValueError):
            medium_engine.query(0, 0.5, method="quantum")

    def test_empty_sources_rejected(self, medium_engine):
        with pytest.raises(EmptySourceSetError):
            medium_engine.query([], 0.5)


class TestQueryStatistics:
    def test_timing_fields(self, medium_engine):
        result = medium_engine.query(0, 0.6)
        assert result.candidate_seconds >= 0.0
        assert result.verification_seconds >= 0.0
        assert result.total_seconds == pytest.approx(
            result.candidate_seconds + result.verification_seconds
        )

    def test_ratio_ranges(self, medium_engine):
        result = medium_engine.query(0, 0.6)
        assert 0.0 <= result.height_ratio <= 1.0
        assert 0.0 < result.candidate_ratio <= 1.0

    def test_candidate_ratio_definition(self, medium_engine):
        result = medium_engine.query(0, 0.6)
        expected = len(result.candidate_result.candidates) / 300
        assert result.candidate_ratio == pytest.approx(expected)

    def test_lb_deterministic(self, medium_engine):
        a = medium_engine.query(9, 0.6, method="lb")
        b = medium_engine.query(9, 0.6, method="lb")
        assert a.nodes == b.nodes

    def test_mc_deterministic_given_seed(self, medium_engine):
        a = medium_engine.query(9, 0.6, method="mc", num_samples=100, seed=4)
        b = medium_engine.query(9, 0.6, method="mc", num_samples=100, seed=4)
        assert a.nodes == b.nodes


class TestCandidatesShortcut:
    def test_candidates_matches_query_phase(self, medium_engine):
        direct = medium_engine.candidates(3, 0.6)
        via_query = medium_engine.query(3, 0.6).candidate_result
        assert direct.candidates == via_query.candidates

    def test_multi_source_candidates(self, medium_engine):
        result = medium_engine.candidates([3, 200], 0.6)
        assert {3, 200} <= result.candidates
