"""Unit tests for the exact reliability oracle."""

from __future__ import annotations

import pytest

from repro import UncertainGraph
from repro.errors import EmptySourceSetError, NodeNotFoundError
from repro.graph.exact import (
    exact_outreach,
    exact_reliability,
    exact_reliability_bruteforce,
    exact_reliability_search,
)
from repro.graph.generators import uncertain_gnp, uncertain_path


class TestExactReliability:
    def test_single_arc(self):
        g = uncertain_path([0.7])
        assert exact_reliability(g, [0], 1) == pytest.approx(0.7)

    def test_series_path(self):
        g = uncertain_path([0.5, 0.5])
        assert exact_reliability(g, [0], 2) == pytest.approx(0.25)

    def test_parallel_routes(self):
        g = UncertainGraph(3)
        g.add_arc(0, 1, 0.5)
        g.add_arc(0, 2, 0.6)
        g.add_arc(1, 2, 1.0)
        # 1 - (1 - 0.6)(1 - 0.5) = 0.8
        assert exact_reliability(g, [0], 2) == pytest.approx(0.8)

    def test_figure1_example(self, fig1_graph, fig1_names):
        # Example 1 of the paper: R(s, u) = 0.65.
        value = exact_reliability(
            fig1_graph, [fig1_names["s"]], fig1_names["u"]
        )
        assert value == pytest.approx(0.65)

    def test_target_in_sources(self):
        g = uncertain_path([0.1])
        assert exact_reliability(g, [0], 0) == 1.0

    def test_unreachable_target(self):
        g = UncertainGraph(3)
        g.add_arc(0, 1, 0.9)
        assert exact_reliability(g, [0], 2) == 0.0

    def test_multi_source(self):
        g = UncertainGraph(3)
        g.add_arc(0, 2, 0.5)
        g.add_arc(1, 2, 0.5)
        assert exact_reliability(g, [0, 1], 2) == pytest.approx(0.75)

    def test_empty_sources_rejected(self):
        g = uncertain_path([0.5])
        with pytest.raises(EmptySourceSetError):
            exact_reliability(g, [], 1)

    def test_missing_nodes_rejected(self):
        g = uncertain_path([0.5])
        with pytest.raises(NodeNotFoundError):
            exact_reliability(g, [9], 1)
        with pytest.raises(NodeNotFoundError):
            exact_reliability(g, [0], 9)


class TestFactoringAgreesWithBruteforce:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        g = uncertain_gnp(6, 0.3, seed=seed)
        if g.num_arcs > 16:
            pytest.skip("graph too large for brute force")
        for target in range(1, g.num_nodes):
            expected = exact_reliability_bruteforce(g, [0], target)
            actual = exact_reliability(g, [0], target)
            assert actual == pytest.approx(expected, abs=1e-9)

    def test_bruteforce_arc_limit(self):
        g = uncertain_gnp(10, 0.5, seed=0)
        assert g.num_arcs > 24
        with pytest.raises(ValueError):
            exact_reliability_bruteforce(g, [0], 1)


class TestExactOutreach:
    def test_no_outside_nodes(self, fig1_graph):
        assert exact_outreach(fig1_graph, [0], range(5)) == 0.0

    def test_single_node_cluster(self):
        g = uncertain_path([0.7])
        assert exact_outreach(g, [0], [0]) == pytest.approx(0.7)

    def test_outreach_at_least_max_single_reliability(
        self, fig1_graph, fig1_names
    ):
        s = fig1_names["s"]
        cluster = {s, fig1_names["w"]}
        out = exact_outreach(fig1_graph, [s], cluster)
        for t in range(5):
            if t in cluster:
                continue
            assert out >= exact_reliability(fig1_graph, [s], t) - 1e-9

    def test_source_outside_cluster_rejected(self):
        g = uncertain_path([0.5])
        with pytest.raises(ValueError):
            exact_outreach(g, [0], [1])


class TestExactReliabilitySearch:
    def test_figure1_example1(self, fig1_graph, fig1_names):
        # RS({s}, 0.5) = {s, u, w} (paper, Example 1).
        answer = exact_reliability_search(fig1_graph, [fig1_names["s"]], 0.5)
        expected = {fig1_names["s"], fig1_names["u"], fig1_names["w"]}
        assert answer == expected

    def test_sources_always_in_answer(self):
        g = uncertain_path([0.01])
        assert 0 in exact_reliability_search(g, [0], 0.99)

    def test_low_threshold_includes_everything_reachable(self):
        g = uncertain_path([0.5, 0.5])
        answer = exact_reliability_search(g, [0], 0.01)
        assert answer == {0, 1, 2}

    def test_monotone_in_eta(self):
        g = uncertain_gnp(6, 0.35, seed=4)
        if g.num_arcs > 16:
            pytest.skip("too large")
        low = exact_reliability_search(g, [0], 0.2)
        high = exact_reliability_search(g, [0], 0.8)
        assert high <= low
