"""Tests for the estimator portfolio and the cost-based query planner.

Covers the contracts the portfolio introduces:

* every estimator agrees with the exact reliability oracle on small
  graphs (bit-exact for ``exact``, a K=20000 binomial bound for the
  samplers);
* the planner's decisions are pure functions of the query (same seed,
  same plan);
* the exact estimator falls back to seeded MC when any cap trips —
  including the in-flight state budget that can fire mid-computation;
* one typed :class:`InvalidMethodError` from the registry on every
  ``method=`` surface;
* registry-driven cacheability (the ``lb+``/``exact`` caching
  regression);
* ``planner.*`` counters and per-estimator latency histograms in the
  metrics snapshot;
* exact answers bit-identical across shard counts.
"""

from __future__ import annotations

import math

import pytest

from repro import RQTreeEngine, UncertainGraph
from repro.core.caching import CachingRQTreeEngine
from repro.core.detection import reliability_scores
from repro.errors import InvalidMethodError
from repro.estimators import (
    AUTO,
    EstimateRequest,
    PortfolioConfig,
    QueryPlanner,
    available_methods,
    get_estimator,
    is_cacheable,
    methods_supporting_max_hops,
    sampling_methods,
    treewidth_upper_bound,
    validate_method,
)
from repro.graph.exact import exact_reliability
from repro.graph.generators import uncertain_gnp, uncertain_path
from repro.resilience import QueryBudget
from repro.service.metrics import MetricsRegistry, get_registry
from repro.shard.engine import ShardedRQTreeEngine

ALL_METHODS = ("lb", "lb+", "mc", "rss", "lazy", "exact")
SAMPLERS = ("mc", "rss", "lazy")

#: Worlds for the sampler parity tests; with K = 20000 a true
#: probability p is estimated within ~4.5 standard deviations by
#: +/- 4.5 * sqrt(0.25 / K) ~= 0.016 (false-failure odds < 1e-4).
PARITY_WORLDS = 20000
PARITY_TOLERANCE = 4.5 * math.sqrt(0.25 / PARITY_WORLDS)


@pytest.fixture(scope="module")
def parity_graph():
    """A small sparse digraph the exact oracle can handle quickly
    (7 of 10 nodes reachable from node 0 with non-trivial mass)."""
    return uncertain_gnp(10, 0.15, (0.3, 0.95), seed=7)


@pytest.fixture(scope="module")
def parity_engine(parity_graph):
    return RQTreeEngine.build(parity_graph, seed=3)


@pytest.fixture(scope="module")
def parity_oracle(parity_graph):
    return {
        t: exact_reliability(parity_graph, [0], t)
        for t in range(parity_graph.num_nodes)
    }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_available_methods(self):
        assert available_methods() == (
            "auto", "lb", "lb+", "mc", "rss", "lazy", "exact",
        )
        assert AUTO not in available_methods(include_auto=False)

    def test_sampling_methods(self):
        assert set(sampling_methods()) == set(SAMPLERS)

    def test_unknown_method_is_typed(self):
        with pytest.raises(InvalidMethodError) as excinfo:
            get_estimator("bogus")
        assert excinfo.value.method == "bogus"
        assert "auto" in excinfo.value.accepted
        assert isinstance(excinfo.value, ValueError)

    def test_max_hops_validation(self):
        validate_method("lb", max_hops=2)
        with pytest.raises(InvalidMethodError) as excinfo:
            validate_method("lb+", max_hops=2)
        assert excinfo.value.feature == "max_hops"
        assert "lb+" not in methods_supporting_max_hops()

    def test_capability_flags(self):
        assert get_estimator("exact").exact
        assert get_estimator("lb").deterministic_unseeded
        assert not get_estimator("mc").deterministic_unseeded
        for name in SAMPLERS:
            assert get_estimator(name).samples_worlds


# ----------------------------------------------------------------------
# Exact-oracle parity
# ----------------------------------------------------------------------
class TestOracleParity:
    @pytest.mark.parametrize("method", SAMPLERS)
    def test_sampler_estimates_match_oracle(
        self, parity_engine, parity_oracle, method
    ):
        result = parity_engine.query(
            [0], 0.2, method=method, seed=97, num_samples=PARITY_WORLDS
        )
        checked = 0
        for node, value in result.estimates.items():
            assert value == pytest.approx(
                parity_oracle[node], abs=PARITY_TOLERANCE
            ), f"{method} diverged from the oracle at node {node}"
            checked += 1
        assert checked >= 2

    def test_exact_is_bit_exact(self, parity_engine, parity_oracle):
        result = parity_engine.query([0], 0.2, method="exact")
        assert result.estimator == "exact"
        assert result.worlds_used == 0
        checked = 0
        for node, value in result.estimates.items():
            # The candidate set covers every oracle-positive node here,
            # so the subgraph restriction loses nothing: equality is
            # exact, not approximate.
            assert value == pytest.approx(parity_oracle[node], abs=1e-12)
            checked += 1
        assert checked >= 2

    def test_exact_answer_matches_oracle_decisions(
        self, parity_engine, parity_oracle
    ):
        eta = 0.3
        result = parity_engine.query([0], eta, method="exact")
        oracle_answer = {
            t for t, r in parity_oracle.items() if r >= eta * (1 - 1e-9)
        }
        assert result.nodes == oracle_answer

    def test_bounds_never_exceed_oracle(self, parity_engine, parity_oracle):
        for method in ("lb", "lb+"):
            result = parity_engine.query([0], 0.2, method=method)
            for node, value in result.estimates.items():
                assert value <= parity_oracle[node] + 1e-9, (
                    f"{method} claimed a bound above the true reliability"
                )


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_auto_decision_is_deterministic(self, parity_engine):
        results = [
            parity_engine.query(
                [0], 0.3, method="auto", seed=5, num_samples=500
            )
            for _ in range(3)
        ]
        assert len({r.estimator for r in results}) == 1
        assert len({r.planner_reason for r in results}) == 1
        assert results[0].nodes == results[1].nodes == results[2].nodes
        assert results[0].estimates == results[1].estimates

    def test_auto_picks_exact_on_tiny_subgraph(self):
        # Sparse, low width, and a large sample request: exact's
        # predicted cost undercuts every sampler, so zero variance wins.
        g = uncertain_gnp(12, 0.12, (0.3, 0.95), seed=3)
        engine = RQTreeEngine.build(g, seed=1)
        result = engine.query(
            [0], 0.3, method="auto", seed=5, num_samples=20000
        )
        assert result.estimator == "exact"
        assert "zero variance" in result.planner_reason

    def test_trivial_batch_goes_to_lb(self):
        g = uncertain_path([0.05, 0.05])
        engine = RQTreeEngine.build(g, seed=1)
        result = engine.query([0], 0.9, method="auto")
        assert result.estimator == "lb"
        assert "trivial" in result.planner_reason

    def test_deadline_budget_prefers_wilson_mc(self):
        g = uncertain_gnp(60, 0.08, (0.4, 0.9), seed=8)
        engine = RQTreeEngine.build(
            g, seed=2,
            planner_config=PortfolioConfig(exact_node_cap=0),
        )
        result = engine.query(
            [0], 0.25, method="auto", seed=3, num_samples=4000,
            budget=QueryBudget(deadline_seconds=5.0),
        )
        assert result.estimator == "mc"
        assert "Wilson" in result.planner_reason

    def test_plan_is_pure(self, parity_engine):
        request = EstimateRequest(
            graph=parity_engine.graph,
            sources=[0],
            eta=0.3,
            candidates=set(range(parity_engine.graph.num_nodes)),
            seed=5,
        )
        planner = QueryPlanner()
        first = planner.plan(request)
        second = planner.plan(request)
        assert first.estimator == second.estimator
        assert first.reason == second.reason
        assert first.predicted_seconds == second.predicted_seconds


# ----------------------------------------------------------------------
# Exact fallback
# ----------------------------------------------------------------------
class TestExactFallback:
    def test_width_cap_forces_seeded_mc(self):
        g = uncertain_gnp(12, 0.2, (0.4, 0.9), seed=13)
        engine = RQTreeEngine.build(
            g, seed=1, planner_config=PortfolioConfig(exact_width_cap=0),
        )
        result = engine.query([0], 0.2, method="exact", num_samples=400)
        assert result.estimator == "mc"
        assert "exact fallback" in result.planner_reason
        assert "exceeds cap" in result.planner_reason
        # Deterministic despite no caller seed: the fallback derives one.
        again = engine.query([0], 0.2, method="exact", num_samples=400)
        assert result.nodes == again.nodes
        assert result.estimates == again.estimates

    def test_state_budget_trips_mid_computation(self, parity_graph):
        """The width probe can pass while the traversal still explodes;
        the in-flight state budget must catch that and fall back."""
        engine = RQTreeEngine.build(
            parity_graph, seed=1,
            planner_config=PortfolioConfig(exact_state_cap=1),
        )
        result = engine.query([0], 0.2, method="exact", num_samples=300)
        assert result.estimator == "mc"
        assert "state budget 1 exceeded mid-computation" in (
            result.planner_reason
        )

    def test_fallback_counter_increments(self, parity_graph):
        registry = get_registry()
        before = registry.counter("planner.exact_fallbacks").value
        engine = RQTreeEngine.build(
            parity_graph, seed=1,
            planner_config=PortfolioConfig(exact_width_cap=0),
        )
        engine.query([0], 0.2, method="exact", num_samples=100)
        after = registry.counter("planner.exact_fallbacks").value
        assert after == before + 1


# ----------------------------------------------------------------------
# One typed error on every surface
# ----------------------------------------------------------------------
class TestInvalidMethodSurfaces:
    def test_engine_query(self, parity_engine):
        with pytest.raises(InvalidMethodError, match="'auto'"):
            parity_engine.query([0], 0.3, method="montecarlo")

    def test_engine_max_hops_mismatch(self, parity_engine):
        with pytest.raises(InvalidMethodError, match="max_hops"):
            parity_engine.query([0], 0.3, method="lb+", max_hops=2)

    def test_detection_scores(self, parity_engine):
        with pytest.raises(InvalidMethodError):
            reliability_scores(parity_engine, [0], 0.3, method="bogus")

    def test_caching_engine(self, parity_engine):
        caching = CachingRQTreeEngine(parity_engine)
        with pytest.raises(InvalidMethodError):
            caching.query([0], 0.3, method="bogus", seed=1)

    def test_sharded_engine(self, grid_graph):
        engine = ShardedRQTreeEngine.build(
            grid_graph, shards=2, mode="inline", seed=0
        )
        try:
            with pytest.raises(InvalidMethodError):
                engine.query([0], 0.4, method="bogus")
            with pytest.raises(InvalidMethodError, match="max_hops"):
                engine.query([0], 0.4, method="exact", max_hops=2)
        finally:
            engine.close()

    def test_service_submit(self, parity_engine):
        from repro.service.server import ReliabilityService

        service = ReliabilityService(parity_engine, workers=1)
        try:
            with pytest.raises(InvalidMethodError):
                service.submit([0], 0.3, method="bogus")
        finally:
            service.stop()


# ----------------------------------------------------------------------
# Cacheability from the registry (the lb+/exact caching regression)
# ----------------------------------------------------------------------
class TestCacheability:
    def test_deterministic_methods_cache_unseeded(self):
        for method in ("lb", "lb+", "exact"):
            assert is_cacheable(method, None), method
        for method in SAMPLERS + (AUTO,):
            assert not is_cacheable(method, None), method

    def test_everything_caches_with_a_seed(self):
        for method in available_methods():
            assert is_cacheable(method, 7), method

    def test_unknown_methods_never_cache(self):
        assert not is_cacheable("bogus", 7)

    def test_unseeded_packing_hits_the_cache(self, parity_engine):
        """Regression: ``lb+`` is deterministic, but the old predicate
        (``method == "lb" or seed is not None``) bypassed the cache for
        every unseeded non-lb query."""
        caching = CachingRQTreeEngine(parity_engine)
        first = caching.query([0], 0.3, method="lb+")
        second = caching.query([0], 0.3, method="lb+")
        assert caching.stats.hits == 1
        assert caching.stats.bypasses == 0
        assert first.nodes == second.nodes

    def test_unseeded_exact_hits_the_cache(self, parity_engine):
        caching = CachingRQTreeEngine(parity_engine)
        caching.query([0], 0.3, method="exact")
        caching.query([0], 0.3, method="exact")
        assert caching.stats.hits == 1

    def test_unseeded_auto_bypasses(self, parity_engine):
        caching = CachingRQTreeEngine(parity_engine)
        caching.query([0], 0.3, method="auto")
        caching.query([0], 0.3, method="auto")
        assert caching.stats.hits == 0
        assert caching.stats.bypasses == 2


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestPlannerMetrics:
    def test_decision_counters_and_latency_histograms(self, parity_graph):
        registry = MetricsRegistry()
        engine = RQTreeEngine.build(parity_graph, seed=1)
        from repro.service import metrics as metrics_module

        previous = metrics_module.get_registry
        metrics_module.get_registry = lambda: registry
        try:
            engine.query([0], 0.3, method="auto", seed=5, num_samples=200)
            engine.query([0], 0.3, method="lazy", seed=5, num_samples=200)
        finally:
            metrics_module.get_registry = previous
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["planner.decisions"] == 1
        per_estimator = [
            name for name in counters
            if name.startswith("planner.decisions.")
        ]
        assert len(per_estimator) == 1
        assert counters[per_estimator[0]] == 1
        histograms = snapshot["histograms"]
        assert "planner.plan_seconds" in histograms
        assert "planner.cost_error_seconds" in histograms
        assert "planner.regret_seconds" in histograms
        assert histograms["estimator.lazy.seconds"]["count"] >= 1


# ----------------------------------------------------------------------
# Shard-count independence of the exact path
# ----------------------------------------------------------------------
class TestShardExactIndependence:
    def test_bit_identical_across_shard_counts(self, grid_graph):
        results = {}
        for shards in (1, 2, 4):
            engine = ShardedRQTreeEngine.build(
                grid_graph, shards=shards, mode="inline", seed=0
            )
            try:
                results[shards] = engine.query([0], 0.3, method="exact")
            finally:
                engine.close()
        baseline = results[1]
        assert baseline.estimator in ("exact", "mc")
        for shards in (2, 4):
            other = results[shards]
            assert other.nodes == baseline.nodes
            assert other.estimates == baseline.estimates
            assert other.statuses == baseline.statuses
            assert other.estimator == baseline.estimator


# ----------------------------------------------------------------------
# Treewidth probe
# ----------------------------------------------------------------------
class TestTreewidthProbe:
    def test_path_has_width_one(self):
        g = uncertain_path([0.5, 0.5, 0.5, 0.5])
        assert treewidth_upper_bound(g, set(range(5))) == 1

    def test_clique_width_is_n_minus_one(self):
        g = UncertainGraph(5)
        for u in range(5):
            for v in range(5):
                if u != v:
                    g.add_arc(u, v, 0.5)
        assert treewidth_upper_bound(g, set(range(5))) == 4

    def test_abort_above_returns_sentinel(self):
        g = UncertainGraph(6)
        for u in range(6):
            for v in range(6):
                if u != v:
                    g.add_arc(u, v, 0.5)
        assert treewidth_upper_bound(g, set(range(6)), abort_above=2) == 3
