"""Failure-injection tests: corrupted inputs must fail loudly and early.

A production library's error behaviour is part of its contract: a
corrupted index or malformed graph file must raise a typed, descriptive
exception at load time — never return silently wrong query answers.
"""

from __future__ import annotations

import json

import pytest

from repro import RQTree, RQTreeEngine, UncertainGraph
from repro.core.worldindex import WorldIndex
from repro.errors import (
    GraphError,
    IndexCorruptionError,
    InvalidProbabilityError,
)
from repro.graph.generators import nethept_like, uncertain_path
from repro.graph.io import graph_from_json, read_edge_list


@pytest.fixture()
def valid_tree_doc():
    graph = nethept_like(n=20, seed=0)
    engine = RQTreeEngine.build(graph, seed=0)
    return engine.tree.to_json()


class TestCorruptedIndexDocuments:
    def test_rewired_leaf_is_merely_a_different_valid_tree(
        self, valid_tree_doc
    ):
        # Moving a leaf under another parent yields a *different* but
        # still structurally valid hierarchy (any partition hierarchy
        # is a legal RQ-tree) — the loader must accept it.  This pins
        # down the intended semantics: structure corruption means
        # violated invariants, not merely unexpected shapes.
        doc = json.loads(json.dumps(valid_tree_doc))
        leaves = [
            i for i, members in enumerate(doc["leaf_members"])
            if members is not None
        ]
        moved = leaves[-1]
        target_parent = doc["parents"][leaves[0]]
        if doc["parents"][moved] == target_parent:
            target_parent = doc["parents"][leaves[1]]
        doc["parents"][moved] = target_parent
        tree = RQTree.from_json(doc)
        tree.validate()

    def test_leaf_member_out_of_range(self, valid_tree_doc):
        # A leaf claiming a node id beyond the graph breaks the
        # root-covers-everything invariant.
        doc = json.loads(json.dumps(valid_tree_doc))
        leaves = [
            i for i, members in enumerate(doc["leaf_members"])
            if members is not None
        ]
        doc["leaf_members"][leaves[0]] = [doc["num_graph_nodes"] + 3]
        with pytest.raises(IndexCorruptionError):
            RQTree.from_json(doc)

    def test_duplicate_leaf_member(self, valid_tree_doc):
        doc = json.loads(json.dumps(valid_tree_doc))
        leaves = [
            i for i, members in enumerate(doc["leaf_members"])
            if members is not None
        ]
        doc["leaf_members"][leaves[0]] = doc["leaf_members"][leaves[1]]
        with pytest.raises(IndexCorruptionError):
            RQTree.from_json(doc)

    def test_wrong_node_count(self, valid_tree_doc):
        doc = json.loads(json.dumps(valid_tree_doc))
        doc["num_graph_nodes"] = doc["num_graph_nodes"] + 5
        with pytest.raises(IndexCorruptionError):
            RQTree.from_json(doc)

    def test_truncated_document(self, valid_tree_doc):
        doc = json.loads(json.dumps(valid_tree_doc))
        del doc["parents"]
        with pytest.raises((IndexCorruptionError, KeyError)):
            RQTree.from_json(doc)

    def test_engine_rejects_foreign_index(self):
        graph_small = nethept_like(n=20, seed=0)
        graph_large = nethept_like(n=30, seed=0)
        engine = RQTreeEngine.build(graph_small, seed=0)
        with pytest.raises(ValueError):
            RQTreeEngine(graph_large, engine.tree)


class TestCorruptedGraphDocuments:
    def test_arc_probability_out_of_range(self):
        doc = {
            "format": "repro-uncertain-graph",
            "version": 1,
            "num_nodes": 2,
            "arcs": [[0, 1, 1.5]],
        }
        with pytest.raises(InvalidProbabilityError):
            graph_from_json(doc)

    def test_arc_referencing_missing_node(self):
        doc = {
            "format": "repro-uncertain-graph",
            "version": 1,
            "num_nodes": 2,
            "arcs": [[0, 9, 0.5]],
        }
        with pytest.raises(Exception):
            graph_from_json(doc)

    def test_edge_list_with_binary_garbage(self, tmp_path):
        path = tmp_path / "garbage.txt"
        path.write_bytes(b"0 1 0.5\n\x00\x01\x02 nonsense\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_edge_list_with_negative_probability(self, tmp_path):
        path = tmp_path / "neg.txt"
        path.write_text("0 1 -0.5\n")
        with pytest.raises(InvalidProbabilityError):
            read_edge_list(path)


class TestCorruptedWorldIndex:
    def test_world_arcs_beyond_node_range_detected_at_query(self):
        g = uncertain_path([0.5])
        doc = WorldIndex(g, num_worlds=3, seed=0).to_json()
        doc["num_nodes"] = 1  # arcs now reference node 1 out of range
        index = WorldIndex.from_json(doc)
        # Queries validate their inputs against num_nodes.
        from repro.errors import NodeNotFoundError

        with pytest.raises(NodeNotFoundError):
            index.query(1, 0.5)

    def test_missing_worlds_key(self):
        with pytest.raises((GraphError, KeyError)):
            WorldIndex.from_json(
                {"format": "repro-world-index", "num_nodes": 2,
                 "num_worlds": 3, "seed": 0}
            )


class TestDegenerateQueries:
    def test_query_on_arc_free_graph(self):
        graph = UncertainGraph(5)
        engine = RQTreeEngine.build(graph, seed=0)
        result = engine.query(2, 0.5)
        assert result.nodes == {2}

    def test_query_on_single_node_graph(self):
        graph = UncertainGraph(1)
        engine = RQTreeEngine.build(graph, seed=0)
        assert engine.query(0, 0.5).nodes == {0}

    def test_all_sources_query(self):
        graph = uncertain_path([0.5, 0.5])
        engine = RQTreeEngine.build(graph, seed=0)
        result = engine.query([0, 1, 2], 0.9)
        assert result.nodes == {0, 1, 2}

    def test_near_zero_and_near_one_eta(self):
        graph = uncertain_path([0.5, 0.5])
        engine = RQTreeEngine.build(graph, seed=0)
        everything = engine.query(0, 1e-9).nodes
        assert everything == {0, 1, 2}
        almost_nothing = engine.query(0, 1 - 1e-9).nodes
        assert almost_nothing == {0}
