"""Tests for the network-hardening application."""

from __future__ import annotations

import pytest

from repro import UncertainGraph
from repro.apps.hardening import greedy_hardening
from repro.graph.generators import nethept_like, uncertain_path


class TestGreedyHardening:
    def test_path_graph_upgrades_weak_link(self):
        # 0 -(0.9)-> 1 -(0.3)-> 2: at eta = 0.5 only {0, 1} is reliable;
        # upgrading the weak link adds node 2.
        g = uncertain_path([0.9, 0.3])
        plan = greedy_hardening(g, [0], budget=1, eta=0.5)
        assert plan.baseline_size == 2
        assert plan.upgrades == [(1, 2)]
        assert plan.reliable_sizes == [3]
        assert plan.gain == 1

    def test_budget_consumed_in_order_of_gain(self):
        # A star of weak arcs: each upgrade adds exactly one node.
        g = UncertainGraph(5)
        for v in range(1, 5):
            g.add_arc(0, v, 0.3)
        plan = greedy_hardening(g, [0], budget=3, eta=0.5)
        assert len(plan.upgrades) == 3
        assert plan.reliable_sizes == [2, 3, 4]

    def test_stops_when_no_gain_possible(self):
        # Everything already reliable: no upgrade helps.
        g = uncertain_path([0.9, 0.9])
        plan = greedy_hardening(g, [0], budget=5, eta=0.5)
        assert plan.upgrades == []
        assert plan.gain == 0

    def test_reliable_sizes_monotone(self):
        g = nethept_like(n=80, seed=2)
        source = next(u for u in g.nodes() if g.out_degree(u) > 1)
        plan = greedy_hardening(
            g, [source], budget=3, eta=0.5, max_candidates_per_round=8
        )
        sizes = [plan.baseline_size] + plan.reliable_sizes
        assert sizes == sorted(sizes)

    def test_input_graph_unchanged(self):
        g = uncertain_path([0.9, 0.3])
        arcs_before = sorted(g.arcs())
        greedy_hardening(g, [0], budget=1, eta=0.5)
        assert sorted(g.arcs()) == arcs_before

    def test_multi_source(self):
        g = UncertainGraph(4)
        g.add_arc(0, 2, 0.3)
        g.add_arc(1, 3, 0.3)
        plan = greedy_hardening(g, [0, 1], budget=2, eta=0.5)
        assert len(plan.upgrades) == 2
        assert plan.reliable_sizes[-1] == 4

    def test_invalid_budget(self):
        g = uncertain_path([0.5])
        with pytest.raises(ValueError):
            greedy_hardening(g, [0], budget=0, eta=0.5)

    def test_queries_accounted(self):
        g = uncertain_path([0.9, 0.3])
        plan = greedy_hardening(g, [0], budget=1, eta=0.5)
        assert plan.queries_issued >= 2  # baseline + >= 1 candidate
