"""Unit tests for the UncertainGraph data structure."""

from __future__ import annotations

import math

import pytest

from repro import UncertainGraph
from repro.errors import (
    GraphError,
    InvalidProbabilityError,
    NodeNotFoundError,
)


class TestConstruction:
    def test_empty_graph(self):
        g = UncertainGraph(0)
        assert g.num_nodes == 0
        assert g.num_arcs == 0
        assert list(g.arcs()) == []

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            UncertainGraph(-1)

    def test_basic_arc_insertion(self):
        g = UncertainGraph(3)
        g.add_arc(0, 1, 0.5)
        g.add_arc(1, 2, 0.25)
        assert g.num_arcs == 2
        assert g.probability(0, 1) == 0.5
        assert g.probability(1, 2) == 0.25

    def test_from_arcs_infers_node_count(self):
        g = UncertainGraph.from_arcs([(0, 5, 0.3), (2, 1, 0.7)])
        assert g.num_nodes == 6
        assert g.num_arcs == 2

    def test_from_arcs_explicit_node_count(self):
        g = UncertainGraph.from_arcs([(0, 1, 0.3)], n=10)
        assert g.num_nodes == 10

    def test_from_arcs_empty(self):
        g = UncertainGraph.from_arcs([])
        assert g.num_nodes == 0

    def test_add_node_returns_new_id(self):
        g = UncertainGraph(2)
        assert g.add_node() == 2
        assert g.num_nodes == 3

    def test_self_loop_is_dropped(self):
        g = UncertainGraph(2)
        g.add_arc(1, 1, 0.9)
        assert g.num_arcs == 0

    def test_probability_one_allowed(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 1.0)
        assert g.probability(0, 1) == 1.0


class TestProbabilityValidation:
    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5, float("nan")])
    def test_invalid_probability_rejected(self, bad):
        g = UncertainGraph(2)
        with pytest.raises(InvalidProbabilityError):
            g.add_arc(0, 1, bad)

    def test_non_numeric_probability_rejected(self):
        g = UncertainGraph(2)
        with pytest.raises(InvalidProbabilityError):
            g.add_arc(0, 1, "high")

    def test_error_reports_arc(self):
        g = UncertainGraph(2)
        with pytest.raises(InvalidProbabilityError) as exc:
            g.add_arc(0, 1, 2.0)
        assert exc.value.arc == (0, 1)
        assert exc.value.value == 2.0


class TestNoisyOrMerge:
    def test_parallel_arcs_merge(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 0.5)
        g.add_arc(0, 1, 0.5)
        assert g.num_arcs == 1
        assert g.probability(0, 1) == pytest.approx(0.75)

    def test_merge_is_commutative(self):
        g1 = UncertainGraph(2)
        g1.add_arc(0, 1, 0.3)
        g1.add_arc(0, 1, 0.6)
        g2 = UncertainGraph(2)
        g2.add_arc(0, 1, 0.6)
        g2.add_arc(0, 1, 0.3)
        assert g1.probability(0, 1) == pytest.approx(g2.probability(0, 1))

    def test_merge_never_exceeds_one(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 1.0)
        g.add_arc(0, 1, 0.9)
        assert g.probability(0, 1) == 1.0

    def test_antiparallel_arcs_are_distinct(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 0.4)
        g.add_arc(1, 0, 0.6)
        assert g.num_arcs == 2
        assert g.probability(0, 1) == 0.4
        assert g.probability(1, 0) == 0.6


class TestRemoval:
    def test_remove_arc(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 0.4)
        g.remove_arc(0, 1)
        assert g.num_arcs == 0
        assert not g.has_arc(0, 1)
        assert 0 not in g.predecessors(1)

    def test_remove_missing_arc_raises(self):
        g = UncertainGraph(2)
        with pytest.raises(GraphError):
            g.remove_arc(0, 1)


class TestInspection:
    def test_node_bounds_checked(self, fig1_graph):
        with pytest.raises(NodeNotFoundError):
            fig1_graph.successors(99)
        with pytest.raises(NodeNotFoundError):
            fig1_graph.add_arc(0, 99, 0.5)

    def test_contains_and_len(self, fig1_graph):
        assert 0 in fig1_graph
        assert 4 in fig1_graph
        assert 5 not in fig1_graph
        assert -1 not in fig1_graph
        assert len(fig1_graph) == 5

    def test_degrees(self, fig1_graph, fig1_names):
        s = fig1_names["s"]
        assert fig1_graph.out_degree(s) == 2
        assert fig1_graph.in_degree(s) == 0
        assert fig1_graph.degree(s) == 2

    def test_arcs_iteration_counts(self, fig1_graph):
        arcs = list(fig1_graph.arcs())
        assert len(arcs) == fig1_graph.num_arcs
        for u, v, p in arcs:
            assert fig1_graph.probability(u, v) == p

    def test_successors_predecessors_consistent(self, fig1_graph):
        for u, v, p in fig1_graph.arcs():
            assert fig1_graph.successors(u)[v] == p
            assert fig1_graph.predecessors(v)[u] == p

    def test_probability_of_missing_arc_raises(self, fig1_graph):
        with pytest.raises(GraphError):
            fig1_graph.probability(2, 0)


class TestDerivedViews:
    def test_reversed_flips_arcs(self, fig1_graph):
        rev = fig1_graph.reversed()
        assert rev.num_arcs == fig1_graph.num_arcs
        for u, v, p in fig1_graph.arcs():
            assert rev.probability(v, u) == p

    def test_copy_is_independent(self, fig1_graph):
        dup = fig1_graph.copy()
        dup.add_arc(2, 0, 0.5)
        assert dup.num_arcs == fig1_graph.num_arcs + 1
        assert not fig1_graph.has_arc(2, 0)

    def test_undirected_weights_accumulate_antiparallel(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 0.5)
        g.add_arc(1, 0, 0.5)
        weights = g.undirected_weights()
        assert set(weights) == {(0, 1)}
        assert weights[(0, 1)] == pytest.approx(2 * -math.log(0.5))

    def test_undirected_weights_clamp_probability_one(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 1.0)
        (weight,) = g.undirected_weights().values()
        assert math.isfinite(weight)
        assert weight > 20  # -log(1e-12)

    def test_total_probability_mass(self):
        g = UncertainGraph(3)
        g.add_arc(0, 1, 0.25)
        g.add_arc(1, 2, 0.5)
        assert g.total_probability_mass() == pytest.approx(0.75)


class TestSubgraphView:
    def test_membership_and_counts(self, fig1_graph, fig1_names):
        view = fig1_graph.subgraph(
            [fig1_names["s"], fig1_names["w"], fig1_names["u"]]
        )
        assert view.num_nodes == 3
        assert fig1_names["s"] in view
        assert fig1_names["t"] not in view
        # arcs inside {s, w, u}: s->w, s->u, w->u.
        assert view.num_arcs == 3

    def test_successor_iteration_filtered(self, fig1_graph, fig1_names):
        view = fig1_graph.subgraph([fig1_names["s"], fig1_names["u"]])
        successors = dict(view.successors(fig1_names["s"]))
        assert set(successors) == {fig1_names["u"]}

    def test_predecessor_iteration_filtered(self, fig1_graph, fig1_names):
        view = fig1_graph.subgraph([fig1_names["s"], fig1_names["u"]])
        predecessors = dict(view.predecessors(fig1_names["u"]))
        assert set(predecessors) == {fig1_names["s"]}

    def test_view_rejects_missing_nodes(self, fig1_graph):
        with pytest.raises(NodeNotFoundError):
            fig1_graph.subgraph([0, 99])

    def test_view_rejects_queries_outside_members(self, fig1_graph):
        view = fig1_graph.subgraph([0, 1])
        with pytest.raises(NodeNotFoundError):
            list(view.successors(2))

    def test_materialize_relabels_densely(self, fig1_graph, fig1_names):
        members = [fig1_names["s"], fig1_names["w"], fig1_names["u"]]
        sub, relabel = fig1_graph.subgraph(members).materialize()
        assert sub.num_nodes == 3
        assert sorted(relabel) == sorted(members)
        assert sorted(relabel.values()) == [0, 1, 2]
        # s->w survives with the same probability.
        assert sub.probability(
            relabel[fig1_names["s"]], relabel[fig1_names["w"]]
        ) == pytest.approx(0.6)
