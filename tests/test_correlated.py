"""Tests for the shared-fate correlated-arc model."""

from __future__ import annotations

import random

import pytest

from repro import UncertainGraph
from repro.errors import GraphError, InvalidProbabilityError
from repro.graph.correlated import (
    SharedFateModel,
    correlated_mc_search,
    exact_correlated_reliability,
)
from repro.graph.exact import exact_reliability
from repro.graph.generators import uncertain_path


def _two_arc_model(q: float = 0.5, p: float = 1.0) -> SharedFateModel:
    """0 -> 1 -> 2; both arcs share one fate group."""
    g = uncertain_path([p, p])
    return SharedFateModel(g, {(0, 1): 0, (1, 2): 0}, {0: q})


class TestModelConstruction:
    def test_valid_model(self):
        model = _two_arc_model()
        assert model.num_groups == 1

    def test_missing_arc_rejected(self):
        g = uncertain_path([0.5])
        with pytest.raises(GraphError):
            SharedFateModel(g, {(5, 6): 0}, {0: 0.5})

    def test_missing_group_probability_rejected(self):
        g = uncertain_path([0.5])
        with pytest.raises(GraphError):
            SharedFateModel(g, {(0, 1): 7}, {})

    def test_invalid_group_probability(self):
        g = uncertain_path([0.5])
        with pytest.raises(InvalidProbabilityError):
            SharedFateModel(g, {(0, 1): 0}, {0: 0.0})


class TestMarginals:
    def test_grouped_arc_marginal(self):
        model = _two_arc_model(q=0.5, p=0.8)
        assert model.marginal_probability(0, 1) == pytest.approx(0.4)

    def test_ungrouped_arc_marginal(self):
        g = uncertain_path([0.7, 0.7])
        model = SharedFateModel(g, {(0, 1): 0}, {0: 0.5})
        assert model.marginal_probability(1, 2) == pytest.approx(0.7)

    def test_marginal_graph(self):
        model = _two_arc_model(q=0.5, p=0.8)
        marginal = model.marginal_graph()
        assert marginal.probability(0, 1) == pytest.approx(0.4)
        assert marginal.probability(1, 2) == pytest.approx(0.4)


class TestExactOracle:
    def test_shared_fate_beats_independent_product(self):
        # Both arcs share a fate: R(0, 2) = q (arcs certain given alive)
        # whereas the independent marginals would give q^2.
        q = 0.5
        model = _two_arc_model(q=q, p=1.0)
        correlated = exact_correlated_reliability(model, [0], 2)
        assert correlated == pytest.approx(q)
        independent = exact_reliability(model.marginal_graph(), [0], 2)
        assert independent == pytest.approx(q * q)
        assert correlated > independent

    def test_conditional_coins_still_apply(self):
        model = _two_arc_model(q=0.5, p=0.8)
        # R = q * p^2 = 0.5 * 0.64.
        assert exact_correlated_reliability(model, [0], 2) == pytest.approx(
            0.32
        )

    def test_ungrouped_model_matches_independent(self):
        g = uncertain_path([0.6, 0.7])
        model = SharedFateModel(g, {}, {})
        assert exact_correlated_reliability(model, [0], 2) == pytest.approx(
            exact_reliability(g, [0], 2)
        )

    def test_target_in_sources(self):
        model = _two_arc_model()
        assert exact_correlated_reliability(model, [0], 0) == 1.0

    def test_size_limit(self):
        g = UncertainGraph(6)
        for u in range(5):
            for v in range(5):
                if u != v:
                    g.add_arc(u, v, 0.5)
        model = SharedFateModel(g, {}, {})
        with pytest.raises(ValueError):
            exact_correlated_reliability(model, [0], 5)


class TestSampling:
    def test_sampler_matches_exact(self):
        model = _two_arc_model(q=0.6, p=0.9)
        rng = random.Random(1)
        hits = 0
        trials = 5000
        for _ in range(trials):
            if 2 in model.sample_reachable([0], rng):
                hits += 1
        exact = exact_correlated_reliability(model, [0], 2)
        assert hits / trials == pytest.approx(exact, abs=0.02)

    def test_dead_group_blocks_all_member_arcs(self):
        # q extremely small: with a fixed seed where the group dies,
        # nothing beyond the source is reached.
        model = _two_arc_model(q=0.001, p=1.0)
        rng = random.Random(0)
        reached_counts = [
            len(model.sample_reachable([0], rng)) for _ in range(200)
        ]
        # The group is almost always dead: most samples reach only {0}.
        assert sum(1 for c in reached_counts if c == 1) > 150

    def test_max_hops(self):
        model = _two_arc_model(q=1.0, p=1.0)
        rng = random.Random(0)
        assert model.sample_reachable([0], rng, max_hops=1) == {0, 1}


class TestCorrelatedSearch:
    def test_search_matches_exact_threshold(self):
        model = _two_arc_model(q=0.6, p=1.0)
        answer = correlated_mc_search(model, [0], 0.5, num_samples=4000, seed=2)
        # R(0,1) = R(0,2) = 0.6 >= 0.5: all three nodes.
        assert answer == {0, 1, 2}

    def test_independence_approximation_underestimates(self):
        # With eta between q^2 and q, the marginal-graph answer misses
        # node 2 while the correlated truth includes it.
        from repro.reliability.montecarlo import mc_sampling_search

        model = _two_arc_model(q=0.6, p=1.0)
        eta = 0.5  # q = 0.6 > eta > q^2 = 0.36
        truth = correlated_mc_search(model, [0], eta, num_samples=4000, seed=3)
        approx = mc_sampling_search(
            model.marginal_graph(), 0, eta, num_samples=4000, seed=3
        ).nodes
        assert 2 in truth
        assert 2 not in approx

    def test_validation(self):
        model = _two_arc_model()
        from repro.errors import EmptySourceSetError

        with pytest.raises(EmptySourceSetError):
            correlated_mc_search(model, [], 0.5)
        with pytest.raises(ValueError):
            correlated_mc_search(model, [0], 0.5, num_samples=0)
