"""Anti-rot diff between docs/METRICS.md and the code's metric names.

The metrics reference is only useful if it is *complete* and *current*,
so this test scrapes every literal instrument registration in ``src/``
(``counter("...")`` / ``gauge("...")`` / ``histogram("...")``,
including f-strings) and diffs the set against the names documented in
the tables of ``docs/METRICS.md`` — in both directions:

* an undocumented registration fails (new metrics must be documented);
* a documented name with no registration fails (renames and removals
  must update the doc).

Dynamic f-string segments (``{method}``, ``{shard_id}``) and the doc's
``<angle bracket>`` placeholders are both normalized to ``*`` so the
comparison is on the stable shape of the name, not the label value.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
DOC_PATH = REPO_ROOT / "docs" / "METRICS.md"

#: Literal (and f-string) instrument registrations in the library.
_REGISTRATION = re.compile(
    r"\b(?:counter|gauge|histogram)\(\s*f?\"([^\"]+)\""
)
#: First backtick-quoted cell of a Markdown table row.
_DOC_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|", re.MULTILINE)


def _normalize_source(name: str) -> str:
    """``shard.{shard_id}.queries`` -> ``shard.*.queries`` etc."""
    return re.sub(r"\{[^}]+\}", "*", name)


def _normalize_doc(name: str) -> str:
    """``shard.<shard>.queries`` -> ``shard.*.queries`` etc."""
    return re.sub(r"<[^>]+>", "*", name)


def _source_names() -> set:
    names = set()
    for path in sorted(SRC_ROOT.rglob("*.py")):
        for match in _REGISTRATION.findall(
            path.read_text(encoding="utf-8")
        ):
            # "{status // 100}xx" normalizes to "*xx"; fold the literal
            # suffix into the wildcard so doc placeholders line up.
            names.add(
                re.sub(r"\*xx$", "*", _normalize_source(match))
            )
    return names


def _documented_names() -> set:
    return {
        re.sub(r"\*xx$", "*", _normalize_doc(match))
        for match in _DOC_ROW.findall(
            DOC_PATH.read_text(encoding="utf-8")
        )
        if match != "metric"  # the table header row
    }


def test_every_registered_metric_is_documented():
    missing = _source_names() - _documented_names()
    assert not missing, (
        "metrics registered in src/ but absent from docs/METRICS.md "
        f"(add a table row): {sorted(missing)}"
    )


def test_every_documented_metric_is_registered():
    stale = _documented_names() - _source_names()
    assert not stale, (
        "metrics documented in docs/METRICS.md but never registered "
        f"in src/ (rename or remove the row): {sorted(stale)}"
    )


def test_the_scrape_actually_found_the_stack():
    """Guard the guard: if the registration regex ever stops matching
    the codebase idiom, both diffs above would trivially pass on empty
    sets.  Anchor a few names that exist for as long as the serving
    stack does."""
    names = _source_names()
    for anchor in ("service.submitted", "service.http.requests",
                   "engine.queries", "shard.supervisor.respawns",
                   "live.epoch", "loadgen.requests"):
        assert anchor in names, anchor
    assert len(names) > 40
