"""One HTTP spec, two frontends.

While the legacy thread-per-connection server and the asyncio gateway
coexist, every protocol behaviour is asserted against *both* through
one parameterized suite: status codes on every error path, keep-alive
correctness (including the historical unread-body desync after a 404),
shed semantics, and bit-identical answers.  Gateway-only behaviour
(connection cap, ``/batch`` streaming) is tested separately at the
bottom.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.service.server import ReliabilityService

FRONTENDS = ("thread", "aio")


def _make_server(frontend, service, **kwargs):
    if frontend == "thread":
        from repro.service.http_api import ServiceHTTPServer

        return ServiceHTTPServer(service, host="127.0.0.1", port=0)
    from repro.service.aio_gateway import AioGateway

    return AioGateway(service, host="127.0.0.1", port=0, **kwargs)


@pytest.fixture(params=FRONTENDS)
def server(request, medium_engine):
    service = ReliabilityService(medium_engine, workers=2)
    with _make_server(request.param, service) as srv:
        yield srv


def _connect(server) -> http.client.HTTPConnection:
    host, port = server.address
    return http.client.HTTPConnection(host, port, timeout=60)


def _post(conn, path, body_obj=None, raw=None):
    body = raw if raw is not None else json.dumps(body_obj).encode()
    conn.request(
        "POST", path, body=body,
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    return response, response.read()


# ----------------------------------------------------------------------
# Happy path + parity
# ----------------------------------------------------------------------
def test_query_matches_direct_engine(server, medium_engine):
    conn = _connect(server)
    try:
        response, payload = _post(conn, "/query", {
            "sources": [3], "eta": 0.5, "method": "mc",
            "num_samples": 200, "seed": 4,
        })
        assert response.status == 200
        reply = json.loads(payload)
        expected = medium_engine.query(
            [3], 0.5, method="mc", num_samples=200, seed=4
        )
        assert reply["nodes"] == sorted(expected.nodes)
        assert reply["degraded"] is False
    finally:
        conn.close()


def test_quality_block_schema(server):
    """Every wire response carries the stable per-query quality block.

    Monitoring pipelines alert off these eight keys, so they must be
    present with exactly these names and JSON types on every answer —
    healthy, degraded, or shed — from both frontends.  ``estimator``
    and ``planner_reason`` expose the portfolio decision: which
    estimator actually ran and why; ``epoch`` is the update-plane
    generation the answer was computed against (0 on a frozen engine).
    """
    expected_keys = {
        "achieved_confidence", "worlds_used", "degraded",
        "degraded_reason", "shards_recovered", "estimator",
        "planner_reason", "epoch",
    }

    def assert_schema(reply):
        quality = reply["quality"]
        assert set(quality) == expected_keys
        assert isinstance(quality["achieved_confidence"], (int, float))
        assert isinstance(quality["worlds_used"], int)
        assert isinstance(quality["degraded"], bool)
        assert quality["degraded_reason"] is None or isinstance(
            quality["degraded_reason"], str
        )
        assert isinstance(quality["shards_recovered"], int)
        assert isinstance(quality["epoch"], int)
        assert isinstance(quality["estimator"], str)
        assert quality["planner_reason"] is None or isinstance(
            quality["planner_reason"], str
        )
        # The block mirrors the legacy top-level fields exactly.
        assert quality["achieved_confidence"] == reply["achieved_confidence"]
        assert quality["worlds_used"] == reply["worlds_used"]
        assert quality["degraded"] == reply["degraded"]
        assert quality["degraded_reason"] == reply["degraded_reason"]
        assert quality["estimator"] == reply["estimator"]

    conn = _connect(server)
    try:
        _, payload = _post(conn, "/query", {
            "sources": [3], "eta": 0.5, "method": "mc",
            "num_samples": 100, "seed": 4,
        })
        healthy = json.loads(payload)
        assert_schema(healthy)
        assert healthy["quality"]["degraded"] is False
        assert healthy["quality"]["shards_recovered"] == 0

        # A shed (degraded) answer carries the same block.
        service = server.service
        with service._lock:
            service._in_flight += service.admission.max_in_flight
        try:
            _, payload = _post(conn, "/query", {"sources": [1], "eta": 0.5})
            shed = json.loads(payload)
        finally:
            with service._lock:
                service._in_flight -= service.admission.max_in_flight
        assert_schema(shed)
        assert shed["quality"]["degraded"] is True
        assert shed["quality"]["degraded_reason"].startswith("shed:")
    finally:
        conn.close()


def test_healthz_and_metrics(server):
    conn = _connect(server)
    try:
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        health = json.loads(response.read())
        assert response.status == 200
        assert health["status"] == "ok"
        assert health["workers"] == 2

        conn.request("GET", "/metrics")
        response = conn.getresponse()
        snapshot = json.loads(response.read())
        assert response.status == 200
        assert "service" in snapshot
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Error paths: every failure mode has a status code, never a torn pipe
# ----------------------------------------------------------------------
@pytest.mark.parametrize("raw", [
    b"not json",
    b'{"eta": 0.5}',                      # missing sources
    b'{"sources": [3], "eta": "high"}',   # unparsable eta
    b"[1, 2, 3]",                         # non-object body
])
def test_malformed_bodies_are_400(server, raw):
    conn = _connect(server)
    try:
        response, payload = _post(conn, "/query", raw=raw)
        assert response.status == 400
        assert "error" in json.loads(payload)
    finally:
        conn.close()


def test_invalid_parameters_are_400(server):
    conn = _connect(server)
    try:
        # Valid JSON, invalid query: eta out of range raises a
        # ReproError inside the engine, which must surface as a 400.
        response, payload = _post(conn, "/query", {
            "sources": [3], "eta": 1.5,
        })
        assert response.status == 400
        assert "error" in json.loads(payload)
    finally:
        conn.close()


def test_unknown_paths_are_404(server):
    conn = _connect(server)
    try:
        conn.request("GET", "/nope")
        response = conn.getresponse()
        assert response.status == 404
        response.read()
        response, _ = _post(conn, "/definitely/not", {"x": 1})
        assert response.status == 404
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Keep-alive: the regression suite for the unread-body desync
# ----------------------------------------------------------------------
def test_keep_alive_reuses_connection(server):
    conn = _connect(server)
    try:
        for source in (1, 2, 3):
            response, payload = _post(conn, "/query", {
                "sources": [source], "eta": 0.5,
            })
            assert response.status == 200
            assert json.loads(payload)["sources"] == [source]
    finally:
        conn.close()


def test_keep_alive_survives_404_with_body(server):
    """A POST with a body to an unknown path must drain the body.

    Historical bug: the threaded server wrote its 404 without reading
    the request body, so the next request on the same connection was
    parsed starting at the stale body bytes and every later exchange
    desynchronized.
    """
    conn = _connect(server)
    try:
        response, _ = _post(
            conn, "/nope", {"sources": [1], "eta": 0.5, "pad": "x" * 256}
        )
        assert response.status == 404
        # The connection must still speak clean HTTP:
        response, payload = _post(conn, "/query", {
            "sources": [2], "eta": 0.5,
        })
        assert response.status == 200
        assert json.loads(payload)["sources"] == [2]
    finally:
        conn.close()


def test_keep_alive_survives_400_with_body(server):
    conn = _connect(server)
    try:
        response, _ = _post(conn, "/query", raw=b'{"bad": ' + b"x" * 512)
        assert response.status == 400
        response, payload = _post(conn, "/query", {
            "sources": [0], "eta": 0.5,
        })
        assert response.status == 200
        assert json.loads(payload)["sources"] == [0]
    finally:
        conn.close()


def test_connection_close_honoured(server):
    conn = _connect(server)
    try:
        conn.request(
            "POST", "/query",
            body=json.dumps({"sources": [1], "eta": 0.5}).encode(),
            headers={
                "Content-Type": "application/json",
                "Connection": "close",
            },
        )
        response = conn.getresponse()
        assert response.status == 200
        response.read()
        assert response.will_close
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Shedding stays a well-formed 200 with an actionable header
# ----------------------------------------------------------------------
def test_shed_query_is_degraded_200_with_retry_after(server):
    service = server.service
    # Deterministically trip the in-flight limit: the counter is what
    # admission checks, and holding it full avoids a timing-dependent
    # blocker query.
    with service._lock:
        service._in_flight += service.admission.max_in_flight
    try:
        conn = _connect(server)
        try:
            response, payload = _post(conn, "/query", {
                "sources": [1], "eta": 0.5,
            })
            assert response.status == 200
            reply = json.loads(payload)
            assert reply["degraded"] is True
            assert reply["degraded_reason"].startswith("shed:")
            assert response.getheader("Retry-After") is not None
        finally:
            conn.close()
    finally:
        with service._lock:
            service._in_flight -= service.admission.max_in_flight


# ----------------------------------------------------------------------
# Cross-frontend parity: byte-identical answers
# ----------------------------------------------------------------------
def test_frontends_agree_bit_for_bit(medium_engine):
    replies = {}
    for frontend in FRONTENDS:
        service = ReliabilityService(medium_engine, workers=2)
        with _make_server(frontend, service) as srv:
            conn = _connect(srv)
            try:
                _, payload = _post(conn, "/query", {
                    "sources": [5], "eta": 0.4, "method": "mc",
                    "num_samples": 300, "seed": 11,
                })
                reply = json.loads(payload)
                # Wall-clock instrumentation legitimately differs.
                reply.pop("candidate_seconds")
                reply.pop("verification_seconds")
                replies[frontend] = reply
            finally:
                conn.close()
    assert replies["thread"] == replies["aio"]


# ----------------------------------------------------------------------
# Gateway-only behaviour
# ----------------------------------------------------------------------
def test_gateway_connection_cap_503(medium_engine):
    service = ReliabilityService(medium_engine, workers=1)
    with _make_server("aio", service, max_connections=2) as srv:
        host, port = srv.address
        held = [http.client.HTTPConnection(host, port, timeout=30)
                for _ in range(2)]
        try:
            # Make both connections real (accepted, counted, kept alive).
            for conn in held:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
            overflow = http.client.HTTPConnection(host, port, timeout=30)
            overflow.request("GET", "/healthz")
            response = overflow.getresponse()
            assert response.status == 503
            assert response.getheader("Retry-After") is not None
            overflow.close()
        finally:
            for conn in held:
                conn.close()


def test_gateway_batch_streams_in_order(medium_engine):
    service = ReliabilityService(medium_engine, workers=2)
    with _make_server("aio", service) as srv:
        conn = _connect(srv)
        try:
            queries = [{"sources": [i], "eta": 0.5} for i in range(5)]
            queries.insert(2, {"eta": 0.5})  # malformed: missing sources
            response, payload = _post(conn, "/batch", {"queries": queries})
            assert response.status == 200
            assert response.getheader("Content-Type") == (
                "application/x-ndjson"
            )
            lines = [json.loads(line)
                     for line in payload.decode().strip().split("\n")]
            assert len(lines) == 6
            assert "error" in lines[2]
            expected = [q["sources"] for q in queries if "sources" in q]
            got = [line["sources"] for line in lines if "sources" in line]
            assert got == expected
            # The connection is still usable after a chunked response.
            response, payload = _post(conn, "/query", {
                "sources": [1], "eta": 0.5,
            })
            assert response.status == 200
        finally:
            conn.close()


def test_gateway_batch_rejects_non_array(medium_engine):
    service = ReliabilityService(medium_engine, workers=1)
    with _make_server("aio", service) as srv:
        conn = _connect(srv)
        try:
            response, payload = _post(conn, "/batch", {"queries": "nope"})
            assert response.status == 400
        finally:
            conn.close()


def test_gateway_many_concurrent_connections(medium_engine):
    """Hundreds of sockets held open at once — far beyond what a
    thread-per-connection frontend would tolerate comfortably."""
    service = ReliabilityService(medium_engine, workers=2)
    with _make_server("aio", service) as srv:
        host, port = srv.address
        conns = [http.client.HTTPConnection(host, port, timeout=60)
                 for _ in range(200)]
        try:
            for conn in conns:
                conn.request("GET", "/healthz")
            statuses = {conn.getresponse().status for conn in conns}
            assert statuses == {200}
        finally:
            for conn in conns:
                conn.close()
