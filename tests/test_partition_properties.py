"""Property-based tests for the partitioner and flow substrate."""

from __future__ import annotations

import math
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.flow.dinic import dinic_max_flow
from repro.flow.mincut import min_cut_arcs, multi_terminal_max_flow
from repro.flow.network import FlowNetwork
from repro.partition.coarsen import coarsen_once, contract, heavy_edge_matching
from repro.partition.refine import fm_pass, fm_refine
from repro.partition.wgraph import WeightedUndirectedGraph

COMMON = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def weighted_graphs(draw, max_nodes=12, max_edges=30):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
            ),
            max_size=max_edges,
        )
    )
    g = WeightedUndirectedGraph(n)
    for u, v, w in edges:
        if u != v:
            g.add_edge(u, v, w)
    return g


# ---------------------------------------------------------------------
# Matching / contraction invariants
# ---------------------------------------------------------------------
@COMMON
@given(weighted_graphs(), st.integers(0, 10))
def test_matching_is_involution(g, seed):
    mate = heavy_edge_matching(g, random.Random(seed))
    for u, v in enumerate(mate):
        assert mate[v] == u


@COMMON
@given(weighted_graphs(), st.integers(0, 10))
def test_matched_pairs_are_adjacent(g, seed):
    mate = heavy_edge_matching(g, random.Random(seed))
    for u, v in enumerate(mate):
        if v != u:
            assert v in g.adjacency[u]


@COMMON
@given(weighted_graphs(), st.integers(0, 10))
def test_contraction_preserves_total_node_weight(g, seed):
    mate = heavy_edge_matching(g, random.Random(seed))
    coarse, projection = contract(g, mate)
    assert coarse.total_node_weight() == g.total_node_weight()
    assert len(projection) == g.num_nodes
    assert set(projection) == set(range(coarse.num_nodes))


@COMMON
@given(weighted_graphs(), st.integers(0, 10))
def test_contraction_preserves_cut_weights(g, seed):
    # Any coarse bipartition lifts to a fine bipartition with the same
    # cut weight — the invariant the multilevel scheme rests on.
    mate = heavy_edge_matching(g, random.Random(seed))
    coarse, projection = contract(g, mate)
    if coarse.num_nodes < 2:
        return
    rng = random.Random(seed)
    coarse_side = [rng.random() < 0.5 for _ in range(coarse.num_nodes)]
    fine_side = [coarse_side[projection[u]] for u in range(g.num_nodes)]
    assert math.isclose(
        coarse.cut_weight(coarse_side),
        g.cut_weight(fine_side),
        rel_tol=1e-9,
        abs_tol=1e-9,
    )


# ---------------------------------------------------------------------
# FM refinement invariants
# ---------------------------------------------------------------------
@COMMON
@given(weighted_graphs(), st.integers(0, 10))
def test_fm_pass_never_worsens_cut(g, seed):
    rng = random.Random(seed)
    side = [rng.random() < 0.5 for _ in range(g.num_nodes)]
    before = g.cut_weight(side)
    fm_pass(g, side, max_imbalance=0.3)
    after = g.cut_weight(side)
    assert after <= before + 1e-9


@COMMON
@given(weighted_graphs(), st.integers(0, 10))
def test_fm_refine_respects_balance_window(g, seed):
    n = g.num_nodes
    # Start from a perfectly balanced split.
    side = [u < n // 2 for u in range(n)]
    total = g.total_node_weight()
    before = sum(g.node_weight[u] for u in range(n) if side[u])
    if not (0.3 * total <= before <= 0.7 * total):
        return
    fm_refine(g, side, max_imbalance=0.2)
    weight_true = sum(g.node_weight[u] for u in range(n) if side[u])
    assert 0.3 * total - 1e-9 <= weight_true <= 0.7 * total + 1e-9


# ---------------------------------------------------------------------
# Flow duality
# ---------------------------------------------------------------------
@COMMON
@given(
    st.integers(3, 8),
    st.lists(
        st.tuples(
            st.integers(0, 7),
            st.integers(0, 7),
            st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    ),
)
def test_max_flow_equals_extracted_cut_weight(n, raw_edges):
    edges = [(u % n, v % n, c) for u, v, c in raw_edges if u % n != v % n]
    if not edges:
        return
    value, network, s0, _ = multi_terminal_max_flow(n, edges, [0], [n - 1])
    if math.isinf(value):
        return
    cut = min_cut_arcs(network, s0, edges)
    assert math.isclose(
        value, sum(c for _, _, c in cut), rel_tol=1e-9, abs_tol=1e-9
    )


@COMMON
@given(
    st.integers(3, 8),
    st.lists(
        st.tuples(
            st.integers(0, 7),
            st.integers(0, 7),
            st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    ),
    st.floats(min_value=0.5, max_value=2.0),
)
def test_max_flow_scales_linearly_with_capacities(n, raw_edges, factor):
    edges = [(u % n, v % n, c) for u, v, c in raw_edges if u % n != v % n]
    if not edges:
        return
    net_a = FlowNetwork(n)
    net_b = FlowNetwork(n)
    for u, v, c in edges:
        net_a.add_edge(u, v, c)
        net_b.add_edge(u, v, c * factor)
    flow_a = dinic_max_flow(net_a, 0, n - 1)
    flow_b = dinic_max_flow(net_b, 0, n - 1)
    assert math.isclose(flow_b, flow_a * factor, rel_tol=1e-9, abs_tol=1e-9)
