"""Backend-parity tests: python vs numpy sampling backends.

The contract (see :mod:`repro.accel`): each backend is deterministic
per seed, both draw node-reachability indicators from the *same*
distribution, and their concrete samples differ for a given seed (they
consume their random streams in different orders).  Parity is therefore
checked statistically — against the exact brute-force oracle where the
graph is small enough, and backend-vs-backend within binomial
confidence bounds elsewhere.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.verification import verify_sampling
from repro.graph.exact import exact_hop_reliability, exact_reliability
from repro.graph.generators import uncertain_gnp, uncertain_path
from repro.graph.sampling import ReachabilityFrequencyEstimator
from repro.reliability.montecarlo import mc_reliability, mc_sampling_search

BACKENDS = ("python", "numpy")

#: Worlds for exact-oracle agreement on tiny (<= 10 node) graphs.
K_EXACT = 20_000


def binomial_bound(p: float, k: int, sigmas: float = 5.0) -> float:
    """A ``sigmas``-sigma band around a frequency estimated from k coins."""
    return sigmas * math.sqrt(max(p * (1.0 - p), 1e-4) / k) + 2.0 / k


# ----------------------------------------------------------------------
# Same-seed determinism, per backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_same_seed_same_frequencies(fig1_graph, backend):
    runs = [
        ReachabilityFrequencyEstimator(
            fig1_graph, [0], seed=123, backend=backend
        ).run(400).frequencies()
        for _ in range(2)
    ]
    assert runs[0] == runs[1]
    assert runs[0] != ReachabilityFrequencyEstimator(
        fig1_graph, [0], seed=124, backend=backend
    ).run(400).frequencies()


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_resolution_is_reported(fig1_graph, backend):
    estimator = ReachabilityFrequencyEstimator(
        fig1_graph, [0], seed=0, backend=backend
    )
    assert estimator.backend == backend


# ----------------------------------------------------------------------
# Exact-oracle agreement on <= 10-node graphs (K = 20000)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_exact_oracle_agreement_figure1(fig1_graph, backend):
    estimator = ReachabilityFrequencyEstimator(
        fig1_graph, [0], seed=7, backend=backend
    ).run(K_EXACT)
    freqs = estimator.frequencies()
    for target in range(fig1_graph.num_nodes):
        exact = exact_reliability(fig1_graph, [0], target)
        estimate = freqs.get(target, 0.0)
        assert abs(estimate - exact) < binomial_bound(exact, K_EXACT), (
            target, estimate, exact
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_exact_oracle_agreement_path(backend):
    graph = uncertain_path([0.9, 0.8, 0.7, 0.6])
    estimator = ReachabilityFrequencyEstimator(
        graph, [0], seed=21, backend=backend
    ).run(K_EXACT)
    freqs = estimator.frequencies()
    for target in range(graph.num_nodes):
        exact = exact_reliability(graph, [0], target)
        assert abs(freqs.get(target, 0.0) - exact) < binomial_bound(
            exact, K_EXACT
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_exact_oracle_agreement_multi_source(fig1_graph, backend):
    estimator = ReachabilityFrequencyEstimator(
        fig1_graph, [0, 2], seed=33, backend=backend
    ).run(K_EXACT)
    freqs = estimator.frequencies()
    for target in range(fig1_graph.num_nodes):
        exact = exact_reliability(fig1_graph, [0, 2], target)
        assert abs(freqs.get(target, 0.0) - exact) < binomial_bound(
            exact, K_EXACT
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_exact_oracle_agreement_max_hops(fig1_graph, backend):
    estimator = ReachabilityFrequencyEstimator(
        fig1_graph, [0], seed=5, backend=backend, max_hops=2
    ).run(K_EXACT)
    freqs = estimator.frequencies()
    for target in range(fig1_graph.num_nodes):
        exact = exact_hop_reliability(fig1_graph, [0], target, 2)
        assert abs(freqs.get(target, 0.0) - exact) < binomial_bound(
            exact, K_EXACT
        ), (target, freqs.get(target, 0.0), exact)


@pytest.mark.parametrize("backend", BACKENDS)
def test_exact_oracle_agreement_allowed(fig1_graph, fig1_names, backend):
    # Restrict to a candidate set and compare against the exact
    # reliability of the induced subgraph.
    removed = fig1_names["v"]
    allowed = set(range(fig1_graph.num_nodes)) - {removed}
    induced = fig1_graph.copy()
    for v, _ in list(induced.successors(removed).items()):
        induced.remove_arc(removed, v)
    for u, _ in list(induced.predecessors(removed).items()):
        induced.remove_arc(u, removed)
    estimator = ReachabilityFrequencyEstimator(
        fig1_graph, [0], seed=13, backend=backend, allowed=allowed
    ).run(K_EXACT)
    freqs = estimator.frequencies()
    assert freqs.get(removed, 0.0) == 0.0
    for target in sorted(allowed):
        exact = exact_reliability(induced, [0], target)
        assert abs(freqs.get(target, 0.0) - exact) < binomial_bound(
            exact, K_EXACT
        )


# ----------------------------------------------------------------------
# Backend-vs-backend agreement on random ER graphs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("er_seed", [1, 2])
def test_backends_agree_on_er_graphs(er_seed):
    n, k = 250, 4000
    graph = uncertain_gnp(n, 3.0 / n, seed=er_seed)
    freqs = {
        backend: ReachabilityFrequencyEstimator(
            graph, [0], seed=77, backend=backend
        ).run(k).frequencies()
        for backend in BACKENDS
    }
    # Each estimate carries binomial noise; their difference is bounded
    # by a sqrt(2)-inflated band around the (unknown) common mean.
    for node in range(n):
        a = freqs["python"].get(node, 0.0)
        b = freqs["numpy"].get(node, 0.0)
        p = (a + b) / 2.0
        assert abs(a - b) < math.sqrt(2.0) * binomial_bound(p, k), (
            node, a, b
        )


# ----------------------------------------------------------------------
# Backend knob threading through the public entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_mc_sampling_search_backend(fig1_graph, fig1_names, backend):
    result = mc_sampling_search(
        fig1_graph, fig1_names["s"], 0.5, num_samples=4000, seed=3,
        backend=backend,
    )
    # Example 1: RS({s}, 0.5) = {s, u, w}; R(s,u)=0.65 and R(s,w)=0.6
    # sit comfortably above the threshold, t and v well below.
    assert fig1_names["u"] in result.nodes
    assert fig1_names["w"] in result.nodes
    assert fig1_names["t"] not in result.nodes


@pytest.mark.parametrize("backend", BACKENDS)
def test_mc_reliability_backend(fig1_graph, fig1_names, backend):
    estimate = mc_reliability(
        fig1_graph, fig1_names["s"], fig1_names["u"],
        num_samples=8000, seed=9, backend=backend,
    )
    assert abs(estimate - 0.65) < 0.03  # Example 1: R(s, u) = 0.65


@pytest.mark.parametrize("backend", BACKENDS)
def test_verify_sampling_backend(fig1_graph, fig1_names, backend):
    candidates = {fig1_names["s"], fig1_names["u"], fig1_names["w"]}
    kept = verify_sampling(
        fig1_graph, [fig1_names["s"]], 0.4, candidates,
        num_samples=4000, seed=17, backend=backend,
    )
    # s -> u and s -> w don't route through v or t, so restricting to
    # the candidate set leaves their reliabilities (0.65 / 0.6) intact.
    assert kept == candidates


@pytest.mark.parametrize("backend", BACKENDS)
def test_engine_query_mc_backend(medium_engine, backend):
    result = medium_engine.query(
        [0], 0.3, method="mc", num_samples=300, seed=1, backend=backend
    )
    assert 0 in result.nodes
    assert result.method == "mc"


def test_engine_query_backends_agree(medium_engine):
    results = {
        backend: medium_engine.query(
            [5], 0.5, method="mc", num_samples=2000, seed=2, backend=backend
        ).nodes
        for backend in BACKENDS
    }
    # High-confidence members shouldn't flip between backends: allow a
    # small symmetric difference from nodes sitting on the threshold.
    disagreement = results["python"] ^ results["numpy"]
    union = results["python"] | results["numpy"]
    assert len(disagreement) <= max(2, len(union) // 5)


@pytest.mark.parametrize("backend", BACKENDS)
def test_expected_spread_backend(fig1_graph, backend):
    from repro.influence.spread import expected_spread_mc

    spread = expected_spread_mc(
        fig1_graph, [0], num_samples=8000, seed=4, backend=backend
    )
    # sigma({v0}) = 1 + sum_t R(v0, t) over the other five nodes.
    exact = 1.0 + sum(
        exact_reliability(fig1_graph, [0], t)
        for t in range(1, fig1_graph.num_nodes)
    )
    assert abs(spread - exact) < 0.15


# ----------------------------------------------------------------------
# uint8 vs uint64 lane-width parity: byte-identical, not just statistical
# ----------------------------------------------------------------------
#: Every seeded numpy-backend config exercised above, replayed at both
#: lane widths.  Lane width only changes the word size the kernel ORs
#: with — the coin bits and chunk partition are identical — so the
#: frequencies must match *exactly*, unlike the cross-backend checks.
LANE_PARITY_CONFIGS = [
    ("fig1", dict(seed=123), 400),
    ("fig1", dict(seed=7), K_EXACT),
    ("path", dict(seed=21), K_EXACT),
    ("fig1", dict(seed=33), K_EXACT),  # multi-source, see sources below
    ("fig1", dict(seed=5, max_hops=2), K_EXACT),
    ("fig1", dict(seed=13), K_EXACT),  # allowed-set, see below
    ("er1", dict(seed=77), 4000),
    ("er2", dict(seed=77), 4000),
]


@pytest.mark.parametrize("graph_key,kwargs,worlds", LANE_PARITY_CONFIGS)
def test_lane_widths_bit_identical(fig1_graph, graph_key, kwargs, worlds):
    if graph_key == "fig1":
        graph = fig1_graph
    elif graph_key == "path":
        graph = uncertain_path([0.9, 0.8, 0.7, 0.6])
    else:
        graph = uncertain_gnp(250, 3.0 / 250, seed=int(graph_key[-1]))
    sources = [0, 2] if kwargs["seed"] == 33 else [0]
    if kwargs["seed"] == 13:
        kwargs = dict(kwargs, allowed=set(range(graph.num_nodes)) - {4})
    freqs = {
        lanes: ReachabilityFrequencyEstimator(
            graph, sources, backend="numpy", lanes=lanes, **kwargs
        ).run(worlds).frequencies()
        for lanes in ("uint8", "uint64")
    }
    assert freqs["uint8"] == freqs["uint64"]


def test_lanes_env_override(fig1_graph, monkeypatch):
    from repro.accel.mc_kernel import resolve_lanes

    assert resolve_lanes(None) == "uint64"
    monkeypatch.setenv("REPRO_MC_LANES", "uint8")
    assert resolve_lanes(None) == "uint8"
    assert resolve_lanes("uint64") == "uint64"
    with pytest.raises(ValueError, match="lane width"):
        resolve_lanes("uint32")


def test_auto_backend_matches_threshold(fig1_graph, medium_graph):
    small = ReachabilityFrequencyEstimator(fig1_graph, [0], backend="auto")
    assert small.backend == "python"
    big = uncertain_gnp(600, 2.0 / 600, seed=8)
    large = ReachabilityFrequencyEstimator(big, [0], backend="auto")
    assert large.backend == "numpy"
    # an `allowed` restriction shrinks the effective problem size
    restricted = ReachabilityFrequencyEstimator(
        big, [0], allowed=set(range(50)), backend="auto"
    )
    assert restricted.backend == "python"
