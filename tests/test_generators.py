"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import math
import random

import pytest

from repro.graph.generators import (
    biomine_like,
    dblp_like,
    figure1_graph,
    flickr_like,
    hierarchical_community_arcs,
    lastfm_like,
    nethept_like,
    preferential_attachment_arcs,
    uncertain_cycle,
    uncertain_gnp,
    uncertain_grid,
    uncertain_path,
    uncertain_random_dag,
    webgraph_like,
)


def _probabilities(graph):
    return [p for _, _, p in graph.arcs()]


class TestStructuredGenerators:
    def test_figure1_matches_paper_bounds(self):
        g, names = figure1_graph()
        assert g.num_nodes == 5
        assert g.num_arcs == 8
        assert g.probability(names["s"], names["w"]) == 0.6

    def test_path(self):
        g = uncertain_path([0.1, 0.2, 0.3])
        assert g.num_nodes == 4
        assert g.num_arcs == 3
        assert g.probability(2, 3) == pytest.approx(0.3)

    def test_cycle(self):
        g = uncertain_cycle(5, 0.4)
        assert g.num_arcs == 5
        assert g.probability(4, 0) == pytest.approx(0.4)

    def test_grid_shape(self):
        g = uncertain_grid(3, 4, 0.5)
        assert g.num_nodes == 12
        # 3*3 horizontal + 2*4 vertical undirected edges, both directions.
        assert g.num_arcs == 2 * (3 * 3 + 2 * 4)

    def test_grid_unidirectional(self):
        g = uncertain_grid(3, 3, 0.5, bidirectional=False)
        assert g.num_arcs == 3 * 2 + 2 * 3

    def test_gnp_determinism(self):
        a = uncertain_gnp(10, 0.3, seed=4)
        b = uncertain_gnp(10, 0.3, seed=4)
        assert sorted(a.arcs()) == sorted(b.arcs())

    def test_gnp_probability_range(self):
        g = uncertain_gnp(12, 0.4, existence_range=(0.25, 0.75), seed=1)
        assert all(0.25 <= p <= 0.75 for p in _probabilities(g))

    def test_random_dag_is_acyclic(self):
        g = uncertain_random_dag(20, 3.0, seed=2)
        for u, v, _ in g.arcs():
            assert u < v


class TestTopologyHelpers:
    def test_hierarchical_arcs_levels_cross_boundaries(self):
        rng = random.Random(0)
        arcs = hierarchical_community_arcs(64, 4.0, rng, decay=0.4)
        assert arcs
        for u, v in arcs:
            assert 0 <= u < 64 and 0 <= v < 64 and u != v

    def test_hierarchical_locality(self):
        # With small decay most edges stay within small blocks.
        rng = random.Random(1)
        arcs = hierarchical_community_arcs(1024, 4.0, rng, decay=0.3)
        local = sum(1 for u, v in arcs if abs(u - v) < 16)
        assert local / len(arcs) > 0.6

    def test_hierarchical_tiny_inputs(self):
        rng = random.Random(0)
        assert hierarchical_community_arcs(0, 3.0, rng) == []
        assert hierarchical_community_arcs(1, 3.0, rng) == []

    def test_preferential_attachment_degree_skew(self):
        rng = random.Random(0)
        arcs = preferential_attachment_arcs(300, 3, rng)
        degree = {}
        for u, v in arcs:
            degree[v] = degree.get(v, 0) + 1
        assert max(degree.values()) > 5 * (len(arcs) / 300)


class TestDatasetStandIns:
    @pytest.mark.parametrize(
        "factory",
        [dblp_like, flickr_like, biomine_like, lastfm_like, nethept_like],
    )
    def test_basic_contract(self, factory):
        g = factory(n=256, seed=3)
        assert g.num_nodes == 256
        assert g.num_arcs > 100
        assert all(0.0 < p <= 1.0 for p in _probabilities(g))

    @pytest.mark.parametrize(
        "factory",
        [dblp_like, flickr_like, biomine_like, lastfm_like, nethept_like,
         webgraph_like],
    )
    def test_determinism(self, factory):
        a = factory(n=128, seed=9)
        b = factory(n=128, seed=9)
        assert sorted(a.arcs()) == sorted(b.arcs())

    def test_dblp_mu_controls_probabilities(self):
        # Larger mu -> smaller probabilities (paper, Section 7.1).
        mean = {}
        for mu in (2.0, 5.0, 10.0):
            g = dblp_like(n=512, mu=mu, seed=0)
            probs = _probabilities(g)
            mean[mu] = sum(probs) / len(probs)
        assert mean[2.0] > mean[5.0] > mean[10.0]

    def test_dblp_probability_formula(self):
        # Every probability must equal 1 - exp(-c/mu) for integer c.
        g = dblp_like(n=256, mu=5.0, seed=1)
        for p in _probabilities(g):
            c = -5.0 * math.log(1.0 - p)
            assert c == pytest.approx(round(c), abs=1e-6)

    def test_dblp_arcs_are_bidirectional(self):
        g = dblp_like(n=256, seed=2)
        for u, v, p in g.arcs():
            assert g.probability(v, u) == pytest.approx(p)

    def test_nethept_constant_probability(self):
        g = nethept_like(n=256, seed=0)
        assert all(p == 0.5 for p in _probabilities(g))

    def test_lastfm_weighted_cascade(self):
        g = lastfm_like(n=256, seed=0)
        for u in g.nodes():
            deg = g.out_degree(u)
            for _, p in g.successors(u).items():
                assert p == pytest.approx(1.0 / deg)

    def test_webgraph_weighted_cascade(self):
        g = webgraph_like(n=512, seed=0)
        for u in g.nodes():
            deg = g.out_degree(u)
            for _, p in g.successors(u).items():
                assert p == pytest.approx(1.0 / deg)

    def test_biomine_probabilities_skew_high(self):
        g = biomine_like(n=512, seed=0)
        probs = _probabilities(g)
        assert sum(probs) / len(probs) > 0.55

    def test_flickr_probabilities_are_jaccard_like(self):
        g = flickr_like(n=256, seed=0)
        probs = _probabilities(g)
        assert all(0.02 <= p <= 1.0 for p in probs)
        # Homophily floor plus genuine overlap: some variation expected.
        assert len({round(p, 3) for p in probs}) > 5
