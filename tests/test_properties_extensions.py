"""Property-based tests for the extension features.

Companion to ``test_properties.py``: universally-quantified checks for
the functionality added beyond the paper's core (hop bounds, caching
transparency, dynamic maintenance, transforms, condensation, variance
reduction).
"""

from __future__ import annotations

import math
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    CachingRQTreeEngine,
    DynamicRQTreeEngine,
    RQTreeEngine,
    UncertainGraph,
)
from repro.graph.condense import contract_certain_sccs
from repro.graph.exact import (
    exact_hop_reliability,
    exact_reliability,
    exact_reliability_search,
)
from repro.graph.paths import hop_bounded_path_probabilities
from repro.graph.transforms import (
    power_probabilities,
    scale_probabilities,
    threshold_backbone,
)
from repro.reliability.variance_reduction import stratified_reliability

PROBS = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)


@st.composite
def small_uncertain_graphs(draw, max_nodes=6, max_arcs=12):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    arcs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1), PROBS),
            min_size=1,
            max_size=max_arcs,
        )
    )
    g = UncertainGraph(n)
    for u, v, p in arcs:
        if u != v:
            g.add_arc(u, v, p)
    return g


COMMON = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------
# Hop bounds
# ---------------------------------------------------------------------
@COMMON
@given(small_uncertain_graphs(), st.integers(0, 5))
def test_hop_bounded_path_is_lower_bound_of_hop_reliability(g, hops):
    if g.num_arcs > 14:
        return
    probs = hop_bounded_path_probabilities(g, [0], hops)
    for t, lower in probs.items():
        if t == 0:
            continue
        true = exact_hop_reliability(g, [0], t, hops)
        assert lower <= true + 1e-9


@COMMON
@given(small_uncertain_graphs())
def test_hop_reliability_monotone_in_budget(g):
    if g.num_arcs > 12:
        return
    target = g.num_nodes - 1
    previous = 0.0
    for hops in range(4):
        value = exact_hop_reliability(g, [0], target, hops)
        assert value >= previous - 1e-12
        previous = value
    assert exact_reliability(g, [0], target) >= previous - 1e-12


# ---------------------------------------------------------------------
# Transform monotonicity
# ---------------------------------------------------------------------
@COMMON
@given(small_uncertain_graphs(), st.floats(0.2, 0.9))
def test_scaling_down_never_increases_reliability(g, factor):
    if g.num_arcs > 14:
        return
    weakened = scale_probabilities(g, factor)
    target = g.num_nodes - 1
    assert (
        exact_reliability(weakened, [0], target)
        <= exact_reliability(g, [0], target) + 1e-9
    )


@COMMON
@given(small_uncertain_graphs(), st.floats(1.0, 3.0))
def test_powering_up_never_increases_reliability(g, exponent):
    if g.num_arcs > 14:
        return
    weakened = power_probabilities(g, exponent)
    target = g.num_nodes - 1
    assert (
        exact_reliability(weakened, [0], target)
        <= exact_reliability(g, [0], target) + 1e-9
    )


@COMMON
@given(small_uncertain_graphs(), st.floats(0.1, 0.9))
def test_backbone_reachability_implies_reliability(g, tau):
    # Any node reachable in the tau-backbone has reliability at least
    # tau^(path length) > 0; more simply, backbone reachability implies
    # nonzero reliability in the original graph.
    from repro.graph.traversal import bfs_reachable

    backbone = threshold_backbone(g, tau)
    if g.num_arcs > 14:
        return
    for t in bfs_reachable(backbone, [0]):
        if t == 0:
            continue
        assert exact_reliability(g, [0], t) > 0.0


# ---------------------------------------------------------------------
# Caching transparency and engine consistency
# ---------------------------------------------------------------------
@COMMON
@given(small_uncertain_graphs(), st.floats(0.1, 0.9))
def test_cached_engine_answers_match_uncached(g, eta):
    engine = RQTreeEngine.build(g, seed=0)
    cached = CachingRQTreeEngine(engine, capacity=8)
    direct = engine.query(0, eta).nodes
    first = cached.query(0, eta).nodes
    second = cached.query(0, eta).nodes  # served from cache
    assert first == direct
    assert second == direct


@COMMON
@given(
    small_uncertain_graphs(),
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), PROBS),
        min_size=1,
        max_size=5,
    ),
    st.floats(0.2, 0.8),
)
def test_dynamic_engine_matches_fresh_build_after_updates(g, updates, eta):
    dyn = DynamicRQTreeEngine(g.copy(), seed=0, damage_threshold=0.1)
    applied = g.copy()
    for u, v, p in updates:
        u %= g.num_nodes
        v %= g.num_nodes
        if u == v:
            continue
        dyn.add_arc(u, v, p)
        applied.add_arc(u, v, p)
    static = RQTreeEngine.build(applied, seed=99)
    # LB answers are clustering-independent: they must agree exactly.
    assert dyn.query(0, eta).nodes == static.query(0, eta).nodes


@COMMON
@given(small_uncertain_graphs(), st.floats(0.1, 0.9))
def test_lb_answer_contained_in_exact_answer(g, eta):
    if g.num_arcs > 14:
        return
    engine = RQTreeEngine.build(g, seed=1)
    truth = exact_reliability_search(g, [0], eta)
    assert engine.query(0, eta).nodes <= truth


# ---------------------------------------------------------------------
# Condensation losslessness
# ---------------------------------------------------------------------
@st.composite
def graphs_with_certain_arcs(draw, max_nodes=5):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    arcs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.sampled_from([0.3, 0.7, 1.0, 1.0]),
            ),
            min_size=1,
            max_size=10,
        )
    )
    g = UncertainGraph(n)
    for u, v, p in arcs:
        if u != v:
            g.add_arc(u, v, p)
    return g


@COMMON
@given(graphs_with_certain_arcs())
def test_condensation_preserves_reliability(g):
    if g.num_arcs > 12:
        return
    condensation = contract_certain_sccs(g)
    rep = condensation.representative_of
    for target in range(g.num_nodes):
        original = exact_reliability(g, [0], target)
        condensed = exact_reliability(
            condensation.graph, [rep[0]], rep[target]
        )
        assert math.isclose(original, condensed, abs_tol=1e-9)


# ---------------------------------------------------------------------
# Stratified estimator exactness at full stratification
# ---------------------------------------------------------------------
@COMMON
@given(small_uncertain_graphs(max_arcs=6))
def test_full_stratification_matches_exact(g):
    if g.num_arcs > 6 or g.num_arcs == 0:
        return
    target = g.num_nodes - 1
    estimate = stratified_reliability(
        g, [0], target, num_samples=4, num_strata_arcs=g.num_arcs, seed=0
    )
    exact = exact_reliability(g, [0], target)
    assert math.isclose(estimate, exact, abs_tol=1e-9)
