"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    EmptySourceSetError,
    FlowError,
    GraphError,
    IndexCorruptionError,
    InvalidCapacityError,
    InvalidProbabilityError,
    InvalidThresholdError,
    NodeNotFoundError,
    PartitionError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError("x"),
            InvalidProbabilityError(2.0),
            InvalidThresholdError(0.0),
            NodeNotFoundError(3),
            EmptySourceSetError(),
            IndexCorruptionError("x"),
            FlowError("x"),
            InvalidCapacityError(-1.0),
            PartitionError("x"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_probability_error_is_value_error(self):
        assert isinstance(InvalidProbabilityError(2.0), ValueError)

    def test_threshold_error_is_value_error(self):
        assert isinstance(InvalidThresholdError(0.0), ValueError)

    def test_node_error_is_key_error(self):
        assert isinstance(NodeNotFoundError(1), KeyError)

    def test_capacity_error_is_flow_and_value_error(self):
        exc = InvalidCapacityError(-2.0)
        assert isinstance(exc, FlowError)
        assert isinstance(exc, ValueError)

    def test_messages_carry_payload(self):
        assert "0.0" in str(InvalidThresholdError(0.0))
        assert "7" in str(NodeNotFoundError(7))
        exc = InvalidProbabilityError(1.5, arc=(0, 1))
        assert "(0, 1)" in str(exc)
