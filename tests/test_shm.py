"""Shared-memory CSR fabric: lifecycle, leak, and parity tests.

The contract under test (see :mod:`repro.shard.shm`):

* a clean engine shutdown unlinks every segment it published — no
  ``/dev/shm`` residue;
* a ``SIGKILL``-ed *worker* never takes a segment with it (the creator
  still owns it) and never leaks one either (the creator's close
  unlinks);
* a ``SIGKILL``-ed *gateway* (the creator itself) leaks nothing: the
  orphaned workers notice the dead parent and exit, at which point the
  shared resource tracker reaps every registered segment;
* both transports produce bit-identical answers at every shard count.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.graph.generators import uncertain_gnp
from repro.shard import shm
from repro.shard.engine import ShardedRQTreeEngine
from repro.shard.plan import build_shard_plan
from repro.shard.runtime import ShardRuntime, build_shard_payload

SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not (shm.shm_available() and os.path.isdir(SHM_DIR)),
    reason="POSIX shared memory not available",
)


def _shm_entries() -> set:
    return {name for name in os.listdir(SHM_DIR) if name.startswith("psm_")}


def _wait_until(predicate, timeout: float = 20.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.1)
    return predicate()


@pytest.fixture(scope="module")
def graph():
    return uncertain_gnp(200, 4.0 / 200, seed=3)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_registry_refcount_protocol():
    payload = {"a": np.arange(10, dtype=np.int64)}
    meta = shm.registry.publish(payload)
    name = meta["name"]
    assert shm.registry.refcount(name) == 1
    assert name in shm.registry.active()
    shm.registry.retain(name)
    assert shm.registry.refcount(name) == 2
    assert shm.registry.release(name) is False  # one owner remains
    assert os.path.exists(os.path.join(SHM_DIR, name))
    assert shm.registry.release(name) is True   # last owner unlinks
    assert not os.path.exists(os.path.join(SHM_DIR, name))
    assert shm.registry.release(name) is False  # idempotent
    with pytest.raises(KeyError):
        shm.registry.retain(name)


def test_attach_views_are_zero_copy_and_read_only(graph):
    from repro.accel.csr import csr_snapshot

    csr = csr_snapshot(graph)
    meta = shm.publish_csr(csr, list(range(graph.num_nodes)))
    try:
        arrays, global_ids = shm.attach_csr(meta)
        for field in ("indptr", "indices", "probs", "rev_indptr"):
            view = arrays[field]
            assert not view.flags.writeable
            assert not view.flags.owndata  # a view, not a copy
            np.testing.assert_array_equal(view, getattr(csr, field))
        with pytest.raises((ValueError, RuntimeError)):
            arrays["probs"][0] = 0.5
        assert list(global_ids) == list(range(graph.num_nodes))
    finally:
        shm.registry.release(meta["name"])


def test_shm_payload_rebuilds_identical_runtime(graph):
    plan = build_shard_plan(graph, 3, seed=7)
    for shard_id in range(plan.num_shards):
        pickled = build_shard_payload(
            graph, plan, shard_id, seed=7, transport="pickle"
        )
        shared = build_shard_payload(
            graph, plan, shard_id, seed=7, transport="shm"
        )
        try:
            a = ShardRuntime(pickled)
            b = ShardRuntime(shared)
            request = {"sources": [plan.shard_nodes[shard_id][0]],
                       "eta": 0.35}
            ra, rb = a.handle(request), b.handle(request)
            assert ra["kept"] == rb["kept"]
            assert ra["candidates"] == rb["candidates"]
            assert a.tree_height == b.tree_height
        finally:
            shm.registry.release(shared["shm"]["name"])


# ----------------------------------------------------------------------
# Transport parity through the full engine, across shard counts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_lb_bit_identical_across_transports_and_shards(graph, shards):
    results = {}
    for transport in ("pickle", "shm"):
        engine = ShardedRQTreeEngine.build(
            graph, shards=shards, seed=7, mode="inline",
            transport=transport,
        )
        try:
            results[transport] = [
                engine.query([s], eta, method="lb").nodes
                for s, eta in ((0, 0.4), (5, 0.25), (17, 0.6))
            ]
        finally:
            engine.close()
    assert results["pickle"] == results["shm"]
    assert not _shm_entries() & set(shm.registry.active())


def test_mc_bit_identical_across_transports(graph):
    results = {}
    for transport in ("pickle", "shm"):
        engine = ShardedRQTreeEngine.build(
            graph, shards=2, seed=7, mode="inline", transport=transport,
        )
        try:
            results[transport] = engine.query(
                [1], 0.3, method="mc", num_samples=400, seed=11
            ).nodes
        finally:
            engine.close()
    assert results["pickle"] == results["shm"]


# ----------------------------------------------------------------------
# Lifecycle: clean shutdown
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["inline", "process"])
def test_segments_unlinked_after_clean_shutdown(graph, mode):
    before = _shm_entries()
    engine = ShardedRQTreeEngine.build(
        graph, shards=2, seed=7, mode=mode, transport="shm"
    )
    assert len(engine._segments) == 2
    during = _shm_entries() - before
    assert len(during) == 2
    engine.close()
    assert _shm_entries() & during == set()
    engine.close()  # idempotent


def test_build_failure_releases_segments(graph, monkeypatch):
    from repro.shard import engine as engine_module

    before = _shm_entries()

    def explode(payload):
        raise RuntimeError("boom")

    monkeypatch.setattr(engine_module, "InlineShardClient", explode)
    with pytest.raises(RuntimeError, match="boom"):
        ShardedRQTreeEngine.build(
            graph, shards=2, seed=7, mode="inline", transport="shm"
        )
    assert _shm_entries() - before == set()


# ----------------------------------------------------------------------
# Lifecycle: SIGKILLed shard worker
# ----------------------------------------------------------------------
def test_sigkilled_worker_leaks_nothing(graph):
    before = _shm_entries()
    engine = ShardedRQTreeEngine.build(
        graph, shards=2, seed=7, mode="process", transport="shm"
    )
    try:
        victim = engine._clients[0]._process
        os.kill(victim.pid, signal.SIGKILL)
        assert _wait_until(lambda: not victim.is_alive())
        # The segment must survive its worker: the creator owns it.
        assert len(_shm_entries() - before) == 2
        # And the engine still answers (degraded, never wrong).
        result = engine.query([0], 0.4, method="lb")
        assert result.degraded
    finally:
        engine.close()
    assert _shm_entries() - before == set()


# ----------------------------------------------------------------------
# Lifecycle: SIGKILLed gateway (the segment creator itself)
# ----------------------------------------------------------------------
_GATEWAY_SCRIPT = """
import time
from repro.graph.generators import uncertain_gnp
from repro.shard.engine import ShardedRQTreeEngine

if __name__ == "__main__":  # spawn re-imports this module
    graph = uncertain_gnp(120, 4.0 / 120, seed=3)
    engine = ShardedRQTreeEngine.build(
        graph, shards=2, seed=7, mode="process", transport="shm"
    )
    workers = [c._process.pid for c in engine._clients]
    print("READY", ",".join(engine._segments),
          ",".join(map(str, workers)), flush=True)
    time.sleep(120)  # killed long before this expires
"""


def test_sigkilled_gateway_leaks_nothing(tmp_path):
    script = tmp_path / "gateway.py"
    script.write_text(_GATEWAY_SCRIPT)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH")])
    )
    process = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    try:
        line = process.stdout.readline().split()
        assert line[0] == "READY"
        segments = line[1].split(",")
        worker_pids = [int(pid) for pid in line[2].split(",")]
        for name in segments:
            assert os.path.exists(os.path.join(SHM_DIR, name))
        # Hard-kill the creator: no atexit, no unlink hooks run.
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=10)

        def workers_gone():
            for pid in worker_pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue
                return False
            return True

        # Orphaned workers notice the dead parent (~1s poll) and exit;
        # the shared resource tracker then reaps the segments.
        assert _wait_until(workers_gone, timeout=30.0), (
            "orphaned shard workers did not exit"
        )
        assert _wait_until(
            lambda: not any(
                os.path.exists(os.path.join(SHM_DIR, name))
                for name in segments
            ),
            timeout=30.0,
        ), "resource tracker did not reap leaked segments"
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup path
            process.kill()
        process.stdout.close()


# ----------------------------------------------------------------------
# Service integration: transport reaches the metrics snapshot
# ----------------------------------------------------------------------
def test_service_reports_shard_transport(graph):
    from repro.core.engine import RQTreeEngine
    from repro.service.server import ReliabilityService

    engine = RQTreeEngine.build(graph, seed=1)
    service = ReliabilityService(
        engine, workers=1, shards=2, shard_mode="inline",
        shard_transport="shm",
    )
    with service:
        snapshot = service.metrics_snapshot()
        assert snapshot["service"]["shard_transport"] == "shm"
        result = service.query([0], 0.4, timeout=60)
        assert not result.degraded
    assert shm.registry.active() == []
