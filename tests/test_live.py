"""The live update plane: ``repro.live``.

The contract under test (see ``ARCHITECTURE.md`` "Update plane &
epochs"):

* **Parity** — after any seeded update stream, ``lb`` answers through a
  live engine (single or sharded, any shard count) are bit-identical to
  a cold rebuild of the mutated graph.  Updates may erode the index's
  pruning power, never its answers.
* **Atomicity** — a batch with any invalid op is rejected whole, before
  an epoch is assigned; no op from it reaches the graph.
* **Isolation** — a query runs against the epoch it was admitted on,
  start to finish; concurrent updates and rebalances never fail a
  query and never leak a cross-epoch answer.
* **Hygiene** — superseded epochs free their resources once their last
  lease drains: zero ``/dev/shm`` CSR-segment residue across epochs,
  even with a worker SIGKILLed mid-stream.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.core.engine import RQTreeEngine
from repro.core.maintenance import DynamicRQTreeEngine
from repro.errors import InvalidProbabilityError
from repro.graph.generators import nethept_like, uncertain_gnp
from repro.live import (
    ArcUpdate,
    EpochStore,
    LiveRQTreeEngine,
    LiveShardedEngine,
    LoadWatermarks,
    UpdateLog,
)
from repro.live.updates import apply_to_graph as _apply_normalized
from repro.live.updates import normalize_updates


def apply_to_graph(graph, ops):
    """Test-side mirror apply: accepts raw tuples/dicts like the wire."""
    return _apply_normalized(graph, normalize_updates(ops))
from repro.resilience.budget import QueryBudget
from repro.service.metrics import MetricsRegistry, set_registry
from repro.shard import shm

SEED = 20140328  # EDBT 2014


@pytest.fixture()
def fresh_registry():
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def _stream(graph, num_ops, seed=SEED):
    """A seeded update stream that stays meaningful as it runs.

    Tracks the evolving arc set on a mirror so deletes hit arcs that
    exist and inserts target arcs that don't — a stream of no-ops would
    test nothing.
    """
    import random

    rng = random.Random(seed)
    mirror = {(u, v): p for u, v, p in graph.arcs()}
    n = graph.num_nodes
    ops = []
    while len(ops) < num_ops:
        roll = rng.random()
        if roll < 0.4 and mirror:
            u, v = rng.choice(sorted(mirror))
            p = round(rng.uniform(0.2, 0.95), 3)
            ops.append(("set", u, v, p))
            mirror[(u, v)] = p
        elif roll < 0.7:
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v or (u, v) in mirror:
                continue
            p = round(rng.uniform(0.2, 0.95), 3)
            ops.append(("set", u, v, p))
            mirror[(u, v)] = p
        elif mirror:
            u, v = rng.choice(sorted(mirror))
            ops.append(("delete", u, v))
            del mirror[(u, v)]
    return ops


def _batches(ops, size):
    return [ops[i:i + size] for i in range(0, len(ops), size)]


def _lb_answer(graph, sources, eta, seed=3):
    """The cold-rebuild reference: fresh index over the mutated graph."""
    return RQTreeEngine.build(graph, seed=seed).query(
        sources, eta, method="lb"
    ).nodes


# ----------------------------------------------------------------------
# Units: ArcUpdate / UpdateLog
# ----------------------------------------------------------------------
class TestArcUpdate:
    def test_validates_op_and_probability(self):
        with pytest.raises(ValueError):
            ArcUpdate("toggle", 0, 1, 0.5)
        with pytest.raises(InvalidProbabilityError):
            ArcUpdate("set", 0, 1, 1.5)
        with pytest.raises(ValueError):
            ArcUpdate("set", 0, 1, None)

    def test_delete_normalizes_probability(self):
        assert ArcUpdate("delete", 0, 1, 0.7).p is None

    def test_from_object_accepts_dicts_and_tuples(self):
        from_dict = ArcUpdate.from_object(
            {"op": "set", "u": 1, "v": 2, "p": 0.5}
        )
        from_tuple = ArcUpdate.from_object(("set", 1, 2, 0.5))
        assert from_dict == from_tuple
        assert ArcUpdate.from_object(("delete", 3, 4)).op == "delete"

    def test_insert_applies_exactly_like_set(self):
        base = uncertain_gnp(6, 0.3, seed=1)
        via_insert, via_set = base.copy(), base.copy()
        apply_to_graph(via_insert, [("insert", 0, 5, 0.5)])
        apply_to_graph(via_set, [("set", 0, 5, 0.5)])
        assert sorted(via_insert.arcs()) == sorted(via_set.arcs())


class TestUpdateLog:
    def test_epochs_are_monotonic_from_one(self):
        log = UpdateLog()
        assert log.latest_epoch == 0
        epoch1, _ = log.append([("set", 0, 1, 0.5)])
        epoch2, _ = log.append([("delete", 0, 1)])
        assert (epoch1, epoch2) == (1, 2)
        assert log.latest_epoch == 2

    def test_rejection_is_atomic_and_pre_epoch(self):
        log = UpdateLog()
        log.append([("set", 0, 1, 0.5)])
        with pytest.raises(ValueError):
            log.append([("set", 1, 2, 0.9), ("set", 2, 3, 7.0)])
        # The bad batch consumed no epoch and left no trace.
        assert log.latest_epoch == 1
        assert len(log) == 1

    def test_since_returns_later_batches(self):
        log = UpdateLog()
        log.append([("set", 0, 1, 0.5)])
        log.append([("set", 1, 2, 0.5)])
        log.append([("delete", 0, 1)])
        assert [epoch for epoch, _ in log.since(1)] == [2, 3]


# ----------------------------------------------------------------------
# Units: EpochStore
# ----------------------------------------------------------------------
class TestEpochStore:
    def _graph_at(self, epoch):
        graph = uncertain_gnp(10, 0.3, seed=1)
        graph.set_epoch(epoch)
        return graph

    def test_publish_supersedes_and_frees_unleased(self, fresh_registry):
        store = EpochStore()
        store.publish(self._graph_at(0))
        store.publish(self._graph_at(1))
        assert store.held_epochs() == [1]
        assert store.current_epoch == 1
        assert fresh_registry.counter("live.epochs_freed").value == 1
        assert fresh_registry.gauge("live.epoch").value == 1

    def test_leased_epoch_survives_until_drain(self, fresh_registry):
        store = EpochStore()
        store.publish(self._graph_at(0))
        lease = store.lease()
        store.publish(self._graph_at(1))
        assert store.held_epochs() == [0, 1]  # pinned by the lease
        assert lease.epoch == 0
        lease.release()
        assert store.held_epochs() == [1]
        lease.release()  # idempotent
        assert store.held_epochs() == [1]

    def test_lease_targets_current_epoch(self):
        store = EpochStore()
        store.publish(self._graph_at(0))
        store.publish(self._graph_at(3))
        with store.lease() as lease:
            assert lease.epoch == 3
            assert lease.graph.epoch == 3

    def test_lease_of_missing_epoch_raises(self):
        store = EpochStore()
        with pytest.raises(KeyError):
            store.lease()
        store.publish(self._graph_at(0))
        with pytest.raises(KeyError):
            store.lease(epoch=5)

    def test_publish_rejects_stale_epochs(self):
        store = EpochStore()
        store.publish(self._graph_at(2))
        with pytest.raises(ValueError):
            store.publish(self._graph_at(2))
        with pytest.raises(ValueError):
            store.publish(self._graph_at(1))

    def test_close_frees_everything(self, fresh_registry):
        store = EpochStore()
        store.publish(self._graph_at(0))
        store.lease()  # even an unreleased lease cannot pin past close
        store.publish(self._graph_at(1))
        store.close()
        assert store.held_epochs() == []


# ----------------------------------------------------------------------
# Units: LoadWatermarks
# ----------------------------------------------------------------------
class TestLoadWatermarks:
    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            LoadWatermarks(min_shards=0)
        with pytest.raises(ValueError):
            LoadWatermarks(min_shards=8, max_shards=4)
        with pytest.raises(ValueError):
            LoadWatermarks(max_nodes_per_shard=-1)

    def test_disabled_watermarks_never_trip(self):
        marks = LoadWatermarks()
        assert marks.proposed_shards([10**6], [10**6]) is None

    def test_node_watermark_doubles_shards(self):
        marks = LoadWatermarks(max_nodes_per_shard=100)
        assert marks.proposed_shards([150, 80], [0, 0]) == 4
        assert marks.proposed_shards([80, 80], [0, 0]) is None

    def test_queue_watermark_and_max_clamp(self):
        marks = LoadWatermarks(max_queue_depth=5, max_shards=3)
        assert marks.proposed_shards([10, 10], [9, 0]) == 3
        assert marks.proposed_shards([10, 10, 10], [9, 9, 9]) is None


# ----------------------------------------------------------------------
# Single-engine live path
# ----------------------------------------------------------------------
class TestLiveSingleEngine:
    def test_stream_parity_with_cold_rebuild(self):
        graph = uncertain_gnp(60, 0.08, seed=5)
        ops = _stream(graph.copy(), 200)
        live = LiveRQTreeEngine.build(graph, seed=3)
        mirror = graph.copy()
        with live:
            for batch in _batches(ops, 25):
                epoch = live.apply(batch)
                apply_to_graph(mirror, batch)
                got = live.query([0, 7], 0.4, method="lb")
                assert got.epoch == epoch == live.epoch
                assert got.nodes == _lb_answer(mirror, [0, 7], 0.4)

    def test_query_pins_admission_epoch(self):
        graph = uncertain_gnp(30, 0.15, seed=2)
        with LiveRQTreeEngine.build(graph, seed=3) as live:
            lease = live.store.lease()
            live.apply([("set", 0, 1, 0.9)])
            # The pre-update lease still reads the old world.
            assert lease.epoch == 0
            assert not lease.graph.has_arc(0, 1) or (
                lease.graph.probability(0, 1) != 0.9
            )
            lease.release()

    def test_apply_rejection_leaves_graph_untouched(self):
        graph = uncertain_gnp(30, 0.15, seed=2)
        with LiveRQTreeEngine.build(graph, seed=3) as live:
            before = sorted(live.graph.arcs())
            with pytest.raises(ValueError):
                live.apply([("set", 0, 1, 0.9), ("set", 1, 2, 9.0)])
            assert sorted(live.graph.arcs()) == before
            assert live.epoch == 0

    def test_maintainer_degrades_under_deadline_never_raises(self):
        """Satellite: incremental maintenance under a QueryBudget.

        A maintained engine that has absorbed damage must honour the
        budget contract exactly like a frozen one: an expired deadline
        produces a degraded answer, never an exception.
        """
        maintainer = DynamicRQTreeEngine(
            nethept_like(n=200, seed=9), seed=3
        )
        maintainer.apply(_stream(maintainer.graph.copy(), 80, seed=4))
        for deadline in (1e-9, 1e-6, 1e-4):
            result = maintainer.query(
                [0, 3], 0.3, method="mc", num_samples=400, seed=11,
                budget=QueryBudget(deadline_seconds=deadline),
            )
            assert result.worlds_used <= 400
            if result.degraded:
                assert result.degraded_reason
        # And with room to breathe the answer is not degraded.
        ok = maintainer.query(
            [0, 3], 0.3, method="lb",
            budget=QueryBudget(deadline_seconds=60.0),
        )
        assert not ok.degraded


# ----------------------------------------------------------------------
# Sharded live path: the acceptance criterion
# ----------------------------------------------------------------------
class TestLiveShardedParity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_500_op_stream_is_bit_identical_to_cold_rebuild(self, shards):
        graph = uncertain_gnp(90, 0.06, seed=8)
        ops = _stream(graph.copy(), 500)
        mirror = graph.copy()
        checkpoints = {5, 11, 19}  # batch indices to audit (of 20)
        with LiveShardedEngine.build(
            graph, shards=shards, seed=7, mode="inline",
            transport="pickle",
        ) as live:
            for index, batch in enumerate(_batches(ops, 25)):
                live.apply(batch)
                apply_to_graph(mirror, batch)
                if index in checkpoints:
                    for sources in ([0], [3, 41]):
                        got = live.query(sources, 0.4, method="lb")
                        assert not got.degraded
                        assert got.nodes == _lb_answer(mirror, sources, 0.4)
            # Final state: every shard count agrees with the rebuild.
            got = live.query([0, 3, 41], 0.35, method="lb")
            assert got.epoch == 20
            assert got.nodes == _lb_answer(mirror, [0, 3, 41], 0.35)

    def test_lbplus_follows_parity(self):
        graph = uncertain_gnp(40, 0.12, seed=6)
        ops = _stream(graph.copy(), 60)
        mirror = graph.copy()
        with LiveShardedEngine.build(
            graph, shards=2, seed=7, mode="inline", transport="pickle",
        ) as live:
            for batch in _batches(ops, 20):
                live.apply(batch)
            apply_to_graph(mirror, ops)
            cold = RQTreeEngine.build(mirror, seed=3)
            got = live.query([1], 0.45, method="lb+")
            want = cold.query([1], 0.45, method="lb+")
            assert got.nodes == want.nodes

    def test_exact_follows_parity_within_its_caps(self):
        # Small enough that the exact estimator really enumerates
        # (beyond its caps it falls back to seeded MC over an
        # engine-shaped pool, which is a sampling method, not exact).
        graph = uncertain_gnp(12, 0.18, seed=6)
        ops = _stream(graph.copy(), 20)
        mirror = graph.copy()
        with LiveShardedEngine.build(
            graph, shards=2, seed=7, mode="inline", transport="pickle",
        ) as live:
            for batch in _batches(ops, 10):
                live.apply(batch)
            apply_to_graph(mirror, ops)
            cold = RQTreeEngine.build(mirror, seed=3)
            got = live.query([1], 0.45, method="exact")
            want = cold.query([1], 0.45, method="exact")
            assert got.nodes == want.nodes

    def test_mc_respects_sampling_bounds_after_stream(self):
        graph = uncertain_gnp(40, 0.12, seed=6)
        ops = _stream(graph.copy(), 60)
        mirror = graph.copy()
        with LiveShardedEngine.build(
            graph, shards=2, seed=7, mode="inline", transport="pickle",
            mc_refine_floor=0.0,
        ) as live:
            for batch in _batches(ops, 20):
                live.apply(batch)
            apply_to_graph(mirror, ops)
            got = live.query([1], 0.45, method="mc", num_samples=600,
                             seed=17)
            want = RQTreeEngine.build(mirror, seed=3).query(
                [1], 0.45, method="mc", num_samples=600, seed=17
            )
            # At floor 0 the refinement pool is the whole graph, so the
            # same seeded worlds give the identical answer.
            assert got.nodes == want.nodes


# ----------------------------------------------------------------------
# Rebalancing
# ----------------------------------------------------------------------
class TestRebalance:
    def test_rebalance_preserves_parity(self, fresh_registry):
        graph = uncertain_gnp(60, 0.08, seed=5)
        ops = _stream(graph.copy(), 100)
        mirror = graph.copy()
        with LiveShardedEngine.build(
            graph, shards=2, seed=7, mode="inline", transport="pickle",
        ) as live:
            batches = _batches(ops, 25)
            for batch in batches[:2]:
                live.apply(batch)
                apply_to_graph(mirror, batch)
            live.rebalance(4)
            assert live.num_shards == 4
            for batch in batches[2:]:
                live.apply(batch)
                apply_to_graph(mirror, batch)
            got = live.query([0, 9], 0.4, method="lb")
            assert got.nodes == _lb_answer(mirror, [0, 9], 0.4)
            assert fresh_registry.counter("live.rebalances").value == 1

    def test_mid_stream_rebalance_zero_failed_zero_stale(self):
        """The acceptance criterion: queries racing a rebalance (and
        updates) neither fail nor observe a cross-epoch answer.

        ``lb`` is deterministic per graph, so "not stale" is checkable
        exactly: whatever epoch a result reports, its node set must be
        the cold-rebuild answer *for that epoch's graph*.
        """
        graph = uncertain_gnp(50, 0.1, seed=12)
        ops = _stream(graph.copy(), 120)
        batches = _batches(ops, 30)
        # Precompute the per-epoch reference answers.
        mirror = graph.copy()
        reference = {0: _lb_answer(mirror, [2], 0.4)}
        for epoch, batch in enumerate(batches, start=1):
            apply_to_graph(mirror, batch)
            reference[epoch] = _lb_answer(mirror, [2], 0.4)

        failures, observations = [], []
        stop = threading.Event()

        with LiveShardedEngine.build(
            graph, shards=2, seed=7, mode="inline", transport="pickle",
        ) as live:
            def hammer():
                while not stop.is_set():
                    try:
                        result = live.query([2], 0.4, method="lb")
                        observations.append((result.epoch, result.nodes))
                    except Exception as error:  # noqa: BLE001
                        failures.append(error)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                for index, batch in enumerate(batches):
                    live.apply(batch)
                    if index == 1:
                        live.rebalance(4)
                    time.sleep(0.02)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)

        assert not failures, failures[:3]
        assert observations, "hammer threads never completed a query"
        for epoch, nodes in observations:
            assert nodes == reference[epoch], (
                f"epoch {epoch} answer diverged from its own graph"
            )

    def test_maybe_rebalance_honours_watermarks(self):
        graph = uncertain_gnp(60, 0.08, seed=5)
        with LiveShardedEngine.build(
            graph, shards=2, seed=7, mode="inline", transport="pickle",
            watermarks=LoadWatermarks(max_nodes_per_shard=20,
                                      max_shards=4),
        ) as live:
            assert live.maybe_rebalance() == 4
            assert live.num_shards == 4
            # At the clamp: no further splits.
            assert live.maybe_rebalance() is None


# ----------------------------------------------------------------------
# Process workers + shared memory: segments drain with their epochs
# ----------------------------------------------------------------------
SHM_DIR = "/dev/shm"

needs_shm = pytest.mark.skipif(
    not (shm.shm_available() and os.path.isdir(SHM_DIR)),
    reason="POSIX shared memory not available",
)


def _csr_segments() -> set:
    # CPython SharedMemory names are psm_*; multiprocessing queue
    # semaphores (sem.mp-*) come and go with GC and are not ours.
    return {n for n in os.listdir(SHM_DIR) if n.startswith("psm_")}


@needs_shm
class TestProcessShmEpochs:
    def test_three_epoch_stream_leaks_nothing(self, fresh_registry):
        baseline = _csr_segments()
        graph = uncertain_gnp(80, 0.07, seed=10)
        ops = _stream(graph.copy(), 90)
        mirror = graph.copy()
        with LiveShardedEngine.build(
            graph, shards=2, seed=7, mode="process", transport="shm",
        ) as live:
            for batch in _batches(ops, 30):  # epochs 1..3
                live.apply(batch)
                apply_to_graph(mirror, batch)
                got = live.query([0, 5], 0.4, method="lb")
                assert not got.degraded
                assert got.nodes == _lb_answer(mirror, [0, 5], 0.4)
            assert live.epoch == 3
            # Superseded epochs drained; only the live topology's
            # segments (plus whatever predates this test) remain.
            held = live.store.held_epochs()
            assert held == [3]
            assert fresh_registry.counter("live.epochs_freed").value >= 3
        assert _csr_segments() <= baseline

    def test_sigkill_mid_stream_recovers_and_leaks_nothing(
        self, fresh_registry
    ):
        baseline = _csr_segments()
        graph = uncertain_gnp(80, 0.07, seed=10)
        ops = _stream(graph.copy(), 60)
        mirror = graph.copy()
        with LiveShardedEngine.build(
            graph, shards=2, seed=7, mode="process", transport="shm",
            supervise=True,
        ) as live:
            batches = _batches(ops, 30)
            live.apply(batches[0])
            apply_to_graph(mirror, batches[0])
            # Kill a worker, then stream the next batch into the hole:
            # the slice stream tolerates the corpse (its respawn payload
            # already carries the new epoch).
            victim = live.supervisor.client(0)
            os.kill(victim._process.pid, signal.SIGKILL)
            victim._process.join(timeout=10)
            live.apply(batches[1])
            apply_to_graph(mirror, batches[1])
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                got = live.query([0, 5], 0.4, method="lb")
                if not got.degraded:
                    break
                time.sleep(0.2)
            assert not got.degraded, "supervisor never healed the shard"
            assert got.nodes == _lb_answer(mirror, [0, 5], 0.4)
        assert _csr_segments() <= baseline


# ----------------------------------------------------------------------
# Service integration: epoch-scoped cache invalidation
# ----------------------------------------------------------------------
class TestServiceLive:
    def test_apply_updates_bumps_epoch_and_invalidates_cache(self):
        from repro.service.server import ReliabilityService

        graph = uncertain_gnp(40, 0.12, seed=6)
        engine = RQTreeEngine.build(graph.copy(), seed=3)
        with ReliabilityService(engine, workers=2, live=True) as service:
            first = service.query([0], 0.4, method="lb")
            again = service.query([0], 0.4, method="lb")
            assert again.nodes == first.nodes  # cache or not, stable
            ops = _stream(graph.copy(), 40)
            outcome = service.apply_updates(ops)
            assert outcome == {"epoch": 1, "ops": 40}
            mirror = graph.copy()
            apply_to_graph(mirror, ops)
            after = service.query([0], 0.4, method="lb")
            assert after.epoch == 1
            # The post-update answer matches a cold rebuild — a stale
            # cache hit from epoch 0 would not.
            assert after.nodes == _lb_answer(mirror, [0], 0.4)

    def test_frozen_service_refuses_updates(self):
        from repro.service.server import ReliabilityService

        engine = RQTreeEngine.build(uncertain_gnp(20, 0.2, seed=1), seed=3)
        with ReliabilityService(engine, workers=1) as service:
            with pytest.raises(ValueError, match="live=True"):
                service.apply_updates([("set", 0, 1, 0.5)])
