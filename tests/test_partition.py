"""Unit tests for the multilevel balanced partitioner (METIS substitute)."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import PartitionError
from repro.graph.generators import uncertain_grid
from repro.partition.bipartition import (
    bisect_uncertain_cluster,
    multilevel_bisection,
    random_bisection,
    ratio_cut_objective,
)
from repro.partition.coarsen import coarsen_once, contract, heavy_edge_matching
from repro.partition.initial import (
    greedy_growing_bisection,
    initial_bisection,
    spectral_bisection,
)
from repro.partition.refine import fm_pass, fm_refine
from repro.partition.wgraph import WeightedUndirectedGraph


def _two_cliques(k: int = 6, bridge_weight: float = 0.1):
    """Two k-cliques joined by one light bridge: the obvious bisection."""
    g = WeightedUndirectedGraph(2 * k)
    for base in (0, k):
        for i in range(k):
            for j in range(i + 1, k):
                g.add_edge(base + i, base + j, 1.0)
    g.add_edge(k - 1, k, bridge_weight)
    return g


def _ring(n: int, weight: float = 1.0):
    g = WeightedUndirectedGraph(n)
    for i in range(n):
        g.add_edge(i, (i + 1) % n, weight)
    return g


class TestWeightedGraph:
    def test_edges_accumulate(self):
        g = WeightedUndirectedGraph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 0, 0.5)
        assert g.adjacency[0][1] == pytest.approx(1.5)
        assert g.adjacency[1][0] == pytest.approx(1.5)

    def test_self_loops_ignored(self):
        g = WeightedUndirectedGraph(2)
        g.add_edge(1, 1, 3.0)
        assert not g.adjacency[1]

    def test_negative_weight_rejected(self):
        g = WeightedUndirectedGraph(2)
        with pytest.raises(PartitionError):
            g.add_edge(0, 1, -1.0)

    def test_node_weights_default_to_one(self):
        g = WeightedUndirectedGraph(4)
        assert g.total_node_weight() == 4

    def test_node_weight_length_checked(self):
        with pytest.raises(PartitionError):
            WeightedUndirectedGraph(3, [1, 2])

    def test_cut_weight(self):
        g = _two_cliques(4, bridge_weight=0.25)
        side = [True] * 4 + [False] * 4
        assert g.cut_weight(side) == pytest.approx(0.25)

    def test_degree_weight(self):
        g = WeightedUndirectedGraph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 2.0)
        assert g.degree_weight(0) == pytest.approx(3.0)


class TestCoarsening:
    def test_matching_is_symmetric(self):
        g = _two_cliques()
        mate = heavy_edge_matching(g, random.Random(0))
        for u, v in enumerate(mate):
            assert mate[v] == u

    def test_matching_prefers_heavy_edges(self):
        g = WeightedUndirectedGraph(3)
        g.add_edge(0, 1, 10.0)
        g.add_edge(0, 2, 0.1)
        mate = heavy_edge_matching(g, random.Random(0))
        assert mate[0] == 1 and mate[1] == 0

    def test_contract_preserves_node_weight(self):
        g = _two_cliques()
        mate = heavy_edge_matching(g, random.Random(1))
        coarse, projection = contract(g, mate)
        assert coarse.total_node_weight() == g.total_node_weight()
        assert len(projection) == g.num_nodes
        assert max(projection) == coarse.num_nodes - 1

    def test_contract_accumulates_cross_edges(self):
        g = WeightedUndirectedGraph(4)
        g.add_edge(0, 1, 5.0)  # will be matched
        g.add_edge(2, 3, 5.0)  # will be matched
        g.add_edge(0, 2, 1.0)
        g.add_edge(1, 3, 1.0)
        mate = [1, 0, 3, 2]
        coarse, projection = contract(g, mate)
        assert coarse.num_nodes == 2
        a, b = projection[0], projection[2]
        assert coarse.adjacency[a][b] == pytest.approx(2.0)

    def test_coarsen_once_stops_on_edgeless_graph(self):
        g = WeightedUndirectedGraph(10)
        assert coarsen_once(g, random.Random(0)) is None

    def test_coarsen_shrinks(self):
        g = _ring(64)
        coarse, _ = coarsen_once(g, random.Random(0))
        assert coarse.num_nodes < 64


class TestInitialBisection:
    def test_greedy_growing_splits_cliques(self):
        g = _two_cliques()
        side = greedy_growing_bisection(g, random.Random(0), num_seeds=6)
        first = {u for u in range(g.num_nodes) if side[u]}
        assert first in ({0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11})

    def test_spectral_splits_cliques(self):
        g = _two_cliques()
        side = spectral_bisection(g)
        assert side is not None
        first = {u for u in range(g.num_nodes) if side[u]}
        assert first in ({0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11})

    def test_spectral_declines_tiny_graphs(self):
        g = WeightedUndirectedGraph(2)
        g.add_edge(0, 1, 1.0)
        assert spectral_bisection(g) is None

    def test_initial_bisection_is_balanced(self):
        g = _ring(32)
        side = initial_bisection(g, random.Random(0), max_imbalance=0.1)
        ones = sum(side)
        assert 12 <= ones <= 20

    def test_handles_disconnected_graph(self):
        g = WeightedUndirectedGraph(8)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)  # nodes 4-7 isolated
        side = greedy_growing_bisection(g, random.Random(0))
        assert any(side) and not all(side)


class TestFMRefinement:
    def test_pass_improves_bad_split(self):
        g = _two_cliques()
        # Worst-case split: half of each clique on each side.
        side = [i % 2 == 0 for i in range(g.num_nodes)]
        before = g.cut_weight(side)
        improvement = fm_pass(g, side, max_imbalance=0.1)
        after = g.cut_weight(side)
        assert improvement >= 0.0
        assert after <= before

    def test_refine_reaches_optimal_cut_on_cliques(self):
        g = _two_cliques(5, bridge_weight=0.2)
        side = [i % 2 == 0 for i in range(g.num_nodes)]
        fm_refine(g, side, max_imbalance=0.1)
        assert g.cut_weight(side) == pytest.approx(0.2)

    def test_refine_respects_balance(self):
        g = _ring(20)
        side = [u < 10 for u in range(20)]
        fm_refine(g, side, max_imbalance=0.1)
        ones = sum(side)
        assert 8 <= ones <= 12

    def test_no_improvement_on_optimal(self):
        g = _two_cliques(4, bridge_weight=0.1)
        side = [u < 4 for u in range(8)]
        assert fm_pass(g, side, max_imbalance=0.1) == pytest.approx(0.0)


class TestMultilevelBisection:
    def test_trivial_sizes(self):
        assert multilevel_bisection(WeightedUndirectedGraph(0)) == []
        assert multilevel_bisection(WeightedUndirectedGraph(1)) == [False]
        assert multilevel_bisection(WeightedUndirectedGraph(2)) == [True, False]

    def test_two_cliques_found(self):
        g = _two_cliques(8, bridge_weight=0.05)
        side = multilevel_bisection(g, seed=3)
        first = {u for u in range(16) if side[u]}
        assert first in (set(range(8)), set(range(8, 16)))

    def test_balance_on_large_ring(self):
        g = _ring(200)
        side = multilevel_bisection(g, max_imbalance=0.1, seed=1)
        ones = sum(side)
        assert 80 <= ones <= 120

    def test_beats_random_bisection_on_structure(self):
        g = _two_cliques(10, bridge_weight=0.1)
        rng = random.Random(5)
        multilevel = multilevel_bisection(g, seed=5)
        randomized = random_bisection(g, rng)
        assert ratio_cut_objective(g, multilevel) <= ratio_cut_objective(
            g, randomized
        )

    def test_ratio_cut_objective_empty_side_is_inf(self):
        g = _ring(4)
        assert ratio_cut_objective(g, [False] * 4) == math.inf


class TestBisectUncertainCluster:
    def test_splits_cover_cluster(self, grid_graph):
        cluster = list(range(grid_graph.num_nodes))
        first, second = bisect_uncertain_cluster(grid_graph, cluster, seed=0)
        assert first | second == set(cluster)
        assert not first & second
        assert first and second

    def test_subcluster_bisection(self, grid_graph):
        cluster = list(range(12))
        first, second = bisect_uncertain_cluster(grid_graph, cluster, seed=0)
        assert first | second == set(cluster)

    def test_balanced_split(self, grid_graph):
        cluster = list(range(grid_graph.num_nodes))
        first, second = bisect_uncertain_cluster(grid_graph, cluster, seed=0)
        assert abs(len(first) - len(second)) <= 0.3 * len(cluster)

    def test_random_strategy(self, grid_graph):
        cluster = list(range(grid_graph.num_nodes))
        first, second = bisect_uncertain_cluster(
            grid_graph, cluster, seed=0, strategy="random"
        )
        assert first | second == set(cluster)

    def test_unknown_strategy_rejected(self, grid_graph):
        with pytest.raises(PartitionError):
            bisect_uncertain_cluster(
                grid_graph, [0, 1], strategy="kmeans"
            )

    def test_tiny_cluster_rejected(self, grid_graph):
        with pytest.raises(PartitionError):
            bisect_uncertain_cluster(grid_graph, [0])

    def test_two_node_cluster(self, grid_graph):
        first, second = bisect_uncertain_cluster(grid_graph, [0, 1], seed=0)
        assert {min(first), min(second)} | first | second == {0, 1}
