"""Tests for the generic method-comparison runner."""

from __future__ import annotations

import pytest

from repro import RQTreeEngine
from repro.eval.comparison import compare_methods, render_comparison
from repro.eval.workload import single_source_workload
from repro.graph.generators import nethept_like
from repro.reliability.estimators import make_method_suite


@pytest.fixture(scope="module")
def setup():
    graph = nethept_like(n=120, seed=3)
    engine = RQTreeEngine.build(graph, seed=3)
    methods = make_method_suite(engine, num_samples=400, seed=0)
    workload = [[s] for s in single_source_workload(graph, 5, seed=1)]
    return graph, methods, workload


class TestCompareMethods:
    def test_all_methods_reported(self, setup):
        graph, methods, workload = setup
        results = compare_methods(
            graph, methods, workload, eta=0.4, truth_method="mc-sampling"
        )
        assert set(results) == set(methods)

    def test_truth_method_scores_perfectly(self, setup):
        graph, methods, workload = setup
        results = compare_methods(
            graph, methods, workload, eta=0.4, truth_method="mc-sampling"
        )
        truth = results["mc-sampling"]
        assert truth.precision_ci.estimate == 1.0
        assert truth.recall_ci.estimate == 1.0

    def test_lb_precision_near_one(self, setup):
        graph, methods, workload = setup
        results = compare_methods(
            graph, methods, workload, eta=0.4, truth_method="mc-sampling"
        )
        assert results["rq-tree-lb"].precision_ci.estimate >= 0.9

    def test_confidence_intervals_bracket_estimates(self, setup):
        graph, methods, workload = setup
        results = compare_methods(
            graph, methods, workload, eta=0.4, truth_method="mc-sampling"
        )
        for comparison in results.values():
            for ci in (
                comparison.precision_ci,
                comparison.recall_ci,
                comparison.seconds_ci,
            ):
                assert ci.low <= ci.estimate <= ci.high

    def test_per_query_records_lengths(self, setup):
        graph, methods, workload = setup
        results = compare_methods(
            graph, methods, workload, eta=0.4, truth_method="mc-sampling"
        )
        for comparison in results.values():
            assert len(comparison.per_query_precision) == len(workload)
            assert len(comparison.per_query_seconds) == len(workload)

    def test_missing_truth_method_rejected(self, setup):
        graph, methods, workload = setup
        with pytest.raises(KeyError):
            compare_methods(
                graph, methods, workload, eta=0.4, truth_method="oracle"
            )

    def test_empty_workload_rejected(self, setup):
        graph, methods, _ = setup
        with pytest.raises(ValueError):
            compare_methods(
                graph, methods, [], eta=0.4, truth_method="mc-sampling"
            )

    def test_render(self, setup):
        graph, methods, workload = setup
        results = compare_methods(
            graph, methods, workload, eta=0.4, truth_method="mc-sampling"
        )
        text = render_comparison(results, title="demo")
        assert "demo" in text
        assert "rq-tree-lb" in text
        assert "[" in text  # intervals rendered
