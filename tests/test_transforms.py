"""Tests for graph transforms and the explain/trace feature."""

from __future__ import annotations

import pytest

from repro import RQTreeEngine, UncertainGraph
from repro.errors import GraphError
from repro.graph.generators import nethept_like, uncertain_path
from repro.graph.transforms import (
    make_undirected,
    map_probabilities,
    power_probabilities,
    scale_probabilities,
    threshold_backbone,
    weighted_cascade,
)


class TestMapProbabilities:
    def test_identity(self, fig1_graph):
        mapped = map_probabilities(fig1_graph, lambda p: p)
        assert sorted(mapped.arcs()) == pytest.approx(sorted(fig1_graph.arcs()))

    def test_clamping(self):
        g = uncertain_path([0.5])
        mapped = map_probabilities(g, lambda p: 5.0)
        assert mapped.probability(0, 1) == 1.0
        floored = map_probabilities(g, lambda p: -1.0)
        assert floored.probability(0, 1) > 0.0

    def test_input_not_mutated(self, fig1_graph):
        before = sorted(fig1_graph.arcs())
        map_probabilities(fig1_graph, lambda p: p / 2)
        assert sorted(fig1_graph.arcs()) == before


class TestScaleAndPower:
    def test_scale_down(self):
        g = uncertain_path([0.8, 0.6])
        scaled = scale_probabilities(g, 0.5)
        assert scaled.probability(0, 1) == pytest.approx(0.4)
        assert scaled.probability(1, 2) == pytest.approx(0.3)

    def test_scale_up_clamps(self):
        g = uncertain_path([0.8])
        scaled = scale_probabilities(g, 2.0)
        assert scaled.probability(0, 1) == 1.0

    def test_power_weakens_uncertain_arcs_more(self):
        g = uncertain_path([0.9, 0.3])
        powered = power_probabilities(g, 2.0)
        # Relative loss is larger for the weaker arc.
        strong_ratio = powered.probability(0, 1) / 0.9
        weak_ratio = powered.probability(1, 2) / 0.3
        assert weak_ratio < strong_ratio

    def test_invalid_parameters(self):
        g = uncertain_path([0.5])
        with pytest.raises(GraphError):
            scale_probabilities(g, 0.0)
        with pytest.raises(GraphError):
            power_probabilities(g, -1.0)

    def test_degradation_shrinks_reliable_set(self):
        graph = nethept_like(n=120, seed=1)
        engine_full = RQTreeEngine.build(graph, seed=1)
        degraded = scale_probabilities(graph, 0.5)
        engine_degraded = RQTreeEngine.build(degraded, seed=1)
        source = next(u for u in graph.nodes() if graph.out_degree(u) > 1)
        full = engine_full.query(source, 0.4).nodes
        weak = engine_degraded.query(source, 0.4).nodes
        assert weak <= full


class TestBackbone:
    def test_keeps_only_strong_arcs(self, fig1_graph):
        backbone = threshold_backbone(fig1_graph, 0.5)
        for _, _, p in backbone.arcs():
            assert p >= 0.5
        # Figure 1 arcs >= 0.5: s->w(0.6), s->u(0.5), w->u(0.5),
        # v->t(0.7), t->v(0.5).
        assert backbone.num_arcs == 5

    def test_tau_one_keeps_certain_arcs_only(self):
        g = UncertainGraph(3)
        g.add_arc(0, 1, 1.0)
        g.add_arc(1, 2, 0.99)
        assert threshold_backbone(g, 1.0).num_arcs == 1

    def test_invalid_tau(self, fig1_graph):
        with pytest.raises(GraphError):
            threshold_backbone(fig1_graph, 0.0)
        with pytest.raises(GraphError):
            threshold_backbone(fig1_graph, 1.5)


class TestSymmetrizeAndCascade:
    def test_make_undirected_reciprocal(self, fig1_graph):
        sym = make_undirected(fig1_graph)
        for u, v, _ in sym.arcs():
            assert sym.has_arc(v, u)

    def test_make_undirected_noisy_or_on_antiparallel(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 0.5)
        g.add_arc(1, 0, 0.5)
        sym = make_undirected(g)
        assert sym.probability(0, 1) == pytest.approx(0.75)

    def test_weighted_cascade_in_degree(self):
        g = UncertainGraph(3)
        g.add_arc(0, 2, 0.9)
        g.add_arc(1, 2, 0.1)
        wc = weighted_cascade(g)
        assert wc.probability(0, 2) == pytest.approx(0.5)
        assert wc.probability(1, 2) == pytest.approx(0.5)


class TestExplain:
    def test_single_source_explain_mentions_acceptance(self):
        graph = nethept_like(n=100, seed=2)
        engine = RQTreeEngine.build(graph, seed=2)
        text = engine.query(0, 0.6).explain()
        assert "accepted" in text
        assert "candidate generation" in text
        assert "verification [lb]" in text

    def test_trace_depths_decrease(self):
        graph = nethept_like(n=100, seed=2)
        engine = RQTreeEngine.build(graph, seed=2)
        trace = engine.query(0, 0.6).candidate_result.trace
        depths = [step.depth for step in trace]
        assert depths == sorted(depths, reverse=True)

    def test_trace_last_step_accepted(self):
        graph = nethept_like(n=100, seed=2)
        engine = RQTreeEngine.build(graph, seed=2)
        trace = engine.query(5, 0.6).candidate_result.trace
        assert trace[-1].accepted
        assert all(not step.accepted for step in trace[:-1])

    def test_trace_bounds_match_final(self):
        graph = nethept_like(n=100, seed=2)
        engine = RQTreeEngine.build(graph, seed=2)
        result = engine.query(5, 0.6).candidate_result
        assert result.trace[-1].bound == pytest.approx(
            result.final_upper_bound
        )

    def test_multi_source_explain(self):
        graph = nethept_like(n=100, seed=2)
        engine = RQTreeEngine.build(graph, seed=2)
        result = engine.query([0, 90], 0.6)
        text = result.explain()
        assert "cluster(s) evaluated" in text
        # Every selected cluster is marked accepted in the trace.
        accepted = {
            step.cluster_index
            for step in result.candidate_result.trace
            if step.accepted
        }
        assert set(result.candidate_result.selected_clusters) <= accepted

    def test_trace_via_values(self):
        graph = nethept_like(n=100, seed=2)
        engine = RQTreeEngine.build(graph, seed=2)
        trace = engine.query(7, 0.6).candidate_result.trace
        assert all(step.via in ("cache", "cheap", "flow") for step in trace)
