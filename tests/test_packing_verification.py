"""Tests for the edge-packing verification (method='lb+')."""

from __future__ import annotations

import pytest

from repro import RQTreeEngine
from repro.core.verification import (
    verify_lower_bound,
    verify_lower_bound_packing,
)
from repro.errors import EmptySourceSetError
from repro.graph.exact import exact_reliability
from repro.graph.generators import figure1_graph, uncertain_gnp, uncertain_path


class TestPackingBound:
    def test_recovers_multipath_node_on_figure1(self, fig1_graph, fig1_names):
        # u: R = 0.65 via two arc-disjoint paths (s->u at 0.5 and
        # s->w->u at 0.3): packing bound 1 - 0.5*0.7 = 0.65 >= 0.6.
        candidates = set(range(5))
        single = verify_lower_bound(
            fig1_graph, [fig1_names["s"]], 0.6, candidates
        )
        packing = verify_lower_bound_packing(
            fig1_graph, [fig1_names["s"]], 0.6, candidates
        )
        assert fig1_names["u"] not in single
        assert fig1_names["u"] in packing

    def test_dominates_single_path_bound(self):
        for seed in range(5):
            g = uncertain_gnp(7, 0.3, seed=seed)
            if g.num_arcs == 0:
                continue
            candidates = set(g.nodes())
            for eta in (0.3, 0.5, 0.7):
                single = verify_lower_bound(g, [0], eta, candidates)
                packing = verify_lower_bound_packing(g, [0], eta, candidates)
                assert single <= packing, (seed, eta)

    def test_perfect_precision_preserved(self):
        # Every node lb+ keeps truly satisfies the query (exact oracle).
        for seed in range(5):
            g = uncertain_gnp(6, 0.35, seed=seed)
            if g.num_arcs > 16 or g.num_arcs == 0:
                continue
            candidates = set(g.nodes())
            for eta in (0.3, 0.6):
                kept = verify_lower_bound_packing(g, [0], eta, candidates)
                for t in kept:
                    assert exact_reliability(g, [0], t) >= eta - 1e-9

    def test_max_paths_one_equals_single_path(self, fig1_graph, fig1_names):
        candidates = set(range(5))
        single = verify_lower_bound(
            fig1_graph, [fig1_names["s"]], 0.5, candidates
        )
        packing = verify_lower_bound_packing(
            fig1_graph, [fig1_names["s"]], 0.5, candidates, max_paths=1
        )
        assert single == packing

    def test_more_paths_never_hurt(self, fig1_graph, fig1_names):
        candidates = set(range(5))
        kept_by_budget = [
            verify_lower_bound_packing(
                fig1_graph, [fig1_names["s"]], 0.6, candidates, max_paths=k
            )
            for k in (1, 2, 4)
        ]
        for smaller, larger in zip(kept_by_budget, kept_by_budget[1:]):
            assert smaller <= larger

    def test_respects_candidate_restriction(self):
        g = uncertain_path([0.9, 0.9])
        kept = verify_lower_bound_packing(g, [0], 0.5, {0, 2})
        assert kept == {0}

    def test_serial_path_gains_nothing(self):
        # A pure path has no disjoint alternatives: lb+ == lb.
        g = uncertain_path([0.7, 0.7, 0.7])
        candidates = set(g.nodes())
        assert verify_lower_bound_packing(
            g, [0], 0.4, candidates
        ) == verify_lower_bound(g, [0], 0.4, candidates)

    def test_validation(self, fig1_graph):
        with pytest.raises(EmptySourceSetError):
            verify_lower_bound_packing(fig1_graph, [], 0.5, {0})
        with pytest.raises(ValueError):
            verify_lower_bound_packing(
                fig1_graph, [0], 0.5, {0}, max_paths=0
            )


class TestEngineLbPlus:
    def test_engine_method(self, fig1_graph, fig1_names):
        engine = RQTreeEngine.build(fig1_graph, seed=0)
        result = engine.query(fig1_names["s"], 0.6, method="lb+")
        assert fig1_names["u"] in result.nodes

    def test_answer_between_lb_and_exact(self):
        for seed in range(4):
            g = uncertain_gnp(7, 0.3, seed=seed)
            if g.num_arcs > 16 or g.num_arcs == 0:
                continue
            engine = RQTreeEngine.build(g, seed=seed)
            from repro.graph.exact import exact_reliability_search

            truth = exact_reliability_search(g, [0], 0.4)
            lb = engine.query(0, 0.4, method="lb").nodes
            lb_plus = engine.query(0, 0.4, method="lb+").nodes
            assert lb <= lb_plus <= truth

    def test_max_hops_rejected(self, fig1_graph):
        engine = RQTreeEngine.build(fig1_graph, seed=0)
        with pytest.raises(ValueError):
            engine.query(0, 0.5, method="lb+", max_hops=2)

    def test_explain_mentions_method(self, fig1_graph, fig1_names):
        engine = RQTreeEngine.build(fig1_graph, seed=0)
        text = engine.query(fig1_names["s"], 0.6, method="lb+").explain()
        assert "rq-tree-lb+" in text
