"""Unit tests for graph serialization."""

from __future__ import annotations

import pytest

from repro import UncertainGraph
from repro.errors import GraphError
from repro.graph.generators import uncertain_gnp
from repro.graph.io import (
    graph_from_json,
    graph_to_json,
    load_graph_json,
    read_edge_list,
    save_graph_json,
    write_edge_list,
)


def _assert_graphs_equal(a: UncertainGraph, b: UncertainGraph) -> None:
    assert a.num_nodes == b.num_nodes
    assert sorted(a.arcs()) == pytest.approx(sorted(b.arcs()))


class TestEdgeList:
    def test_round_trip(self, tmp_path, fig1_graph):
        path = tmp_path / "g.txt"
        write_edge_list(fig1_graph, path)
        _assert_graphs_equal(fig1_graph, read_edge_list(path))

    def test_round_trip_preserves_isolated_nodes(self, tmp_path):
        g = UncertainGraph(10)
        g.add_arc(0, 1, 0.5)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).num_nodes == 10

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1 0.5\n# trailing\n")
        g = read_edge_list(path)
        assert g.num_arcs == 1

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5\n0 1\n")
        with pytest.raises(GraphError, match=":2"):
            read_edge_list(path)

    def test_non_numeric_fields_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b 0.5\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("%% nodes many\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_probability_precision_survives(self, tmp_path):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 0.123456789012)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).probability(0, 1) == pytest.approx(
            0.123456789012, rel=1e-10
        )


class TestJson:
    def test_round_trip(self, fig1_graph):
        _assert_graphs_equal(
            fig1_graph, graph_from_json(graph_to_json(fig1_graph))
        )

    def test_file_round_trip(self, tmp_path):
        g = uncertain_gnp(15, 0.3, seed=8)
        path = tmp_path / "g.json"
        save_graph_json(g, path)
        _assert_graphs_equal(g, load_graph_json(path))

    def test_unknown_format_rejected(self):
        with pytest.raises(GraphError):
            graph_from_json({"format": "something-else"})

    def test_document_structure(self, fig1_graph):
        doc = graph_to_json(fig1_graph)
        assert doc["format"] == "repro-uncertain-graph"
        assert doc["num_nodes"] == 5
        assert len(doc["arcs"]) == 8
