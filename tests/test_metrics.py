"""Metrics primitives and telemetry schemas.

Two families of guarantees:

* :class:`Histogram` quantile edge cases — empty, single-sample, the
  exact ``q=0`` / ``q=1`` endpoints, rejection outside ``[0, 1]``, and
  the batched :meth:`Histogram.quantiles` form the SLO exporter uses.
* Schema pins — ``ReliabilityService.metrics_snapshot()`` and the
  loadgen SLO run report are read mechanically (by the ``/metrics``
  endpoint's consumers, the CI gate, and the bench trajectory check),
  so their key sets are contracts, not implementation details.
"""

from __future__ import annotations

import json

import pytest

from repro.service.metrics import (
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


# ----------------------------------------------------------------------
# Histogram.quantile edge cases
# ----------------------------------------------------------------------
def test_quantile_empty_histogram_is_zero_everywhere():
    histogram = Histogram("t.empty")
    for q in (0.0, 0.5, 0.99, 1.0):
        assert histogram.quantile(q) == 0.0


def test_quantile_single_sample_is_that_sample():
    histogram = Histogram("t.single")
    histogram.observe(0.037)
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert histogram.quantile(q) == pytest.approx(0.037)


def test_quantile_endpoints_are_exact_observed_extremes():
    histogram = Histogram("t.extremes")
    for value in (0.004, 0.11, 0.52, 3.7):
        histogram.observe(value)
    # q=0 / q=1 answer the *observed* min/max exactly — not a bucket
    # boundary — because the SLO report's "max" column must match what
    # a client actually experienced.
    assert histogram.quantile(0.0) == pytest.approx(0.004)
    assert histogram.quantile(1.0) == pytest.approx(3.7)


def test_quantile_interpolates_within_observed_range():
    histogram = Histogram("t.range")
    for value in (0.01, 0.02, 0.03, 0.5, 0.9):
        histogram.observe(value)
    for q in (0.1, 0.5, 0.9, 0.99):
        assert 0.01 <= histogram.quantile(q) <= 0.9


def test_quantile_rejects_out_of_range():
    histogram = Histogram("t.bad")
    histogram.observe(1.0)
    with pytest.raises(ValueError):
        histogram.quantile(-0.01)
    with pytest.raises(ValueError):
        histogram.quantile(1.01)


def test_quantiles_batch_matches_individual_calls():
    histogram = Histogram("t.batch")
    for value in (0.002, 0.02, 0.2, 2.0, 20.0):
        histogram.observe(value)
    qs = (0.0, 0.5, 0.9, 0.99, 1.0)
    assert histogram.quantiles(qs) == [histogram.quantile(q) for q in qs]


def test_quantiles_batch_on_empty_histogram():
    assert Histogram("t.batch_empty").quantiles((0.0, 0.5, 1.0)) == [
        0.0, 0.0, 0.0,
    ]


def test_histogram_snapshot_carries_quantiles():
    histogram = Histogram("t.snap")
    for value in (0.01, 0.05, 0.2):
        histogram.observe(value)
    snapshot = histogram.snapshot()
    for key in ("count", "sum", "min", "max", "mean", "buckets",
                "overflow", "p50", "p90", "p99"):
        assert key in snapshot
    assert snapshot["count"] == 3
    assert snapshot["min"] == pytest.approx(0.01)
    assert snapshot["max"] == pytest.approx(0.2)


# ----------------------------------------------------------------------
# metrics_snapshot() schema pin
# ----------------------------------------------------------------------
@pytest.fixture()
def fresh_registry():
    old = set_registry(MetricsRegistry())
    try:
        yield get_registry()
    finally:
        set_registry(old)


def test_service_metrics_snapshot_schema(fresh_registry, medium_engine):
    from repro.service.server import ReliabilityService

    service = ReliabilityService(medium_engine, workers=1)
    service.start()
    try:
        service.query([3], 0.5, method="lb")
        snapshot = service.metrics_snapshot()
    finally:
        service.stop()

    # Top level: the registry's three instrument families plus the
    # serving-layer section.  Renaming any of these breaks every
    # /metrics consumer.
    for key in ("generated_at", "counters", "gauges", "histograms",
                "service"):
        assert key in snapshot, key
    service_section = snapshot["service"]
    for key in ("workers", "in_flight", "queue_depth",
                "batching_enabled", "active_coin_blocks",
                "result_cache", "result_cache_entries"):
        assert key in service_section, key
    for key in ("hits", "misses", "bypasses", "evictions",
                "expirations", "hit_rate"):
        assert key in service_section["result_cache"], key
    json.dumps(snapshot)  # and the whole thing must be JSON-able


# ----------------------------------------------------------------------
# SLO run-report schema pin
# ----------------------------------------------------------------------
def test_slo_report_schema(fresh_registry):
    from repro.loadgen.slo import REPORT_SCHEMA_VERSION, SLOTargets, SLOTracker

    tracker = SLOTracker()
    tracker.observe("query", 0.012, 200, {
        "quality": {"degraded": False, "worlds_used": 64,
                    "achieved_confidence": 0.97, "shards_recovered": 0},
    })
    tracker.observe("query", 0.045, 200, {
        "quality": {"degraded": True, "degraded_reason": "shed:queue",
                    "worlds_used": 0},
    })
    tracker.observe("update", 0.002, 200, {"accepted": True, "epoch": 2})
    tracker.observe_error("query", "timeout")
    tracker.observe_lag(0.001)
    tracker.note_storm(True)
    report = tracker.report(
        wall_seconds=1.0,
        targets=SLOTargets(p99_ms=1000.0, degraded_rate=0.5),
    )

    assert report["schema_version"] == REPORT_SCHEMA_VERSION
    for key in ("schema_version", "schedule", "wall_seconds", "requests",
                "throughput", "latency_ms", "open_loop", "degraded",
                "errors", "shed", "cache", "quality", "error_budget",
                "gates"):
        assert key in report, key
    for key in ("completed", "queries", "updates", "errors", "degraded",
                "shed", "recovered_answers", "storms"):
        assert key in report["requests"], key
    for key in ("p50", "p90", "p99", "max"):
        assert key in report["latency_ms"], key
    assert set(report["gates"]) == {"targets", "breaches", "ok"}
    json.dumps(report)

    # And the arithmetic the gate relies on:
    assert report["requests"]["completed"] == 3
    assert report["requests"]["errors"] == 1
    assert report["requests"]["shed"] == 1
    assert report["degraded"]["by_reason"] == {"shed:queue": 1}
    assert report["errors"]["by_type"] == {"timeout": 1}
    # budget: target 0.5 over 3 completed -> 1.5 allowed; degraded(1) +
    # errors(1) = 2 spent -> burn 2/1.5
    assert report["error_budget"]["spent_bad"] == 2
    assert report["error_budget"]["burn"] == pytest.approx(2 / 1.5, abs=1e-3)


def test_slo_gates_breach_detection(fresh_registry):
    from repro.loadgen.slo import SLOTargets, SLOTracker

    tracker = SLOTracker()
    for _ in range(10):
        tracker.observe("query", 0.050, 200, {"quality": {}})
    report = tracker.report(
        wall_seconds=1.0,
        targets=SLOTargets(p99_ms=10.0, min_qps=100.0),
    )
    assert not report["gates"]["ok"]
    joined = " ".join(report["gates"]["breaches"])
    assert "p99_ms" in joined and "min_qps" in joined

    clean = tracker.report(wall_seconds=1.0, targets=SLOTargets())
    assert clean["gates"]["ok"] and clean["gates"]["breaches"] == []


def test_slo_cache_window_uses_deltas(fresh_registry):
    from repro.loadgen.slo import SLOTracker

    tracker = SLOTracker()
    tracker.observe("query", 0.01, 200, {"quality": {}})
    before = {"service": {"result_cache": {"hits": 100, "misses": 400}},
              "counters": {"service.shed": 7}}
    after = {"service": {"result_cache": {"hits": 130, "misses": 410}},
             "counters": {"service.shed": 9}}
    tracker.set_metrics_window(before, after)
    report = tracker.report(wall_seconds=1.0)
    assert report["cache"]["hits"] == 30
    assert report["cache"]["misses"] == 10
    assert report["cache"]["hit_rate"] == pytest.approx(0.75)
    assert report["shed"]["served_by_service"] == 2
