"""Unit tests for most-likely-path computations (Theorem 4 machinery)."""

from __future__ import annotations

import math

import pytest

from repro import UncertainGraph
from repro.errors import NodeNotFoundError
from repro.graph.exact import exact_reliability
from repro.graph.generators import uncertain_gnp, uncertain_path
from repro.graph.paths import (
    distance_to_prob,
    most_likely_path,
    most_likely_path_probabilities,
    prob_to_distance,
)


class TestWeightMapping:
    def test_round_trip(self):
        for p in [0.1, 0.5, 0.99, 1.0]:
            assert distance_to_prob(prob_to_distance(p)) == pytest.approx(p)

    def test_probability_one_maps_to_zero_weight(self):
        assert prob_to_distance(1.0) == 0.0

    def test_infinite_distance_is_zero_probability(self):
        assert distance_to_prob(math.inf) == 0.0


class TestMostLikelyPathProbabilities:
    def test_path_graph_products(self):
        g = uncertain_path([0.9, 0.8, 0.7])
        probs = most_likely_path_probabilities(g, [0])
        assert probs[0] == pytest.approx(1.0)
        assert probs[1] == pytest.approx(0.9)
        assert probs[2] == pytest.approx(0.72)
        assert probs[3] == pytest.approx(0.504)

    def test_picks_the_better_of_two_routes(self):
        g = UncertainGraph(4)
        g.add_arc(0, 1, 0.9)
        g.add_arc(1, 3, 0.9)   # product 0.81
        g.add_arc(0, 2, 0.5)
        g.add_arc(2, 3, 0.99)  # product 0.495
        probs = most_likely_path_probabilities(g, [0])
        assert probs[3] == pytest.approx(0.81)

    def test_direct_arc_can_lose_to_longer_path(self):
        g = UncertainGraph(3)
        g.add_arc(0, 2, 0.4)
        g.add_arc(0, 1, 0.9)
        g.add_arc(1, 2, 0.9)
        probs = most_likely_path_probabilities(g, [0])
        assert probs[2] == pytest.approx(0.81)

    def test_unreachable_nodes_omitted(self):
        g = UncertainGraph(3)
        g.add_arc(0, 1, 0.5)
        probs = most_likely_path_probabilities(g, [0])
        assert 2 not in probs

    def test_multi_source_takes_best_source(self):
        g = UncertainGraph(4)
        g.add_arc(0, 2, 0.3)
        g.add_arc(1, 2, 0.8)
        probs = most_likely_path_probabilities(g, [0, 1])
        assert probs[2] == pytest.approx(0.8)

    def test_allowed_restriction_blocks_paths(self):
        g = uncertain_path([0.9, 0.9])
        probs = most_likely_path_probabilities(g, [0], allowed={0, 2})
        # Node 1 is excluded, so node 2 becomes unreachable.
        assert 2 not in probs
        assert 1 not in probs

    def test_min_probability_cutoff(self):
        g = uncertain_path([0.9, 0.5, 0.5])
        probs = most_likely_path_probabilities(g, [0], min_probability=0.4)
        assert probs[1] == pytest.approx(0.9)
        assert probs[2] == pytest.approx(0.45)
        assert 3 not in probs  # 0.225 < 0.4

    def test_is_lower_bound_on_reliability(self):
        # Theorem 4: L_R(S, t) <= R(S, t) on random small graphs.
        for seed in range(5):
            g = uncertain_gnp(6, 0.3, seed=seed)
            if g.num_arcs > 16 or g.num_arcs == 0:
                continue
            probs = most_likely_path_probabilities(g, [0])
            for t, lower in probs.items():
                true = exact_reliability(g, [0], t)
                assert lower <= true + 1e-9

    def test_missing_source_raises(self):
        g = uncertain_path([0.5])
        with pytest.raises(NodeNotFoundError):
            most_likely_path_probabilities(g, [7])


class TestMostLikelyPathRecovery:
    def test_path_nodes_returned(self):
        g = uncertain_path([0.9, 0.8])
        prob, path = most_likely_path(g, [0], 2)
        assert prob == pytest.approx(0.72)
        assert path == [0, 1, 2]

    def test_unreachable_target(self):
        g = UncertainGraph(3)
        g.add_arc(0, 1, 0.5)
        prob, path = most_likely_path(g, [0], 2)
        assert prob == 0.0
        assert path == []

    def test_target_is_source(self):
        g = uncertain_path([0.5])
        prob, path = most_likely_path(g, [0], 0)
        assert prob == pytest.approx(1.0)
        assert path == [0]

    def test_path_probability_matches_product(self):
        g = uncertain_gnp(8, 0.3, seed=11)
        prob, path = most_likely_path(g, [0], 5)
        if path:
            product = 1.0
            for u, v in zip(path, path[1:]):
                product *= g.probability(u, v)
            assert prob == pytest.approx(product)

    def test_missing_target_raises(self):
        g = uncertain_path([0.5])
        with pytest.raises(NodeNotFoundError):
            most_likely_path(g, [0], 9)
