"""Unit tests for candidate generation (Section 4)."""

from __future__ import annotations

import pytest

from repro import RQTreeEngine, build_rqtree
from repro.core.candidates import (
    generate_candidates,
    multi_source_candidates_exact,
    multi_source_candidates_greedy,
    single_source_candidates,
)
from repro.errors import (
    EmptySourceSetError,
    InvalidThresholdError,
    NodeNotFoundError,
)
from repro.graph.exact import exact_reliability_search
from repro.graph.generators import uncertain_gnp, uncertain_path


@pytest.fixture(scope="module")
def small_indexed():
    """Small random graphs paired with their RQ-trees (oracle range)."""
    pairs = []
    for seed in range(6):
        g = uncertain_gnp(7, 0.25, seed=seed)
        if 0 < g.num_arcs <= 16:
            tree, _ = build_rqtree(g, seed=seed)
            pairs.append((g, tree))
    assert pairs
    return pairs


class TestSingleSource:
    def test_no_false_negatives_against_exact(self, small_indexed):
        # The core guarantee (Observations 1-2): every true answer node
        # survives the filtering phase.
        for g, tree in small_indexed:
            for eta in (0.3, 0.5, 0.7):
                truth = exact_reliability_search(g, [0], eta)
                result = single_source_candidates(g, tree, 0, eta)
                assert truth <= result.candidates

    def test_source_always_candidate(self, small_indexed):
        g, tree = small_indexed[0]
        result = single_source_candidates(g, tree, 0, 0.5)
        assert 0 in result.candidates

    def test_stops_at_first_qualifying_cluster(self, fig1_graph, fig1_names):
        tree, _ = build_rqtree(fig1_graph, seed=1)
        result = single_source_candidates(
            fig1_graph, tree, fig1_names["s"], 0.5
        )
        assert result.final_upper_bound < 0.5
        # The selected cluster really is on s's path to the root.
        path_indices = [
            c.index for c in tree.path_to_root(fig1_names["s"])
        ]
        assert result.selected_clusters[0] in path_indices

    def test_high_eta_prunes_more(self, medium_graph, medium_engine):
        low = single_source_candidates(
            medium_graph, medium_engine.tree, 0, 0.3
        )
        high = single_source_candidates(
            medium_graph, medium_engine.tree, 0, 0.9
        )
        assert len(high.candidates) <= len(low.candidates)

    def test_instrumentation_counters(self, medium_graph, medium_engine):
        result = single_source_candidates(
            medium_graph, medium_engine.tree, 5, 0.6
        )
        assert 1 <= result.clusters_visited <= medium_engine.tree.height + 1
        assert result.flow_calls <= result.clusters_visited
        assert result.max_subgraph_nodes >= 1

    def test_invalid_eta_rejected(self, medium_graph, medium_engine):
        for bad in (0.0, 1.0, -0.5, float("nan")):
            with pytest.raises(InvalidThresholdError):
                single_source_candidates(
                    medium_graph, medium_engine.tree, 0, bad
                )

    def test_missing_source_rejected(self, medium_graph, medium_engine):
        with pytest.raises(NodeNotFoundError):
            single_source_candidates(
                medium_graph, medium_engine.tree, 10**6, 0.5
            )


class TestMultiSourceGreedy:
    def test_no_false_negatives_against_exact(self, small_indexed):
        for g, tree in small_indexed:
            sources = [0, g.num_nodes - 1]
            for eta in (0.3, 0.6):
                truth = exact_reliability_search(g, sources, eta)
                result = multi_source_candidates_greedy(g, tree, sources, eta)
                assert truth <= result.candidates

    def test_all_sources_in_candidates(self, medium_graph, medium_engine):
        sources = [0, 50, 100]
        result = multi_source_candidates_greedy(
            medium_graph, medium_engine.tree, sources, 0.6
        )
        assert set(sources) <= result.candidates

    def test_combined_bound_below_eta(self, medium_graph, medium_engine):
        result = multi_source_candidates_greedy(
            medium_graph, medium_engine.tree, [0, 150], 0.6
        )
        assert result.final_upper_bound < 0.6

    def test_duplicate_sources_coalesce(self, medium_graph, medium_engine):
        a = multi_source_candidates_greedy(
            medium_graph, medium_engine.tree, [3, 3, 3], 0.6
        )
        b = single_source_candidates(medium_graph, medium_engine.tree, 3, 0.6)
        assert a.candidates == b.candidates

    def test_empty_sources_rejected(self, medium_graph, medium_engine):
        with pytest.raises(EmptySourceSetError):
            multi_source_candidates_greedy(
                medium_graph, medium_engine.tree, [], 0.5
            )

    def test_union_of_selected_clusters(self, medium_graph, medium_engine):
        result = multi_source_candidates_greedy(
            medium_graph, medium_engine.tree, [0, 200], 0.6
        )
        union = set()
        for index in result.selected_clusters:
            union |= medium_engine.tree.clusters[index].members
        assert union == result.candidates


class TestMultiSourceExact:
    def test_no_false_negatives_against_exact(self, small_indexed):
        for g, tree in small_indexed:
            sources = [0, g.num_nodes // 2]
            for eta in (0.3, 0.6):
                truth = exact_reliability_search(g, sources, eta)
                result = multi_source_candidates_exact(g, tree, sources, eta)
                assert truth <= result.candidates

    def test_exact_never_larger_than_greedy(self, small_indexed):
        # The DP optimizes |C_union|; the heuristic cannot beat it.
        for g, tree in small_indexed:
            sources = [0, g.num_nodes - 1]
            greedy = multi_source_candidates_greedy(g, tree, sources, 0.5)
            exact = multi_source_candidates_exact(g, tree, sources, 0.5)
            assert len(exact.candidates) <= len(greedy.candidates)

    def test_exact_on_medium_graph(self, medium_graph, medium_engine):
        sources = [0, 120, 250]
        result = multi_source_candidates_exact(
            medium_graph, medium_engine.tree, sources, 0.6
        )
        assert set(sources) <= result.candidates
        assert result.final_upper_bound < 0.6

    def test_selected_clusters_disjoint(self, medium_graph, medium_engine):
        result = multi_source_candidates_exact(
            medium_graph, medium_engine.tree, [0, 299], 0.6
        )
        seen = set()
        for index in result.selected_clusters:
            members = medium_engine.tree.clusters[index].members
            assert not (seen & members)
            seen |= members


class TestDispatch:
    def test_single_source_dispatch(self, medium_graph, medium_engine):
        via_dispatch = generate_candidates(
            medium_graph, medium_engine.tree, [7], 0.6
        )
        direct = single_source_candidates(
            medium_graph, medium_engine.tree, 7, 0.6
        )
        assert via_dispatch.candidates == direct.candidates

    def test_multi_source_modes(self, medium_graph, medium_engine):
        greedy = generate_candidates(
            medium_graph,
            medium_engine.tree,
            [7, 200],
            0.6,
            multi_source_mode="greedy",
        )
        exact = generate_candidates(
            medium_graph,
            medium_engine.tree,
            [7, 200],
            0.6,
            multi_source_mode="exact",
        )
        assert len(exact.candidates) <= len(greedy.candidates)

    def test_unknown_mode_rejected(self, medium_graph, medium_engine):
        with pytest.raises(ValueError):
            generate_candidates(
                medium_graph,
                medium_engine.tree,
                [0, 1],
                0.5,
                multi_source_mode="magic",
            )

    def test_empty_sources_rejected(self, medium_graph, medium_engine):
        with pytest.raises(EmptySourceSetError):
            generate_candidates(medium_graph, medium_engine.tree, [], 0.5)


class TestPathGraphPruning:
    def test_distant_nodes_pruned_on_weak_path(self):
        # 0 -(0.9)- 1 -(0.1)- 2 -(0.9)- 3: with eta = 0.5, nodes past the
        # weak arc must be pruned by a qualifying cluster.
        g = uncertain_path([0.9, 0.1, 0.9])
        tree, _ = build_rqtree(g, seed=0)
        result = single_source_candidates(g, tree, 0, 0.5)
        truth = exact_reliability_search(g, [0], 0.5)
        assert truth <= result.candidates
        assert truth == {0, 1}


class TestExactDPFrontierCap:
    def test_tiny_frontier_still_sound(self, small_indexed):
        # Even with the Pareto frontier capped to a single entry per
        # cluster the DP must return a *valid* cover (no true answer
        # pruned) — the cap only affects optimality.
        for g, tree in small_indexed:
            sources = [0, g.num_nodes - 1]
            truth = exact_reliability_search(g, sources, 0.5)
            result = multi_source_candidates_exact(
                g, tree, sources, 0.5, max_frontier=1
            )
            assert truth <= result.candidates

    def test_larger_frontier_never_larger_candidates(self, small_indexed):
        for g, tree in small_indexed:
            sources = [0, g.num_nodes - 1]
            capped = multi_source_candidates_exact(
                g, tree, sources, 0.5, max_frontier=1
            )
            full = multi_source_candidates_exact(
                g, tree, sources, 0.5, max_frontier=256
            )
            assert len(full.candidates) <= len(capped.candidates)
