"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph.io import read_edge_list


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.txt"
    code = main([
        "generate", "--dataset", "lastfm", "--nodes", "120",
        "--seed", "1", "--output", str(path),
    ])
    assert code == 0
    return path


@pytest.fixture()
def index_file(tmp_path, graph_file):
    path = tmp_path / "idx.json"
    code = main([
        "build-index", "--graph", str(graph_file),
        "--output", str(path), "--seed", "0",
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--dataset", "nope", "--output", "x"]
            )

    def test_sources_parsing(self):
        args = build_parser().parse_args(
            ["query", "--graph", "g", "--sources", "1,2,3", "--eta", "0.5"]
        )
        assert args.sources == [1, 2, 3]

    def test_bad_sources_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--graph", "g", "--sources", "a,b", "--eta", "0.5"]
            )


class TestGenerate:
    def test_writes_valid_edge_list(self, graph_file):
        graph = read_edge_list(graph_file)
        assert graph.num_nodes == 120
        assert graph.num_arcs > 0

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        for out in (a, b):
            main([
                "generate", "--dataset", "nethept", "--nodes", "64",
                "--seed", "7", "--output", str(out),
            ])
        assert a.read_text() == b.read_text()


class TestBuildIndex:
    def test_writes_loadable_index(self, index_file):
        document = json.loads(index_file.read_text())
        assert document["format"] == "repro-rqtree"

    def test_build_prints_report(self, tmp_path, graph_file, capsys):
        out = tmp_path / "idx2.json"
        capsys.readouterr()  # drain fixture output
        code = main([
            "build-index", "--graph", str(graph_file), "--output", str(out)
        ])
        assert code == 0
        assert "# clusters" in capsys.readouterr().out

    def test_branching_option(self, tmp_path, graph_file):
        out = tmp_path / "idx4.json"
        code = main([
            "build-index", "--graph", str(graph_file),
            "--output", str(out), "--branching", "4",
        ])
        assert code == 0


class TestStats:
    def test_graph_only(self, graph_file, capsys):
        assert main(["stats", "--graph", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out and "arcs" in out

    def test_with_index(self, graph_file, index_file, capsys):
        code = main([
            "stats", "--graph", str(graph_file), "--index", str(index_file)
        ])
        assert code == 0
        assert "index height" in capsys.readouterr().out


class TestQuery:
    def test_query_with_prebuilt_index(self, graph_file, index_file, capsys):
        code = main([
            "query", "--graph", str(graph_file), "--index", str(index_file),
            "--sources", "3", "--eta", "0.4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "answer size" in out
        assert "nodes:" in out

    def test_query_builds_index_on_the_fly(self, graph_file, capsys):
        code = main([
            "query", "--graph", str(graph_file),
            "--sources", "3", "--eta", "0.4",
        ])
        assert code == 0

    def test_query_mc_method(self, graph_file, index_file):
        code = main([
            "query", "--graph", str(graph_file), "--index", str(index_file),
            "--sources", "3", "--eta", "0.4",
            "--method", "mc", "--samples", "100", "--seed", "0",
        ])
        assert code == 0

    def test_query_max_hops(self, graph_file, index_file, capsys):
        code = main([
            "query", "--graph", str(graph_file), "--index", str(index_file),
            "--sources", "3", "--eta", "0.4", "--max-hops", "1",
        ])
        assert code == 0

    def test_multi_source_exact_mode(self, graph_file, index_file):
        code = main([
            "query", "--graph", str(graph_file), "--index", str(index_file),
            "--sources", "3,40", "--eta", "0.4",
            "--multi-source-mode", "exact",
        ])
        assert code == 0


class TestTopK:
    def test_ranked_output(self, graph_file, index_file, capsys):
        code = main([
            "top-k", "--graph", str(graph_file), "--index", str(index_file),
            "--sources", "3", "-k", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rank" in out


class TestDetect:
    def test_bracket_output(self, graph_file, index_file, capsys):
        code = main([
            "detect", "--graph", str(graph_file), "--index", str(index_file),
            "--source", "3", "--target", "4",
            "--tolerance", "0.2", "--samples", "200", "--seed", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "point estimate" in out


class TestTransform:
    def test_scale(self, tmp_path, graph_file):
        out = tmp_path / "scaled.txt"
        code = main([
            "transform", "--graph", str(graph_file),
            "--scale", "0.5", "--output", str(out),
        ])
        assert code == 0
        original = read_edge_list(graph_file)
        scaled = read_edge_list(out)
        for u, v, p in original.arcs():
            assert scaled.probability(u, v) == pytest.approx(p * 0.5)

    def test_backbone_drops_weak_arcs(self, tmp_path, graph_file):
        out = tmp_path / "bb.txt"
        code = main([
            "transform", "--graph", str(graph_file),
            "--backbone", "0.4", "--output", str(out),
        ])
        assert code == 0
        backbone = read_edge_list(out)
        assert all(p >= 0.4 for _, _, p in backbone.arcs())

    def test_power(self, tmp_path, graph_file):
        out = tmp_path / "pow.txt"
        assert main([
            "transform", "--graph", str(graph_file),
            "--power", "2.0", "--output", str(out),
        ]) == 0

    def test_exactly_one_option_required(self, tmp_path, graph_file):
        out = tmp_path / "x.txt"
        assert main([
            "transform", "--graph", str(graph_file), "--output", str(out),
        ]) == 2
        assert main([
            "transform", "--graph", str(graph_file), "--output", str(out),
            "--scale", "0.5", "--power", "2.0",
        ]) == 2
