"""Unit tests for possible-world sampling."""

from __future__ import annotations

import random

import pytest

from repro import UncertainGraph
from repro.graph.exact import exact_reliability
from repro.graph.generators import figure1_graph, uncertain_path
from repro.graph.sampling import (
    ReachabilityFrequencyEstimator,
    WorldSampler,
    sample_reachable,
)


class TestWorldSampler:
    def test_deterministic_given_seed(self, fig1_graph):
        a = WorldSampler(fig1_graph, seed=5)
        b = WorldSampler(fig1_graph, seed=5)
        for _ in range(10):
            assert a.sample_world() == b.sample_world()

    def test_worlds_are_subsets_of_arcs(self, fig1_graph):
        arcs = {(u, v) for u, v, _ in fig1_graph.arcs()}
        sampler = WorldSampler(fig1_graph, seed=1)
        for world in sampler.worlds(20):
            assert set(world) <= arcs

    def test_certain_arcs_always_present(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 1.0)
        sampler = WorldSampler(g, seed=0)
        for world in sampler.worlds(10):
            assert (0, 1) in world

    def test_arc_frequency_matches_probability(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 0.3)
        sampler = WorldSampler(g, seed=3)
        hits = sum(1 for world in sampler.worlds(4000) if world)
        assert hits / 4000 == pytest.approx(0.3, abs=0.03)

    def test_adjacency_representation(self, fig1_graph):
        sampler = WorldSampler(fig1_graph, seed=2)
        adjacency = sampler.sample_world_adjacency()
        assert len(adjacency) == fig1_graph.num_nodes
        for u, nbrs in enumerate(adjacency):
            for v in nbrs:
                assert fig1_graph.has_arc(u, v)


class TestSampleReachable:
    def test_sources_always_included(self, fig1_graph):
        rng = random.Random(0)
        reached = sample_reachable(fig1_graph, [0], rng)
        assert 0 in reached

    def test_deterministic_arcs_always_traversed(self):
        g = uncertain_path([1.0, 1.0, 1.0])
        rng = random.Random(0)
        assert sample_reachable(g, [0], rng) == {0, 1, 2, 3}

    def test_allowed_restriction(self):
        g = uncertain_path([1.0, 1.0, 1.0])
        rng = random.Random(0)
        assert sample_reachable(g, [0], rng, allowed={0, 1}) == {0, 1}

    def test_lazy_frequency_matches_reliability(self, fig1_graph, fig1_names):
        # The lazy BFS sampler must estimate R(s, u) = 0.65 (Example 1).
        rng = random.Random(7)
        hits = 0
        trials = 4000
        for _ in range(trials):
            if fig1_names["u"] in sample_reachable(
                fig1_graph, [fig1_names["s"]], rng
            ):
                hits += 1
        assert hits / trials == pytest.approx(0.65, abs=0.03)


class TestReachabilityFrequencyEstimator:
    def test_empty_before_running(self, fig1_graph):
        est = ReachabilityFrequencyEstimator(fig1_graph, [0], seed=0)
        assert est.frequencies() == {}
        assert est.nodes_above(0.5) == set()
        assert est.num_worlds == 0

    def test_incremental_runs_accumulate(self, fig1_graph):
        est = ReachabilityFrequencyEstimator(fig1_graph, [0], seed=0)
        est.run(10).run(15)
        assert est.num_worlds == 25

    def test_source_frequency_is_one(self, fig1_graph):
        est = ReachabilityFrequencyEstimator(fig1_graph, [0], seed=0)
        est.run(50)
        assert est.frequencies()[0] == pytest.approx(1.0)

    def test_matches_exact_on_figure1(self, fig1_graph, fig1_names):
        est = ReachabilityFrequencyEstimator(
            fig1_graph, [fig1_names["s"]], seed=11
        )
        est.run(5000)
        freq = est.frequencies()
        for name in ["u", "v", "w", "t"]:
            node = fig1_names[name]
            exact = exact_reliability(fig1_graph, [fig1_names["s"]], node)
            assert freq.get(node, 0.0) == pytest.approx(exact, abs=0.03)

    def test_nodes_above_uses_inclusive_threshold(self):
        g = uncertain_path([1.0])
        est = ReachabilityFrequencyEstimator(g, [0], seed=0)
        est.run(10)
        # Node 1 reached in all 10 worlds; eta = 1.0 is outside the valid
        # query range but the estimator itself accepts it inclusively.
        assert est.nodes_above(1.0) == {0, 1}

    def test_determinism_with_seed(self, fig1_graph):
        a = ReachabilityFrequencyEstimator(fig1_graph, [0], seed=9).run(200)
        b = ReachabilityFrequencyEstimator(fig1_graph, [0], seed=9).run(200)
        assert a.frequencies() == b.frequencies()

    def test_allowed_restriction_respected(self, fig1_graph, fig1_names):
        allowed = {fig1_names["s"], fig1_names["w"]}
        est = ReachabilityFrequencyEstimator(
            fig1_graph, [fig1_names["s"]], seed=0, allowed=allowed
        )
        est.run(100)
        assert set(est.frequencies()) <= allowed
