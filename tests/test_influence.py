"""Unit tests for influence maximization (Section 7.7)."""

from __future__ import annotations

import pytest

from repro import RQTreeEngine, UncertainGraph
from repro.errors import EmptySourceSetError
from repro.graph.exact import exact_reliability
from repro.graph.generators import lastfm_like, uncertain_path
from repro.influence.greedy import greedy_influence, greedy_mc, greedy_rqtree
from repro.influence.spread import (
    expected_spread_histogram,
    expected_spread_mc,
)


@pytest.fixture(scope="module")
def im_graph():
    return lastfm_like(n=120, seed=3)


@pytest.fixture(scope="module")
def im_engine(im_graph):
    return RQTreeEngine.build(im_graph, seed=3)


class TestSpreadMC:
    def test_seed_always_counts_itself(self):
        g = UncertainGraph(3)
        spread = expected_spread_mc(g, [0], num_samples=50, seed=0)
        assert spread == pytest.approx(1.0)

    def test_matches_sum_of_reliabilities(self, fig1_graph, fig1_names):
        # sigma(S) = sum_t R(S, t) (Section 7.7).
        s = fig1_names["s"]
        expected = sum(
            exact_reliability(fig1_graph, [s], t) for t in range(5)
        )
        estimate = expected_spread_mc(fig1_graph, [s], num_samples=6000, seed=1)
        assert estimate == pytest.approx(expected, abs=0.1)

    def test_monotone_in_seed_set(self, im_graph):
        small = expected_spread_mc(im_graph, [0], num_samples=300, seed=0)
        large = expected_spread_mc(im_graph, [0, 1, 2], num_samples=300, seed=0)
        assert large >= small

    def test_empty_seeds_rejected(self, im_graph):
        with pytest.raises(EmptySourceSetError):
            expected_spread_mc(im_graph, [])

    def test_invalid_samples_rejected(self, im_graph):
        with pytest.raises(ValueError):
            expected_spread_mc(im_graph, [0], num_samples=0)


class TestSpreadHistogram:
    def test_lower_bounds_true_spread_roughly(self, im_engine, im_graph):
        # The histogram is a lower Riemann sum over the LB answers, so it
        # should not wildly exceed the MC estimate.
        for seeds in ([0], [5, 10]):
            histogram = expected_spread_histogram(im_engine, seeds)
            mc = expected_spread_mc(im_graph, seeds, num_samples=500, seed=0)
            assert histogram <= mc * 1.5 + 1.0

    def test_monotone_in_seed_set(self, im_engine):
        small = expected_spread_histogram(im_engine, [0])
        large = expected_spread_histogram(im_engine, [0, 1, 2, 3])
        assert large >= small - 1e-9

    def test_single_threshold(self, im_engine):
        value = expected_spread_histogram(im_engine, [0], thresholds=[0.5])
        assert value >= 0.5  # at least the seed itself at eta = 0.5

    def test_empty_thresholds_rejected(self, im_engine):
        with pytest.raises(ValueError):
            expected_spread_histogram(im_engine, [0], thresholds=[])

    def test_empty_seeds_rejected(self, im_engine):
        with pytest.raises(EmptySourceSetError):
            expected_spread_histogram(im_engine, [])


class TestGreedy:
    def test_generic_greedy_with_deterministic_oracle(self):
        g = UncertainGraph(5)

        # Oracle: value of a set is the max element (monotone, submodular).
        def oracle(seeds):
            return float(max(seeds)) + 1.0

        trace = greedy_influence(g, 2, oracle, use_celf=False)
        assert trace.seeds[0] == 4  # the argmax node first

    def test_celf_matches_plain_greedy_on_modular_oracle(self):
        g = UncertainGraph(6)
        weights = {0: 5.0, 1: 4.0, 2: 3.0, 3: 2.0, 4: 1.0, 5: 0.5}

        def oracle(seeds):
            return sum(weights[s] for s in seeds)

        plain = greedy_influence(g, 3, oracle, use_celf=False)
        celf = greedy_influence(g, 3, oracle, use_celf=True)
        assert plain.seeds == celf.seeds == [0, 1, 2]

    def test_celf_saves_evaluations(self, im_graph):
        plain = greedy_mc(im_graph, 2, num_samples=30, seed=0, use_celf=False)
        celf = greedy_mc(im_graph, 2, num_samples=30, seed=0, use_celf=True)
        assert celf.evaluations <= plain.evaluations

    def test_trace_structure(self, im_graph):
        trace = greedy_mc(im_graph, 3, num_samples=30, seed=0)
        assert len(trace.seeds) == 3
        assert len(trace.spreads) == 3
        assert len(trace.seconds) == 3
        assert trace.seconds == sorted(trace.seconds)
        assert len(set(trace.seeds)) == 3  # no repeats

    def test_spreads_non_decreasing(self, im_graph):
        trace = greedy_mc(im_graph, 3, num_samples=50, seed=1)
        assert trace.spreads == sorted(trace.spreads)

    def test_candidate_pool_respected(self, im_graph):
        trace = greedy_mc(
            im_graph, 2, num_samples=30, seed=0, candidates=[4, 5, 6]
        )
        assert set(trace.seeds) <= {4, 5, 6}

    def test_k_larger_than_pool(self, im_graph):
        trace = greedy_mc(
            im_graph, 5, num_samples=20, seed=0, candidates=[1, 2]
        )
        assert len(trace.seeds) == 2

    def test_invalid_k_rejected(self, im_graph):
        with pytest.raises(ValueError):
            greedy_mc(im_graph, 0)

    def test_rqtree_greedy_runs(self, im_engine):
        trace = greedy_rqtree(im_engine, 2, thresholds=[0.3, 0.6])
        assert len(trace.seeds) == 2

    def test_rqtree_greedy_picks_influential_nodes(self, im_engine, im_graph):
        # The RQ-tree Greedy seed should beat a random node's spread.
        trace = greedy_rqtree(im_engine, 1, thresholds=[0.2, 0.4, 0.6, 0.8])
        best = expected_spread_mc(
            im_graph, [trace.seeds[0]], num_samples=300, seed=5
        )
        worst = min(
            expected_spread_mc(im_graph, [v], num_samples=300, seed=5)
            for v in [7, 33, 90]
        )
        assert best >= worst
