"""Tests for distance-constrained reliability search (max_hops)."""

from __future__ import annotations

import random

import pytest

from repro import RQTreeEngine, UncertainGraph, mc_sampling_search
from repro.graph.exact import exact_hop_reliability
from repro.graph.generators import figure1_graph, uncertain_gnp, uncertain_path
from repro.graph.paths import (
    hop_bounded_path_probabilities,
    most_likely_path_probabilities,
)
from repro.graph.sampling import sample_reachable


class TestHopBoundedPaths:
    def test_path_graph_truncation(self):
        g = uncertain_path([0.9, 0.8, 0.7])
        probs = hop_bounded_path_probabilities(g, [0], max_hops=2)
        assert probs[0] == pytest.approx(1.0)
        assert probs[1] == pytest.approx(0.9)
        assert probs[2] == pytest.approx(0.72)
        assert 3 not in probs

    def test_zero_hops_returns_sources_only(self):
        g = uncertain_path([0.9])
        assert hop_bounded_path_probabilities(g, [0], 0) == {0: 1.0}

    def test_hop_budget_can_force_worse_path(self):
        # Direct arc 0.4 vs two-hop 0.9*0.9 = 0.81: the 1-hop budget must
        # settle for the direct arc.
        g = UncertainGraph(3)
        g.add_arc(0, 2, 0.4)
        g.add_arc(0, 1, 0.9)
        g.add_arc(1, 2, 0.9)
        one_hop = hop_bounded_path_probabilities(g, [0], 1)
        two_hop = hop_bounded_path_probabilities(g, [0], 2)
        assert one_hop[2] == pytest.approx(0.4)
        assert two_hop[2] == pytest.approx(0.81)

    def test_large_budget_matches_dijkstra(self):
        for seed in range(4):
            g = uncertain_gnp(8, 0.3, seed=seed)
            bounded = hop_bounded_path_probabilities(g, [0], max_hops=8)
            exact = most_likely_path_probabilities(g, [0])
            assert set(bounded) == set(exact)
            for node in exact:
                assert bounded[node] == pytest.approx(exact[node])

    def test_monotone_in_budget(self):
        g = uncertain_gnp(8, 0.3, seed=1)
        prev: dict = {}
        for hops in range(5):
            current = hop_bounded_path_probabilities(g, [0], hops)
            for node, p in prev.items():
                assert current.get(node, 0.0) >= p - 1e-12
            prev = current

    def test_min_probability_filter(self):
        g = uncertain_path([0.9, 0.5])
        probs = hop_bounded_path_probabilities(
            g, [0], 5, min_probability=0.6
        )
        assert 2 not in probs  # 0.45 < 0.6
        assert probs[1] == pytest.approx(0.9)

    def test_allowed_restriction(self):
        g = uncertain_path([0.9, 0.9])
        probs = hop_bounded_path_probabilities(g, [0], 5, allowed={0, 2})
        assert 2 not in probs

    def test_negative_budget_rejected(self):
        g = uncertain_path([0.5])
        with pytest.raises(ValueError):
            hop_bounded_path_probabilities(g, [0], -1)


class TestHopBoundedSampling:
    def test_hop_zero_reaches_sources_only(self):
        g = uncertain_path([1.0, 1.0])
        rng = random.Random(0)
        assert sample_reachable(g, [0], rng, max_hops=0) == {0}

    def test_hop_budget_truncates_certain_path(self):
        g = uncertain_path([1.0, 1.0, 1.0])
        rng = random.Random(0)
        assert sample_reachable(g, [0], rng, max_hops=2) == {0, 1, 2}

    def test_unbounded_equals_none(self):
        g = uncertain_path([1.0, 1.0, 1.0])
        rng = random.Random(0)
        assert sample_reachable(g, [0], rng, max_hops=None) == {0, 1, 2, 3}

    def test_frequency_matches_exact_hop_reliability(self):
        g, names = figure1_graph()
        rng = random.Random(3)
        hits = 0
        trials = 4000
        for _ in range(trials):
            if names["u"] in sample_reachable(
                g, [names["s"]], rng, max_hops=1
            ):
                hits += 1
        exact = exact_hop_reliability(g, [names["s"]], names["u"], 1)
        assert hits / trials == pytest.approx(exact, abs=0.03)


class TestEngineMaxHops:
    def test_lb_hop_query_on_path(self):
        g = uncertain_path([0.9, 0.9, 0.9])
        engine = RQTreeEngine.build(g, seed=0)
        assert engine.query(0, 0.5, max_hops=1).nodes == {0, 1}
        assert engine.query(0, 0.5, max_hops=2).nodes == {0, 1, 2}

    def test_mc_hop_query_matches_exact(self):
        g, names = figure1_graph()
        engine = RQTreeEngine.build(g, seed=0)
        # eta = 0.45 keeps every node's 1-hop reliability safely away
        # from the threshold (u: 0.5, w: 0.6, v/t: 0), so sampling noise
        # cannot flip membership.
        result = engine.query(
            names["s"], 0.45, method="mc", num_samples=4000, seed=1,
            max_hops=1,
        )
        expected = {
            t
            for t in range(5)
            if exact_hop_reliability(g, [names["s"]], t, 1) >= 0.45
            or t == names["s"]
        }
        assert result.nodes == expected
        assert expected == {names["s"], names["u"], names["w"]}

    def test_hop_answer_subset_of_unbounded(self):
        for seed in range(3):
            g = uncertain_gnp(10, 0.25, seed=seed)
            engine = RQTreeEngine.build(g, seed=seed)
            unbounded = engine.query(0, 0.4).nodes
            bounded = engine.query(0, 0.4, max_hops=2).nodes
            assert bounded <= unbounded

    def test_lb_hop_answers_never_false_positive(self):
        for seed in range(3):
            g = uncertain_gnp(6, 0.3, seed=seed)
            if g.num_arcs > 16 or g.num_arcs == 0:
                continue
            engine = RQTreeEngine.build(g, seed=seed)
            answer = engine.query(0, 0.4, max_hops=2).nodes
            for t in answer:
                assert exact_hop_reliability(g, [0], t, 2) >= 0.4 - 1e-9

    def test_mc_baseline_hop_variant(self):
        g = uncertain_path([1.0, 1.0, 1.0])
        result = mc_sampling_search(g, 0, 0.5, num_samples=50, seed=0,
                                    max_hops=2)
        assert result.nodes == {0, 1, 2}
