"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken one is a broken
deliverable.  Each is executed as a subprocess with a generous timeout
and must exit 0 with non-empty output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} produced no output"
