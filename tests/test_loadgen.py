"""The traffic harness: deterministic schedules, the driver, the CLI.

The acceptance contract this file enforces end to end: *same profile +
same seed + same shape parameters → identical request sequence* —
structurally (:func:`generate_schedule` twice) and through the JSON
round-trip (``--record`` then ``--replay``).  The driver tests run a
real open-loop run over loopback against the asyncio gateway and
assert the SLO report reflects what actually happened on the wire.
"""

from __future__ import annotations

import json

import pytest

from repro.loadgen import (
    PROFILES,
    SLOTargets,
    drive,
    generate_schedule,
    get_profile,
)
from repro.loadgen.generator import (
    SCHEDULE_VERSION,
    load_schedule,
    save_schedule,
)
from repro.loadgen.profiles import DiurnalCurve, StormSpec, WorkloadProfile
from repro.service.metrics import MetricsRegistry, set_registry


@pytest.fixture()
def fresh_registry():
    old = set_registry(MetricsRegistry())
    try:
        yield
    finally:
        set_registry(old)


# ----------------------------------------------------------------------
# Profiles
# ----------------------------------------------------------------------
def test_profile_roster_and_lookup():
    assert {"steady", "mixed", "read_heavy", "update_heavy",
            "storm"} <= set(PROFILES)
    assert get_profile("mixed").storm is not None
    assert get_profile("steady").storm is None
    with pytest.raises(KeyError, match="steady"):
        get_profile("nope")


def test_profile_validation():
    with pytest.raises(ValueError, match="amplitude"):
        DiurnalCurve(amplitude=1.0)
    with pytest.raises(ValueError, match="storm window"):
        StormSpec(start_fraction=0.6, end_fraction=0.4)
    with pytest.raises(ValueError, match="method_weights"):
        WorkloadProfile(name="x", description="", method_weights={})


def test_diurnal_curve_breathes_around_one():
    curve = DiurnalCurve(amplitude=0.5, cycles=1.0)
    multipliers = [curve.rate_multiplier(i / 100) for i in range(101)]
    assert max(multipliers) == pytest.approx(1.5, abs=0.01)
    assert min(multipliers) == pytest.approx(0.5, abs=0.01)
    flat = DiurnalCurve(amplitude=0.0)
    assert flat.rate_multiplier(0.37) == 1.0


# ----------------------------------------------------------------------
# Schedule generation: the determinism contract
# ----------------------------------------------------------------------
def test_same_seed_same_schedule():
    kwargs = dict(seed=42, duration_seconds=5.0, target_qps=20.0,
                  num_nodes=500)
    first = generate_schedule("mixed", **kwargs)
    second = generate_schedule("mixed", **kwargs)
    assert first == second
    assert first.as_dict() == second.as_dict()


def test_different_seed_different_schedule():
    kwargs = dict(duration_seconds=5.0, target_qps=20.0, num_nodes=500)
    assert (generate_schedule("mixed", seed=1, **kwargs)
            != generate_schedule("mixed", seed=2, **kwargs))


def test_schedule_shape_and_bodies():
    schedule = generate_schedule(
        "mixed", seed=7, duration_seconds=6.0, target_qps=25.0,
        num_nodes=400,
    )
    profile = get_profile("mixed")
    offsets = [spec.offset for spec in schedule.requests]
    assert offsets == sorted(offsets)
    assert all(0.0 <= off <= 6.0 for off in offsets)
    kinds = {spec.kind for spec in schedule.requests}
    assert kinds <= {"query", "update", "storm_start", "storm_end"}
    assert {"query", "update", "storm_start", "storm_end"} <= kinds
    for spec in schedule.requests:
        if spec.kind == "query":
            assert spec.body["method"] in profile.method_weights
            assert spec.body["eta"] in profile.eta_choices
            assert all(0 <= s < 400 for s in spec.body["sources"])
            if "num_samples" in spec.body:
                assert spec.body["num_samples"] in (
                    profile.num_samples_choices
                )
        elif spec.kind == "update":
            for op in spec.body["updates"]:
                assert op["op"] in ("set", "delete")
                assert op["u"] != op["v"]
                if op["op"] == "set":
                    assert 0.0 < op["p"] <= 1.0
    # Open-loop arrivals: the realized rate is Poisson around target *
    # mean diurnal multiplier (~1.0 over a full cycle); allow 40%.
    assert schedule.offered_qps == pytest.approx(25.0, rel=0.4)


def test_storm_events_bracket_the_configured_window():
    schedule = generate_schedule(
        "storm", seed=3, duration_seconds=8.0, target_qps=10.0,
        num_nodes=100,
    )
    storm = get_profile("storm").storm
    starts = [s for s in schedule.requests if s.kind == "storm_start"]
    ends = [s for s in schedule.requests if s.kind == "storm_end"]
    assert len(starts) == 1 and len(ends) == 1
    assert starts[0].offset == pytest.approx(storm.start_fraction * 8.0)
    assert ends[0].offset == pytest.approx(storm.end_fraction * 8.0)
    assert set(starts[0].body["points"]) == set(storm.points)


def test_zipf_skew_concentrates_sources():
    kwargs = dict(seed=11, duration_seconds=30.0, target_qps=30.0,
                  num_nodes=1000)
    skewed = generate_schedule("read_heavy", **kwargs)  # zipf 1.4
    uniform = generate_schedule("steady", **kwargs)      # zipf 0

    def top_share(schedule):
        counts = {}
        total = 0
        for spec in schedule.requests:
            if spec.kind != "query":
                continue
            for source in spec.body["sources"]:
                counts[source] = counts.get(source, 0) + 1
                total += 1
        return max(counts.values()) / total

    assert top_share(skewed) > 3 * top_share(uniform)


def test_generate_schedule_validates_inputs():
    with pytest.raises(ValueError, match="duration"):
        generate_schedule("steady", seed=0, duration_seconds=0,
                          target_qps=1.0, num_nodes=10)
    with pytest.raises(ValueError, match="target_qps"):
        generate_schedule("steady", seed=0, duration_seconds=1.0,
                          target_qps=0, num_nodes=10)


# ----------------------------------------------------------------------
# Record / replay round-trip
# ----------------------------------------------------------------------
def test_save_load_round_trip(tmp_path):
    schedule = generate_schedule(
        "mixed", seed=9, duration_seconds=3.0, target_qps=12.0,
        num_nodes=64,
    )
    path = tmp_path / "schedule.json"
    save_schedule(schedule, path)
    assert load_schedule(path) == schedule


def test_load_rejects_wrong_version(tmp_path):
    path = tmp_path / "schedule.json"
    path.write_text(json.dumps({
        "version": SCHEDULE_VERSION + 1, "profile": "steady", "seed": 0,
        "duration_seconds": 1.0, "target_qps": 1.0, "num_nodes": 1,
        "requests": [],
    }))
    with pytest.raises(ValueError, match="schedule version"):
        load_schedule(path)


# ----------------------------------------------------------------------
# Driver end-to-end (open loop over loopback)
# ----------------------------------------------------------------------
@pytest.fixture()
def gateway(fresh_registry, medium_engine):
    from repro.service.aio_gateway import AioGateway
    from repro.service.server import ReliabilityService

    service = ReliabilityService(medium_engine, workers=2)
    with AioGateway(service, host="127.0.0.1", port=0) as server:
        yield server


def test_drive_reports_real_traffic(gateway, medium_graph):
    schedule = generate_schedule(
        "steady", seed=5, duration_seconds=2.0, target_qps=10.0,
        num_nodes=medium_graph.num_nodes,
    )
    report = drive(
        schedule, gateway.url,
        targets=SLOTargets(error_rate=0.0, degraded_rate=0.0),
    )
    requests = report["requests"]
    expected = sum(
        1 for spec in schedule.requests if spec.kind == "query"
    )
    assert requests["completed"] == expected
    assert requests["errors"] == 0
    assert report["gates"]["ok"], report["gates"]["breaches"]
    assert report["latency_ms"]["p99"] >= report["latency_ms"]["p50"] > 0
    assert report["throughput"]["achieved_qps"] > 0
    # The quality block flowed through: lb answers report confidence.
    assert report["quality"]["mean_achieved_confidence"] > 0


def test_drive_rejects_dead_target(fresh_registry):
    from repro.loadgen.driver import DriveError

    schedule = generate_schedule(
        "steady", seed=1, duration_seconds=1.0, target_qps=5.0,
        num_nodes=10,
    )
    with pytest.raises(DriveError, match="/metrics"):
        drive(schedule, "http://127.0.0.1:9")  # discard port: never open


def test_drive_arms_storm_in_process(fresh_registry, medium_engine):
    """A storm window inside the run must actually reach the engine,
    and must stop reaching it when the window closes."""
    from repro.resilience import faultinject
    from repro.service.aio_gateway import AioGateway
    from repro.service.server import ReliabilityService

    # candidates.generate fires on every uncached query and surfaces
    # as a deterministic 400 through the service, so with p=1.0 the
    # storm window is directly legible in the error counts.
    profile = WorkloadProfile(
        name="storm_candidates",
        description="always-on faults at the candidate generator",
        zipf_exponent=0.0,
        method_weights={"lb": 1.0},
        storm=StormSpec(
            points=("candidates.generate",), probability=1.0,
            start_fraction=0.3, end_fraction=0.7,
        ),
    )
    schedule = generate_schedule(
        profile, seed=13, duration_seconds=2.5, target_qps=12.0,
        num_nodes=medium_engine.graph.num_nodes,
    )
    service = ReliabilityService(medium_engine, workers=2)
    with AioGateway(service, host="127.0.0.1", port=0) as server:
        report = drive(schedule, server.url, arm_storms=True)
    assert report["requests"]["storms"] == 1
    assert faultinject._ACTIVE is None  # always disarmed afterwards
    requests = report["requests"]
    # Faults fired inside the window (errors > 0) but not outside it
    # (the ~60% of traffic beyond the window kept succeeding).
    assert 0 < requests["errors"] < requests["completed"]
    assert set(report["errors"]["by_type"]) == {"http_400"}


# ----------------------------------------------------------------------
# CLI: record, replay, gates
# ----------------------------------------------------------------------
def test_cli_loadgen_record_then_replay(
    fresh_registry, tmp_path, medium_graph
):
    from repro.cli import main
    from repro.graph.io import write_edge_list

    graph_path = tmp_path / "graph.txt"
    write_edge_list(medium_graph, graph_path)
    schedule_path = tmp_path / "schedule.json"
    report_path = tmp_path / "report.json"

    assert main([
        "loadgen", "--graph", str(graph_path), "--profile", "steady",
        "--duration", "1.5", "--target-qps", "8", "--seed", "21",
        "--workers", "2", "--record", str(schedule_path),
        "--report-out", str(report_path),
        "--gate-error-rate", "0.0",
    ]) == 0
    recorded = load_schedule(schedule_path)
    assert recorded == generate_schedule(
        "steady", seed=21, duration_seconds=1.5, target_qps=8.0,
        num_nodes=medium_graph.num_nodes,
    )
    report = json.loads(report_path.read_text())
    assert report["gates"]["ok"]

    # Replay the recorded file through the other frontend; identical
    # traffic, and an impossible gate must flip the exit code.
    assert main([
        "loadgen", "--graph", str(graph_path),
        "--replay", str(schedule_path), "--frontend", "thread",
        "--workers", "2", "--gate-p99-ms", "0.0001",
    ]) == 1


def test_cli_loadgen_requires_a_target(fresh_registry):
    from repro.cli import main

    assert main(["loadgen", "--profile", "steady"]) == 2
