"""Tests for the query-result cache."""

from __future__ import annotations

import pytest

from repro import CachingRQTreeEngine, RQTreeEngine
from repro.graph.generators import nethept_like


@pytest.fixture(scope="module")
def cached_engine():
    graph = nethept_like(n=80, seed=5)
    return CachingRQTreeEngine(RQTreeEngine.build(graph, seed=5), capacity=4)


class TestCacheBehaviour:
    def test_repeat_lb_query_hits(self, cached_engine):
        cached_engine.invalidate()
        cached_engine.stats.hits = cached_engine.stats.misses = 0
        a = cached_engine.query(0, 0.5)
        b = cached_engine.query(0, 0.5)
        assert a.nodes == b.nodes
        assert cached_engine.stats.hits == 1
        assert cached_engine.stats.misses == 1

    def test_distinct_parameters_miss(self, cached_engine):
        cached_engine.invalidate()
        cached_engine.stats.hits = cached_engine.stats.misses = 0
        cached_engine.query(0, 0.5)
        cached_engine.query(0, 0.6)               # different eta
        cached_engine.query(0, 0.5, max_hops=2)   # different hop budget
        cached_engine.query(1, 0.5)               # different source
        assert cached_engine.stats.hits == 0
        assert cached_engine.stats.misses == 4

    def test_source_order_is_normalized(self, cached_engine):
        cached_engine.invalidate()
        cached_engine.stats.hits = cached_engine.stats.misses = 0
        cached_engine.query([3, 7], 0.5)
        cached_engine.query([7, 3], 0.5)
        assert cached_engine.stats.hits == 1

    def test_seeded_mc_is_cached(self, cached_engine):
        cached_engine.invalidate()
        cached_engine.stats.hits = cached_engine.stats.misses = 0
        cached_engine.query(0, 0.5, method="mc", num_samples=50, seed=1)
        cached_engine.query(0, 0.5, method="mc", num_samples=50, seed=1)
        assert cached_engine.stats.hits == 1

    def test_unseeded_mc_bypasses(self, cached_engine):
        cached_engine.invalidate()
        before = cached_engine.stats.bypasses
        cached_engine.query(0, 0.5, method="mc", num_samples=20)
        assert cached_engine.stats.bypasses == before + 1
        assert len(cached_engine) == 0

    def test_lru_eviction(self):
        graph = nethept_like(n=60, seed=2)
        cache = CachingRQTreeEngine(
            RQTreeEngine.build(graph, seed=2), capacity=2
        )
        cache.query(0, 0.5)
        cache.query(1, 0.5)
        cache.query(2, 0.5)  # evicts the (0, 0.5) entry
        assert cache.stats.evictions == 1
        cache.query(0, 0.5)  # miss again
        assert cache.stats.misses == 4
        assert cache.stats.hits == 0

    def test_lru_recency_updates(self):
        graph = nethept_like(n=60, seed=2)
        cache = CachingRQTreeEngine(
            RQTreeEngine.build(graph, seed=2), capacity=2
        )
        cache.query(0, 0.5)
        cache.query(1, 0.5)
        cache.query(0, 0.5)  # refresh 0
        cache.query(2, 0.5)  # evicts 1, not 0
        cache.query(0, 0.5)
        assert cache.stats.hits == 2

    def test_invalidate_clears(self, cached_engine):
        cached_engine.query(0, 0.5)
        assert len(cached_engine) >= 1
        cached_engine.invalidate()
        assert len(cached_engine) == 0

    def test_hit_rate(self):
        graph = nethept_like(n=40, seed=1)
        cache = CachingRQTreeEngine(RQTreeEngine.build(graph, seed=1))
        assert cache.stats.hit_rate == 0.0
        cache.query(0, 0.5)
        cache.query(0, 0.5)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_invalid_capacity(self):
        graph = nethept_like(n=40, seed=1)
        with pytest.raises(ValueError):
            CachingRQTreeEngine(RQTreeEngine.build(graph, seed=1), capacity=0)

    def test_passthrough_properties(self, cached_engine):
        assert cached_engine.graph is cached_engine.engine.graph
        assert cached_engine.tree is cached_engine.engine.tree
