"""Tests for networkx interop and gzip-transparent I/O."""

from __future__ import annotations

import pytest

networkx = pytest.importorskip("networkx")

from repro import UncertainGraph
from repro.errors import GraphError
from repro.graph.generators import uncertain_gnp
from repro.graph.interop import from_networkx, to_networkx
from repro.graph.io import (
    load_graph_json,
    read_edge_list,
    save_graph_json,
    write_edge_list,
)


class TestFromNetworkx:
    def test_digraph_roundtrip_labels(self):
        nx_graph = networkx.DiGraph()
        nx_graph.add_edge("alice", "bob", probability=0.7)
        nx_graph.add_edge("bob", "carol", probability=0.4)
        graph, index = from_networkx(nx_graph)
        assert graph.num_nodes == 3
        assert graph.probability(index["alice"], index["bob"]) == 0.7

    def test_undirected_becomes_bidirectional(self):
        nx_graph = networkx.Graph()
        nx_graph.add_edge(0, 1, probability=0.5)
        graph, index = from_networkx(nx_graph)
        assert graph.has_arc(index[0], index[1])
        assert graph.has_arc(index[1], index[0])

    def test_missing_attribute_uses_default(self):
        nx_graph = networkx.DiGraph()
        nx_graph.add_edge(0, 1)
        graph, index = from_networkx(nx_graph, default_probability=0.3)
        assert graph.probability(index[0], index[1]) == pytest.approx(0.3)

    def test_missing_attribute_without_default_rejected(self):
        nx_graph = networkx.DiGraph()
        nx_graph.add_edge(0, 1)
        with pytest.raises(GraphError):
            from_networkx(nx_graph)

    def test_custom_attribute_name(self):
        nx_graph = networkx.DiGraph()
        nx_graph.add_edge(0, 1, weight=0.9)
        graph, index = from_networkx(nx_graph, probability_attribute="weight")
        assert graph.probability(index[0], index[1]) == pytest.approx(0.9)

    def test_isolated_nodes_preserved(self):
        nx_graph = networkx.DiGraph()
        nx_graph.add_nodes_from(["x", "y", "z"])
        nx_graph.add_edge("x", "y", probability=0.5)
        graph, _ = from_networkx(nx_graph)
        assert graph.num_nodes == 3


class TestToNetworkx:
    def test_round_trip(self):
        original = uncertain_gnp(10, 0.3, seed=4)
        nx_graph = to_networkx(original)
        back, index = from_networkx(nx_graph)
        assert back.num_nodes == original.num_nodes
        assert sorted(back.arcs()) == pytest.approx(sorted(original.arcs()))

    def test_reachability_agrees_with_networkx(self):
        graph = uncertain_gnp(12, 0.25, seed=7)
        nx_graph = to_networkx(graph)
        from repro.graph.traversal import bfs_reachable

        ours = bfs_reachable(graph, [0])
        theirs = set(networkx.descendants(nx_graph, 0)) | {0}
        assert ours == theirs

    def test_isolated_nodes_exported(self):
        graph = UncertainGraph(4)
        graph.add_arc(0, 1, 0.5)
        nx_graph = to_networkx(graph)
        assert nx_graph.number_of_nodes() == 4


class TestGzipIO:
    def test_edge_list_gz_round_trip(self, tmp_path):
        graph = uncertain_gnp(15, 0.3, seed=2)
        path = tmp_path / "g.txt.gz"
        write_edge_list(graph, path)
        restored = read_edge_list(path)
        originals = sorted(graph.arcs())
        round_tripped = sorted(restored.arcs())
        assert len(round_tripped) == len(originals)
        for (u1, v1, p1), (u2, v2, p2) in zip(originals, round_tripped):
            assert (u1, v1) == (u2, v2)
            assert p2 == pytest.approx(p1, rel=1e-9)
        # The file really is gzip (magic bytes).
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_json_gz_round_trip(self, tmp_path):
        graph = uncertain_gnp(15, 0.3, seed=3)
        path = tmp_path / "g.json.gz"
        save_graph_json(graph, path)
        restored = load_graph_json(path)
        assert restored.num_arcs == graph.num_arcs

    def test_plain_files_still_work(self, tmp_path):
        graph = uncertain_gnp(10, 0.3, seed=1)
        path = tmp_path / "g.txt"
        write_edge_list(graph, path)
        assert path.read_text().startswith("%%")
