"""Unit tests for RQ-tree construction (Algorithm 2)."""

from __future__ import annotations

import math

import pytest

from repro import UncertainGraph, build_rqtree
from repro.graph.generators import (
    nethept_like,
    uncertain_gnp,
    uncertain_grid,
    uncertain_path,
)


class TestBuild:
    def test_empty_graph(self):
        tree, report = build_rqtree(UncertainGraph(0))
        assert tree.num_clusters == 0
        assert report.num_clusters == 0

    def test_single_node(self):
        tree, report = build_rqtree(UncertainGraph(1))
        tree.validate()
        assert tree.num_clusters == 1
        assert tree.height == 0

    def test_two_nodes(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 0.5)
        tree, _ = build_rqtree(g)
        tree.validate()
        assert tree.num_clusters == 3

    def test_isolated_nodes(self):
        tree, _ = build_rqtree(UncertainGraph(6), seed=1)
        tree.validate()

    @pytest.mark.parametrize("n", [5, 16, 33, 64])
    def test_structural_invariants(self, n):
        g = uncertain_gnp(n, 0.15, seed=n)
        tree, report = build_rqtree(g, seed=0)
        tree.validate()
        # Binary splits: exactly 2n - 1 clusters for n >= 1.
        assert tree.num_clusters == 2 * n - 1
        assert report.num_clusters == tree.num_clusters
        assert report.height == tree.height

    def test_height_is_logarithmic(self):
        g = nethept_like(n=256, seed=0)
        tree, _ = build_rqtree(g, seed=0)
        # Balanced binary tree over 256 nodes: height close to 8; allow
        # slack for imbalance but reject degenerate chains.
        assert tree.height <= 3 * math.log2(256)

    def test_deterministic_given_seed(self):
        g = uncertain_gnp(40, 0.15, seed=2)
        tree_a, _ = build_rqtree(g, seed=5)
        tree_b, _ = build_rqtree(g, seed=5)
        assert tree_a.to_json() == tree_b.to_json()

    def test_different_seeds_may_differ(self):
        g = uncertain_gnp(40, 0.15, seed=2)
        tree_a, _ = build_rqtree(g, seed=1)
        tree_b, _ = build_rqtree(g, seed=2)
        # Not guaranteed to differ, but the builder must at least not
        # crash; compare leaf sets which must be identical regardless.
        leaves_a = {frozenset(c.members) for c in tree_a.leaves()}
        leaves_b = {frozenset(c.members) for c in tree_b.leaves()}
        assert leaves_a == leaves_b

    def test_random_strategy_builds_valid_tree(self):
        g = uncertain_grid(5, 5, 0.5)
        tree, _ = build_rqtree(g, strategy="random", seed=0)
        tree.validate()

    def test_report_fields(self):
        g = uncertain_grid(4, 4, 0.5)
        _, report = build_rqtree(g, seed=0)
        assert report.build_seconds >= 0.0
        assert report.storage_bytes > 0
        assert report.storage_megabytes == pytest.approx(
            report.storage_bytes / (1024 * 1024)
        )

    def test_grid_split_respects_structure(self):
        # On a grid with a weak middle column the top split should cut
        # few edges; measure via the boundary (Theorem 5) bound.
        from repro.core.outreach import general_outreach_upper_bound

        g = UncertainGraph(12)
        # Two 6-cliques (dense, p=0.9) bridged by one weak arc pair.
        for base in (0, 6):
            for i in range(6):
                for j in range(6):
                    if i != j:
                        g.add_arc(base + i, base + j, 0.9)
        g.add_arc(5, 6, 0.1)
        g.add_arc(6, 5, 0.1)
        tree, _ = build_rqtree(g, seed=0)
        root_children = [
            tree.clusters[c] for c in tree.clusters[tree.root].children
        ]
        sides = sorted(
            (sorted(c.members) for c in root_children), key=lambda s: s[0]
        )
        assert sides == [[0, 1, 2, 3, 4, 5], [6, 7, 8, 9, 10, 11]]

    def test_path_graph(self):
        g = uncertain_path([0.5] * 31)
        tree, _ = build_rqtree(g, seed=0)
        tree.validate()
        assert tree.num_clusters == 2 * 32 - 1
