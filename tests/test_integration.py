"""Integration tests: the full pipeline on medium-sized graphs."""

from __future__ import annotations

import pytest

from repro import RQTree, RQTreeEngine, load_dataset
from repro.eval.metrics import precision, recall
from repro.eval.workload import multi_source_workload, single_source_workload
from repro.reliability.montecarlo import mc_sampling_search
from repro.reliability.rht import rht_reliability_search


@pytest.fixture(scope="module")
def dblp_graph():
    return load_dataset("dblp5", n=400, seed=11)


@pytest.fixture(scope="module")
def dblp_engine(dblp_graph):
    return RQTreeEngine.build(dblp_graph, seed=11)


class TestEndToEndQuality:
    def test_lb_precision_is_perfect_against_proxy(self, dblp_graph, dblp_engine):
        queries = single_source_workload(dblp_graph, 10, seed=0)
        for i, s in enumerate(queries):
            proxy = mc_sampling_search(
                dblp_graph, s, 0.6, num_samples=800, seed=i
            )
            answer = dblp_engine.query(s, 0.6, method="lb").nodes
            # MC proxy noise can cost a fraction of a point; LB precision
            # must stay essentially perfect (paper reports 1.0).
            assert precision(answer, proxy.nodes) >= 0.95

    def test_mc_recall_is_high(self, dblp_graph, dblp_engine):
        queries = single_source_workload(dblp_graph, 6, seed=1)
        recalls = []
        for i, s in enumerate(queries):
            proxy = mc_sampling_search(
                dblp_graph, s, 0.6, num_samples=800, seed=100 + i
            )
            answer = dblp_engine.query(
                s, 0.6, method="mc", num_samples=800, seed=200 + i
            ).nodes
            recalls.append(recall(answer, proxy.nodes))
        assert sum(recalls) / len(recalls) >= 0.9

    def test_methods_agree_with_rht_on_small_graph(self):
        graph = load_dataset("lastfm", n=60, seed=5)
        engine = RQTreeEngine.build(graph, seed=5)
        source = next(u for u in graph.nodes() if graph.out_degree(u) > 1)
        proxy = mc_sampling_search(
            graph, source, 0.5, num_samples=2000, seed=0
        ).nodes
        rht = rht_reliability_search(
            graph, source, 0.5, budget=64, fallback_samples=100, seed=0
        ).nodes
        lb = engine.query(source, 0.5, method="lb").nodes
        # RHT should roughly match the proxy.
        assert recall(rht, proxy) >= 0.8
        # Every LB answer is a true positive up to proxy noise: check the
        # per-node MC estimate with a sampling margin rather than raw set
        # precision (nodes with reliability exactly at eta straddle the
        # proxy's threshold).
        from repro.reliability.montecarlo import mc_reliability

        for node in lb:
            estimate = mc_reliability(
                graph, source, node, num_samples=2000, seed=1
            )
            assert estimate >= 0.5 - 0.05

    def test_multi_source_pipeline(self, dblp_graph, dblp_engine):
        workloads = multi_source_workload(
            dblp_graph, 4, set_size=3, diameter=4, seed=2
        )
        for i, sources in enumerate(workloads):
            proxy = mc_sampling_search(
                dblp_graph, sources, 0.6, num_samples=600, seed=i
            )
            for mode in ("greedy", "exact"):
                answer = dblp_engine.query(
                    sources, 0.6, method="lb", multi_source_mode=mode
                ).nodes
                assert precision(answer, proxy.nodes) >= 0.95


class TestIndexPersistence:
    def test_save_load_preserves_answers(self, tmp_path, dblp_graph, dblp_engine):
        path = tmp_path / "index.json"
        dblp_engine.tree.save(path)
        restored = RQTree.load(path)
        engine2 = RQTreeEngine(dblp_graph, restored)
        for s in single_source_workload(dblp_graph, 5, seed=3):
            assert (
                dblp_engine.query(s, 0.6).nodes == engine2.query(s, 0.6).nodes
            )


class TestPruningBehaviour:
    def test_candidate_ratio_shrinks_with_eta(self, dblp_graph, dblp_engine):
        queries = single_source_workload(dblp_graph, 10, seed=4)
        def avg_ratio(eta):
            ratios = [
                dblp_engine.query(s, eta).candidate_ratio for s in queries
            ]
            return sum(ratios) / len(ratios)
        assert avg_ratio(0.8) <= avg_ratio(0.4) + 1e-9

    def test_subgraph_sizes_small_relative_to_graph(self, dblp_graph, dblp_engine):
        # The n-tilde of Table 1: boundary subgraphs of accepted clusters
        # should usually be far smaller than the graph.
        queries = single_source_workload(dblp_graph, 10, seed=5)
        sizes = [
            dblp_engine.query(s, 0.7).candidate_result.max_subgraph_nodes
            for s in queries
        ]
        assert sum(sizes) / len(sizes) < dblp_graph.num_nodes

    def test_flow_engines_give_same_answers(self, dblp_graph):
        engine_dinic = RQTreeEngine.build(dblp_graph, seed=3, flow_engine="dinic")
        engine_pr = RQTreeEngine(
            dblp_graph, engine_dinic.tree, flow_engine="push_relabel"
        )
        for s in single_source_workload(dblp_graph, 5, seed=6):
            assert (
                engine_dinic.query(s, 0.6).nodes == engine_pr.query(s, 0.6).nodes
            )
