"""Unit tests for deterministic traversals."""

from __future__ import annotations

import pytest

from repro import UncertainGraph
from repro.graph.generators import uncertain_cycle, uncertain_gnp, uncertain_path
from repro.graph.traversal import (
    bfs_distances,
    bfs_layers,
    bfs_reachable,
    estimate_diameter,
    induced_ball,
    reachable_within,
    strongly_connected_components,
    weakly_connected_components,
)


@pytest.fixture()
def diamond():
    """0 -> {1, 2} -> 3, plus isolated node 4."""
    g = UncertainGraph(5)
    g.add_arc(0, 1, 0.5)
    g.add_arc(0, 2, 0.5)
    g.add_arc(1, 3, 0.5)
    g.add_arc(2, 3, 0.5)
    return g


class TestBfsReachable:
    def test_single_source(self, diamond):
        assert bfs_reachable(diamond, [0]) == {0, 1, 2, 3}

    def test_direction_respected(self, diamond):
        assert bfs_reachable(diamond, [3]) == {3}

    def test_multi_source_union(self, diamond):
        assert bfs_reachable(diamond, [1, 2]) == {1, 2, 3}

    def test_allowed_restriction(self, diamond):
        assert bfs_reachable(diamond, [0], allowed={0, 1}) == {0, 1}

    def test_source_outside_allowed_is_skipped(self, diamond):
        assert bfs_reachable(diamond, [0], allowed={1, 2}) == set()

    def test_duplicate_sources(self, diamond):
        assert bfs_reachable(diamond, [0, 0, 0]) == {0, 1, 2, 3}

    def test_isolated_node(self, diamond):
        assert bfs_reachable(diamond, [4]) == {4}


class TestBfsLayers:
    def test_layer_structure(self, diamond):
        layers = bfs_layers(diamond, [0])
        assert layers[0] == [0]
        assert sorted(layers[1]) == [1, 2]
        assert layers[2] == [3]

    def test_distances_match_layers(self, diamond):
        assert bfs_distances(diamond, [0]) == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_reachable_within_bounds_hops(self, diamond):
        assert reachable_within(diamond, [0], 0) == {0}
        assert reachable_within(diamond, [0], 1) == {0, 1, 2}
        assert reachable_within(diamond, [0], 5) == {0, 1, 2, 3}


class TestComponents:
    def test_weak_components(self, diamond):
        components = weakly_connected_components(diamond)
        as_sets = sorted(components, key=len)
        assert as_sets[0] == {4}
        assert as_sets[1] == {0, 1, 2, 3}

    def test_strong_components_of_dag_are_singletons(self, diamond):
        components = strongly_connected_components(diamond)
        assert all(len(c) == 1 for c in components)
        assert len(components) == 5

    def test_strong_components_of_cycle(self):
        g = uncertain_cycle(6, 0.5)
        components = strongly_connected_components(g)
        assert len(components) == 1
        assert components[0] == set(range(6))

    def test_strong_components_mixed(self):
        g = UncertainGraph(4)
        g.add_arc(0, 1, 0.5)
        g.add_arc(1, 0, 0.5)
        g.add_arc(1, 2, 0.5)
        g.add_arc(2, 3, 0.5)
        components = {frozenset(c) for c in strongly_connected_components(g)}
        assert components == {
            frozenset({0, 1}),
            frozenset({2}),
            frozenset({3}),
        }

    def test_deep_path_does_not_recurse(self):
        # 3000-node path: recursive Tarjan would hit the limit.
        g = uncertain_path([0.5] * 3000)
        components = strongly_connected_components(g)
        assert len(components) == 3001


class TestDiameter:
    def test_path_diameter(self):
        g = uncertain_path([0.5] * 9)
        assert estimate_diameter(g, num_probes=20) == 9

    def test_empty_graph(self):
        assert estimate_diameter(UncertainGraph(0)) == 0

    def test_diameter_is_lower_bound(self):
        g = uncertain_gnp(30, 0.1, seed=5)
        est = estimate_diameter(g, num_probes=4)
        # True eccentricities upper-bound nothing here, but the estimate
        # must never exceed n - 1.
        assert 0 <= est <= g.num_nodes - 1


class TestInducedBall:
    def test_radius_zero(self, diamond):
        assert induced_ball(diamond, 0, 0) == {0}

    def test_ball_ignores_direction(self, diamond):
        # 3 has only incoming arcs, but the undirected ball still grows.
        assert induced_ball(diamond, 3, 1) == {1, 2, 3}

    def test_ball_growth(self, diamond):
        assert induced_ball(diamond, 0, 2) == {0, 1, 2, 3}

    def test_ball_on_path(self):
        g = uncertain_path([0.5] * 10)
        assert induced_ball(g, 5, 2) == {3, 4, 5, 6, 7}
