"""Tests for reverse-influence-sampling influence maximization."""

from __future__ import annotations

import pytest

from repro import UncertainGraph, expected_spread_mc
from repro.graph.generators import lastfm_like, uncertain_path
from repro.influence.ris import (
    RRSketch,
    build_rr_sketch,
    ris_influence_maximization,
)


class TestRRSketch:
    def test_empty_sketch_estimates_zero(self):
        sketch = RRSketch(num_nodes=10)
        assert sketch.spread_estimate([0]) == 0.0

    def test_membership_index(self):
        sketch = RRSketch(num_nodes=4)
        sketch.add({0, 1})
        sketch.add({1, 2})
        assert sketch.membership[1] == [0, 1]
        assert sketch.membership[0] == [0]
        assert sketch.size == 2

    def test_spread_estimate_counts_coverage(self):
        sketch = RRSketch(num_nodes=10)
        sketch.add({0, 1})
        sketch.add({2})
        sketch.add({3})
        # Seed 1 covers 1 of 3 sets: estimate = 10 * 1/3.
        assert sketch.spread_estimate([1]) == pytest.approx(10 / 3)
        # Seeds {1, 2} cover 2 of 3.
        assert sketch.spread_estimate([1, 2]) == pytest.approx(20 / 3)

    def test_rr_sets_of_deterministic_path(self):
        # 0 -> 1 -> 2 with p = 1: the RR set of target 2 is {0, 1, 2}.
        g = uncertain_path([1.0, 1.0])
        sketch = build_rr_sketch(g, num_sets=30, seed=0)
        for rr in sketch.rr_sets:
            # Every RR set is a suffix-closed ancestor set on the path.
            assert rr in ({0}, {0, 1}, {0, 1, 2})

    def test_spread_estimate_is_unbiased(self):
        g = lastfm_like(n=200, seed=4)
        sketch = build_rr_sketch(g, num_sets=6000, seed=1)
        seeds = [0, 5]
        estimate = sketch.spread_estimate(seeds)
        truth = expected_spread_mc(g, seeds, num_samples=3000, seed=2)
        assert estimate == pytest.approx(truth, rel=0.25, abs=1.0)

    def test_invalid_inputs(self):
        g = uncertain_path([0.5])
        with pytest.raises(ValueError):
            build_rr_sketch(g, num_sets=0)
        with pytest.raises(ValueError):
            build_rr_sketch(UncertainGraph(0), num_sets=5)


class TestRISSelection:
    def test_picks_obvious_influencer(self):
        # A star: node 0 influences everyone with certainty.
        g = UncertainGraph(6)
        for v in range(1, 6):
            g.add_arc(0, v, 1.0)
        seeds, estimate = ris_influence_maximization(
            g, 1, num_sets=500, seed=0
        )
        assert seeds == [0]
        assert estimate == pytest.approx(6.0, abs=0.5)

    def test_seed_count_respected(self):
        g = lastfm_like(n=100, seed=1)
        seeds, _ = ris_influence_maximization(g, 4, num_sets=1000, seed=0)
        assert len(seeds) == 4
        assert len(set(seeds)) == 4

    def test_prebuilt_sketch_reused(self):
        g = lastfm_like(n=100, seed=1)
        sketch = build_rr_sketch(g, num_sets=1000, seed=3)
        seeds_a, _ = ris_influence_maximization(g, 2, sketch=sketch)
        seeds_b, _ = ris_influence_maximization(g, 2, sketch=sketch)
        assert seeds_a == seeds_b

    def test_spread_competitive_with_mc_greedy(self):
        from repro.influence.greedy import greedy_mc

        g = lastfm_like(n=250, seed=7)
        ris_seeds, _ = ris_influence_maximization(g, 3, num_sets=4000, seed=0)
        mc_trace = greedy_mc(g, 3, num_samples=300, seed=0)
        ris_spread = expected_spread_mc(g, ris_seeds, num_samples=1500, seed=9)
        mc_spread = expected_spread_mc(
            g, mc_trace.seeds, num_samples=1500, seed=9
        )
        assert ris_spread >= 0.75 * mc_spread

    def test_k_larger_than_useful(self):
        # Two-node graph: after both nodes are chosen, selection stops.
        g = UncertainGraph(2)
        g.add_arc(0, 1, 0.5)
        seeds, _ = ris_influence_maximization(g, 10, num_sets=200, seed=0)
        assert len(seeds) <= 2

    def test_invalid_k(self):
        g = uncertain_path([0.5])
        with pytest.raises(ValueError):
            ris_influence_maximization(g, 0)
