"""Tests for the k-terminal / all-terminal reliability estimators."""

from __future__ import annotations

import pytest

from repro import UncertainGraph
from repro.errors import NodeNotFoundError
from repro.graph.generators import uncertain_cycle, uncertain_gnp, uncertain_path
from repro.reliability.variants import (
    all_terminal_reliability,
    exact_k_terminal_reliability,
    k_terminal_reliability,
)


class TestExactKTerminal:
    def test_single_terminal_is_one(self):
        g = uncertain_path([0.5])
        assert exact_k_terminal_reliability(g, [0]) == 1.0

    def test_directed_path_is_never_mutual(self):
        # 0 -> 1 only: 1 can never reach 0.
        g = uncertain_path([0.9])
        assert exact_k_terminal_reliability(g, [0, 1]) == 0.0

    def test_two_cycle(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 0.8)
        g.add_arc(1, 0, 0.5)
        assert exact_k_terminal_reliability(g, [0, 1]) == pytest.approx(0.4)

    def test_cycle_all_terminal(self):
        # A directed 3-cycle is strongly connected iff all arcs exist.
        g = uncertain_cycle(3, 0.5)
        assert exact_k_terminal_reliability(g, [0, 1, 2]) == pytest.approx(
            0.125
        )

    def test_duplicate_terminals_coalesce(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 0.8)
        g.add_arc(1, 0, 0.5)
        assert exact_k_terminal_reliability(
            g, [0, 1, 0]
        ) == pytest.approx(0.4)

    def test_arc_limit(self):
        g = uncertain_gnp(10, 0.5, seed=0)
        with pytest.raises(ValueError):
            exact_k_terminal_reliability(g, [0, 1])

    def test_missing_terminal(self):
        g = uncertain_path([0.5])
        with pytest.raises(NodeNotFoundError):
            exact_k_terminal_reliability(g, [0, 9])

    def test_empty_terminals(self):
        g = uncertain_path([0.5])
        with pytest.raises(ValueError):
            exact_k_terminal_reliability(g, [])


class TestMonteCarloKTerminal:
    def test_matches_exact_on_small_graphs(self):
        for seed in range(3):
            g = uncertain_gnp(5, 0.4, seed=seed)
            if g.num_arcs > 20 or g.num_arcs == 0:
                continue
            exact = exact_k_terminal_reliability(g, [0, 1])
            estimate = k_terminal_reliability(
                g, [0, 1], num_samples=4000, seed=seed
            )
            assert estimate == pytest.approx(exact, abs=0.03)

    def test_single_terminal(self):
        g = uncertain_path([0.5])
        assert k_terminal_reliability(g, [0], num_samples=10) == 1.0

    def test_deterministic_with_seed(self):
        g = uncertain_cycle(4, 0.6)
        a = k_terminal_reliability(g, [0, 2], num_samples=500, seed=3)
        b = k_terminal_reliability(g, [0, 2], num_samples=500, seed=3)
        assert a == b

    def test_monotone_in_terminal_count(self):
        # More terminals can only make mutual connectivity harder.
        g = uncertain_cycle(5, 0.8)
        two = k_terminal_reliability(g, [0, 1], num_samples=2000, seed=0)
        five = k_terminal_reliability(
            g, [0, 1, 2, 3, 4], num_samples=2000, seed=0
        )
        assert five <= two + 0.02

    def test_invalid_samples(self):
        g = uncertain_path([0.5])
        with pytest.raises(ValueError):
            k_terminal_reliability(g, [0, 1], num_samples=0)


class TestAllTerminal:
    def test_empty_graph(self):
        assert all_terminal_reliability(UncertainGraph(0)) == 1.0

    def test_single_node(self):
        assert all_terminal_reliability(UncertainGraph(1), num_samples=10) == 1.0

    def test_cycle_matches_product(self):
        g = uncertain_cycle(3, 0.5)
        estimate = all_terminal_reliability(g, num_samples=4000, seed=1)
        assert estimate == pytest.approx(0.125, abs=0.02)

    def test_disconnected_graph_is_zero(self):
        g = UncertainGraph(3)
        g.add_arc(0, 1, 1.0)
        g.add_arc(1, 0, 1.0)
        assert all_terminal_reliability(g, num_samples=50, seed=0) == 0.0
