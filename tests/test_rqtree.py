"""Unit tests for the RQ-tree data structure and serialization."""

from __future__ import annotations

import pytest

from repro import RQTree
from repro.errors import IndexCorruptionError, NodeNotFoundError


def _manual_tree() -> RQTree:
    """A hand-built RQ-tree over 4 nodes: {0123} -> {01},{23} -> leaves."""
    tree = RQTree(4)
    root = tree.add_cluster(None, {0, 1, 2, 3})
    left = tree.add_cluster(root, {0, 1})
    right = tree.add_cluster(root, {2, 3})
    for node, parent in [(0, left), (1, left), (2, right), (3, right)]:
        tree.add_cluster(parent, {node})
    return tree


class TestConstruction:
    def test_manual_tree_is_valid(self):
        tree = _manual_tree()
        tree.validate()
        assert tree.num_clusters == 7
        assert tree.height == 2

    def test_two_roots_rejected(self):
        tree = RQTree(2)
        tree.add_cluster(None, {0, 1})
        with pytest.raises(IndexCorruptionError):
            tree.add_cluster(None, {0, 1})

    def test_child_must_be_subset(self):
        tree = RQTree(3)
        root = tree.add_cluster(None, {0, 1, 2})
        left = tree.add_cluster(root, {0})
        with pytest.raises(IndexCorruptionError):
            tree.add_cluster(left, {1})

    def test_missing_parent_rejected(self):
        tree = RQTree(2)
        tree.add_cluster(None, {0, 1})
        with pytest.raises(IndexCorruptionError):
            tree.add_cluster(42, {0})

    def test_depths_assigned(self):
        tree = _manual_tree()
        assert tree.clusters[tree.root].depth == 0
        leaf = tree.clusters[tree.leaf_of(0)]
        assert leaf.depth == 2


class TestNavigation:
    def test_leaf_of(self):
        tree = _manual_tree()
        for node in range(4):
            leaf = tree.clusters[tree.leaf_of(node)]
            assert leaf.members == frozenset({node})

    def test_leaf_of_out_of_range(self):
        tree = _manual_tree()
        with pytest.raises(NodeNotFoundError):
            tree.leaf_of(10)

    def test_path_to_root_is_nested(self):
        tree = _manual_tree()
        path = list(tree.path_to_root(2))
        assert [c.size for c in path] == [1, 2, 4]
        for child, parent in zip(path, path[1:]):
            assert child.members < parent.members

    def test_parent_of(self):
        tree = _manual_tree()
        leaf = tree.leaf_of(0)
        parent = tree.parent_of(leaf)
        assert parent is not None and parent.members == frozenset({0, 1})
        assert tree.parent_of(tree.root) is None

    def test_smallest_cluster_containing(self):
        tree = _manual_tree()
        assert tree.smallest_cluster_containing([0]).members == frozenset({0})
        assert tree.smallest_cluster_containing([0, 1]).members == frozenset(
            {0, 1}
        )
        assert tree.smallest_cluster_containing([0, 2]).size == 4

    def test_smallest_cluster_empty_input_rejected(self):
        with pytest.raises(ValueError):
            _manual_tree().smallest_cluster_containing([])


class TestStatistics:
    def test_leaves_enumeration(self):
        tree = _manual_tree()
        leaves = list(tree.leaves())
        assert len(leaves) == 4
        assert all(leaf.size == 1 for leaf in leaves)

    def test_storage_estimate_positive(self):
        assert _manual_tree().storage_size_estimate() > 0


class TestValidation:
    def test_missing_leaf_detected(self):
        tree = RQTree(2)
        root = tree.add_cluster(None, {0, 1})
        tree.add_cluster(root, {0})
        tree.add_cluster(root, {1})
        tree.validate()  # complete tree passes

        incomplete = RQTree(2)
        incomplete.add_cluster(None, {0, 1})
        with pytest.raises(IndexCorruptionError):
            incomplete.validate()

    def test_root_must_cover_all_nodes(self):
        tree = RQTree(3)
        tree.add_cluster(None, {0, 1})
        with pytest.raises(IndexCorruptionError):
            tree.validate()

    def test_rootless_tree_rejected(self):
        with pytest.raises(IndexCorruptionError):
            RQTree(1).validate()


class TestSerialization:
    def test_json_round_trip(self):
        tree = _manual_tree()
        restored = RQTree.from_json(tree.to_json())
        assert restored.num_clusters == tree.num_clusters
        assert restored.height == tree.height
        for node in range(4):
            original_path = [c.members for c in tree.path_to_root(node)]
            restored_path = [c.members for c in restored.path_to_root(node)]
            assert original_path == restored_path

    def test_file_round_trip(self, tmp_path):
        tree = _manual_tree()
        path = tmp_path / "tree.json"
        tree.save(path)
        restored = RQTree.load(path)
        assert restored.num_clusters == tree.num_clusters

    def test_unknown_format_rejected(self):
        with pytest.raises(IndexCorruptionError):
            RQTree.from_json({"format": "mystery"})

    def test_corrupted_parents_detected(self):
        doc = _manual_tree().to_json()
        doc["parents"] = doc["parents"][:-1]
        with pytest.raises(IndexCorruptionError):
            RQTree.from_json(doc)

    def test_rootless_document_rejected(self):
        doc = _manual_tree().to_json()
        doc["root"] = None
        with pytest.raises(IndexCorruptionError):
            RQTree.from_json(doc)

    def test_built_tree_round_trip(self, medium_engine):
        tree = medium_engine.tree
        restored = RQTree.from_json(tree.to_json())
        restored.validate()
        assert restored.num_clusters == tree.num_clusters
        assert restored.height == tree.height
