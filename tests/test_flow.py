"""Unit tests for the max-flow / min-cut subsystem."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import FlowError, InvalidCapacityError
from repro.flow.dinic import dinic_max_flow
from repro.flow.mincut import (
    FLOW_ENGINES,
    min_cut_arcs,
    min_cut_partition,
    multi_terminal_max_flow,
    solve_max_flow,
)
from repro.flow.network import FlowNetwork
from repro.flow.push_relabel import push_relabel_max_flow

ENGINES = [dinic_max_flow, push_relabel_max_flow]


def _diamond_network():
    """Classic 4-node diamond: max-flow 0 -> 3 is 2.0."""
    net = FlowNetwork(4)
    net.add_edge(0, 1, 1.0)
    net.add_edge(0, 2, 1.0)
    net.add_edge(1, 3, 1.0)
    net.add_edge(2, 3, 1.0)
    return net


def _bottleneck_network():
    """0 -> 1 -> 2 with capacities 5 and 3: flow 3."""
    net = FlowNetwork(3)
    net.add_edge(0, 1, 5.0)
    net.add_edge(1, 2, 3.0)
    return net


class TestFlowNetwork:
    def test_edge_and_reverse_created(self):
        net = FlowNetwork(2)
        e = net.add_edge(0, 1, 2.5)
        assert net.edge_to[e] == 1
        assert net.edge_to[e ^ 1] == 0
        assert net.capacity[e] == 2.5
        assert net.capacity[e ^ 1] == 0.0
        assert net.num_edges == 1

    def test_add_node(self):
        net = FlowNetwork(1)
        assert net.add_node() == 1
        assert net.num_nodes == 2

    def test_invalid_capacity_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(InvalidCapacityError):
            net.add_edge(0, 1, -1.0)
        with pytest.raises(InvalidCapacityError):
            net.add_edge(0, 1, float("nan"))

    def test_out_of_range_nodes_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(FlowError):
            net.add_edge(0, 5, 1.0)

    def test_negative_node_count_rejected(self):
        with pytest.raises(FlowError):
            FlowNetwork(-1)

    def test_snapshot_restore(self):
        net = _bottleneck_network()
        snapshot = net.snapshot_capacities()
        dinic_max_flow(net, 0, 2)
        assert net.capacity != snapshot
        net.restore_capacities(snapshot)
        assert net.capacity == snapshot

    def test_restore_length_mismatch(self):
        net = _bottleneck_network()
        with pytest.raises(FlowError):
            net.restore_capacities([1.0])

    def test_flow_on_reports_pushed_flow(self):
        net = _bottleneck_network()
        dinic_max_flow(net, 0, 2)
        assert net.flow_on(0, 5.0) == pytest.approx(3.0)


@pytest.mark.parametrize("engine", ENGINES, ids=["dinic", "push_relabel"])
class TestMaxFlowEngines:
    def test_diamond(self, engine):
        assert engine(_diamond_network(), 0, 3) == pytest.approx(2.0)

    def test_bottleneck(self, engine):
        assert engine(_bottleneck_network(), 0, 2) == pytest.approx(3.0)

    def test_disconnected(self, engine):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1.0)
        assert engine(net, 0, 2) == 0.0

    def test_source_equals_sink(self, engine):
        assert engine(FlowNetwork(1), 0, 0) == math.inf

    def test_antiparallel_edges(self, engine):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 3.0)
        net.add_edge(1, 0, 2.0)
        assert engine(net, 0, 1) == pytest.approx(3.0)

    def test_infinite_capacity_path(self, engine):
        net = FlowNetwork(3)
        net.add_edge(0, 1, math.inf)
        net.add_edge(1, 2, math.inf)
        assert engine(net, 0, 2) == math.inf

    def test_infinite_edge_finite_bottleneck(self, engine):
        net = FlowNetwork(3)
        net.add_edge(0, 1, math.inf)
        net.add_edge(1, 2, 4.0)
        assert engine(net, 0, 2) == pytest.approx(4.0)

    def test_classic_crossing_network(self, engine):
        # CLRS-style example with a cross edge; known max-flow 23.
        net = FlowNetwork(6)
        net.add_edge(0, 1, 16.0)
        net.add_edge(0, 2, 13.0)
        net.add_edge(1, 3, 12.0)
        net.add_edge(2, 1, 4.0)
        net.add_edge(2, 4, 14.0)
        net.add_edge(3, 2, 9.0)
        net.add_edge(3, 5, 20.0)
        net.add_edge(4, 3, 7.0)
        net.add_edge(4, 5, 4.0)
        assert engine(net, 0, 5) == pytest.approx(23.0)

    def test_fractional_capacities(self, engine):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 0.25)
        net.add_edge(0, 1, 0.35)
        net.add_edge(1, 2, 0.4)
        assert engine(net, 0, 2) == pytest.approx(0.4)


class TestEngineAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_networks(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 12)
        net_a = FlowNetwork(n)
        net_b = FlowNetwork(n)
        for _ in range(rng.randint(5, 30)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            c = rng.uniform(0.0, 5.0)
            net_a.add_edge(u, v, c)
            net_b.add_edge(u, v, c)
        flow_a = dinic_max_flow(net_a, 0, n - 1)
        flow_b = push_relabel_max_flow(net_b, 0, n - 1)
        assert flow_a == pytest.approx(flow_b, abs=1e-8)

    def test_flow_equals_min_cut_weight(self):
        # Max-flow/min-cut duality on random networks, via cut extraction.
        rng = random.Random(99)
        for _ in range(5):
            n = 8
            arcs = []
            for _ in range(20):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    arcs.append((u, v, rng.uniform(0.1, 3.0)))
            value, net, s0, t0 = multi_terminal_max_flow(
                n, arcs, [0], [n - 1]
            )
            cut = min_cut_arcs(net, s0, arcs)
            assert value == pytest.approx(sum(c for _, _, c in cut), abs=1e-8)


class TestMultiTerminal:
    def test_multiple_sources_add_capacity(self):
        arcs = [(0, 2, 1.0), (1, 2, 1.0)]
        value, _, _, _ = multi_terminal_max_flow(3, arcs, [0, 1], [2])
        assert value == pytest.approx(2.0)

    def test_multiple_sinks(self):
        arcs = [(0, 1, 1.0), (0, 2, 1.5)]
        value, _, _, _ = multi_terminal_max_flow(3, arcs, [0], [1, 2])
        assert value == pytest.approx(2.5)

    def test_overlapping_terminals_give_infinite_flow(self):
        value, _, _, _ = multi_terminal_max_flow(2, [], [0], [0, 1])
        assert value == math.inf

    def test_empty_sink_set(self):
        value, _, _, _ = multi_terminal_max_flow(2, [(0, 1, 1.0)], [0], [])
        assert value == 0.0

    def test_zero_capacity_arcs_dropped(self):
        value, net, _, _ = multi_terminal_max_flow(
            2, [(0, 1, 0.0)], [0], [1]
        )
        assert value == 0.0

    def test_engine_selection(self):
        arcs = [(0, 1, 2.0)]
        for engine in FLOW_ENGINES:
            value, _, _, _ = multi_terminal_max_flow(
                2, arcs, [0], [1], engine=engine
            )
            assert value == pytest.approx(2.0)

    def test_unknown_engine_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(FlowError):
            solve_max_flow(net, 0, 1, engine="simplex")


class TestMinCutPartition:
    def test_source_side_contains_source(self):
        net = _bottleneck_network()
        dinic_max_flow(net, 0, 2)
        side = min_cut_partition(net, 0)
        assert 0 in side
        assert 2 not in side

    def test_cut_separates_in_diamond(self):
        net = _diamond_network()
        dinic_max_flow(net, 0, 3)
        side = min_cut_partition(net, 0)
        assert 0 in side and 3 not in side
