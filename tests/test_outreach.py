"""Unit tests for the outreach upper bound (Algorithm 1, Theorems 1-2, 5)."""

from __future__ import annotations

import math

import pytest

from repro import UncertainGraph
from repro.core.outreach import (
    capacity_of,
    combine_upper_bounds,
    general_outreach_upper_bound,
    outreach_upper_bound,
)
from repro.errors import EmptySourceSetError
from repro.graph.exact import exact_outreach
from repro.graph.generators import uncertain_gnp, uncertain_path


class TestCapacity:
    def test_capacity_formula(self):
        assert capacity_of(0.5) == pytest.approx(-math.log(0.5))

    def test_certain_arc_has_infinite_capacity(self):
        assert capacity_of(1.0) == math.inf

    def test_capacity_monotone(self):
        assert capacity_of(0.9) > capacity_of(0.5) > capacity_of(0.1)


class TestExample2:
    """The worked bounds of the paper's Example 2 / Figure 2."""

    def test_cluster_s_w(self, fig1_graph, fig1_names):
        result = outreach_upper_bound(
            fig1_graph,
            [fig1_names["s"]],
            {fig1_names["s"], fig1_names["w"]},
        )
        assert result.upper_bound == pytest.approx(0.80)
        assert result.used_flow

    def test_cluster_s_u_w(self, fig1_graph, fig1_names):
        result = outreach_upper_bound(
            fig1_graph,
            [fig1_names["s"]],
            {fig1_names["s"], fig1_names["u"], fig1_names["w"]},
        )
        assert result.upper_bound == pytest.approx(0.496)

    def test_leaf_cluster(self, fig1_graph, fig1_names):
        result = outreach_upper_bound(
            fig1_graph, [fig1_names["s"]], {fig1_names["s"]}
        )
        # Cut around {s}: arcs s->w (0.6), s->u (0.5): 1 - 0.4*0.5 = 0.8.
        assert result.upper_bound == pytest.approx(0.80)

    def test_root_cluster_is_zero(self, fig1_graph):
        result = outreach_upper_bound(
            fig1_graph, [0], set(range(5))
        )
        assert result.upper_bound == 0.0


class TestUpperBoundProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_bounds_exact_outreach(self, seed):
        # Theorem 1: U_out(S, C) >= R_out(S, C) on random small graphs.
        g = uncertain_gnp(6, 0.3, seed=seed)
        if g.num_arcs > 16 or g.num_arcs == 0:
            pytest.skip("outside oracle range")
        cluster = {0, 1, 2}
        upper = outreach_upper_bound(g, [0], cluster).upper_bound
        exact = exact_outreach(g, [0], cluster)
        assert upper >= exact - 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_general_bound_dominates_flow_bound(self, seed):
        # Theorem 5's bound counts the whole boundary, so it can never be
        # tighter than the min-cut bound.
        g = uncertain_gnp(7, 0.3, seed=seed)
        cluster = {0, 1, 2, 3}
        flow_bound = outreach_upper_bound(g, [0], cluster).upper_bound
        cheap_bound = general_outreach_upper_bound(g, cluster)
        assert cheap_bound >= flow_bound - 1e-9

    def test_engines_agree(self, fig1_graph, fig1_names):
        cluster = {fig1_names["s"], fig1_names["w"], fig1_names["u"]}
        dinic = outreach_upper_bound(
            fig1_graph, [fig1_names["s"]], cluster, engine="dinic"
        )
        pr = outreach_upper_bound(
            fig1_graph, [fig1_names["s"]], cluster, engine="push_relabel"
        )
        assert dinic.upper_bound == pytest.approx(pr.upper_bound)

    def test_certain_arc_forces_bound_one(self):
        g = UncertainGraph(2)
        g.add_arc(0, 1, 1.0)
        result = outreach_upper_bound(g, [0], {0})
        assert result.upper_bound == 1.0
        assert general_outreach_upper_bound(g, {0}) == 1.0

    def test_source_outside_cluster_rejected(self, fig1_graph):
        with pytest.raises(ValueError):
            outreach_upper_bound(fig1_graph, [0], {1, 2})

    def test_empty_sources_rejected(self, fig1_graph):
        with pytest.raises(EmptySourceSetError):
            outreach_upper_bound(fig1_graph, [], {0})

    def test_subgraph_statistics(self, fig1_graph, fig1_names):
        cluster = {fig1_names["s"], fig1_names["w"]}
        result = outreach_upper_bound(fig1_graph, [fig1_names["s"]], cluster)
        # C u C'bar = {s, w} u {u, v}; arcs with tail in C: 4.
        assert result.subgraph_nodes == 4
        assert result.subgraph_arcs == 4

    def test_multi_source_bound_not_smaller(self, fig1_graph, fig1_names):
        cluster = {fig1_names["s"], fig1_names["w"], fig1_names["u"]}
        single = outreach_upper_bound(
            fig1_graph, [fig1_names["s"]], cluster
        ).upper_bound
        multi = outreach_upper_bound(
            fig1_graph, [fig1_names["s"], fig1_names["u"]], cluster
        ).upper_bound
        assert multi >= single - 1e-9


class TestCheapAccept:
    def test_cheap_accept_skips_flow(self):
        g = uncertain_path([0.1, 0.1, 0.1])
        # Boundary of {0, 1} is the single arc 1->2 with p = 0.1:
        # cheap bound 0.1 < 0.5 -> accept without a flow solve.
        result = outreach_upper_bound(
            g, [0], {0, 1}, cheap_accept_below=0.5
        )
        assert not result.used_flow
        assert math.isnan(result.max_flow)
        assert result.upper_bound == pytest.approx(0.1)

    def test_cheap_reject_falls_through_to_flow(self):
        g = uncertain_path([0.9, 0.9, 0.9])
        result = outreach_upper_bound(
            g, [0], {0, 1}, cheap_accept_below=0.5
        )
        assert result.used_flow
        assert result.upper_bound == pytest.approx(0.9)

    def test_cheap_bound_is_valid_upper_bound(self):
        for seed in range(4):
            g = uncertain_gnp(6, 0.3, seed=seed)
            if g.num_arcs > 16 or g.num_arcs == 0:
                continue
            cluster = {0, 1}
            result = outreach_upper_bound(
                g, [0], cluster, cheap_accept_below=0.99
            )
            exact = exact_outreach(g, [0], cluster)
            assert result.upper_bound >= exact - 1e-9


class TestCombination:
    def test_empty_product(self):
        assert combine_upper_bounds([]) == 0.0

    def test_single_value_passthrough(self):
        assert combine_upper_bounds([0.3]) == pytest.approx(0.3)

    def test_noisy_or_composition(self):
        assert combine_upper_bounds([0.5, 0.5]) == pytest.approx(0.75)

    def test_saturation_at_one(self):
        assert combine_upper_bounds([1.0, 0.2]) == pytest.approx(1.0)

    def test_order_invariance(self):
        values = [0.1, 0.7, 0.3]
        assert combine_upper_bounds(values) == pytest.approx(
            combine_upper_bounds(reversed(values))
        )
