"""Legacy setup shim.

The evaluation environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build the
editable wheel.  This shim lets ``python setup.py develop`` (and pip's
legacy fallback) install the package from pyproject metadata instead.
"""

from setuptools import setup

setup()
