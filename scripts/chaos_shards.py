#!/usr/bin/env python
"""Chaos harness for the self-healing shard fabric.

Runs two storm phases against a supervised ``ShardedRQTreeEngine`` and
exits nonzero on any hang, wrong answer, or shared-memory leak — the
three failure modes a recovery layer can hide:

1. **Process kill storm.**  A process-mode engine (shm transport)
   answers a query stream while round-robin SIGKILLs take out shard
   workers mid-flight.  Every ``lb`` answer must equal the plain
   single-engine answer node-for-node (exactness through failures is
   the fabric's core contract), the fabric must end all-healthy, and
   the ``/dev/shm`` segment census must be unchanged afterwards.

2. **Inline FaultPlan storm.**  An inline engine runs the same stream
   under a seeded fault schedule that fails respawns, half-open
   probes, redispatches, and hedge promotions inside the supervisor
   itself — the recovery machinery recovering from its own failures.

3. **Epoch storm** (``--updates``).  A live engine
   (``repro.live.LiveShardedEngine``, process + shm, supervised)
   absorbs a seeded update stream while queries, round-robin SIGKILLs,
   and a mid-stream rebalance all race it.  Every non-degraded ``lb``
   answer must equal the cold-rebuild answer *for the epoch the result
   reports* (no drift, no cross-epoch leakage), the fabric must end
   healthy, and no epoch's shm segments may outlive it.

A watchdog alarm bounds the whole run: a hang is an exit, not a stuck
CI job.

Exit codes: 0 ok, 1 wrong answer, 2 shm leak, 3 hang / unhealthy end
state.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

WATCHDOG_SECONDS = 540

KILL_STORM_QUERIES = 60
KILL_EVERY = 6
FAULT_STORM_QUERIES = 40
SHARDS = 3
ETA_SCHEDULE = (0.2, 0.3, 0.4, 0.5)

EPOCH_STORM_BATCHES = 6
EPOCH_BATCH_SIZE = 25
EPOCH_STORM_QUERIES_PER_BATCH = 8
EPOCH_STORM_ETA = 0.35


def _alarm(signum, frame):  # pragma: no cover - only fires on a hang
    print("CHAOS FAIL: watchdog expired — the fabric hung", file=sys.stderr)
    os._exit(3)


def _shm_census():
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return None
    return sorted(p.name for p in shm_dir.glob("psm_*"))


def _expected_answers(graph, seed):
    from repro.core.engine import RQTreeEngine

    with_plain = RQTreeEngine.build(graph, seed=seed)
    expected = []
    for index in range(max(KILL_STORM_QUERIES, FAULT_STORM_QUERIES)):
        source = index % graph.num_nodes
        eta = ETA_SCHEDULE[index % len(ETA_SCHEDULE)]
        result = with_plain.query(source, eta=eta, method="lb")
        expected.append(tuple(sorted(result.nodes)))
    return expected


def _check_answer(phase, index, result, expected):
    got = tuple(sorted(result.nodes))
    if got != expected:
        print(
            f"CHAOS FAIL [{phase}] query {index}: answer mismatch "
            f"(degraded={result.degraded!r}, "
            f"reason={result.degraded_reason!r})",
            file=sys.stderr,
        )
        sys.exit(1)


def _wait_all_healthy(engine, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        states = engine.shard_states()
        if all(s["state"] == "healthy" for s in states.values()):
            return
        time.sleep(0.02)
    print(
        f"CHAOS FAIL: fabric did not return to healthy: "
        f"{engine.shard_states()!r}",
        file=sys.stderr,
    )
    sys.exit(3)


def kill_storm(graph, expected):
    from repro.shard import ShardedRQTreeEngine, SupervisorPolicy

    policy = SupervisorPolicy(
        ping_interval_seconds=0.02, backoff_base_seconds=0.01,
    )
    kills = 0
    with ShardedRQTreeEngine.build(
        graph, shards=SHARDS, seed=3, mode="process", transport="shm",
        supervise=True, supervisor_policy=policy,
    ) as engine:
        for index in range(KILL_STORM_QUERIES):
            if index % KILL_EVERY == KILL_EVERY // 2:
                victim = (index // KILL_EVERY) % SHARDS
                pid = engine.supervisor.client(victim)._process.pid
                try:
                    os.kill(pid, signal.SIGKILL)
                    kills += 1
                except ProcessLookupError:
                    pass
            source = index % graph.num_nodes
            eta = ETA_SCHEDULE[index % len(ETA_SCHEDULE)]
            result = engine.query(source, eta=eta, method="lb")
            _check_answer("kill-storm", index, result, expected[index])
        _wait_all_healthy(engine)
        respawns = sum(
            s["respawns"] for s in engine.shard_states().values()
        )
    print(f"kill storm: {KILL_STORM_QUERIES} queries, {kills} SIGKILLs, "
          f"{respawns} respawns, all answers exact, fabric healthy")


def fault_storm(graph, expected):
    from repro.resilience import FaultPlan
    from repro.shard import ShardedRQTreeEngine, SupervisorPolicy

    policy = SupervisorPolicy(
        ping_interval_seconds=0.02, backoff_base_seconds=0.01,
        max_respawns=10_000,  # the storm must not park anyone
    )
    points = (
        "supervisor.respawn", "supervisor.probe",
        "supervisor.redispatch", "supervisor.hedge",
        "shard.handle",
    )
    with ShardedRQTreeEngine.build(
        graph, shards=SHARDS, seed=3, mode="inline",
        supervise=True, supervisor_policy=policy,
    ) as engine:
        with FaultPlan.seeded(17, points, probability=0.3) as plan:
            for index in range(FAULT_STORM_QUERIES):
                if index % 5 == 2:
                    # Kill an inline worker so the supervisor actually
                    # has to respawn/redispatch under the fault plan.
                    victim = (index // 5) % SHARDS
                    engine.supervisor.client(victim).close()
                source = index % graph.num_nodes
                eta = ETA_SCHEDULE[index % len(ETA_SCHEDULE)]
                result = engine.query(source, eta=eta, method="lb")
                _check_answer("fault-storm", index, result, expected[index])
            hits = {name: plan.hits(name) for name in points}
        _wait_all_healthy(engine)
    exercised = sum(hits.values())
    if exercised == 0:
        print(
            "CHAOS FAIL: fault storm exercised no supervisor injection "
            "points — the storm is not reaching the recovery machinery",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"fault storm: {FAULT_STORM_QUERIES} queries under seeded "
          f"supervisor faults (hits: {hits}), all answers exact")


def _epoch_update_stream(graph, num_batches, batch_size, seed=13):
    import random

    rng = random.Random(seed)
    mirror = {(u, v): p for u, v, p in graph.arcs()}
    n = graph.num_nodes
    batches = []
    for _ in range(num_batches):
        ops = []
        while len(ops) < batch_size:
            roll = rng.random()
            if roll < 0.5 and mirror:
                u, v = rng.choice(sorted(mirror))
                p = round(rng.uniform(0.2, 0.9), 3)
                ops.append(("set", u, v, p))
                mirror[(u, v)] = p
            elif roll < 0.8:
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v or (u, v) in mirror:
                    continue
                p = round(rng.uniform(0.2, 0.9), 3)
                ops.append(("set", u, v, p))
                mirror[(u, v)] = p
            elif mirror:
                u, v = rng.choice(sorted(mirror))
                ops.append(("delete", u, v))
                del mirror[(u, v)]
        batches.append(ops)
    return batches


def epoch_storm(graph):
    """Updates + SIGKILLs + a mid-stream rebalance, all at once."""
    import threading

    from repro.core.engine import RQTreeEngine
    from repro.live import LiveShardedEngine
    from repro.live.updates import apply_to_graph, normalize_updates
    from repro.shard import SupervisorPolicy

    batches = _epoch_update_stream(
        graph, EPOCH_STORM_BATCHES, EPOCH_BATCH_SIZE
    )
    # Per-epoch cold-rebuild references for every query the storm runs.
    sources = [
        (index * 11) % graph.num_nodes
        for index in range(EPOCH_STORM_QUERIES_PER_BATCH)
    ]
    mirror = graph.copy()
    reference = {}
    for epoch in range(EPOCH_STORM_BATCHES + 1):
        if epoch > 0:
            apply_to_graph(mirror, normalize_updates(batches[epoch - 1]))
        cold = RQTreeEngine.build(mirror, seed=3)
        reference[epoch] = {
            source: tuple(sorted(
                cold.query(source, eta=EPOCH_STORM_ETA, method="lb").nodes
            ))
            for source in sources
        }

    policy = SupervisorPolicy(
        ping_interval_seconds=0.02, backoff_base_seconds=0.01,
    )
    kills = 0
    stop = threading.Event()
    failures = []
    checked = [0]

    with LiveShardedEngine.build(
        graph.copy(), shards=2, seed=3, mode="process", transport="shm",
        supervise=True, supervisor_policy=policy,
    ) as engine:
        def hammer():
            cursor = 0
            while not stop.is_set():
                source = sources[cursor % len(sources)]
                cursor += 1
                try:
                    result = engine.query(
                        source, eta=EPOCH_STORM_ETA, method="lb"
                    )
                except Exception as error:  # noqa: BLE001
                    failures.append(f"query raised: {error!r}")
                    continue
                if result.degraded:
                    continue  # a mid-kill degrade is allowed; drift is not
                want = reference[result.epoch][source]
                if tuple(sorted(result.nodes)) != want:
                    failures.append(
                        f"epoch {result.epoch} source {source}: answer "
                        f"drifted from that epoch's cold rebuild"
                    )
                checked[0] += 1

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for index, batch in enumerate(batches):
                if index % 2 == 1:
                    victim = index % 2
                    try:
                        pid = engine.supervisor.client(victim)._process.pid
                        os.kill(pid, signal.SIGKILL)
                        kills += 1
                    except (ProcessLookupError, AttributeError):
                        pass
                engine.apply(batch)
                if index == EPOCH_STORM_BATCHES // 2:
                    engine.rebalance(4)
                time.sleep(0.05)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
        if failures:
            for failure in failures[:5]:
                print(f"CHAOS FAIL [epoch-storm] {failure}",
                      file=sys.stderr)
            sys.exit(1)
        if checked[0] == 0:
            print("CHAOS FAIL [epoch-storm]: no query was ever checked",
                  file=sys.stderr)
            sys.exit(3)
        _wait_all_healthy(engine)
        held = engine.store.held_epochs()
        if held != [engine.epoch]:
            print(
                f"CHAOS FAIL [epoch-storm]: superseded epochs never "
                f"drained (held: {held}, current: {engine.epoch})",
                file=sys.stderr,
            )
            sys.exit(2)
    print(
        f"epoch storm: {EPOCH_STORM_BATCHES} update batches, {kills} "
        f"SIGKILLs, 1 rebalance, {checked[0]} answers checked against "
        f"their own epoch's cold rebuild, fabric healthy"
    )


def main() -> int:
    signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(WATCHDOG_SECONDS)

    from repro.graph.generators import uncertain_gnp

    with_updates = "--updates" in sys.argv[1:]
    graph = uncertain_gnp(150, 0.04, seed=9)
    expected = _expected_answers(graph, seed=3)

    before = _shm_census()
    kill_storm(graph, expected)
    fault_storm(graph, expected)
    if with_updates:
        epoch_storm(graph)
    after = _shm_census()

    if before is not None and before != after:
        leaked = sorted(set(after) - set(before))
        print(f"CHAOS FAIL: shared-memory leak: {leaked}", file=sys.stderr)
        return 2

    signal.alarm(0)
    print("chaos: all phases passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
