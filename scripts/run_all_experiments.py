"""Run the full reproduction and assemble a consolidated report.

Executes the test-suite and every benchmark, then stitches the
rendered tables under ``benchmarks/results/`` into a single
``benchmarks/results/REPORT.md`` in the paper's presentation order,
prefixed with environment metadata.  Intended as the one-command
"reproduce everything" entry point:

    python scripts/run_all_experiments.py [--skip-tests]

``--assemble-only`` re-stitches REPORT.md from whatever tables are
already on disk (e.g. after running a single benchmark by hand)
without re-executing the suite.
"""

from __future__ import annotations

import argparse
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"

#: Paper-order report layout: (section title, results file stem).
REPORT_ORDER = [
    ("Table 1 (empirical) — complexity / boundary sizes", "table1_complexity"),
    ("Figure 3 — arc-probability cdfs", "figure3_cdf"),
    ("Table 4 — RQ-tree vs RHT-sampling", "table4_rht"),
    ("Table 5 — index statistics", "table5_index"),
    ("Table 6 — precision / recall / query time", "table6_quality"),
    ("Figure 4 — pruning power", "figure4_pruning"),
    ("Table 7 — multi-source queries", "table7_multisource"),
    ("Table 8 — scalability", "table8_scalability"),
    ("Figure 5 — influence maximization", "figure5_influence"),
    ("Ablation — partitioner", "ablation_partitioner"),
    ("Ablation — flow engine", "ablation_flow_engine"),
    ("Ablation — multi-source strategy", "ablation_multisource"),
    ("Ablation — Theorem-5 early accept", "ablation_cheap_bound"),
    ("Extension — branching factor", "extension_branching"),
    ("Extension — incremental maintenance", "extension_maintenance"),
    ("Extension — RIS vs Greedy", "extension_ris"),
    ("Extension — query caching", "extension_caching"),
    ("Future work — correlated arcs", "correlation"),
    ("Index shoot-out — RQ-tree vs sampled worlds", "worldindex_tradeoff"),
    ("Monte-Carlo estimator comparison (after Fishman [13])",
     "estimator_comparison"),
    ("Distance-constrained queries", "hop_constrained"),
    ("Verification ladder — lb / lb+ / mc", "verification_ladder"),
    ("Engine hardening — graceful degradation", "degradation"),
    ("Data plane — numpy backend speedup", "backend_speedup"),
    ("Serving layer — service throughput", "service"),
    ("Serving layer — sharded scatter-gather", "shards"),
    ("Serving layer — shard transport", "transport"),
    ("Self-healing — supervisor under faults", "supervisor"),
    ("Estimator portfolio — cost-based planner", "estimator_portfolio"),
    ("Live updates — epoch snapshots under churn", "live"),
    ("Traffic harness — SLO load run", "slo"),
]


def run(command: list, description: str) -> float:
    """Run a subprocess, echoing progress; return elapsed seconds."""
    print(f"==> {description}: {' '.join(command)}")
    start = time.perf_counter()
    completed = subprocess.run(command, cwd=REPO_ROOT)
    elapsed = time.perf_counter() - start
    if completed.returncode != 0:
        print(f"FAILED ({description}) after {elapsed:.1f}s", file=sys.stderr)
        sys.exit(completed.returncode)
    print(f"    done in {elapsed:.1f}s")
    return elapsed


def assemble_report(
    test_seconds: float, bench_seconds: float
) -> Path:
    """Concatenate the per-experiment outputs into REPORT.md."""
    lines = [
        "# Reproduction report",
        "",
        f"- python {platform.python_version()} on {platform.platform()}",
        f"- test-suite time: {test_seconds:.1f}s"
        if test_seconds
        else "- test-suite: skipped",
        f"- benchmark time: {bench_seconds:.1f}s"
        if bench_seconds
        else "- benchmarks: assembled from existing results (not rerun)",
        "",
        "Paper-vs-measured commentary lives in EXPERIMENTS.md; the raw",
        "regenerated tables follow.",
        "",
    ]
    for title, stem in REPORT_ORDER:
        path = RESULTS_DIR / f"{stem}.txt"
        lines.append(f"## {title}")
        lines.append("")
        if path.exists():
            lines.append("```")
            lines.append(path.read_text(encoding="utf-8").rstrip())
            lines.append("```")
        else:
            lines.append("*(missing — benchmark did not run)*")
        lines.append("")
    report = RESULTS_DIR / "REPORT.md"
    report.write_text("\n".join(lines), encoding="utf-8")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--skip-tests", action="store_true",
        help="run only the benchmarks",
    )
    parser.add_argument(
        "--assemble-only", action="store_true",
        help="re-stitch REPORT.md from the tables already under "
             "benchmarks/results/ without rerunning anything",
    )
    args = parser.parse_args()

    test_seconds = 0.0
    bench_seconds = 0.0
    if not args.assemble_only:
        if not args.skip_tests:
            test_seconds = run(
                [sys.executable, "-m", "pytest", "tests/", "-q"],
                "test suite",
            )
        bench_seconds = run(
            [
                sys.executable, "-m", "pytest", "benchmarks/",
                "--benchmark-only", "-q",
            ],
            "benchmarks",
        )
    report = assemble_report(test_seconds, bench_seconds)
    print(f"report written to {report}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
