#!/usr/bin/env python
"""Fail CI when a quick-mode benchmark regresses against its baseline.

Usage::

    python scripts/check_bench_trajectory.py BENCH_service.json [...]

Each named file (a freshly-written quick-mode ``BENCH_*.json`` at the
repo root) is compared against the committed baseline of the same name
under ``benchmarks/baselines/``.  Every ``qps`` value in the sweep
must be at least ``1 - TOLERANCE`` of the baseline's value for the
same configuration row.  Quick-mode numbers on shared runners are
noisy, hence the wide 30% band: this is a trajectory check — it
catches "the data plane got 2x slower", not 5% jitter.

Baselines carry a host fingerprint; a cpu-count mismatch is reported
but still enforced (the quick workloads are small enough that the
band absorbs honest host variance).

Rows may also carry *ceiling* metrics — today ``p99_ms`` (tail
latency, allowed up to 2x baseline: quick-mode p99 on a shared 1-core
runner is the noisiest number we gate on) and ``degraded_rate``
(allowed baseline + 0.15 absolute: a rate is bounded, so a relative
band would explode around a baseline near zero).  Ceilings are only
enforced for ``BENCH_slo.json``: older benches also report p99 but
were never gated on it, and retroactively tightening their contract
belongs in its own change.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_DIR = REPO_ROOT / "benchmarks" / "baselines"
TOLERANCE = 0.30
METRIC = "qps"
#: Tail latency may double before we call it a regression.
P99_TOLERANCE = 1.0
#: Degraded-answer rate may rise this much (absolute) over baseline.
DEGRADED_TOLERANCE = 0.15
#: Fields identifying a sweep row across benchmark schemas.
ROW_KEYS = ("workload", "workers", "shards", "connections", "method")


def _row_id(row: dict):
    for key in ROW_KEYS:
        if key in row:
            return key, row[key]
    return None


def check(current_path: Path, baseline_path: Path) -> list:
    current = json.loads(current_path.read_text(encoding="utf-8"))
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    problems = []

    if not current.get("quick_mode", False):
        problems.append(
            f"{current_path.name}: not a quick-mode run; the committed "
            "baseline is quick-mode — regenerate with BENCH_QUICK=1"
        )
        return problems

    base_host = baseline.get("host", {})
    cur_host = current.get("host", {})
    if base_host.get("cpu_count") != cur_host.get("cpu_count"):
        print(
            f"note: {current_path.name} measured on "
            f"{cur_host.get('cpu_count')} cpus, baseline on "
            f"{base_host.get('cpu_count')}; the {TOLERANCE:.0%} band "
            "still applies"
        )

    base_rows = {_row_id(row): row for row in baseline.get("sweep", [])}
    for row in current.get("sweep", []):
        row_id = _row_id(row)
        base = base_rows.get(row_id)
        if base is None or METRIC not in row or METRIC not in base:
            continue
        key, value = row_id
        floor = base[METRIC] * (1.0 - TOLERANCE)
        if row[METRIC] < floor:
            problems.append(
                f"{current_path.name}: {METRIC} at {key}={value} is "
                f"{row[METRIC]:.2f}, below {floor:.2f} "
                f"({TOLERANCE:.0%} under baseline {base[METRIC]:.2f})"
            )
        if current_path.name != "BENCH_slo.json":
            continue
        if "p99_ms" in row and "p99_ms" in base:
            ceiling = base["p99_ms"] * (1.0 + P99_TOLERANCE)
            if row["p99_ms"] > ceiling:
                problems.append(
                    f"{current_path.name}: p99_ms at {key}={value} is "
                    f"{row['p99_ms']:.2f}, above {ceiling:.2f} "
                    f"(baseline {base['p99_ms']:.2f} + "
                    f"{P99_TOLERANCE:.0%})"
                )
        if "degraded_rate" in row and "degraded_rate" in base:
            ceiling = base["degraded_rate"] + DEGRADED_TOLERANCE
            if row["degraded_rate"] > ceiling:
                problems.append(
                    f"{current_path.name}: degraded_rate at "
                    f"{key}={value} is {row['degraded_rate']:.3f}, "
                    f"above {ceiling:.3f} (baseline "
                    f"{base['degraded_rate']:.3f} + "
                    f"{DEGRADED_TOLERANCE})"
                )
    return problems


def main(argv: list) -> int:
    if not argv:
        print("usage: check_bench_trajectory.py BENCH_*.json ...",
              file=sys.stderr)
        return 2
    failures = []
    for name in argv:
        current_path = REPO_ROOT / name
        baseline_path = BASELINE_DIR / Path(name).name
        if not current_path.exists():
            failures.append(f"{name}: missing (benchmark did not run?)")
            continue
        if not baseline_path.exists():
            print(f"note: no baseline for {name}; skipping")
            continue
        problems = check(current_path, baseline_path)
        if problems:
            failures.extend(problems)
        else:
            print(f"ok: {name} within {TOLERANCE:.0%} of baseline")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
