#!/usr/bin/env bash
# End-to-end smoke test of the serving layer: start `repro serve` on an
# ephemeral port, push a load-generator workload through the HTTP API,
# and check that the metrics snapshot comes back as valid JSON with
# zero errors.  CI runs this on every push; it is also handy locally:
#
#   PYTHONPATH=src scripts/service_smoke.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
export PYTHONPATH="${PYTHONPATH:-$REPO_ROOT/src}"

WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

GRAPH="$WORKDIR/graph.txt"
LOG="$WORKDIR/serve.log"
METRICS="$WORKDIR/metrics.json"

echo "== generating test graph"
python -m repro generate --dataset nethept --nodes 300 --seed 42 \
    --output "$GRAPH"

echo "== starting repro serve on an ephemeral port"
python -m repro serve --graph "$GRAPH" --port 0 --workers 4 \
    >"$LOG" 2>&1 &
SERVER_PID=$!

# Readiness: the server prints "serving ... on http://HOST:PORT" once
# the socket is bound.
URL=""
for _ in $(seq 1 50); do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "server died during startup:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    URL="$(sed -n 's/.* on \(http:\/\/[^ ]*\).*/\1/p' "$LOG" | head -n 1)"
    [[ -n "$URL" ]] && break
    sleep 0.2
done
if [[ -z "$URL" ]]; then
    echo "server did not become ready:" >&2
    cat "$LOG" >&2
    exit 1
fi
echo "== server ready at $URL"

echo "== running 50-query load generator (--check: no errors allowed)"
python -m repro bench-serve --url "$URL" --queries 50 --concurrency 8 \
    --method mc --samples 500 --seed 7 --check --metrics-out "$METRICS"

echo "== validating metrics snapshot"
python - "$METRICS" <<'EOF'
import json, sys

with open(sys.argv[1], "r", encoding="utf-8") as handle:
    snapshot = json.load(handle)
counters = snapshot["counters"]
assert counters["service.completed"] >= 50, counters
assert counters.get("service.errors", 0) == 0, counters
assert "service.latency_seconds" in snapshot["histograms"]
assert "result_cache" in snapshot["service"]
print("metrics snapshot OK:",
      f"{counters['service.completed']} completed,",
      f"{counters.get('service.shed', 0)} shed")
EOF

echo "== service smoke test passed"
