"""Protein-interaction scenario: predicting co-complex membership.

The paper's motivating bio-informatics application (Section 1, citing
Asthana et al.): given a *core* of proteins known to belong to a complex,
find every protein that is evidently (with high probability) reachable
from the core through the noisy interaction network — exactly a
multiple-source reliability-search query.

This example builds a BioMine-like interaction network, picks a core of
interacting proteins, and compares the RQ-tree answers with the
Monte-Carlo estimate, printing the ranked candidate co-complex members.

Run:  python examples/protein_interaction.py
"""

from __future__ import annotations

import time

from repro import RQTreeEngine, load_dataset, mc_sampling_search
from repro.eval.metrics import PrecisionRecall
from repro.graph.traversal import induced_ball


def pick_core(graph, size: int = 3):
    """Choose a plausible complex core: tightly linked nearby proteins."""
    # Take the highest-out-degree protein and its closest neighbours.
    hub = max(graph.nodes(), key=graph.out_degree)
    neighbourhood = sorted(induced_ball(graph, hub, 1))
    core = [hub] + [v for v in neighbourhood if v != hub][: size - 1]
    return core


def main() -> None:
    graph = load_dataset("biomine", n=2000, seed=1)
    print(
        f"interaction network: {graph.num_nodes} proteins, "
        f"{graph.num_arcs} interactions"
    )

    engine = RQTreeEngine.build(graph, seed=1)
    core = pick_core(graph)
    eta = 0.6
    print(f"core proteins: {core}, threshold eta = {eta}")
    print()

    # High-recall search (RQ-tree-MC): the paper recommends it for this
    # application, where missing a true co-complex member is costly.
    start = time.perf_counter()
    result = engine.query(core, eta, method="mc", num_samples=800, seed=0)
    elapsed = time.perf_counter() - start
    members = sorted(result.nodes - set(core))
    print(
        f"RQ-tree-MC found {len(members)} candidate co-complex members "
        f"in {elapsed * 1000:.1f} ms"
    )

    # Rank members by estimated reliability for presentation.
    proxy = mc_sampling_search(graph, core, eta, num_samples=800, seed=3)
    ranked = sorted(
        members,
        key=lambda v: proxy.frequencies.get(v, 0.0),
        reverse=True,
    )
    print("top candidates (protein id, estimated reachability):")
    for protein in ranked[:10]:
        print(f"  {protein:5d}  {proxy.frequencies.get(protein, 0.0):.3f}")
    print()

    # Quality against the whole-graph Monte-Carlo proxy.
    pr = PrecisionRecall.of(result.nodes, proxy.nodes)
    print(
        f"vs whole-graph MC proxy: precision = {pr.precision:.3f}, "
        f"recall = {pr.recall:.3f} (proxy time {proxy.seconds * 1000:.1f} ms)"
    )

    # The high-precision variant for comparison.
    result_lb = engine.query(core, eta, method="lb")
    pr_lb = PrecisionRecall.of(result_lb.nodes, proxy.nodes)
    print(
        f"RQ-tree-LB (perfect precision mode): {len(result_lb.nodes)} nodes, "
        f"precision = {pr_lb.precision:.3f}, recall = {pr_lb.recall:.3f}"
    )


if __name__ == "__main__":
    main()
