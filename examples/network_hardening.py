"""Network hardening: spending an upgrade budget where it matters.

The inverse of reliability search: an operator of an unreliable network
(a utility grid, a sensor mesh, a logistics network) can afford to make
a handful of links certain — wire a radio link, reinforce a bridge.
Which upgrades grow the reliably-served region the most?

This example plans a 5-upgrade budget on a sensor-mesh-like network and
reports the reliable-set growth per upgrade.

Run:  python examples/network_hardening.py
"""

from __future__ import annotations

from repro import load_dataset
from repro.apps.hardening import greedy_hardening


def main() -> None:
    graph = load_dataset("lastfm", n=400, seed=6)
    print(
        f"network: {graph.num_nodes} nodes, {graph.num_arcs} unreliable links"
    )
    source = max(graph.nodes(), key=graph.out_degree)
    eta = 0.5
    print(f"service source: node {source}, reliability threshold {eta}\n")

    plan = greedy_hardening(
        graph, [source], budget=5, eta=eta, max_candidates_per_round=12
    )
    print(
        f"baseline: {plan.baseline_size} nodes reliably served "
        f"(before any upgrade)"
    )
    for i, (arc, size) in enumerate(zip(plan.upgrades, plan.reliable_sizes)):
        print(
            f"upgrade {i + 1}: make link {arc} certain "
            f"-> {size} nodes served "
            f"(+{size - (plan.reliable_sizes[i - 1] if i else plan.baseline_size)})"
        )
    print(
        f"\ntotal gain: +{plan.gain} reliably served nodes for "
        f"{len(plan.upgrades)} upgrades "
        f"({plan.queries_issued} engine queries, {plan.seconds:.2f}s)"
    )


if __name__ == "__main__":
    main()
