"""Viral marketing: influence maximization with the RQ-tree (Section 7.7).

Selects seed users that maximize the expected cascade spread under the
independent cascade model, comparing the classic Greedy + Monte-Carlo
pipeline with the paper's RQ-tree-accelerated variant (histogram spread
estimation over a handful of reliability-search queries).

Run:  python examples/influence_maximization.py
"""

from __future__ import annotations

import time

from repro import RQTreeEngine, load_dataset
from repro.influence.greedy import greedy_mc, greedy_rqtree
from repro.influence.spread import expected_spread_mc


def main() -> None:
    graph = load_dataset("lastfm", n=800, seed=2)
    print(
        f"social network: {graph.num_nodes} users, {graph.num_arcs} "
        f"influence arcs (weighted cascade)"
    )
    k = 5

    # Restrict the candidate pool to plausible influencers so the MC
    # baseline finishes quickly (the paper uses the full node set on a
    # C++ implementation; the comparison shape is unchanged).
    pool = sorted(graph.nodes(), key=graph.out_degree, reverse=True)[:60]

    print(f"\nselecting k = {k} seeds from a pool of {len(pool)} users\n")

    start = time.perf_counter()
    trace_mc = greedy_mc(
        graph, k, num_samples=1000, seed=0, candidates=pool, use_celf=True
    )  # K = 1000 samples per oracle call, the paper's setting
    time_mc = time.perf_counter() - start

    engine = RQTreeEngine.build(graph, seed=2)
    start = time.perf_counter()
    trace_rq = greedy_rqtree(
        engine, k, thresholds=(0.2, 0.4, 0.6, 0.8), candidates=pool
    )
    time_rq = time.perf_counter() - start

    # Final accuracy yardstick: MC spread of both seed sets (Figure 5's
    # evaluation protocol).
    spread_mc = expected_spread_mc(graph, trace_mc.seeds, num_samples=1000, seed=9)
    spread_rq = expected_spread_mc(graph, trace_rq.seeds, num_samples=1000, seed=9)

    print("method          seeds                          spread   time")
    print(
        f"Greedy+MC       {str(trace_mc.seeds):28s}  "
        f"{spread_mc:7.2f}  {time_mc:6.2f}s"
    )
    print(
        f"Greedy+RQ-tree  {str(trace_rq.seeds):28s}  "
        f"{spread_rq:7.2f}  {time_rq:6.2f}s"
    )
    print(
        f"\nRQ-tree variant achieves {spread_rq / max(spread_mc, 1e-9):.0%} "
        f"of the MC spread at {time_mc / max(time_rq, 1e-9):.1f}x the speed"
    )
    print(
        f"oracle calls: MC Greedy {trace_mc.evaluations}, "
        f"RQ-tree Greedy {trace_rq.evaluations} (CELF lazy evaluation)"
    )


if __name__ == "__main__":
    main()
