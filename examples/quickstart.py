"""Quickstart: reliability search with the RQ-tree index.

Builds the paper's Figure 1 example graph plus a mid-sized synthetic
co-authorship network, constructs the RQ-tree index, and answers
reliability-search queries with both verification strategies, comparing
against the Monte-Carlo baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import RQTreeEngine, UncertainGraph, load_dataset, mc_sampling_search
from repro.graph.generators import figure1_graph


def paper_example() -> None:
    """Reproduce Example 1 / Example 2 of the paper end to end."""
    print("=== Paper run-through example (Figure 1) ===")
    graph, names = figure1_graph()
    engine = RQTreeEngine.build(graph, seed=0)

    result = engine.query(names["s"], eta=0.5, method="lb")
    answer = sorted(name for name, node in names.items() if node in result.nodes)
    print(f"RS({{s}}, 0.5) via RQ-tree-LB : {answer}   (paper: ['s', 'u', 'w'])")

    result = engine.query(names["s"], eta=0.5, method="mc", num_samples=2000, seed=1)
    answer = sorted(name for name, node in names.items() if node in result.nodes)
    print(f"RS({{s}}, 0.5) via RQ-tree-MC : {answer}")
    print()


def synthetic_network() -> None:
    """Index a 2000-node co-authorship network and time the methods."""
    print("=== Synthetic DBLP-like network (n = 2000) ===")
    graph = load_dataset("dblp5", n=2000, seed=0)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_arcs} arcs")

    start = time.perf_counter()
    engine = RQTreeEngine.build(graph, seed=0)
    print(
        f"index: built in {time.perf_counter() - start:.2f}s, "
        f"height {engine.tree.height}, {engine.tree.num_clusters} clusters"
    )

    source = next(u for u in graph.nodes() if graph.out_degree(u) >= 3)
    eta = 0.6

    result_lb = engine.query(source, eta, method="lb")
    print(
        f"RQ-tree-LB : {len(result_lb.nodes):4d} nodes in "
        f"{result_lb.total_seconds * 1000:8.2f} ms "
        f"(candidates: {len(result_lb.candidate_result.candidates)})"
    )

    result_mc = engine.query(source, eta, method="mc", num_samples=500, seed=0)
    print(
        f"RQ-tree-MC : {len(result_mc.nodes):4d} nodes in "
        f"{result_mc.total_seconds * 1000:8.2f} ms"
    )

    baseline = mc_sampling_search(graph, source, eta, num_samples=500, seed=0)
    print(
        f"MC-Sampling: {len(baseline.nodes):4d} nodes in "
        f"{baseline.seconds * 1000:8.2f} ms  (whole-graph baseline)"
    )

    overlap = result_mc.nodes & baseline.nodes
    print(
        f"agreement RQ-tree-MC vs baseline: "
        f"{len(overlap)}/{len(baseline.nodes)} of baseline answers found"
    )
    print()


def multi_source() -> None:
    """Multiple-source queries: greedy heuristic vs exact DP."""
    print("=== Multiple-source query ===")
    graph = load_dataset("dblp5", n=2000, seed=0)
    engine = RQTreeEngine.build(graph, seed=0)
    sources = [10, 11, 900]

    for mode in ("greedy", "exact"):
        result = engine.query(
            sources, eta=0.6, method="lb", multi_source_mode=mode
        )
        print(
            f"mode={mode:6s}: |answer| = {len(result.nodes):3d}, "
            f"|candidates| = {len(result.candidate_result.candidates):4d}, "
            f"time = {result.total_seconds * 1000:.2f} ms"
        )


if __name__ == "__main__":
    paper_example()
    synthetic_network()
    multi_source()
