"""Sensor network: packet-delivery probability with hop budgets.

The paper's mobile ad-hoc network motivation (Section 1, citing Ghosh
et al.): link quality between sensors is estimated from noisy
measurements, so each link carries a delivery probability, and the
operator asks "which sensors receive a packet from the sink with
adequately high probability?" — a reliability-search query.  Real
routing stacks additionally bound the number of forwarding hops (TTL),
which is the distance-constrained variant this library exposes via
``max_hops``.

The example builds a random-geometric sensor field, runs plain and
TTL-bounded reliability search from the sink, and then uses the
detection API to certify the delivery probability of a single far-away
sensor.

Run:  python examples/sensor_network.py
"""

from __future__ import annotations

import math
import random

from repro import RQTreeEngine, UncertainGraph, detect_reliability


def build_sensor_field(
    num_sensors: int = 350,
    radio_range: float = 0.09,
    seed: int = 0,
):
    """A random-geometric sensor network on the unit square.

    Sensors within radio range are linked both ways; delivery
    probability decays with distance (a standard log-distance model
    flattened to [0.3, 0.95]).
    """
    rng = random.Random(seed)
    positions = [
        (rng.random(), rng.random()) for _ in range(num_sensors)
    ]
    graph = UncertainGraph(num_sensors)
    for i in range(num_sensors):
        xi, yi = positions[i]
        for j in range(i + 1, num_sensors):
            xj, yj = positions[j]
            distance = math.hypot(xi - xj, yi - yj)
            if distance <= radio_range:
                quality = 0.95 - 0.65 * (distance / radio_range)
                graph.add_arc(i, j, quality)
                graph.add_arc(j, i, quality)
    return graph, positions


def main() -> None:
    graph, positions = build_sensor_field()
    print(
        f"sensor field: {graph.num_nodes} sensors, "
        f"{graph.num_arcs} directed links"
    )

    engine = RQTreeEngine.build(graph, seed=0)
    # The sink is the sensor closest to the square's center.
    sink = min(
        graph.nodes(),
        key=lambda i: (positions[i][0] - 0.5) ** 2
        + (positions[i][1] - 0.5) ** 2,
    )
    eta = 0.5
    print(f"sink sensor: {sink} at {positions[sink]}, eta = {eta}\n")

    unbounded = engine.query(sink, eta, method="mc", num_samples=600, seed=1)
    print(
        f"delivery (no TTL)    : {len(unbounded.nodes):3d} sensors reachable "
        f"with P >= {eta}  ({unbounded.total_seconds * 1000:.1f} ms)"
    )
    for ttl in (2, 4, 8):
        bounded = engine.query(
            sink, eta, method="mc", num_samples=600, seed=1, max_hops=ttl
        )
        print(
            f"delivery (TTL = {ttl:2d})  : {len(bounded.nodes):3d} sensors  "
            f"({bounded.total_seconds * 1000:.1f} ms)"
        )

    # Certify one distant sensor's delivery probability via detection.
    far = max(
        unbounded.nodes,
        key=lambda i: (positions[i][0] - positions[sink][0]) ** 2
        + (positions[i][1] - positions[sink][1]) ** 2,
    )
    result = detect_reliability(
        engine, sink, far, tolerance=0.1, method="mc",
        num_samples=600, seed=2,
    )
    print(
        f"\nfarthest reliable sensor {far}: delivery probability in "
        f"[{result.low:.2f}, {result.high:.2f}] "
        f"({result.queries_issued} index queries)"
    )


if __name__ == "__main__":
    main()
