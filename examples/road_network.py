"""Road-network scenario: probabilistic reachability under traffic jams.

The paper's road-network motivation (Section 1, citing Hua & Pei): road
segments fail unpredictably (jams, closures), so each segment carries a
probability of being traversable, and the question "which destinations
are reachable from my possible starting points with high probability?"
is a multiple-source reliability-search query.

This example builds a city-like grid road network with jam-prone arteries
and reliable side streets, indexes it, and finds the reliably reachable
destinations from a set of alternative depot locations.

Run:  python examples/road_network.py
"""

from __future__ import annotations

import random

from repro import RQTreeEngine, UncertainGraph, mc_sampling_search


def build_road_network(rows: int = 24, cols: int = 24, seed: int = 0):
    """A grid city: arteries are fast but jam-prone, side streets reliable.

    Every intersection connects to its 4 neighbours both ways.  Arcs on
    artery rows/columns (every 6th line) carry lower traversal
    probability (jams); side streets are dependable.
    """
    rng = random.Random(seed)
    graph = UncertainGraph(rows * cols)

    def node(r: int, c: int) -> int:
        return r * cols + c

    def probability(r1, c1, r2, c2) -> float:
        on_artery = (r1 % 6 == 0 and r2 % 6 == 0) or (
            c1 % 6 == 0 and c2 % 6 == 0
        )
        if on_artery:
            return rng.uniform(0.45, 0.7)   # jam-prone
        return rng.uniform(0.8, 0.98)       # side street

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_arc(node(r, c), node(r, c + 1), probability(r, c, r, c + 1))
                graph.add_arc(node(r, c + 1), node(r, c), probability(r, c + 1, r, c))
            if r + 1 < rows:
                graph.add_arc(node(r, c), node(r + 1, c), probability(r, c, r + 1, c))
                graph.add_arc(node(r + 1, c), node(r, c), probability(r + 1, c, r, c))
    return graph, rows, cols


def main() -> None:
    graph, rows, cols = build_road_network()
    print(
        f"road network: {rows}x{cols} grid, {graph.num_nodes} intersections, "
        f"{graph.num_arcs} directed segments"
    )

    engine = RQTreeEngine.build(graph, seed=0)
    print(
        f"RQ-tree: height {engine.tree.height}, "
        f"{engine.tree.num_clusters} clusters"
    )

    # Three alternative depot locations in the same city quarter.
    depots = [1 * cols + 1, 2 * cols + 3, 4 * cols + 2]
    eta = 0.5
    print(f"\ndepots (intersections): {depots}, threshold eta = {eta}")

    result = engine.query(depots, eta, method="lb")
    reachable = result.nodes
    print(
        f"RQ-tree-LB: {len(reachable)} intersections reliably reachable "
        f"in {result.total_seconds * 1000:.1f} ms "
        f"(pruned {graph.num_nodes - len(result.candidate_result.candidates)} "
        f"of {graph.num_nodes} nodes during filtering)"
    )

    proxy = mc_sampling_search(graph, depots, eta, num_samples=500, seed=1)
    agreement = len(reachable & proxy.nodes)
    print(
        f"MC baseline: {len(proxy.nodes)} intersections in "
        f"{proxy.seconds * 1000:.1f} ms; "
        f"{agreement} of the RQ-tree answers confirmed"
    )

    # Render a small ASCII map of the reachable quarter.
    print("\nreachability map (#: reliably reachable, D: depot, .: not):")
    for r in range(min(rows, 12)):
        line = []
        for c in range(min(cols, 36)):
            v = r * cols + c
            if v in depots:
                line.append("D")
            elif v in reachable:
                line.append("#")
            else:
                line.append(".")
        print("  " + "".join(line))


if __name__ == "__main__":
    main()
