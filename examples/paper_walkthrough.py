"""A guided tour of the paper, executed live.

Walks through the paper's running example and every major theorem with
the library's machinery, printing the computed value next to the value
the paper states.  Reading this side by side with the paper (Sections
2-6) is the fastest way to connect the math to the code.

Run:  python examples/paper_walkthrough.py
"""

from __future__ import annotations

import math

from repro import RQTreeEngine, build_rqtree
from repro.core.outreach import (
    combine_upper_bounds,
    general_outreach_upper_bound,
    outreach_upper_bound,
)
from repro.graph.exact import (
    exact_outreach,
    exact_reliability,
    exact_reliability_search,
)
from repro.graph.generators import figure1_graph
from repro.graph.paths import most_likely_path


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    graph, names = figure1_graph()
    s, u, v, w, t = (names[k] for k in "suvwt")

    section("Section 2 — possible-world semantics and Problem 1")
    print("The Figure 1 graph has", graph.num_arcs, "arcs, hence",
          2 ** graph.num_arcs, "possible worlds.")
    r_su = exact_reliability(graph, [s], u)
    print(f"Example 1: R(s, u) = 1 - (1-0.5)(1-0.6*0.5) = 0.65; "
          f"computed {r_su:.4f}")
    answer = exact_reliability_search(graph, [s], 0.5)
    labels = sorted(k for k, node in names.items() if node in answer)
    print(f"Example 1: RS({{s}}, 0.5) = {{s, u, w}}; computed {labels}")

    section("Section 4.1 — outreach probability and its upper bound")
    cluster_sw = {s, w}
    exact_out = exact_outreach(graph, [s], cluster_sw)
    bound = outreach_upper_bound(graph, [s], cluster_sw)
    print(f"R_out({{s}}, {{s,w}}) exact        = {exact_out:.4f}")
    print(f"U_out({{s}}, {{s,w}}) (Thm 1-2)    = {bound.upper_bound:.4f} "
          "(paper Figure 2: 0.80)")
    print(f"  via max-flow f* = {bound.max_flow:.4f} on a subgraph of "
          f"{bound.subgraph_nodes} nodes (Observation 3)")

    cluster_suw = {s, u, w}
    bound2 = outreach_upper_bound(graph, [s], cluster_suw)
    print(f"U_out({{s}}, {{s,u,w}})            = {bound2.upper_bound:.4f} "
          "(paper Figure 2: 0.496)")
    print("Example 2: with eta = 0.5 every node outside {s,u,w} is pruned,")
    print("because 0.496 < 0.5 certifies the cluster (Observation 1).")

    section("Section 4.3 — multi-source combination (Lemma 1 / Theorem 3)")
    b1 = outreach_upper_bound(graph, [s], {s}).upper_bound
    b2 = outreach_upper_bound(graph, [t], {t, v}).upper_bound
    combined = combine_upper_bounds([b1, b2])
    print(f"U_out({{s}},{{s}}) = {b1:.4f}, U_out({{t}},{{t,v}}) = {b2:.4f}")
    print(f"combined bound 1 - prod(1-U_i) = {combined:.4f} "
          "(valid for the union, Lemma 1)")

    section("Section 5.1 — most-likely-path lower bound (Theorem 4)")
    prob, path = most_likely_path(graph, [s], u)
    label_path = [k for node in path for k, n in names.items() if n == node]
    print(f"most likely s->u path: {label_path} with probability "
          f"{prob:.4f} <= R(s, u) = {r_su:.4f}")
    print("At eta = 0.6 the LB verifier therefore *misses* u "
          "(a false negative),")
    print("while at eta = 0.5 it keeps u — matching RQ-tree-LB's "
          "documented recall trade-off.")

    section("Section 5 — Theorem 5's general bound")
    cheap = general_outreach_upper_bound(graph, cluster_suw)
    print(f"U-bar_out({{s,u,w}}) = {cheap:.4f} >= U_out = "
          f"{bound2.upper_bound:.4f} (source-independent, so cacheable)")

    section("Section 6 — building the RQ-tree (Algorithm 2)")
    tree, report = build_rqtree(graph, seed=1)
    print(f"tree: {report.num_clusters} clusters, height {report.height}, "
          f"built in {report.build_seconds * 1000:.1f} ms")
    path_sizes = [c.size for c in tree.path_to_root(s)]
    print(f"leaf-to-root cluster sizes above s: {path_sizes}")

    section("Putting it together — the full query pipeline")
    engine = RQTreeEngine(graph, tree)
    result = engine.query(s, 0.5, method="lb")
    print(result.explain())
    labels = sorted(k for k, node in names.items() if node in result.nodes)
    print(f"\nfinal answer: {labels} (paper: ['s', 'u', 'w'])")


if __name__ == "__main__":
    main()
