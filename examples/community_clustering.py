"""Reliable clustering: finding communities in an uncertain graph.

The paper's related work cites reliable clustering (Liu et al., ICDM
2012): grouping nodes so that members are *reliably* connected to a
representative, which plain (deterministic) community detection gets
wrong on uncertain graphs — a dense cluster of improbable arcs is not a
community.

This example builds a protein-interaction-style network with planted
modules, runs greedy reliability k-center clustering at two thresholds,
and shows how raising eta sharpens the clusters (fewer, more certain
members).

Run:  python examples/community_clustering.py
"""

from __future__ import annotations

from repro import RQTreeEngine, load_dataset
from repro.apps.clustering import clustering_coverage, reliable_kcenter


def main() -> None:
    graph = load_dataset("biomine", n=600, seed=3)
    print(
        f"interaction network: {graph.num_nodes} nodes, "
        f"{graph.num_arcs} arcs"
    )
    engine = RQTreeEngine.build(graph, seed=3)
    k = 12

    for eta in (0.3, 0.6):
        clustering = reliable_kcenter(engine, k=k, eta=eta, method="mc",
                                      num_samples=300, seed=0)
        coverage = clustering_coverage(clustering, graph.num_nodes)
        sizes = sorted(
            (len(clustering.members(c)) for c in clustering.centers),
            reverse=True,
        )
        print(
            f"\neta = {eta}: {len(clustering.centers)} clusters cover "
            f"{coverage:.0%} of the graph "
            f"({clustering.queries_issued} index queries, "
            f"{clustering.seconds:.2f}s)"
        )
        print(f"  cluster sizes: {sizes}")
        largest = clustering.centers[0]
        members = sorted(clustering.members(largest))
        print(
            f"  largest cluster (center {largest}): "
            f"{members[:12]}{'...' if len(members) > 12 else ''}"
        )

    print(
        "\nHigher eta -> fewer reliably attached members per cluster: the "
        "clustering\ntrades coverage for certainty, which is the point of "
        "clustering *reliably*."
    )


if __name__ == "__main__":
    main()
