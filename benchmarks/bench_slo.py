"""SLO under production-shaped traffic: the loadgen harness as a bench.

Where ``bench_service`` and ``bench_transport`` measure the serving
stack under a uniform closed-loop hammer, this bench asks the
question an operator actually has: *with production-shaped traffic —
Zipf-skewed sources, a diurnal rate curve, a 10% update stream, and a
fault storm through the middle of the run — what p99, degraded-answer
rate, and cache hit rate does the service deliver?*

One seeded ``mixed``-profile schedule is generated once and replayed
against **both** frontends (asyncio gateway and the threaded server)
over loopback, open-loop, via :func:`repro.loadgen.drive`.  Identical
traffic, so the sweep rows are directly comparable; the deltas are the
frontends', not the workload's.

Results go to ``BENCH_slo.json`` at the repo root (and
``benchmarks/results/slo.txt``).  ``BENCH_QUICK=1`` shrinks the graph
and the run for the CI smoke + trajectory check, which holds ``qps``
to the usual 30% floor and additionally holds ``p99_ms`` (2x band)
and ``degraded_rate`` (+0.15 absolute) as ceilings.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import RQTreeEngine
from repro.graph.generators import nethept_like
from repro.loadgen import drive, generate_schedule
from repro.service.aio_gateway import AioGateway
from repro.service.http_api import ServiceHTTPServer
from repro.service.metrics import MetricsRegistry, set_registry
from repro.service.server import ReliabilityService

from conftest import host_info, write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

NUM_NODES = 1000 if not QUICK else 300
PROFILE = "mixed"
DURATION_SECONDS = 12.0 if not QUICK else 4.0
TARGET_QPS = 40.0 if not QUICK else 15.0
WORKERS = 4 if not QUICK else 2
SEED = 42

JSON_PATH = Path(__file__).parent.parent / "BENCH_slo.json"

FRONTENDS = (
    ("aio", lambda service: AioGateway(service, host="127.0.0.1", port=0)),
    (
        "thread",
        lambda service: ServiceHTTPServer(
            service, host="127.0.0.1", port=0
        ),
    ),
)


def _run_frontend(name, make_server, schedule):
    # A fresh registry per frontend: the report's cache/shed numbers
    # are metric deltas, and sharing one registry would also let the
    # second run read the first run's warm TTL cache.  The graph is
    # rebuilt too (same seed, identical arcs): live updates mutate the
    # graph in place and advance its epoch, so reusing run 1's graph
    # would change run 2's traffic semantics — replayed update batches
    # land on an epoch the fresh update plane has never issued and are
    # rejected by the monotonic-epoch guard.
    set_registry(MetricsRegistry())
    graph = nethept_like(n=NUM_NODES, seed=5)
    engine = RQTreeEngine.build(graph, seed=7)
    service = ReliabilityService(engine, workers=WORKERS, live=True)
    server = make_server(service).start()
    try:
        report = drive(schedule, server.url, arm_storms=True)
    finally:
        server.stop()
    return {
        "workload": f"{PROFILE}_{name}",
        "qps": report["throughput"]["achieved_qps"],
        "p50_ms": report["latency_ms"]["p50"],
        "p99_ms": report["latency_ms"]["p99"],
        "degraded_rate": report["degraded"]["rate"],
        "error_rate": report["errors"]["rate"],
        "cache_hit_rate": report["cache"]["hit_rate"],
        "shed_rate": report["shed"]["rate"],
        "storms": report["requests"]["storms"],
        "completed": report["requests"]["completed"],
        "updates": report["requests"]["updates"],
    }


def test_slo_under_mixed_traffic():
    graph = nethept_like(n=NUM_NODES, seed=5)
    schedule = generate_schedule(
        PROFILE,
        seed=SEED,
        duration_seconds=DURATION_SECONDS,
        target_qps=TARGET_QPS,
        num_nodes=graph.num_nodes,
    )
    records = []
    try:
        for name, make_server in FRONTENDS:
            record = _run_frontend(name, make_server, schedule)
            # The bench's own sanity floor: traffic flowed, the storm
            # fired, and the run was not a wall of errors.
            assert record["completed"] > 0, record
            assert record["storms"] == 1, record
            assert record["error_rate"] <= 0.05, record
            records.append(record)
    finally:
        set_registry(MetricsRegistry())

    lines = [
        "  ".join(f"{key}={value}" for key, value in record.items())
        for record in records
    ]
    write_result("slo", "\n".join(lines) + "\n")
    JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "slo_mixed_traffic",
                "quick_mode": QUICK,
                "profile": PROFILE,
                "num_nodes": NUM_NODES,
                "num_arcs": graph.num_arcs,
                "duration_seconds": DURATION_SECONDS,
                "target_qps": TARGET_QPS,
                "offered_qps": round(schedule.offered_qps, 3),
                "workers": WORKERS,
                "seed": SEED,
                "sweep": records,
                "host": host_info(),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )


if __name__ == "__main__":
    test_slo_under_mixed_traffic()
    print(JSON_PATH.read_text(encoding="utf-8"))
