"""Recall-vs-budget curve for deadline-degraded queries.

The resilience subsystem's claim: a budgeted query never fails, it just
answers *less* — the confirmed set shrinks towards the sources as the
deadline tightens, and every confirmed node is also confirmed by the
unbounded run (degradation loses recall, never precision).

This benchmark sweeps wall-clock deadlines on the paper-scale ER
workload (n = 2000, mean out-degree 8) at a threshold chosen so MC
verification genuinely has work to do, and reports per-deadline recall
against the unbounded answer plus the achieved-confidence and
worlds-used instrumentation.  Results go to ``BENCH_resilience.json``
at the repo root (and ``benchmarks/results/degradation.txt``).

``BENCH_QUICK=1`` shrinks the graph and the sweep to a CI smoke test:
it checks the harness end-to-end, monotonic soundness, and that the
loosest budget reaches full recall, without timing long enough to plot
a meaningful curve.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import QueryBudget, RQTreeEngine
from repro.eval.reporting import format_table
from repro.graph.generators import uncertain_gnp

from conftest import write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

NUM_NODES = 2000 if not QUICK else 300
MEAN_OUT_DEGREE = 8.0
ETA = 0.9
NUM_SAMPLES = 20000 if not QUICK else 2000
#: Deadline sweep in milliseconds; None = unbounded reference run.
DEADLINES_MS = (
    [1.0, 5.0, 20.0, 50.0, 200.0, 1000.0, 5000.0]
    if not QUICK
    else [1.0, 20.0, 2000.0]
)

JSON_PATH = Path(__file__).parent.parent / "BENCH_resilience.json"


def test_degradation_recall_curve():
    graph = uncertain_gnp(NUM_NODES, MEAN_OUT_DEGREE / NUM_NODES, seed=42)
    engine = RQTreeEngine.build(graph, seed=0)

    def run(budget):
        start = time.perf_counter()
        result = engine.query(
            [0], eta=ETA, method="mc", num_samples=NUM_SAMPLES, seed=1,
            budget=budget,
        )
        return result, time.perf_counter() - start

    reference, reference_seconds = run(None)
    assert not reference.degraded
    truth = reference.nodes

    rows = []
    records = []
    for deadline_ms in DEADLINES_MS:
        result, elapsed = run(
            QueryBudget(deadline_seconds=deadline_ms / 1000.0)
        )
        confirmed = result.nodes
        # Degradation trades recall for time; precision vs the unbounded
        # answer stays near-perfect.  Exact set containment is NOT
        # guaranteed: Wilson early stopping may settle a borderline node
        # on fewer worlds than the unbounded count rule, so a handful of
        # eta-boundary nodes can flip either way.  Assert a soft bound.
        precision = (
            len(confirmed & truth) / len(confirmed) if confirmed else 1.0
        )
        assert precision >= 0.98, (
            f"deadline {deadline_ms} ms confirmed too many nodes outside "
            f"the unbounded answer: {sorted(confirmed - truth)[:10]}"
        )
        recall = len(confirmed & truth) / len(truth) if truth else 1.0
        records.append(
            {
                "deadline_ms": deadline_ms,
                "elapsed_seconds": round(elapsed, 4),
                "degraded": result.degraded,
                "confirmed": len(confirmed),
                "unverified": len(result.unverified),
                "worlds_used": result.worlds_used,
                "achieved_confidence": round(result.achieved_confidence, 4),
                "precision_vs_unbounded": round(precision, 4),
                "recall_vs_unbounded": round(recall, 4),
            }
        )
        rows.append(
            [
                f"{deadline_ms:g}",
                f"{elapsed * 1000:.1f}",
                "yes" if result.degraded else "no",
                len(confirmed),
                len(result.unverified),
                result.worlds_used,
                f"{result.achieved_confidence:.0%}",
                f"{recall:.0%}",
            ]
        )

    table = format_table(
        ["deadline (ms)", "elapsed (ms)", "degraded", "confirmed",
         "unverified", "worlds", "confidence", "recall"],
        rows,
    )
    write_result("degradation", table)
    JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "deadline_degradation_recall",
                "quick_mode": QUICK,
                "num_nodes": NUM_NODES,
                "num_arcs": graph.num_arcs,
                "eta": ETA,
                "num_samples": NUM_SAMPLES,
                "unbounded": {
                    "elapsed_seconds": round(reference_seconds, 4),
                    "confirmed": len(truth),
                    "worlds_used": reference.worlds_used,
                },
                "sweep": records,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # The loosest deadline must behave like the unbounded run (up to
    # eta-boundary early-stopping flips), and a budgeted query must
    # never take pathologically longer than its deadline allows
    # (generous 50x slack covers chunk granularity and cold-start noise
    # on shared CI runners).
    assert records[-1]["recall_vs_unbounded"] >= 0.99
    assert not records[-1]["degraded"]
    tightest = records[0]
    assert tightest["elapsed_seconds"] <= max(
        0.5, 50 * DEADLINES_MS[0] / 1000.0
    )
