"""Live update plane: apply latency, query tails under churn, downtime.

Three questions, one harness (``repro.live.LiveShardedEngine``):

* **How fast do updates land?** A seeded stream of arc-update batches
  is applied end to end (validate → master graph → per-shard payloads →
  slice streaming → epoch publish); the sweep reports apply p50/p99 and
  sustained ops/s.
* **What does churn cost readers?** The same closed-loop lb query
  workload runs against a frozen engine and again concurrently with a
  sustained update stream; the delta in qps and p99 is the price of
  epoch publishing and snapshot leasing.
* **Is rebalancing really zero-downtime?** Queries hammer the engine
  while the topology doubles 2→4; the benchmark asserts the failed- and
  degraded-query count is exactly zero and reports the swap wall time.

Results go to ``BENCH_live.json`` at the repo root (and
``benchmarks/results/live.txt``).  ``BENCH_QUICK=1`` shrinks the graph
and switches to inline shards for the CI smoke + trajectory check.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.graph.generators import uncertain_gnp
from repro.live import LiveShardedEngine

from conftest import host_info, write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

NUM_NODES = 3000 if not QUICK else 300
MEAN_OUT_DEGREE = 4.0
ETA = 0.3
NUM_QUERIES = 48 if not QUICK else 12
NUM_BATCHES = 12 if not QUICK else 4
BATCH_SIZE = 40 if not QUICK else 20
CONCURRENCY = 8
SHARDS = 2
MODE = "process" if not QUICK else "inline"
TRANSPORT = "shm" if not QUICK else "pickle"
SEED = 7

JSON_PATH = Path(__file__).parent.parent / "BENCH_live.json"


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def _update_batches(graph, num_batches, batch_size, seed=SEED):
    rng = random.Random(seed)
    mirror = {(u, v): p for u, v, p in graph.arcs()}
    n = graph.num_nodes
    batches = []
    for _ in range(num_batches):
        ops = []
        while len(ops) < batch_size:
            roll = rng.random()
            if roll < 0.5 and mirror:
                u, v = rng.choice(sorted(mirror))
                p = round(rng.uniform(0.1, 0.6), 3)
                ops.append(("set", u, v, p))
                mirror[(u, v)] = p
            elif roll < 0.8:
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v or (u, v) in mirror:
                    continue
                p = round(rng.uniform(0.1, 0.6), 3)
                ops.append(("set", u, v, p))
                mirror[(u, v)] = p
            elif mirror:
                u, v = rng.choice(sorted(mirror))
                ops.append(("delete", u, v))
                del mirror[(u, v)]
        batches.append(ops)
    return batches


def _sources(graph, count, seed=SEED):
    rng = random.Random(seed + 1)
    return [rng.randrange(graph.num_nodes) for _ in range(count)]


def _query_sweep(engine, sources):
    """Closed-loop lb workload; returns (qps, p50, p99, failures)."""
    latencies = [None] * len(sources)
    failures = []

    def run(index):
        start = time.perf_counter()
        try:
            result = engine.query(sources[index], eta=ETA, method="lb")
            if result.degraded:
                failures.append(("degraded", sources[index]))
        except Exception as error:  # noqa: BLE001 - counted, not raised
            failures.append((repr(error), sources[index]))
        latencies[index] = time.perf_counter() - start

    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
        list(pool.map(run, range(len(sources))))
    wall = time.perf_counter() - wall_start
    ordered = sorted(lat for lat in latencies if lat is not None)
    return (
        len(sources) / wall,
        _percentile(ordered, 0.50),
        _percentile(ordered, 0.99),
        failures,
    )


def test_live_update_plane():
    graph = uncertain_gnp(
        NUM_NODES, MEAN_OUT_DEGREE / NUM_NODES,
        existence_range=(0.1, 0.6), seed=42,
    )
    sources = _sources(graph, NUM_QUERIES)
    records, lines = [], []

    engine = LiveShardedEngine.build(
        graph, shards=SHARDS, seed=SEED, mode=MODE, transport=TRANSPORT,
    )
    try:
        engine.query(sources[0], eta=ETA, method="lb")  # warm caches

        # -- frozen baseline ------------------------------------------
        qps, p50, p99, failures = _query_sweep(engine, sources)
        assert not failures, failures[:3]
        records.append({
            "workload": "query_frozen", "qps": round(qps, 3),
            "p50_ms": round(p50 * 1000, 2),
            "p99_ms": round(p99 * 1000, 2),
        })

        # -- apply latency --------------------------------------------
        batches = _update_batches(graph, NUM_BATCHES, BATCH_SIZE)
        apply_latencies = []
        for batch in batches[: NUM_BATCHES // 2]:
            start = time.perf_counter()
            engine.apply(batch)
            apply_latencies.append(time.perf_counter() - start)
        ordered = sorted(apply_latencies)
        total = sum(apply_latencies)
        ops_per_second = (len(apply_latencies) * BATCH_SIZE) / total
        records.append({
            "workload": "apply",
            # "qps" here is applied ops/s so the trajectory check can
            # hold the write path to the same 30% band as the readers.
            "qps": round(ops_per_second, 3),
            "p50_ms": round(_percentile(ordered, 0.50) * 1000, 2),
            "p99_ms": round(_percentile(ordered, 0.99) * 1000, 2),
        })

        # -- queries during a sustained update stream -----------------
        stop = threading.Event()

        def updater():
            remaining = list(batches[NUM_BATCHES // 2:])
            while remaining and not stop.is_set():
                engine.apply(remaining.pop(0))

        churn = threading.Thread(target=updater)
        churn.start()
        try:
            qps_churn, p50_churn, p99_churn, failures = _query_sweep(
                engine, sources
            )
        finally:
            stop.set()
            churn.join(timeout=120)
        assert not failures, failures[:3]
        records.append({
            "workload": "query_during_updates",
            "qps": round(qps_churn, 3),
            "p50_ms": round(p50_churn * 1000, 2),
            "p99_ms": round(p99_churn * 1000, 2),
        })

        # -- zero-downtime rebalance ----------------------------------
        stop = threading.Event()
        rebalance_failures = []
        completed = [0]

        def hammer():
            rng = random.Random(99)
            while not stop.is_set():
                source = sources[rng.randrange(len(sources))]
                try:
                    result = engine.query(source, eta=ETA, method="lb")
                    if result.degraded:
                        rebalance_failures.append(("degraded", source))
                    completed[0] += 1
                except Exception as error:  # noqa: BLE001
                    rebalance_failures.append((repr(error), source))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        rebalance_start = time.perf_counter()
        try:
            engine.rebalance(SHARDS * 2)
        finally:
            rebalance_wall = time.perf_counter() - rebalance_start
            time.sleep(0.2)  # let post-swap queries land on the new plan
            stop.set()
            for thread in threads:
                thread.join(timeout=60)
        # The headline claim: downtime is measured in failed queries,
        # and the number is zero.
        assert not rebalance_failures, rebalance_failures[:3]
        assert completed[0] > 0
        records.append({
            "workload": "rebalance",
            "rebalance_seconds": round(rebalance_wall, 4),
            "queries_during_swap": completed[0],
            "failed_queries": 0,
        })
    finally:
        engine.close()

    for record in records:
        lines.append("  ".join(f"{k}={v}" for k, v in record.items()))
    churn_cost = records[0]["qps"] / max(records[2]["qps"], 1e-9)
    summary = (
        "\n".join(lines)
        + f"\nfrozen/churn qps ratio: {churn_cost:.2f}x\n"
    )
    write_result("live", summary)
    JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "live_update_plane",
                "quick_mode": QUICK,
                "mode": MODE,
                "transport": TRANSPORT,
                "num_nodes": NUM_NODES,
                "num_arcs": graph.num_arcs,
                "eta": ETA,
                "method": "lb",
                "shards": SHARDS,
                "num_queries": NUM_QUERIES,
                "batch_size": BATCH_SIZE,
                "concurrency": CONCURRENCY,
                "seed": SEED,
                "sweep": records,
                "host": host_info(),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )


if __name__ == "__main__":
    test_live_update_plane()
    print(JSON_PATH.read_text(encoding="utf-8"))
