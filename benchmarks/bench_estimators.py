"""A comparison of Monte-Carlo methods for two-terminal reliability.

The paper's MC baseline cites Fishman's "A Comparison of Four Monte
Carlo Methods for Estimating the Probability of s-t Connectedness"
[13]; this bench recreates that comparison on the library's estimator
suite at equal world budgets:

* crude MC (`mc_reliability`),
* antithetic pairs,
* stratified conditioning on the highest-variance arcs,
* the RHT-style recursive path-factoring estimator.

Measured: RMSE against the exact factoring oracle across replications.
Expected shape (Fishman's conclusion transposed): every variance-
reduction scheme beats crude MC at equal budget; stratification and
recursion help most when a few arcs dominate the uncertainty.
"""

from __future__ import annotations

import math
import statistics

import pytest

from repro.eval.reporting import format_table
from repro.graph.exact import exact_reliability
from repro.graph.generators import uncertain_gnp
from repro.reliability.montecarlo import mc_reliability
from repro.reliability.rht import rht_reliability
from repro.reliability.variance_reduction import (
    antithetic_reliability,
    stratified_reliability,
)

from conftest import write_result

BUDGET = 200          # worlds per estimate
REPLICATIONS = 40     # independent estimates per method
PAIRS = 5             # (graph, source, target) instances


def _instances():
    instances = []
    seed = 0
    while len(instances) < PAIRS and seed < 50:
        g = uncertain_gnp(7, 0.3, seed=seed)
        seed += 1
        if not 4 <= g.num_arcs <= 16:
            continue
        target = g.num_nodes - 1
        exact = exact_reliability(g, [0], target)
        if 0.05 < exact < 0.95:  # non-degenerate instances only
            instances.append((g, target, exact))
    return instances


def test_estimator_comparison(benchmark):
    instances = _instances()
    assert instances, "no usable instances generated"

    def run():
        methods = {
            "crude MC": lambda g, t, rep: mc_reliability(
                g, 0, t, num_samples=BUDGET, seed=rep
            ),
            "antithetic": lambda g, t, rep: antithetic_reliability(
                g, [0], t, num_pairs=BUDGET // 2, seed=rep
            ),
            "stratified (k=4)": lambda g, t, rep: stratified_reliability(
                g, [0], t, num_samples=BUDGET, num_strata_arcs=4, seed=rep
            ),
            "RHT-style recursive": lambda g, t, rep: rht_reliability(
                g, 0, t, budget=8, fallback_samples=BUDGET // 8, seed=rep
            ),
        }
        rows = []
        rmse_by_method = {}
        for name, method in methods.items():
            squared_errors = []
            for g, target, exact in instances:
                for rep in range(REPLICATIONS):
                    estimate = method(g, target, rep)
                    squared_errors.append((estimate - exact) ** 2)
            rmse = math.sqrt(statistics.fmean(squared_errors))
            rows.append((name, BUDGET, rmse))
            rmse_by_method[name] = rmse
        return rows, rmse_by_method

    rows, rmse = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "estimator_comparison",
        format_table(
            ["estimator", "world budget", "RMSE vs exact"],
            rows,
            title="A comparison of Monte-Carlo methods (after Fishman "
            f"[13]): {PAIRS} instances x {REPLICATIONS} replications",
        ),
    )
    # Shape: every variance-reduction scheme is at least competitive
    # with crude MC at equal budget (allow 10% noise slack), and
    # stratified conditioning strictly improves.
    assert rmse["antithetic"] <= rmse["crude MC"] * 1.1
    assert rmse["stratified (k=4)"] <= rmse["crude MC"] * 1.05
    assert rmse["RHT-style recursive"] <= rmse["crude MC"] * 1.1
