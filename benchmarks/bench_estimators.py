"""Estimator benchmarks: the Fishman MC comparison and the planner bench.

Two experiments share this module:

``test_estimator_comparison`` recreates Fishman's "A Comparison of Four
Monte Carlo Methods for Estimating the Probability of s-t
Connectedness" [13] on the library's low-level reliability estimators
at equal world budgets (crude MC, antithetic pairs, stratified
conditioning, RHT-style recursion), measuring RMSE against the exact
factoring oracle.

``test_estimator_portfolio`` is the headline bench for the estimator
portfolio (``repro.estimators``): a mixed workload of reliability-set
queries where no single fixed method wins everywhere —

* tiny sparse subgraphs queried at a high world budget, where the
  exact frontier-conditioning estimator is both fastest and
  zero-variance;
* mid-size subgraphs past the exact caps, where the lazy
  BFS-sharing sampler wins and the exact method must fall back.

Every fixed estimator (``mc``, ``rss``, ``lazy``, ``exact``) and the
cost-based planner (``auto``) run the whole workload.  Each method is
scored in *regret seconds*: wall-clock elapsed plus an accuracy
penalty (``ERROR_WEIGHT`` seconds per unit of mean absolute error
against a reference answer — exact frontier conditioning on the tiny
instances, a high-budget independently-seeded lazy run on the mid
instances).  The bound-only methods (``lb``/``lb+``) answer a
one-sided certification problem and are out of scope here.

Headline assertion (the ISSUE's acceptance bar): ``auto`` never loses
to the worst fixed method and beats the best fixed method on the mixed
workload — i.e. the planner's per-batch choice is worth more than any
single global default.

Results go to ``BENCH_estimators.json`` at the repo root; rows are
keyed by ``method`` and carry a ``qps`` value for the CI trajectory
check (``scripts/check_bench_trajectory.py`` against the quick-mode
baseline under ``benchmarks/baselines/``).  ``BENCH_QUICK=1`` shrinks
the workload for CI.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import time
from pathlib import Path

from repro import RQTreeEngine
from repro.eval.reporting import format_table
from repro.graph.exact import exact_reliability
from repro.graph.generators import uncertain_gnp
from repro.reliability.montecarlo import mc_reliability
from repro.reliability.rht import rht_reliability
from repro.reliability.variance_reduction import (
    antithetic_reliability,
    stratified_reliability,
)

from conftest import host_info, write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

BUDGET = 200          # worlds per estimate (Fishman comparison)
REPLICATIONS = 40     # independent estimates per method
PAIRS = 5             # (graph, source, target) instances

#: Fixed methods raced against ``auto`` on the mixed workload.
FIXED_METHODS = ("mc", "rss", "lazy", "exact")
ETA = 0.2
QUERY_SEED = 5
#: Regret exchange rate: seconds charged per unit of mean abs error.
ERROR_WEIGHT = 2.0

TINY_COUNT = 4 if QUICK else 10
TINY_SAMPLES = 8000 if QUICK else 20000
MID_COUNT = 2 if QUICK else 6
MID_NODES = 80 if QUICK else 120
MID_SAMPLES = 1000 if QUICK else 3000
REF_SAMPLES = 8000 if QUICK else 20000

JSON_PATH = Path(__file__).parent.parent / "BENCH_estimators.json"


def _instances():
    instances = []
    seed = 0
    while len(instances) < PAIRS and seed < 50:
        g = uncertain_gnp(7, 0.3, seed=seed)
        seed += 1
        if not 4 <= g.num_arcs <= 16:
            continue
        target = g.num_nodes - 1
        exact = exact_reliability(g, [0], target)
        if 0.05 < exact < 0.95:  # non-degenerate instances only
            instances.append((g, target, exact))
    return instances


def test_estimator_comparison(benchmark):
    instances = _instances()
    assert instances, "no usable instances generated"

    def run():
        methods = {
            "crude MC": lambda g, t, rep: mc_reliability(
                g, 0, t, num_samples=BUDGET, seed=rep
            ),
            "antithetic": lambda g, t, rep: antithetic_reliability(
                g, [0], t, num_pairs=BUDGET // 2, seed=rep
            ),
            "stratified (k=4)": lambda g, t, rep: stratified_reliability(
                g, [0], t, num_samples=BUDGET, num_strata_arcs=4, seed=rep
            ),
            "RHT-style recursive": lambda g, t, rep: rht_reliability(
                g, 0, t, budget=8, fallback_samples=BUDGET // 8, seed=rep
            ),
        }
        rows = []
        rmse_by_method = {}
        for name, method in methods.items():
            squared_errors = []
            for g, target, exact in instances:
                for rep in range(REPLICATIONS):
                    estimate = method(g, target, rep)
                    squared_errors.append((estimate - exact) ** 2)
            rmse = math.sqrt(statistics.fmean(squared_errors))
            rows.append((name, BUDGET, rmse))
            rmse_by_method[name] = rmse
        return rows, rmse_by_method

    rows, rmse = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "estimator_comparison",
        format_table(
            ["estimator", "world budget", "RMSE vs exact"],
            rows,
            title="A comparison of Monte-Carlo methods (after Fishman "
            f"[13]): {PAIRS} instances x {REPLICATIONS} replications",
        ),
    )
    # Shape: every variance-reduction scheme is at least competitive
    # with crude MC at equal budget (allow 10% noise slack), and
    # stratified conditioning strictly improves.
    assert rmse["antithetic"] <= rmse["crude MC"] * 1.1
    assert rmse["stratified (k=4)"] <= rmse["crude MC"] * 1.05
    assert rmse["RHT-style recursive"] <= rmse["crude MC"] * 1.1


# ---------------------------------------------------------------------------
# Portfolio / planner bench
# ---------------------------------------------------------------------------


def _tiny_instances():
    """Sparse 12-node graphs inside the exact caps, queried at a high
    world budget.  Truth is the exact frontier-conditioning answer
    (validated to machine precision against the factoring oracle in
    ``tests/test_estimators.py``); instances where the exact estimator
    fell back are discarded."""
    out = []
    seed = 0
    while len(out) < TINY_COUNT and seed < 200:
        g = uncertain_gnp(12, 0.12, (0.3, 0.95), seed=seed)
        seed += 1
        if not 12 <= g.num_arcs <= 18:
            continue
        engine = RQTreeEngine.build(g, seed=3)
        ref = engine.query(
            [0], ETA, method="exact", num_samples=TINY_SAMPLES, seed=9991
        )
        if ref.estimator != "exact":
            continue
        truth = {n: v for n, v in ref.estimates.items() if n != 0}
        if sum(1 for v in truth.values() if v >= ETA) < 3:
            continue
        out.append((engine, truth, TINY_SAMPLES))
    return out


def _mid_instances():
    """Mid-size graphs past the exact caps.  Truth is a high-budget
    lazy run under an independent seed, so no timed method shares its
    sample stream."""
    out = []
    seed = 0
    while len(out) < MID_COUNT and seed < 100:
        g = uncertain_gnp(MID_NODES, 2.6 / MID_NODES, (0.3, 0.9), seed=seed)
        seed += 1
        engine = RQTreeEngine.build(g, seed=3)
        ref = engine.query(
            [0], ETA, method="lazy", num_samples=REF_SAMPLES, seed=9991
        )
        truth = {n: v for n, v in ref.estimates.items() if n != 0}
        if sum(1 for v in truth.values() if v >= ETA) < 8:
            continue
        out.append((engine, truth, MID_SAMPLES))
    return out


def _run_method(method, workload):
    """One method over the whole workload: (total_seconds,
    mean_abs_error, regret_seconds, estimators_used)."""
    total = 0.0
    errors = []
    used = []
    for engine, truth, samples in workload:
        start = time.perf_counter()
        result = engine.query(
            [0], ETA, method=method, num_samples=samples, seed=QUERY_SEED
        )
        total += time.perf_counter() - start
        errors.append(statistics.fmean(
            abs(result.estimates.get(n, 0.0) - v) for n, v in truth.items()
        ))
        used.append(result.estimator or method)
    mean_error = statistics.fmean(errors)
    regret = total + ERROR_WEIGHT * sum(errors)
    return total, mean_error, regret, used


def test_estimator_portfolio():
    workload = _tiny_instances() + _mid_instances()
    assert len(workload) >= TINY_COUNT + MID_COUNT, (
        "workload generation came up short"
    )

    records = []
    regrets = {}
    decisions = {}
    for method in FIXED_METHODS + ("auto",):
        total, mean_error, regret, used = _run_method(method, workload)
        regrets[method] = regret
        decisions[method] = used
        records.append({
            "method": method,
            "queries": len(workload),
            "qps": round(len(workload) / total, 2),
            "total_seconds": round(total, 4),
            "mean_abs_error": round(mean_error, 5),
            "regret_seconds": round(regret, 4),
        })

    fixed = {m: regrets[m] for m in FIXED_METHODS}
    best_fixed = min(fixed, key=fixed.get)
    worst_fixed = max(fixed, key=fixed.get)
    headline = {
        "auto_regret_seconds": round(regrets["auto"], 4),
        "best_fixed": best_fixed,
        "best_fixed_regret_seconds": round(fixed[best_fixed], 4),
        "worst_fixed": worst_fixed,
        "worst_fixed_regret_seconds": round(fixed[worst_fixed], 4),
        "auto_choices": decisions["auto"],
    }

    JSON_PATH.write_text(json.dumps({
        "experiment": "estimator_portfolio",
        "quick_mode": QUICK,
        "eta": ETA,
        "error_weight_seconds": ERROR_WEIGHT,
        "tiny_instances": TINY_COUNT,
        "mid_instances": MID_COUNT,
        "sweep": records,
        "headline": headline,
        "host": host_info(),
    }, indent=2) + "\n", encoding="utf-8")

    write_result(
        "estimator_portfolio",
        format_table(
            ["method", "qps", "total s", "mean |err|", "regret s"],
            [(r["method"], r["qps"], r["total_seconds"],
              r["mean_abs_error"], r["regret_seconds"]) for r in records],
            title=f"Estimator portfolio, mixed workload "
            f"({TINY_COUNT} tiny + {MID_COUNT} mid queries; regret = "
            f"seconds + {ERROR_WEIGHT:.0f} x mean abs error)",
        ) + f"\nauto chose: {decisions['auto']}",
    )

    # The planner must never lose to the worst global default...
    assert regrets["auto"] <= fixed[worst_fixed], (
        f"auto regret {regrets['auto']:.4f}s exceeds worst fixed "
        f"({worst_fixed}: {fixed[worst_fixed]:.4f}s)"
    )
    # ...and per-batch choice must be worth more than the best one.
    # Quick mode runs a shrunken workload on shared runners, so it only
    # requires near-parity with the best fixed method.
    if QUICK:
        assert regrets["auto"] <= fixed[best_fixed] * 1.05, (
            f"auto regret {regrets['auto']:.4f}s not within 5% of best "
            f"fixed ({best_fixed}: {fixed[best_fixed]:.4f}s)"
        )
    else:
        assert regrets["auto"] < fixed[best_fixed], (
            f"auto regret {regrets['auto']:.4f}s does not beat best "
            f"fixed ({best_fixed}: {fixed[best_fixed]:.4f}s)"
        )
