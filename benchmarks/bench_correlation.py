"""Correlated arcs: how far does the independence assumption carry?

The paper's future-work list ends with "consider the case where arc
probabilities are not independent" (Section 9).  This bench does the
empirical groundwork: build a shared-fate model (arcs within a
community share a latent common cause), index its independent
*marginal* graph with the RQ-tree, and measure the RQ-tree answers
against the correlated ground truth (correlated Monte Carlo) as the
correlation strength rises.

Expected shape: at weak correlation the marginal approximation is
nearly exact; as group coupling strengthens, recall decays (positive
correlation concentrates probability on worlds where whole paths exist,
which the independent marginals under-rate) while precision degrades
more slowly.
"""

from __future__ import annotations

import random
import statistics

import pytest

from repro import RQTreeEngine, load_dataset
from repro.eval.metrics import precision, recall
from repro.eval.reporting import format_table
from repro.eval.workload import single_source_workload
from repro.graph.correlated import SharedFateModel, correlated_mc_search

from conftest import write_result

# eta = 0.4 sits between the 1-hop reliability mass (0.5, the NetHEPT
# arc probability) and the independent 2-hop mass (0.25), so sampling
# noise cannot flip boundary nodes while the correlated 2-hop mass
# (q * c^2, up to 0.45 at strong coupling) crosses the threshold --
# exactly the effect being measured.
ETA = 0.4
N = 800
QUERIES = 6


def _build_model(coupling: float, seed: int = 0) -> SharedFateModel:
    """A nethept-like graph whose community arcs share fate groups.

    ``coupling`` in [0, 1) moves probability mass from the per-arc coin
    into the shared group while keeping every arc's *marginal* fixed at
    0.5: group probability ``q = 1 - coupling * (1 - 0.5)`` and
    conditional arc probability ``0.5 / q``.  ``coupling = 0`` is the
    independent model.
    """
    graph = load_dataset("nethept", n=N, seed=seed)
    if coupling <= 0.0:
        return SharedFateModel(graph, {}, {})
    q = 1.0 - coupling * 0.5
    conditional = 0.5 / q
    # Rescale arc probabilities to the conditional value.
    rescaled = graph.copy()
    for u, v, _ in list(graph.arcs()):
        rescaled.remove_arc(u, v)
        rescaled.add_arc(u, v, conditional)
    # Fate group = the 32-node community block of the arc's tail.
    group_of = {}
    for u, v, _ in rescaled.arcs():
        group_of[(u, v)] = u // 32
    groups = {g: q for g in set(group_of.values())}
    return SharedFateModel(rescaled, group_of, groups)


def test_correlation_report(benchmark):
    def run():
        rows = []
        for coupling in (0.0, 0.3, 0.6, 0.9):
            model = _build_model(coupling)
            marginal = model.marginal_graph()
            engine = RQTreeEngine.build(marginal, seed=1)
            sources = single_source_workload(marginal, QUERIES, seed=2)
            precisions, recalls = [], []
            for i, s in enumerate(sources):
                truth = correlated_mc_search(
                    model, [s], ETA, num_samples=1000, seed=10 + i
                )
                answer = engine.query(
                    s, ETA, method="mc", num_samples=1000, seed=20 + i
                ).nodes
                precisions.append(precision(answer, truth))
                recalls.append(recall(answer, truth))
            rows.append(
                (
                    coupling,
                    statistics.fmean(precisions),
                    statistics.fmean(recalls),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "correlation",
        format_table(
            ["coupling", "precision vs correlated truth",
             "recall vs correlated truth"],
            rows,
            title="Future work: RQ-tree on the marginal graph vs "
            f"correlated ground truth (nethept-like n={N}, eta={ETA}); "
            "marginals held fixed while correlation strength varies",
        ),
    )
    by_coupling = {c: (p, r) for c, p, r in rows}
    # Independent case: the marginal graph IS the model; near-perfect.
    assert by_coupling[0.0][0] >= 0.9
    assert by_coupling[0.0][1] >= 0.9
    # Correlation degrades recall of the independence approximation.
    assert by_coupling[0.9][1] <= by_coupling[0.0][1] + 0.02
