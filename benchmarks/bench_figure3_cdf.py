"""Figure 3: cumulative distribution of arc probabilities per dataset.

The paper plots the arc-probability cdf of every dataset to explain the
methods' behaviour (e.g. BioMine's high probabilities make sampling
slow; DBLP's cdf shifts right as mu grows).  This bench regenerates the
cdf series on the synthetic stand-ins and checks the qualitative
orderings the paper's analysis relies on.
"""

from __future__ import annotations

import pytest

from repro import load_dataset
from repro.datasets import dataset_names
from repro.eval.reporting import empirical_cdf, format_series

from conftest import write_result

GRID = [0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95, 1.0]


def _cdf_of(name: str):
    graph = load_dataset(name, n=1500, seed=0)
    probs = [p for _, _, p in graph.arcs()]
    return empirical_cdf(probs, GRID)


def test_figure3_report(benchmark):
    cdfs = benchmark.pedantic(
        lambda: {name: _cdf_of(name) for name in dataset_names()},
        rounds=1,
        iterations=1,
    )
    sections = [
        format_series(
            name, cdfs[name], x_label="arc probability", y_label="cdf"
        )
        for name in dataset_names()
    ]
    write_result("figure3_cdf", "\n\n".join(sections))

    def cdf_at(name, x):
        return dict(cdfs[name])[x]

    # Paper shape 1: DBLP cdf shifts left (smaller probabilities) as mu
    # grows: cdf_mu10(0.35) >= cdf_mu5(0.35) >= cdf_mu2(0.35).
    assert cdf_at("dblp10", 0.35) >= cdf_at("dblp5", 0.35) >= cdf_at("dblp2", 0.35)
    # Paper shape 2: BioMine is the high-probability outlier.
    assert cdf_at("biomine", 0.5) <= cdf_at("dblp10", 0.5)
    # Paper shape 3: NetHEPT is a step function at 0.5.
    assert cdf_at("nethept", 0.5) == 1.0
    assert cdf_at("nethept", 0.35) == 0.0
