"""Sharded-serving throughput: qps and tail latency vs shard count.

The sharding tier's performance claim is process-level parallelism for
the expensive per-query phase: candidate generation (max-flow calls on
boundary subgraphs) and local lb verification run inside the shard
worker that owns the query's sources, so a single-source workload whose
sources are spread across shards keeps K workers busy at once — and
each sub-query runs on a ~n/K-node subgraph instead of the whole
graph.  The gateway's own work per query (one truncated multi-source
Dijkstra) is identical at every K, so what this benchmark measures is
exactly the scatter-gather win.

A fixed batch of seeded lb queries (distinct sources, spread across
the 4-shard partition) is pushed through ``ShardedRQTreeEngine``
instances with 1, 2, and 4 process-mode shards by a small thread pool
of closed-loop clients.  Answers must be identical at every shard
count (the lb parity guarantee; see ``tests/test_shard.py``).

Results go to ``BENCH_shards.json`` at the repo root (and
``benchmarks/results/shards.txt``).  ``BENCH_QUICK=1`` shrinks the
graph and switches to inline shards for a CI smoke test; the ≥2x
scaling assertion only runs at full size.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.eval.reporting import format_table
from repro.graph.generators import uncertain_gnp
from repro.shard import ShardedRQTreeEngine, build_shard_plan

from conftest import host_info, write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

NUM_NODES = 5000 if not QUICK else 400
MEAN_OUT_DEGREE = 4.0
EXISTENCE_RANGE = (0.1, 0.6)
ETA = 0.3
NUM_QUERIES = 48 if not QUICK else 12
CONCURRENCY = 8
SHARD_COUNTS = (1, 2, 4)
MODE = "process" if not QUICK else "inline"
SEED = 7

JSON_PATH = Path(__file__).parent.parent / "BENCH_shards.json"


def _spread_sources(graph, num_queries):
    """Distinct sources round-robined across the 4-shard partition, so
    consecutive queries land on different workers."""
    plan = build_shard_plan(graph, 4, seed=SEED)
    by_shard = [list(part) for part in plan.shard_nodes]
    sources = []
    cursor = 0
    while len(sources) < num_queries:
        part = by_shard[cursor % len(by_shard)]
        sources.append(part[(cursor // len(by_shard)) % len(part)])
        cursor += 1
    return sources


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def test_shard_count_scaling():
    graph = uncertain_gnp(
        NUM_NODES, MEAN_OUT_DEGREE / NUM_NODES,
        existence_range=EXISTENCE_RANGE, seed=42,
    )
    sources = _spread_sources(graph, NUM_QUERIES)

    records = []
    rows = []
    answers = {}
    for shards in SHARD_COUNTS:
        engine = ShardedRQTreeEngine.build(
            graph, shards=shards, seed=SEED, mode=MODE,
        )
        transport_used = engine.transport  # shm unless unavailable
        try:
            latencies = [None] * NUM_QUERIES

            def run(index, _engine=engine, _latencies=latencies):
                start = time.perf_counter()
                result = _engine.query(sources[index], eta=ETA,
                                       method="lb")
                _latencies[index] = time.perf_counter() - start
                return (sources[index], tuple(sorted(result.nodes)),
                        result.degraded)

            # Warm one query so the first timed one isn't charged for
            # lazily-built caches.
            engine.query(sources[0], eta=ETA, method="lb")

            wall_start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
                results = list(pool.map(run, range(NUM_QUERIES)))
            wall = time.perf_counter() - wall_start
        finally:
            engine.close()

        assert not any(degraded for _, _, degraded in results)
        answers[shards] = [(src, nodes) for src, nodes, _ in results]

        ordered = sorted(latencies)
        qps = NUM_QUERIES / wall
        p50 = _percentile(ordered, 0.50)
        p99 = _percentile(ordered, 0.99)
        records.append(
            {
                "shards": shards,
                "wall_seconds": round(wall, 4),
                "qps": round(qps, 3),
                "p50_ms": round(p50 * 1000, 2),
                "p99_ms": round(p99 * 1000, 2),
            }
        )
        rows.append(
            [shards, f"{wall:.2f}", f"{qps:.2f}",
             f"{p50 * 1000:.0f}", f"{p99 * 1000:.0f}"]
        )

    # lb answers are shard-count-invariant; a speedup bought by changed
    # answers would be worthless.
    for shards in SHARD_COUNTS[1:]:
        assert answers[shards] == answers[SHARD_COUNTS[0]]

    by_shards = {record["shards"]: record for record in records}
    speedup = by_shards[4]["qps"] / by_shards[1]["qps"]

    table = format_table(
        ["shards", "wall (s)", "qps", "p50 (ms)", "p99 (ms)"], rows
    )
    write_result("shards", table + f"\nqps speedup 4v1: {speedup:.2f}x\n")
    JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "shard_count_scaling",
                "quick_mode": QUICK,
                "mode": MODE,
                "transport": transport_used,
                "num_nodes": NUM_NODES,
                "num_arcs": graph.num_arcs,
                "existence_range": list(EXISTENCE_RANGE),
                "eta": ETA,
                "method": "lb",
                "num_queries": NUM_QUERIES,
                "concurrency": CONCURRENCY,
                "seed": SEED,
                "sweep": records,
                "qps_speedup_4v1": round(speedup, 3),
                "host": host_info(),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    if not QUICK:
        assert speedup >= 2.0, (
            f"4-shard throughput only {speedup:.2f}x the 1-shard "
            "baseline; scatter-gather parallelism is not paying for "
            "itself"
        )
