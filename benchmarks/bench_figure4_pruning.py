"""Figure 4: pruning power of the RQ-tree index.

Reproduces the four panels of Figure 4 — height ratio, candidate ratio,
candidate-generation precision, and candidate-generation time — on the
DBLP variants, Flickr, and BioMine.  Paper shapes:

* both ratios stay well below 1 and *decrease* as eta grows (better
  pruning at higher thresholds);
* candidate-generation precision improves with eta and with smaller
  arc probabilities (confirming the need for the verification phase);
* candidate-generation time falls as eta grows.
"""

from __future__ import annotations

import statistics

import pytest

from repro.eval.metrics import precision
from repro.eval.reporting import format_table
from repro.eval.workload import single_source_workload
from repro.reliability.montecarlo import mc_sampling_search

from conftest import NUM_QUERIES, NUM_SAMPLES, write_result

DATASETS = ("dblp2", "dblp5", "dblp10", "flickr", "biomine")
ETAS = (0.4, 0.6, 0.8)


def _run_all(engines):
    results = {}
    for name in DATASETS:
        graph, engine = engines(name)
        sources = single_source_workload(graph, NUM_QUERIES, seed=2)
        for eta in ETAS:
            height_ratios, candidate_ratios = [], []
            cg_precisions, cg_times = [], []
            for i, s in enumerate(sources):
                result = engine.query(s, eta, method="lb")
                proxy = mc_sampling_search(
                    graph, s, eta, num_samples=NUM_SAMPLES, seed=40 + i
                )
                height_ratios.append(result.height_ratio)
                candidate_ratios.append(result.candidate_ratio)
                cg_precisions.append(
                    precision(result.candidate_result.candidates, proxy.nodes)
                )
                cg_times.append(result.candidate_seconds)
            results[(name, eta)] = (
                statistics.fmean(height_ratios),
                statistics.fmean(candidate_ratios),
                statistics.fmean(cg_precisions),
                statistics.fmean(cg_times),
            )
    return results


def test_figure4_report(engines, benchmark):
    results = benchmark.pedantic(
        lambda: _run_all(engines), rounds=1, iterations=1
    )
    rows = [
        (name, eta, *results[(name, eta)])
        for name in DATASETS
        for eta in ETAS
    ]
    write_result(
        "figure4_pruning",
        format_table(
            ["dataset", "eta", "height ratio", "candidate ratio",
             "cand-gen precision", "cand-gen time (s)"],
            rows,
            title="Figure 4: RQ-tree pruning power "
            f"({NUM_QUERIES} single-source queries/cell)",
        ),
    )

    for name in DATASETS:
        hr = {eta: results[(name, eta)][0] for eta in ETAS}
        cr = {eta: results[(name, eta)][1] for eta in ETAS}
        # Shape 1: ratios never exceed 1 and pruning improves (or at
        # least does not degrade) with eta.
        for eta in ETAS:
            assert 0.0 <= hr[eta] <= 1.0
            assert 0.0 <= cr[eta] <= 1.0
        assert hr[0.8] <= hr[0.4] + 0.05, name
        assert cr[0.8] <= cr[0.4] + 0.05, name

    # Shape 2: smaller arc probabilities (higher mu) -> better pruning.
    mean_cr = {
        name: statistics.fmean(results[(name, eta)][1] for eta in ETAS)
        for name in ("dblp2", "dblp10")
    }
    assert mean_cr["dblp10"] <= mean_cr["dblp2"] + 0.05
