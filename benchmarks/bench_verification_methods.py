"""Verification-method ladder: lb vs lb+ vs mc.

The paper offers two verification strategies trading precision against
recall (Section 5).  The extension adds a third rung: edge-packing
(`lb+`), which keeps LB's perfect precision while certifying multipath-
reliable nodes through arc-disjoint path packing.  This bench measures
the full ladder across datasets:

expected shape — recall(lb) <= recall(lb+) <= recall(mc) with
precision(lb) = precision(lb+) = 1 (up to proxy noise) and cost
t(lb) <= t(lb+) << t(mc at the paper's K).
"""

from __future__ import annotations

import statistics

import pytest

from repro.eval.metrics import precision, recall
from repro.eval.reporting import format_table
from repro.eval.workload import single_source_workload
from repro.reliability.montecarlo import mc_sampling_search

from conftest import NUM_SAMPLES, write_result

DATASETS = ("dblp2", "flickr", "biomine")
ETA = 0.5
QUERIES = 8
METHODS = ("lb", "lb+", "mc")


def test_verification_ladder(engines, benchmark):
    def run():
        rows = []
        stats = {}
        for name in DATASETS:
            graph, engine = engines(name)
            sources = single_source_workload(graph, QUERIES, seed=9)
            per_method = {
                m: {"p": [], "r": [], "t": []} for m in METHODS
            }
            for i, s in enumerate(sources):
                proxy = mc_sampling_search(
                    graph, s, ETA, num_samples=NUM_SAMPLES, seed=90 + i
                ).nodes
                for m in METHODS:
                    result = engine.query(
                        s, ETA, method=m, num_samples=NUM_SAMPLES, seed=i
                    )
                    per_method[m]["p"].append(precision(result.nodes, proxy))
                    per_method[m]["r"].append(recall(result.nodes, proxy))
                    per_method[m]["t"].append(result.total_seconds)
            for m in METHODS:
                row = (
                    name,
                    m,
                    statistics.fmean(per_method[m]["p"]),
                    statistics.fmean(per_method[m]["r"]),
                    statistics.fmean(per_method[m]["t"]),
                )
                rows.append(row)
                stats[(name, m)] = row
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "verification_ladder",
        format_table(
            ["dataset", "method", "precision", "recall", "time (s)"],
            rows,
            title=f"Verification ladder: lb / lb+ / mc (eta={ETA}, "
            f"{QUERIES} queries/dataset)",
        ),
    )
    for name in DATASETS:
        # Shape 1: recall ladder (allow 2% noise slack between rungs).
        assert stats[(name, "lb")][3] <= stats[(name, "lb+")][3] + 0.02, name
        assert stats[(name, "lb+")][3] <= stats[(name, "mc")][3] + 0.05, name
        # Shape 2: both LB rungs keep essentially perfect precision.
        assert stats[(name, "lb")][2] >= 0.9, name
        assert stats[(name, "lb+")][2] >= 0.9, name
