"""Table 1: the nt/mt << n/m claim behind the complexity comparison.

Table 1's asymptotic advantage rests on the empirical claim that the
boundary subgraphs visited by candidate generation (nt = n-tilde nodes,
mt = m-tilde arcs) are much smaller than the whole graph.  This bench
measures nt and mt across datasets and eta values and asserts the
claim, plus the query-cost ordering the table implies
(RQ-tree-LB <= RQ-tree-MC <= MC-Sampling).
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.eval.reporting import format_table
from repro.eval.workload import single_source_workload
from repro.reliability.montecarlo import mc_sampling_search

from conftest import NUM_QUERIES, NUM_SAMPLES, write_result

DATASETS = ("dblp5", "flickr", "biomine")
ETAS = (0.4, 0.6, 0.8)


def _run(engines):
    rows = []
    stats = {}
    for name in DATASETS:
        graph, engine = engines(name)
        sources = single_source_workload(graph, NUM_QUERIES, seed=5)
        for eta in ETAS:
            nt, mt, t_lb, t_mc, t_base = [], [], [], [], []
            for i, s in enumerate(sources):
                result = engine.query(s, eta, method="lb")
                nt.append(result.candidate_result.max_subgraph_nodes)
                mt.append(result.candidate_result.max_subgraph_arcs)
                t_lb.append(result.total_seconds)
                result_mc = engine.query(
                    s, eta, method="mc", num_samples=NUM_SAMPLES, seed=i
                )
                t_mc.append(result_mc.total_seconds)
                start = time.perf_counter()
                mc_sampling_search(
                    graph, s, eta, num_samples=NUM_SAMPLES, seed=i
                )
                t_base.append(time.perf_counter() - start)
            row = (
                name,
                eta,
                graph.num_nodes,
                statistics.fmean(nt),
                graph.num_arcs,
                statistics.fmean(mt),
                statistics.fmean(t_lb),
                statistics.fmean(t_mc),
                statistics.fmean(t_base),
            )
            rows.append(row)
            stats[(name, eta)] = row
    return rows, stats


def test_table1_report(engines, benchmark):
    rows, stats = benchmark.pedantic(
        lambda: _run(engines), rounds=1, iterations=1
    )
    write_result(
        "table1_complexity",
        format_table(
            ["dataset", "eta", "n", "n-tilde", "m", "m-tilde",
             "t(rq-lb) s", "t(rq-mc) s", "t(MC) s"],
            rows,
            title="Table 1 (empirical): boundary-subgraph sizes and "
            "query-time ordering",
        ),
    )

    for (name, eta), row in stats.items():
        _, _, n, nt, m, mt, t_lb, t_mc, t_base = row
        # The n-tilde << n / m-tilde << m claim (averaged).
        assert nt <= n, (name, eta)
        assert mt <= m, (name, eta)
        # Query-cost ordering of Table 1.
        assert t_lb <= t_mc + 1e-6, (name, eta)

    # At the highest threshold pruning should be strong: n-tilde well
    # below n on every dataset.
    for name in DATASETS:
        _, _, n, nt, *_ = stats[(name, 0.8)]
        assert nt < 0.9 * n, name
