"""Table 6: precision, recall, and query time across datasets and eta.

The headline evaluation (paper, Section 7.3).  Reproduced shapes:

* RQ-tree-LB precision is exactly 1.0 everywhere (its defining
  guarantee); its recall rises with eta and with falling arc
  probabilities (DBLP mu=2 -> 5 -> 10).
* RQ-tree-MC precision stays >= 0.95 and recall >= ~0.95.
* Both RQ-tree methods beat MC-Sampling's runtime, RQ-tree-LB by the
  larger margin.
"""

from __future__ import annotations

import pytest

from repro.eval.harness import run_quality_experiment
from repro.eval.reporting import format_table
from repro.eval.workload import single_source_workload

from conftest import NUM_QUERIES, NUM_SAMPLES, write_result

DATASETS = ("dblp2", "dblp5", "dblp10", "flickr", "biomine")
ETAS = (0.4, 0.6, 0.8)


def _run_all(engines):
    table = {}
    for name in DATASETS:
        graph, engine = engines(name)
        workload = [
            [s] for s in single_source_workload(graph, NUM_QUERIES, seed=1)
        ]
        for eta in ETAS:
            table[(name, eta)] = run_quality_experiment(
                engine, workload, eta,
                num_samples=NUM_SAMPLES, seed=17,
            )
    return table


def test_table6_report(engines, benchmark):
    table = benchmark.pedantic(
        lambda: _run_all(engines), rounds=1, iterations=1
    )
    rows = []
    for name in DATASETS:
        for eta in ETAS:
            cells = table[(name, eta)]
            rows.append(
                (
                    name,
                    eta,
                    cells["mc"].precision,
                    cells["lb"].precision,
                    cells["mc"].recall,
                    cells["lb"].recall,
                    cells["mc"].seconds,
                    cells["lb"].seconds,
                    cells["mc-sampling"].seconds,
                )
            )
    write_result(
        "table6_quality",
        format_table(
            ["dataset", "eta", "P(rq-mc)", "P(rq-lb)", "R(rq-mc)",
             "R(rq-lb)", "t(rq-mc) s", "t(rq-lb) s", "t(MC) s"],
            rows,
            title="Table 6: precision, recall, query time "
            f"(single-source, K={NUM_SAMPLES}, {NUM_QUERIES} queries/cell)",
        ),
    )

    # Shape 1: RQ-tree-LB precision is perfect.  The guarantee is proved
    # against the exact oracle in tests/test_verification.py; here the
    # yardstick is itself a Monte-Carlo estimate, so nodes whose true
    # reliability sits exactly at eta can be scored either way by proxy
    # noise.  Assert a per-cell floor plus an essentially-perfect mean.
    lb_precisions = [
        table[(name, eta)]["lb"].precision
        for name in DATASETS
        for eta in ETAS
    ]
    assert min(lb_precisions) >= 0.85
    assert sum(lb_precisions) / len(lb_precisions) >= 0.95

    for name in DATASETS:
        for eta in ETAS:
            cells = table[(name, eta)]
            # Shape 2: RQ-tree-MC accuracy is high on both axes.  (The
            # paper reports >= 0.95 on answer sets of thousands of
            # nodes; at our scale answer sets hold a handful of nodes,
            # so one borderline node moves precision by ~0.1 -- the
            # threshold allows that granularity.)
            assert cells["mc"].precision >= 0.85, (name, eta)
            assert cells["mc"].recall >= 0.85, (name, eta)
            # Shape 3: RQ-tree-LB is the fastest method.
            assert cells["lb"].seconds <= cells["mc"].seconds, (name, eta)

    # Shape 4: LB recall improves as arc probabilities shrink
    # (DBLP mu = 2 -> 10), averaged over eta as in the paper's analysis.
    def mean_lb_recall(name):
        return sum(table[(name, eta)]["lb"].recall for eta in ETAS) / len(ETAS)

    assert mean_lb_recall("dblp10") >= mean_lb_recall("dblp2") - 0.05
