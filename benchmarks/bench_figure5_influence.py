"""Figure 5: influence maximization — RQ-tree vs Monte-Carlo Greedy.

The paper plugs RQ-tree-LB into the Greedy hill-climbing algorithm via
a histogram spread estimator and compares against Greedy with Monte
Carlo spread estimation (K = 1000) on Last.FM and NetHEPT.  Reproduced
shapes:

* the two methods achieve roughly the same expected spread (measured by
  a common MC evaluation of the chosen seed sets);
* expected spread grows with the number of seeds for both methods;
* the RQ-tree variant's oracle is cheap enough to be competitive (the
  paper reports >= 10x speed-up at scale; at pure-Python scale the gap
  narrows, so the asserted shape is spread parity plus bounded cost).
"""

from __future__ import annotations

import time

import pytest

from repro import RQTreeEngine, load_dataset
from repro.eval.reporting import format_table
from repro.influence.greedy import greedy_mc, greedy_rqtree
from repro.influence.spread import expected_spread_mc

from conftest import write_result

SEED_COUNTS = (1, 2, 5, 10)
POOL = 40
N = 1200


def _run(name: str):
    graph = load_dataset(name, n=N, seed=4)
    engine = RQTreeEngine.build(graph, seed=4)
    pool = sorted(graph.nodes(), key=graph.out_degree, reverse=True)[:POOL]
    k_max = max(SEED_COUNTS)

    start = time.perf_counter()
    trace_mc = greedy_mc(
        graph, k_max, num_samples=1000, seed=0, candidates=pool
    )
    time_mc = time.perf_counter() - start

    start = time.perf_counter()
    trace_rq = greedy_rqtree(
        engine, k_max, thresholds=(0.2, 0.4, 0.6, 0.8), candidates=pool
    )
    time_rq = time.perf_counter() - start

    rows = []
    for k in SEED_COUNTS:
        spread_mc = expected_spread_mc(
            graph, trace_mc.seeds[:k], num_samples=1000, seed=99
        )
        spread_rq = expected_spread_mc(
            graph, trace_rq.seeds[:k], num_samples=1000, seed=99
        )
        rows.append(
            (
                k,
                spread_mc,
                spread_rq,
                trace_mc.seconds[k - 1] if k <= len(trace_mc.seconds) else time_mc,
                trace_rq.seconds[k - 1] if k <= len(trace_rq.seconds) else time_rq,
            )
        )
    return rows


def test_figure5_report(benchmark):
    results = benchmark.pedantic(
        lambda: {name: _run(name) for name in ("lastfm", "nethept")},
        rounds=1,
        iterations=1,
    )
    sections = []
    for name, rows in results.items():
        sections.append(
            format_table(
                ["# seeds", "spread (MC greedy)", "spread (RQ-tree greedy)",
                 "runtime MC (s)", "runtime RQ (s)"],
                rows,
                title=f"Figure 5 [{name}-like, n={N}]: expected spread and "
                "cumulative runtime vs seed count",
            )
        )
    write_result("figure5_influence", "\n\n".join(sections))

    for name, rows in results.items():
        spreads_mc = [r[1] for r in rows]
        spreads_rq = [r[2] for r in rows]
        # Shape 1: spread grows with seed count for both methods.
        assert spreads_mc == sorted(spreads_mc), name
        assert spreads_rq == sorted(spreads_rq), name
        # Shape 2: the RQ-tree Greedy reaches comparable spread
        # (paper: "roughly the same expected spread").
        assert spreads_rq[-1] >= 0.6 * spreads_mc[-1], name
