"""Index design shoot-out: RQ-tree vs the sampled-worlds index.

The paper's central bet is that spending the offline budget on
*structure* (a hierarchy of cuts evaluated online) beats spending it on
*stored probability* (pre-sampled worlds).  This bench makes the bet
concrete on one dataset: index size, build time, query time, and
accuracy for the RQ-tree (LB and MC variants) against a
:class:`~repro.core.worldindex.WorldIndex` at the same K as the MC
verifier.

Expected shape: the WorldIndex matches MC-level accuracy (it *is* MC
with frozen samples) but its storage exceeds the RQ-tree's by orders of
magnitude and its query time scales with K times the reached set,
whereas RQ-tree-LB stays local and faster.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import RQTreeEngine, load_dataset
from repro.core.worldindex import WorldIndex
from repro.eval.metrics import precision, recall
from repro.eval.reporting import format_table
from repro.eval.workload import single_source_workload
from repro.reliability.montecarlo import mc_sampling_search

from conftest import write_result

N = 2000
K = 500
ETA = 0.6
QUERIES = 8


def test_worldindex_tradeoff(benchmark):
    graph = load_dataset("dblp5", n=N, seed=0)

    def run():
        start = time.perf_counter()
        engine = RQTreeEngine.build(graph, seed=0)
        rqtree_build = time.perf_counter() - start

        start = time.perf_counter()
        world_index = WorldIndex(graph, num_worlds=K, seed=0)
        world_build = time.perf_counter() - start

        sources = single_source_workload(graph, QUERIES, seed=1)
        rows = []
        metrics = {}
        for name in ("rq-tree-lb", "rq-tree-mc", "world-index"):
            times, precisions, recalls = [], [], []
            for i, s in enumerate(sources):
                proxy = mc_sampling_search(
                    graph, s, ETA, num_samples=K, seed=500 + i
                ).nodes
                start = time.perf_counter()
                if name == "rq-tree-lb":
                    answer = engine.query(s, ETA, method="lb").nodes
                elif name == "rq-tree-mc":
                    answer = engine.query(
                        s, ETA, method="mc", num_samples=K, seed=i
                    ).nodes
                else:
                    answer = world_index.query(s, ETA)
                times.append(time.perf_counter() - start)
                precisions.append(precision(answer, proxy))
                recalls.append(recall(answer, proxy))
            build_seconds = world_build if name == "world-index" else rqtree_build
            size_mb = (
                world_index.storage_size_estimate() / 2**20
                if name == "world-index"
                else engine.tree.storage_size_estimate() / 2**20
            )
            row = (
                name,
                build_seconds,
                size_mb,
                statistics.fmean(times),
                statistics.fmean(precisions),
                statistics.fmean(recalls),
            )
            rows.append(row)
            metrics[name] = row
        return rows, metrics

    rows, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "worldindex_tradeoff",
        format_table(
            ["index", "build (s)", "size (MB)", "query (s)",
             "precision", "recall"],
            rows,
            title=f"Index shoot-out: RQ-tree vs sampled-worlds index "
            f"(dblp5-like n={N}, K={K}, eta={ETA})",
        ),
    )
    # Shape 1: the worlds index pays a storage premium over the RQ-tree.
    assert metrics["world-index"][2] > metrics["rq-tree-lb"][2]
    # Shape 2: RQ-tree-LB is the fastest at query time.
    assert metrics["rq-tree-lb"][3] <= metrics["world-index"][3]
    # Shape 3: the worlds index matches MC-level recall.
    assert metrics["world-index"][5] >= 0.85
