"""Table 8: scalability on the WebGraph-like dataset.

The paper sweeps uk-2007 subgraphs from 1M to 10M nodes, reporting index
size/height/cluster count/build time and single-source query time
(eta = 0.6).  Reproduced shapes at our scale (2k -> 12k nodes):

* index build time grows roughly like (n + m) log n (superlinear but
  polynomial);
* index size and cluster count grow linearly-ish in n;
* query time grows far slower than the graph (the paper reports
  0.11s -> 0.27s over a 10x size increase).
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import RQTreeEngine, load_dataset
from repro.eval.reporting import format_table
from repro.eval.workload import single_source_workload

from conftest import write_result

SIZES = (2000, 4000, 8000, 12000)
ETA = 0.6
QUERIES = 6


def _run():
    rows = []
    for n in SIZES:
        graph = load_dataset("webgraph", n=n, seed=0)
        start = time.perf_counter()
        engine = RQTreeEngine.build(graph, seed=0)
        build_seconds = time.perf_counter() - start
        report = engine.build_report
        times = []
        for s in single_source_workload(graph, QUERIES, seed=3):
            result = engine.query(s, ETA, method="lb")
            times.append(result.total_seconds)
        rows.append(
            (
                n,
                graph.num_arcs,
                report.storage_megabytes,
                report.height,
                report.num_clusters,
                build_seconds,
                statistics.fmean(times),
            )
        )
    return rows


def test_table8_report(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    write_result(
        "table8_scalability",
        format_table(
            ["nodes", "arcs", "size (MB)", "height", "# clusters",
             "index time (s)", "query time (s)"],
            rows,
            title=f"Table 8: scalability on webgraph-like (eta={ETA}, "
            "single-source RQ-tree-LB)",
        ),
    )

    first, last = rows[0], rows[-1]
    scale = last[0] / first[0]
    # Shape 1: cluster count exactly tracks n (2n - 1 clusters).
    for row in rows:
        assert row[4] == 2 * row[0] - 1
    # Shape 2: height grows by O(log n): +log2(scale) within slack.
    import math

    assert last[3] <= first[3] + 3 * math.ceil(math.log2(scale))
    # Shape 3: query time grows sublinearly vs graph size (paper: 2.5x
    # over a 10x size increase; allow generous slack for variance).
    assert last[6] <= first[6] * scale, (first, last)
    # Shape 4: index build stays polynomial and practical.
    assert last[5] < 10 * 60
