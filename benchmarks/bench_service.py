"""Serving-layer throughput: worker scaling via cross-query batching.

The serving layer's performance claim is *not* parallel speed-up (the
query pipeline is pure-Python + numpy and GIL-bound on a small box) —
it is that concurrent queries with the same sampling signature share
one Monte-Carlo coin draw, so a loaded service does strictly less
total work than the same queries run back-to-back.  This benchmark
pushes one fixed batch of seeded MC queries (distinct sources, same
seed and world count — the monitoring-dashboard shape) through
services with 1, 4, and 8 workers and reports throughput and latency
per configuration.  With 1 worker, queries run alone and every query
draws its own coins; with 8, up to 8 in-flight queries share a block.

Results go to ``BENCH_service.json`` at the repo root (and
``benchmarks/results/service.txt``).  ``BENCH_QUICK=1`` shrinks the
graph and workload to a CI smoke test; the scaling assertion only runs
at full size, where the coin draw actually dominates.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import RQTreeEngine
from repro.eval.reporting import format_table
from repro.graph.generators import uncertain_gnp
from repro.service import MetricsRegistry, ReliabilityService
from repro.service.pool import AdmissionPolicy

from conftest import host_info, write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

NUM_NODES = 2000 if not QUICK else 300
MEAN_OUT_DEGREE = 8.0
#: Low-probability regime: candidate filtering is loose here (the
#: filter admits most of the graph), so MC verification — and with it
#: the shareable coin draw — dominates each query.
EXISTENCE_RANGE = (0.02, 0.15)
ETA = 0.1
NUM_SAMPLES = 20000 if not QUICK else 2000
NUM_QUERIES = 32 if not QUICK else 8
WORKER_COUNTS = (1, 4, 8)
SEED = 1  # shared by every query: the shareable-signature workload

JSON_PATH = Path(__file__).parent.parent / "BENCH_service.json"


def _fingerprint(result):
    return (
        tuple(sorted(result.nodes)),
        tuple(sorted(result.statuses.items())),
        result.worlds_used,
    )


def test_service_worker_scaling():
    graph = uncertain_gnp(
        NUM_NODES, MEAN_OUT_DEGREE / NUM_NODES,
        existence_range=EXISTENCE_RANGE, seed=42,
    )
    engine = RQTreeEngine.build(graph, seed=0)

    specs = [
        dict(
            sources=[(i * 31) % NUM_NODES], eta=ETA, method="mc",
            num_samples=NUM_SAMPLES, seed=SEED, backend="numpy",
        )
        for i in range(NUM_QUERIES)
    ]

    # Warm the CSR snapshot and cluster-bounds caches so the first
    # timed configuration isn't charged for one-off setup.
    engine.query(**specs[0])

    records = []
    rows = []
    fingerprints = {}
    for workers in WORKER_COUNTS:
        registry = MetricsRegistry()
        service = ReliabilityService(
            engine,
            workers=workers,
            admission=AdmissionPolicy(max_in_flight=NUM_QUERIES + 1),
            registry=registry,
        )
        start = time.perf_counter()
        with service:
            futures = [service.submit(**spec) for spec in specs]
            results = [future.result(timeout=600) for future in futures]
        wall = time.perf_counter() - start

        fingerprints[workers] = [_fingerprint(r) for r in results]
        assert not any(r.degraded for r in results)

        latency = registry.histogram("service.latency_seconds")
        drawn = registry.counter("service.batcher.chunks_drawn").value
        reused = registry.counter("service.batcher.chunks_reused").value
        qps = NUM_QUERIES / wall
        records.append(
            {
                "workers": workers,
                "wall_seconds": round(wall, 4),
                "qps": round(qps, 3),
                "p50_ms": round(latency.quantile(0.5) * 1000, 2),
                "p95_ms": round(latency.quantile(0.95) * 1000, 2),
                "coin_chunks_drawn": drawn,
                "coin_chunks_reused": reused,
            }
        )
        rows.append(
            [
                workers,
                f"{wall:.2f}",
                f"{qps:.2f}",
                f"{latency.quantile(0.5) * 1000:.0f}",
                f"{latency.quantile(0.95) * 1000:.0f}",
                drawn,
                reused,
            ]
        )

    # The answers must not depend on the worker count.
    for workers in WORKER_COUNTS[1:]:
        assert fingerprints[workers] == fingerprints[WORKER_COUNTS[0]]

    by_workers = {record["workers"]: record for record in records}
    speedup = by_workers[8]["qps"] / by_workers[1]["qps"]
    speedup_8v4 = by_workers[8]["qps"] / by_workers[4]["qps"]

    table = format_table(
        ["workers", "wall (s)", "qps", "p50 (ms)", "p95 (ms)",
         "chunks drawn", "chunks reused"],
        rows,
    )
    write_result(
        "service",
        table + f"\nspeedup 8v1: {speedup:.2f}x  "
        f"8v4: {speedup_8v4:.2f}x\n",
    )
    JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "service_worker_scaling",
                "quick_mode": QUICK,
                "num_nodes": NUM_NODES,
                "num_arcs": graph.num_arcs,
                "existence_range": list(EXISTENCE_RANGE),
                "eta": ETA,
                "num_samples": NUM_SAMPLES,
                "num_queries": NUM_QUERIES,
                "seed": SEED,
                "sweep": records,
                "speedup_8v1": round(speedup, 3),
                "speedup_8v4": round(speedup_8v4, 3),
                "host": host_info(),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    # With one worker every query pays its own coin draw; with eight,
    # concurrent queries share blocks, so most chunks are reuses.
    assert by_workers[1]["coin_chunks_reused"] == 0
    assert by_workers[8]["coin_chunks_reused"] > 0
    if not QUICK:
        assert speedup >= 2.5, (
            f"8-worker throughput only {speedup:.2f}x the 1-worker "
            "baseline; cross-query batching is not paying for itself"
        )
        # More in-flight queries means more coin-draw sharing, so
        # throughput must keep improving from 4 to 8 workers even on a
        # single core.
        assert by_workers[8]["qps"] > by_workers[4]["qps"], (
            f"qps at 8 workers ({by_workers[8]['qps']}) did not exceed "
            f"4 workers ({by_workers[4]['qps']})"
        )
