"""Self-healing shard fabric: respawn latency and hedged tail latency.

Two claims from the supervisor design are measured here:

1. **Respawn is a re-attach, not a rebuild.**  The gateway owns the
   shm CSR segments and caches each shard's serialized RQ-tree, so
   respawning a SIGKILLed worker costs a warm-standby adoption plus a
   ~1.2KB init payload — not a graph rebuild.  Measured as
   SIGKILL-to-healthy wall time (monitor detection + standby adoption
   + half-open probe), target < 150 ms at n=5000.

2. **Hedging beats timeout-retry for stragglers.**  With one shard
   frozen (SIGSTOP — alive but unresponsive, the worst case for
   timeout-based recovery), a hedged dispatch promotes a warm standby
   after a short delay and takes its answer, while the unhedged path
   must burn the full per-attempt timeout before its one retry.
   Measured as per-query latency against the frozen shard, hedged vs
   unhedged.

Results go to ``BENCH_supervisor.json`` at the repo root (and
``benchmarks/results/supervisor.txt``).  ``BENCH_QUICK=1`` shrinks the
graph and repetition counts; the latency assertions only run at full
size (CI boxes are noisy, and the JSON record is the artifact that
matters for trajectory checks).
"""

from __future__ import annotations

import json
import os
import signal
import statistics
import time
from pathlib import Path

from repro.graph.generators import uncertain_gnp
from repro.eval.reporting import format_table
from repro.shard import ShardedRQTreeEngine, SupervisorPolicy

from conftest import host_info, write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

NUM_NODES = 5000 if not QUICK else 400
MEAN_OUT_DEGREE = 4.0
EXISTENCE_RANGE = (0.1, 0.6)
ETA = 0.3
SHARDS = 4
SEED = 7
RESPAWN_KILLS = 5 if not QUICK else 2
STRAGGLER_ROUNDS = 5 if not QUICK else 2
RETRY_TIMEOUT_SECONDS = 0.5
HEDGE_AFTER_SECONDS = 0.05

#: Tight detection intervals: the benchmark measures the recovery
#: machinery, not the monitor's idle cadence.
POLICY = SupervisorPolicy(
    ping_interval_seconds=0.02,
    backoff_base_seconds=0.02,
    standby_workers=1,
)

JSON_PATH = Path(__file__).parent.parent / "BENCH_supervisor.json"


def _build(graph, **kwargs):
    return ShardedRQTreeEngine.build(
        graph, shards=SHARDS, seed=SEED, mode="process",
        supervise=True, supervisor_policy=POLICY, **kwargs,
    )


def _wait_index_cached(engine, timeout=300.0):
    """Block until every shard's RQ-tree is cached gateway-side, so a
    respawn is guaranteed to take the re-attach fast path."""
    supervisor = engine.supervisor
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all("tree_json" in slot.payload for slot in supervisor._slots):
            return
        time.sleep(0.02)
    raise AssertionError("shard index prefetch did not finish")


def _wait_recovered(engine, shard_id, respawns_before, timeout=60.0):
    """Wait until the shard is healthy again *on a new worker* (the
    respawn counter moved — plain "healthy" would race the monitor's
    detection of the kill)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = engine.shard_states()[shard_id]
        if (state["state"] == "healthy"
                and state["respawns"] > respawns_before):
            return time.monotonic()
        time.sleep(0.001)
    raise AssertionError(f"shard {shard_id} did not return to healthy")


def _wait_standby(engine, timeout=120.0):
    """Wait for a *warm* standby (booted, idle) — each adoption
    consumes one and the monitor replenishes asynchronously."""
    supervisor = engine.supervisor
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with supervisor._standby_lock:
            if any(s.is_alive() and s.is_warm()
                   for s in supervisor._standbys):
                return
        time.sleep(0.02)
    raise AssertionError("standby pool did not replenish")


def test_supervisor_recovery_latency():
    graph = uncertain_gnp(
        NUM_NODES, MEAN_OUT_DEGREE / NUM_NODES,
        existence_range=EXISTENCE_RANGE, seed=42,
    )
    stopped_pids = []

    # -- experiment 1: SIGKILL-to-healthy respawn latency --------------
    respawn_ms = []
    with _build(graph) as engine:
        source = 0
        victim = engine.plan.owner(source)
        engine.query(source, eta=ETA, method="lb")  # warm caches
        _wait_index_cached(engine)
        for _ in range(RESPAWN_KILLS):
            _wait_standby(engine)
            respawns = engine.shard_states()[victim]["respawns"]
            pid = engine.supervisor.client(victim)._process.pid
            killed_at = time.monotonic()
            os.kill(pid, signal.SIGKILL)
            healthy_at = _wait_recovered(engine, victim, respawns)
            respawn_ms.append((healthy_at - killed_at) * 1000.0)
            # The fabric must be answering (not just pinging) again.
            result = engine.query(source, eta=ETA, method="lb")
            assert not result.degraded, result.degraded_reason

    respawn_median = statistics.median(respawn_ms)

    # -- experiment 2: hedged vs unhedged p99 under one slow shard -----
    latencies = {}
    configs = (
        ("unhedged", dict(retry_timeout_seconds=RETRY_TIMEOUT_SECONDS)),
        ("hedged", dict(retry_timeout_seconds=RETRY_TIMEOUT_SECONDS,
                        hedge_after_seconds=HEDGE_AFTER_SECONDS)),
    )
    for label, kwargs in configs:
        samples = []
        with _build(graph, **kwargs) as engine:
            source = 0
            victim = engine.plan.owner(source)
            engine.query(source, eta=ETA, method="lb")
            _wait_index_cached(engine)
            for _ in range(STRAGGLER_ROUNDS):
                _wait_standby(engine)
                pid = engine.supervisor.client(victim)._process.pid
                os.kill(pid, signal.SIGSTOP)  # alive but unresponsive
                stopped_pids.append(pid)
                start = time.perf_counter()
                result = engine.query(source, eta=ETA, method="lb")
                samples.append(time.perf_counter() - start)
                assert not result.degraded, result.degraded_reason
                # Recovery differs by path: a hedge swaps the primary
                # client in place (shard stays healthy), a timeout-retry
                # respawns it.  Either way the frozen pid is gone from
                # the primary slot once the shard has truly moved on.
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    state = engine.shard_states()[victim]["state"]
                    current = engine.supervisor.client(victim)
                    if (state == "healthy"
                            and current._process.pid != pid):
                        break
                    time.sleep(0.005)
                else:
                    raise AssertionError(
                        f"shard {victim} still on frozen worker {pid}"
                    )
        latencies[label] = sorted(samples)

    # A SIGSTOPped worker ignores the SIGTERM close() sends; reap the
    # frozen processes so the benchmark leaves nothing behind.
    for pid in stopped_pids:
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass

    unhedged_p99 = latencies["unhedged"][-1] * 1000.0
    hedged_p99 = latencies["hedged"][-1] * 1000.0

    rows = [
        ["respawn-to-healthy (median ms)", f"{respawn_median:.1f}"],
        ["respawn-to-healthy (max ms)", f"{max(respawn_ms):.1f}"],
        ["straggler p99, unhedged (ms)", f"{unhedged_p99:.1f}"],
        ["straggler p99, hedged (ms)", f"{hedged_p99:.1f}"],
    ]
    write_result(
        "supervisor", format_table(["metric", "value"], rows) + "\n"
    )
    JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "supervisor_recovery",
                "quick_mode": QUICK,
                "num_nodes": NUM_NODES,
                "num_arcs": graph.num_arcs,
                "shards": SHARDS,
                "eta": ETA,
                "seed": SEED,
                "respawn_kills": RESPAWN_KILLS,
                "respawn_to_healthy_ms": [
                    round(ms, 2) for ms in respawn_ms
                ],
                "respawn_to_healthy_median_ms": round(respawn_median, 2),
                "respawn_target_ms": 150.0,
                "straggler_rounds": STRAGGLER_ROUNDS,
                "retry_timeout_seconds": RETRY_TIMEOUT_SECONDS,
                "hedge_after_seconds": HEDGE_AFTER_SECONDS,
                "unhedged_latency_ms": [
                    round(s * 1000, 2) for s in latencies["unhedged"]
                ],
                "hedged_latency_ms": [
                    round(s * 1000, 2) for s in latencies["hedged"]
                ],
                "unhedged_p99_ms": round(unhedged_p99, 2),
                "hedged_p99_ms": round(hedged_p99, 2),
                "host": host_info(),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    if not QUICK:
        assert respawn_median < 150.0, (
            f"median respawn-to-healthy {respawn_median:.1f}ms exceeds "
            "the 150ms re-attach target: the respawn path is probably "
            "rebuilding state instead of re-attaching"
        )
        assert hedged_p99 < unhedged_p99, (
            f"hedging ({hedged_p99:.1f}ms) did not beat timeout-retry "
            f"({unhedged_p99:.1f}ms) under a frozen shard"
        )
