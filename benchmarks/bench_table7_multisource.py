"""Table 7: multiple-source queries, varying |S| and query diameter d.

The paper runs RQ-tree-LB on DBLP (mu=5, eta=0.6) with source sets of
size 2-20 drawn from subgraphs of diameter 2-6.  Reproduced shapes:

* recall stays usable (paper: 0.75-0.86) and drifts down as |S| grows;
* candidate-generation precision falls as |S| and d grow (sources
  spread across clusters force larger candidate unions);
* height ratio rises with |S| and d (cursors must climb higher);
* RQ-tree-LB remains orders of magnitude faster than MC-Sampling.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.eval.metrics import precision, recall
from repro.eval.reporting import format_table
from repro.eval.workload import multi_source_workload
from repro.reliability.montecarlo import mc_sampling_search

from conftest import NUM_SAMPLES, write_result

SET_SIZES = (2, 5, 10, 20)
DIAMETERS = (2, 4, 6)
ETA = 0.6
QUERIES = 4


def _run(engines):
    graph, engine = engines("dblp5")
    results = {}
    for set_size in SET_SIZES:
        for d in DIAMETERS:
            workload = multi_source_workload(
                graph, QUERIES, set_size=set_size, diameter=d, seed=7
            )
            recalls, cg_precisions, height_ratios = [], [], []
            lb_times, mc_times = [], []
            for i, sources in enumerate(workload):
                start = time.perf_counter()
                proxy = mc_sampling_search(
                    graph, sources, ETA, num_samples=NUM_SAMPLES, seed=70 + i
                )
                mc_times.append(time.perf_counter() - start)

                result = engine.query(sources, ETA, method="lb")
                lb_times.append(result.total_seconds)
                recalls.append(recall(result.nodes, proxy.nodes))
                cg_precisions.append(
                    precision(result.candidate_result.candidates, proxy.nodes)
                )
                height_ratios.append(result.height_ratio)
            results[(set_size, d)] = (
                statistics.fmean(recalls),
                statistics.fmean(cg_precisions),
                statistics.fmean(height_ratios),
                statistics.fmean(lb_times),
                statistics.fmean(mc_times),
            )
    return results


def test_table7_report(engines, benchmark):
    results = benchmark.pedantic(lambda: _run(engines), rounds=1, iterations=1)
    rows = [
        (s, d, *results[(s, d)])
        for s in SET_SIZES
        for d in DIAMETERS
    ]
    write_result(
        "table7_multisource",
        format_table(
            ["|S|", "d", "recall", "cand-gen precision", "height ratio",
             "t(rq-lb) s", "t(MC) s"],
            rows,
            title=f"Table 7: multi-source RQ-tree-LB on dblp5-like "
            f"(eta={ETA}, {QUERIES} queries/cell)",
        ),
    )

    # Shape 1: RQ-tree-LB faster than MC everywhere.
    for key, (rec, cgp, hr, t_lb, t_mc) in results.items():
        assert t_lb < t_mc, key
        assert 0.0 <= hr <= 1.0

    # Shape 2: pruning degrades as the source set grows (height ratio
    # rises between the extremes, averaged over d).
    def mean_hr(set_size):
        return statistics.fmean(results[(set_size, d)][2] for d in DIAMETERS)

    assert mean_hr(20) >= mean_hr(2) - 0.05

    # Shape 3: candidate-generation precision degrades with |S|.
    def mean_cgp(set_size):
        return statistics.fmean(results[(set_size, d)][1] for d in DIAMETERS)

    assert mean_cgp(20) <= mean_cgp(2) + 0.1
