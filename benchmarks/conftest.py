"""Shared fixtures and helpers for the paper-reproduction benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md §5 for the experiment index).  Results are printed and
also written to ``benchmarks/results/<experiment>.txt`` so the output
survives pytest's capture; EXPERIMENTS.md records the paper-vs-measured
comparison.

Scale note: the paper ran C++ on graphs up to 10M nodes; this pure-Python
reproduction uses the synthetic stand-ins of :mod:`repro.datasets` at
1.5k-12k nodes.  Absolute times differ by construction — the *shape*
(who wins, trends in eta / |S| / d / n) is the reproduction target.
"""

from __future__ import annotations

import os
import platform
from pathlib import Path

import numpy as np
import pytest

from repro import RQTreeEngine, load_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark-wide dataset scale (nodes per dataset unless overridden).
QUALITY_N = 2000
#: Monte-Carlo samples (the paper uses 1000; see Section 7.1).
NUM_SAMPLES = 800
#: Queries averaged per configuration (paper: 100).
NUM_QUERIES = 10


def host_info() -> dict:
    """Machine fingerprint embedded in every BENCH_*.json.

    Throughput numbers are meaningless without the box they came from:
    the committed baselines were measured on a 1-core container, and
    the CI trajectory check needs to know when it is comparing across
    different hosts.
    """
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "system": platform.system(),
    }


def write_result(name: str, text: str) -> None:
    """Persist one experiment's rendered output under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    # Also echo to stdout for -s runs.
    print()
    print(text)


@pytest.fixture(scope="session")
def engines():
    """Lazily built (graph, engine) pairs per dataset name."""
    cache = {}

    def get(name: str, n: int = QUALITY_N, seed: int = 0):
        key = (name, n, seed)
        if key not in cache:
            graph = load_dataset(name, n=n, seed=seed)
            cache[key] = (graph, RQTreeEngine.build(graph, seed=seed))
        return cache[key]

    return get
