"""Speedup of the batched numpy sampling backend over the Python one.

The tentpole claim of the ``repro.accel`` subsystem: the bit-packed
batch-of-worlds CSR kernel beats the reference lazy-BFS sampler by
``>= 5x`` on the paper-scale ER workload (n = 2000, mean out-degree 8,
K = 1000 worlds) — and the gap widens with density and size, because
the Python sampler pays a dict lookup plus a ``random()`` call per arc
while the kernel advances eight worlds per byte-op.

Both backends run the *same* estimator entry point
(:class:`repro.graph.sampling.ReachabilityFrequencyEstimator`), so the
measurement includes snapshotting and tallying overheads, not just the
inner loop.  Results are written machine-readably to
``BENCH_sampling.json`` at the repo root (plus the usual
``benchmarks/results/`` text rendering).

``BENCH_QUICK=1`` shrinks the grid to a smoke test for CI: it checks
the harness end-to-end and that numpy is not *slower*, without timing
long enough to assert the full speedup target.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.eval.reporting import format_table
from repro.graph.generators import uncertain_gnp
from repro.graph.sampling import ReachabilityFrequencyEstimator

from conftest import write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: (num_nodes, mean out-degree, worlds) grid; the first row is the
#: acceptance configuration the >= 5x claim is asserted on.
GRID = (
    [(2000, 8.0, 1000), (2000, 4.0, 1000), (5000, 4.0, 1000),
     (1000, 4.0, 4000)]
    if not QUICK
    else [(600, 4.0, 100)]
)
#: Acceptance threshold on the primary configuration.
TARGET_SPEEDUP = 5.0 if not QUICK else 1.0

JSON_PATH = Path(__file__).parent.parent / "BENCH_sampling.json"


def _time_backend(graph, backend: str, num_worlds: int) -> float:
    # Warm up: first-touch page faults, allocator pools, and the CSR
    # snapshot build all land outside the timed region.
    ReachabilityFrequencyEstimator(
        graph, [0], seed=0, backend=backend
    ).run(min(64, num_worlds))
    start = time.perf_counter()
    ReachabilityFrequencyEstimator(
        graph, [0], seed=0, backend=backend
    ).run(num_worlds)
    return time.perf_counter() - start


def test_backend_speedup():
    rows = []
    records = []
    for n, degree, num_worlds in GRID:
        graph = uncertain_gnp(n, degree / n, seed=42)
        python_s = _time_backend(graph, "python", num_worlds)
        numpy_s = _time_backend(graph, "numpy", num_worlds)
        speedup = python_s / numpy_s
        records.append(
            {
                "num_nodes": n,
                "num_arcs": graph.num_arcs,
                "mean_out_degree": degree,
                "num_worlds": num_worlds,
                "python_seconds": round(python_s, 4),
                "numpy_seconds": round(numpy_s, 4),
                "speedup": round(speedup, 2),
            }
        )
        rows.append(
            [n, graph.num_arcs, num_worlds,
             f"{python_s:.3f}", f"{numpy_s:.3f}", f"{speedup:.1f}x"]
        )

    table = format_table(
        ["n", "m", "K", "python (s)", "numpy (s)", "speedup"], rows
    )
    write_result("backend_speedup", table)
    JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "sampling_backend_speedup",
                "quick_mode": QUICK,
                "target_speedup": TARGET_SPEEDUP,
                "primary": records[0],
                "grid": records,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    primary = records[0]
    assert primary["speedup"] >= TARGET_SPEEDUP, (
        f"numpy backend only {primary['speedup']}x faster on the primary "
        f"configuration {primary}; target is {TARGET_SPEEDUP}x"
    )
