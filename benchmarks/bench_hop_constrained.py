"""Distance-constrained reliability search (the [20] query class).

The paper positions RQ-tree against Jin et al.'s distance-constrained
reachability [20]; this library answers that query class natively via
``max_hops``.  This bench measures the hop-budget dimension:

* answer sizes grow monotonically with the hop budget, converging to
  the unconstrained answer;
* RQ-tree-LB under a hop budget stays faster than hop-bounded
  MC-Sampling;
* accuracy against the hop-bounded MC proxy matches the unconstrained
  pattern (perfect LB precision).
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.eval.metrics import precision
from repro.eval.reporting import format_table
from repro.eval.workload import single_source_workload
from repro.reliability.montecarlo import mc_sampling_search

from conftest import NUM_SAMPLES, write_result

ETA = 0.5
HOPS = (1, 2, 4, 8, None)
QUERIES = 8


def test_hop_constrained(engines, benchmark):
    graph, engine = engines("biomine")
    sources = single_source_workload(graph, QUERIES, seed=6)

    def run():
        rows = []
        prev_sizes = None
        for hops in HOPS:
            sizes, lb_times, mc_times, precisions = [], [], [], []
            for i, s in enumerate(sources):
                start = time.perf_counter()
                result = engine.query(s, ETA, method="lb", max_hops=hops)
                lb_times.append(time.perf_counter() - start)
                sizes.append(len(result.nodes))

                start = time.perf_counter()
                proxy = mc_sampling_search(
                    graph, s, ETA, num_samples=NUM_SAMPLES,
                    seed=60 + i, max_hops=hops,
                )
                mc_times.append(time.perf_counter() - start)
                precisions.append(precision(result.nodes, proxy.nodes))
            rows.append(
                (
                    "inf" if hops is None else hops,
                    statistics.fmean(sizes),
                    statistics.fmean(precisions),
                    statistics.fmean(lb_times),
                    statistics.fmean(mc_times),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "hop_constrained",
        format_table(
            ["max hops", "mean |answer|", "LB precision vs hop-MC",
             "t(rq-lb) s", "t(MC) s"],
            rows,
            title=f"Distance-constrained queries (biomine-like, eta={ETA})",
        ),
    )
    # Shape 1: answers grow with the hop budget and converge.
    sizes = [r[1] for r in rows]
    assert sizes == sorted(sizes)
    assert sizes[-1] == pytest.approx(sizes[-2], abs=max(1.0, 0.2 * sizes[-1]))
    # Shape 2: LB stays fast and essentially exact under hop budgets.
    for row in rows:
        assert row[2] >= 0.9, row
        assert row[3] < row[4], row
