"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not part of the paper's evaluation, but each isolates one design
decision of the reproduction:

* **partitioner**: the balanced-minimum-cut criterion (Problem 3 /
  Theorem 6) vs balanced *random* bisection — the min-cut index must
  prune better (smaller candidate ratios);
* **flow engine**: Dinic vs Goldberg-Tarjan push-relabel on the
  candidate-generation workload — same answers, comparable times;
* **multi-source strategy**: greedy heuristic vs exact Pareto DP —
  the DP's candidate sets are never larger, the heuristic is cheaper;
* **cheap-bound short-circuit**: Theorem-5 early accept on vs off —
  identical answers, fewer max-flow solves.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import RQTreeEngine, load_dataset
from repro.core.candidates import (
    multi_source_candidates_exact,
    multi_source_candidates_greedy,
    single_source_candidates,
)
from repro.core.outreach import outreach_upper_bound
from repro.eval.reporting import format_table
from repro.eval.workload import multi_source_workload, single_source_workload

from conftest import write_result

ETA = 0.6
N = 1500


@pytest.fixture(scope="module")
def dataset():
    graph = load_dataset("dblp5", n=N, seed=9)
    return graph


def test_ablation_partitioner(dataset, benchmark):
    graph = dataset

    def run():
        engine_cut = RQTreeEngine.build(graph, seed=9, strategy="multilevel")
        engine_rand = RQTreeEngine.build(graph, seed=9, strategy="random")
        sources = single_source_workload(graph, 10, seed=1)
        ratios = {"multilevel": [], "random": []}
        for s in sources:
            ratios["multilevel"].append(
                engine_cut.query(s, ETA).candidate_ratio
            )
            ratios["random"].append(
                engine_rand.query(s, ETA).candidate_ratio
            )
        return {k: statistics.fmean(v) for k, v in ratios.items()}

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_partitioner",
        format_table(
            ["strategy", "mean candidate ratio"],
            sorted(means.items()),
            title=f"Ablation: bisection strategy (dblp5-like n={N}, "
            f"eta={ETA})",
        ),
    )
    # The min-cut partitioner must prune at least as well as random.
    assert means["multilevel"] <= means["random"] + 0.02


def test_ablation_flow_engine(dataset, benchmark):
    graph = dataset
    engine = RQTreeEngine.build(graph, seed=9)
    sources = single_source_workload(graph, 8, seed=2)

    def run():
        rows = []
        for engine_name in ("dinic", "push_relabel"):
            times = []
            answers = []
            for s in sources:
                start = time.perf_counter()
                result = single_source_candidates(
                    graph, engine.tree, s, ETA, engine=engine_name
                )
                times.append(time.perf_counter() - start)
                answers.append(frozenset(result.candidates))
            rows.append((engine_name, statistics.fmean(times), answers))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_flow_engine",
        format_table(
            ["engine", "mean candidate-gen time (s)"],
            [(r[0], r[1]) for r in rows],
            title="Ablation: max-flow engine during candidate generation",
        ),
    )
    # Identical candidate sets regardless of the engine.
    assert rows[0][2] == rows[1][2]


def test_ablation_multisource_strategy(dataset, benchmark):
    graph = dataset
    engine = RQTreeEngine.build(graph, seed=9)
    workload = multi_source_workload(graph, 6, set_size=5, diameter=4, seed=3)

    def run():
        sizes = {"greedy": [], "exact": []}
        times = {"greedy": [], "exact": []}
        for sources in workload:
            start = time.perf_counter()
            g_result = multi_source_candidates_greedy(
                graph, engine.tree, sources, ETA
            )
            times["greedy"].append(time.perf_counter() - start)
            sizes["greedy"].append(len(g_result.candidates))

            start = time.perf_counter()
            e_result = multi_source_candidates_exact(
                graph, engine.tree, sources, ETA
            )
            times["exact"].append(time.perf_counter() - start)
            sizes["exact"].append(len(e_result.candidates))
        return sizes, times

    sizes, times = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_multisource",
        format_table(
            ["strategy", "mean |candidates|", "mean time (s)"],
            [
                (k, statistics.fmean(sizes[k]), statistics.fmean(times[k]))
                for k in ("greedy", "exact")
            ],
            title=f"Ablation: multi-source candidate generation (|S|=5, "
            f"d=4, eta={ETA})",
        ),
    )
    # Problem 2 optimality: the DP never returns a larger union.
    for g_size, e_size in zip(sizes["greedy"], sizes["exact"]):
        assert e_size <= g_size


def test_ablation_cheap_bound(dataset, benchmark):
    graph = dataset
    engine = RQTreeEngine.build(graph, seed=9)
    sources = single_source_workload(graph, 10, seed=4)

    def run():
        skipped = 0
        total = 0
        for s in sources:
            for cluster in engine.tree.path_to_root(s):
                total += 1
                result = outreach_upper_bound(
                    graph, [s], cluster.members, cheap_accept_below=ETA
                )
                tight = outreach_upper_bound(graph, [s], cluster.members)
                # Soundness: the cheap bound never undercuts the tight one.
                assert result.upper_bound >= tight.upper_bound - 1e-6
                if not result.used_flow:
                    skipped += 1
                if result.upper_bound < ETA:
                    break
        return skipped, total

    skipped, total = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_cheap_bound",
        format_table(
            ["metric", "value"],
            [
                ("cluster evaluations", total),
                ("flow solves skipped via Theorem-5 bound", skipped),
                ("skip rate", skipped / max(1, total)),
            ],
            title="Ablation: Theorem-5 early-accept short-circuit",
        ),
    )
    assert 0 <= skipped <= total
