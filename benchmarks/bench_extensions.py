"""Benchmarks for the features beyond the paper's evaluation.

* **branching factor** — generalizing the paper's binary RQ-tree
  (Section 6 fixes b = 2 "for simplicity"): trade tree height against
  split granularity and measure the effect on pruning and query time;
* **incremental maintenance** — query quality and cost of the dynamic
  engine across a stream of arc updates, versus rebuild-from-scratch;
* **RIS vs Greedy influence maximization** — situating the paper's
  Section 7.7 pipeline against the modern reverse-reachable-set method;
* **query caching** — hit rates and speedup on a repeating workload
  (the influence-maximization access pattern).
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import (
    CachingRQTreeEngine,
    DynamicRQTreeEngine,
    RQTreeEngine,
    expected_spread_mc,
    load_dataset,
)
from repro.core.builder import build_rqtree
from repro.eval.reporting import format_table
from repro.eval.workload import single_source_workload
from repro.influence.greedy import greedy_mc
from repro.influence.ris import ris_influence_maximization

from conftest import write_result

ETA = 0.6


def test_branching_factor(benchmark):
    graph = load_dataset("dblp5", n=1500, seed=3)
    sources = single_source_workload(graph, 10, seed=1)

    def run():
        rows = []
        for branching in (2, 3, 4, 8):
            tree, report = build_rqtree(graph, seed=3, branching=branching)
            engine = RQTreeEngine(graph, tree)
            ratios, times = [], []
            for s in sources:
                result = engine.query(s, ETA)
                ratios.append(result.candidate_ratio)
                times.append(result.total_seconds)
            rows.append(
                (
                    branching,
                    report.height,
                    report.num_clusters,
                    statistics.fmean(ratios),
                    statistics.fmean(times),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "extension_branching",
        format_table(
            ["branching", "height", "# clusters", "mean candidate ratio",
             "mean query time (s)"],
            rows,
            title=f"Extension: RQ-tree branching factor (dblp5-like "
            f"n=1500, eta={ETA})",
        ),
    )
    heights = [r[1] for r in rows]
    # Higher branching -> shorter trees.
    assert heights == sorted(heights, reverse=True) or heights[0] >= heights[-1]
    # All branching factors answer with sane pruning.
    for row in rows:
        assert 0.0 <= row[3] <= 1.0


def test_incremental_maintenance(benchmark):
    base = load_dataset("nethept", n=800, seed=6)
    updates = []
    import random as _random

    rng = _random.Random(9)
    for _ in range(120):
        u, v = rng.randrange(800), rng.randrange(800)
        if u != v:
            updates.append((u, v, rng.uniform(0.3, 0.9)))

    def run():
        # Dynamic engine absorbing the update stream.
        graph_dyn = base.copy()
        dyn = DynamicRQTreeEngine(graph_dyn, damage_threshold=0.2, seed=6)
        start = time.perf_counter()
        for u, v, p in updates:
            dyn.add_arc(u, v, p)
        maintain_seconds = time.perf_counter() - start

        # Static rebuild per batch (the naive alternative): one full
        # rebuild after the stream.
        graph_static = base.copy()
        for u, v, p in updates:
            graph_static.add_arc(u, v, p)
        start = time.perf_counter()
        static = RQTreeEngine.build(graph_static, seed=6)
        rebuild_seconds = time.perf_counter() - start

        # Answer agreement on the mutated graph (LB answers are
        # clustering-independent, so they must match exactly).
        agree = True
        ratios_dyn, ratios_static = [], []
        for s in single_source_workload(graph_static, 10, seed=2):
            r_dyn = dyn.query(s, ETA)
            r_static = static.query(s, ETA)
            agree &= r_dyn.nodes == r_static.nodes
            ratios_dyn.append(r_dyn.candidate_ratio)
            ratios_static.append(r_static.candidate_ratio)
        return (
            maintain_seconds,
            rebuild_seconds,
            dyn.stats.subtree_rebuilds,
            statistics.fmean(ratios_dyn),
            statistics.fmean(ratios_static),
            agree,
        )

    (maintain_s, rebuild_s, rebuilds, ratio_dyn, ratio_static, agree) = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    write_result(
        "extension_maintenance",
        format_table(
            ["metric", "value"],
            [
                ("updates applied", 120),
                ("maintenance time (s)", maintain_s),
                ("full-rebuild time (s)", rebuild_s),
                ("subtree rebuilds triggered", rebuilds),
                ("candidate ratio (dynamic)", ratio_dyn),
                ("candidate ratio (fresh rebuild)", ratio_static),
                ("LB answers agree", agree),
            ],
            title="Extension: incremental maintenance vs full rebuild "
            "(nethept-like n=800, 120 arc insertions)",
        ),
    )
    assert agree  # correctness is never at stake
    # The dynamic index's pruning stays within reach of a fresh build.
    assert ratio_dyn <= ratio_static + 0.25


def test_ris_vs_greedy(benchmark):
    graph = load_dataset("lastfm", n=1000, seed=8)
    k = 5
    pool = sorted(graph.nodes(), key=graph.out_degree, reverse=True)[:50]

    def run():
        start = time.perf_counter()
        mc_trace = greedy_mc(graph, k, num_samples=500, seed=0, candidates=pool)
        time_mc = time.perf_counter() - start

        start = time.perf_counter()
        ris_seeds, _ = ris_influence_maximization(
            graph, k, num_sets=20000, seed=0
        )
        time_ris = time.perf_counter() - start

        spread_mc = expected_spread_mc(
            graph, mc_trace.seeds, num_samples=1500, seed=5
        )
        spread_ris = expected_spread_mc(
            graph, ris_seeds, num_samples=1500, seed=5
        )
        return time_mc, time_ris, spread_mc, spread_ris

    time_mc, time_ris, spread_mc, spread_ris = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    write_result(
        "extension_ris",
        format_table(
            ["method", "spread (common MC eval)", "time (s)"],
            [
                ("Greedy + MC (pool of 50)", spread_mc, time_mc),
                ("RIS (whole graph)", spread_ris, time_ris),
            ],
            title=f"Extension: RIS vs Greedy+MC, k={k} seeds "
            "(lastfm-like n=1000)",
        ),
    )
    # RIS must reach a competitive spread while searching ALL nodes.
    assert spread_ris >= 0.7 * spread_mc


def test_query_caching(benchmark):
    graph = load_dataset("dblp5", n=1500, seed=4)
    engine = CachingRQTreeEngine(RQTreeEngine.build(graph, seed=4))
    sources = single_source_workload(graph, 10, seed=3)
    # IM-style repeating workload: each source queried at 4 thresholds,
    # 5 rounds.
    workload = [
        (s, eta) for _ in range(5) for s in sources
        for eta in (0.2, 0.4, 0.6, 0.8)
    ]

    def run():
        engine.invalidate()
        engine.stats.hits = engine.stats.misses = 0
        start = time.perf_counter()
        for s, eta in workload:
            engine.query(s, eta)
        cached_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for s, eta in workload:
            engine.engine.query(s, eta)
        uncached_seconds = time.perf_counter() - start
        return cached_seconds, uncached_seconds, engine.stats.hit_rate

    cached_s, uncached_s, hit_rate = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    write_result(
        "extension_caching",
        format_table(
            ["metric", "value"],
            [
                ("workload size", len(workload)),
                ("hit rate", hit_rate),
                ("time with cache (s)", cached_s),
                ("time without cache (s)", uncached_s),
                ("speedup", uncached_s / max(cached_s, 1e-9)),
            ],
            title="Extension: LRU query cache on a repeating workload",
        ),
    )
    assert hit_rate >= 0.7   # 5 rounds -> 80% repeats
    assert cached_s <= uncached_s * 1.1
