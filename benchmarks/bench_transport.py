"""Data-plane cost: shard transport overhead and gateway fan-in.

Two measurements of the zero-copy data plane:

**Scatter-gather overhead.**  For each ``shard.transport`` the same
single-source lb workload runs against a 2-shard process-mode engine;
per-query transport overhead is the wall time the gateway spends in
scatter-gather *minus* the compute time the worker itself reports
(``response["seconds"]``) — i.e. pure IPC + serialization + scheduling.
With the shm transport per-query messages are node ids and budget
scalars, so the overhead must stay under a millisecond even at
n=5000 (asserted in full mode).  Spawn-time cost is recorded too:
pickle ships the whole subgraph through the pipe, shm ships a segment
name.

**Gateway connection sweep.**  The asyncio gateway holds every
connection of an N-way fan-in and answers all of them; the sweep
records connections/second as N grows past what a thread-per-connection
frontend would tolerate.

Results go to ``BENCH_transport.json`` at the repo root (and
``benchmarks/results/transport.txt``).  ``BENCH_QUICK=1`` shrinks the
graph and the sweep; the <1 ms assertion only runs at full size.
"""

from __future__ import annotations

import http.client
import json
import os
import pickle
import time
from pathlib import Path

from repro.eval.reporting import format_table
from repro.graph.generators import uncertain_gnp
from repro.service.metrics import MetricsRegistry, set_registry
from repro.shard import ShardedRQTreeEngine, build_shard_plan
from repro.shard.runtime import build_shard_payload

from conftest import host_info, write_result

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

NUM_NODES = 5000 if not QUICK else 400
MEAN_OUT_DEGREE = 4.0
EXISTENCE_RANGE = (0.1, 0.6)
ETA = 0.3
NUM_QUERIES = 24 if not QUICK else 8
SHARDS = 2
TRANSPORTS = ("pickle", "shm")
SEED = 7
CONNECTION_SWEEP = (8, 64, 256) if not QUICK else (4, 16)

JSON_PATH = Path(__file__).parent.parent / "BENCH_transport.json"


def _payload_bytes(graph, plan, transport):
    """Total pickled payload size across shards — what spawn ships."""
    return sum(
        len(pickle.dumps(
            build_shard_payload(graph, plan, shard_id, seed=SEED,
                                transport=transport)
        ))
        for shard_id in range(plan.num_shards)
    )


def _release_payload_segments(plan):
    # _payload_bytes published segments it never spawned workers for.
    from repro.shard import shm

    for name in list(shm.registry.active()):
        shm.registry.release(name)


def test_transport_overhead_and_gateway_sweep():
    graph = uncertain_gnp(
        NUM_NODES, MEAN_OUT_DEGREE / NUM_NODES,
        existence_range=EXISTENCE_RANGE, seed=42,
    )
    plan = build_shard_plan(graph, SHARDS, seed=SEED)
    sources = [part[0] for part in plan.shard_nodes] * NUM_QUERIES
    sources = sources[:NUM_QUERIES]

    records = []
    rows = []
    answers = {}
    for transport in TRANSPORTS:
        payload_bytes = _payload_bytes(graph, plan, transport)
        _release_payload_segments(plan)

        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            build_start = time.perf_counter()
            engine = ShardedRQTreeEngine.build(
                graph, shards=SHARDS, seed=SEED, mode="process",
                transport=transport,
            )
            build_seconds = time.perf_counter() - build_start
            try:
                assert engine.transport == transport
                engine.query(sources[0], eta=ETA, method="lb")  # warm
                registry.reset()
                results = [
                    engine.query([source], eta=ETA, method="lb")
                    for source in sources
                ]
            finally:
                engine.close()
        finally:
            set_registry(previous)

        assert not any(r.degraded for r in results)
        answers[transport] = [tuple(sorted(r.nodes)) for r in results]

        scatter = registry.histogram("shard.scatter_seconds")
        compute = sum(
            registry.histogram(f"shard.{shard_id}.seconds").sum
            for shard_id in range(SHARDS)
        )
        # Each query hits exactly one shard, so the gap between the
        # gateway's scatter wall and the worker's own compute is the
        # transport: queue pickling, wakeup, and response transfer.
        overhead_ms = (scatter.sum - compute) / scatter.count * 1000
        records.append(
            {
                "transport": transport,
                "payload_bytes": payload_bytes,
                "build_seconds": round(build_seconds, 4),
                "scatter_ms_mean": round(
                    scatter.sum / scatter.count * 1000, 4
                ),
                "overhead_ms_mean": round(overhead_ms, 4),
            }
        )
        rows.append(
            [
                transport,
                f"{payload_bytes / 1024:.0f}",
                f"{build_seconds:.2f}",
                f"{scatter.sum / scatter.count * 1000:.2f}",
                f"{overhead_ms:.3f}",
            ]
        )

    # The transport must never change an answer.
    assert answers["pickle"] == answers["shm"]

    by_transport = {record["transport"]: record for record in records}

    # ------------------------------------------------------------------
    # Gateway fan-in sweep
    # ------------------------------------------------------------------
    from repro import RQTreeEngine
    from repro.service import AioGateway, ReliabilityService

    service = ReliabilityService(RQTreeEngine.build(graph, seed=0),
                                 workers=2)
    sweep = []
    sweep_rows = []
    with AioGateway(service, port=0, max_connections=None) as gateway:
        host, port = gateway.address
        for count in CONNECTION_SWEEP:
            conns = [
                http.client.HTTPConnection(host, port, timeout=120)
                for _ in range(count)
            ]
            try:
                start = time.perf_counter()
                for conn in conns:
                    conn.request("GET", "/healthz")
                statuses = set()
                for conn in conns:
                    response = conn.getresponse()
                    statuses.add(response.status)
                    response.read()
                wall = time.perf_counter() - start
            finally:
                for conn in conns:
                    conn.close()
            assert statuses == {200}
            sweep.append(
                {
                    "connections": count,
                    "wall_seconds": round(wall, 4),
                    "conns_per_second": round(count / wall, 1),
                }
            )
            sweep_rows.append(
                [count, f"{wall:.3f}", f"{count / wall:.0f}"]
            )

    table = format_table(
        ["transport", "payload (KiB)", "build (s)", "scatter (ms)",
         "overhead (ms)"],
        rows,
    )
    sweep_table = format_table(
        ["connections", "wall (s)", "conns/s"], sweep_rows
    )
    write_result("transport", table + "\n" + sweep_table)
    JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "transport_overhead",
                "quick_mode": QUICK,
                "num_nodes": NUM_NODES,
                "num_arcs": graph.num_arcs,
                "existence_range": list(EXISTENCE_RANGE),
                "eta": ETA,
                "method": "lb",
                "num_queries": NUM_QUERIES,
                "shards": SHARDS,
                "mode": "process",
                "seed": SEED,
                "transports": records,
                "gateway_sweep": sweep,
                "host": host_info(),
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    if not QUICK:
        shm_overhead = by_transport["shm"]["overhead_ms_mean"]
        assert shm_overhead < 1.0, (
            f"shm scatter-gather overhead {shm_overhead:.3f} ms/query "
            "at n=5000; the zero-copy transport is not zero-copy"
        )
