"""Table 5: RQ-tree statistics and index building time.

The paper reports build time (seconds), index size (MB), tree height,
and cluster count for DBLP (mu=5), Flickr, and BioMine.  Absolute
numbers scale with graph size; the reproduced shapes are (a) height
stays logarithmic in n, (b) cluster count is ~2n-1 (binary splits), and
(c) build cost is modest (minutes on the paper's 1M-node graphs, well
under a minute at our scale).
"""

from __future__ import annotations

import math

import pytest

from repro import build_rqtree, load_dataset
from repro.eval.reporting import format_table

from conftest import write_result

DATASETS = ("dblp5", "flickr", "biomine")
N = 3000


def _build_all():
    rows = []
    for name in DATASETS:
        graph = load_dataset(name, n=N, seed=0)
        tree, report = build_rqtree(graph, seed=0)
        rows.append(
            (
                name,
                graph.num_nodes,
                graph.num_arcs,
                report.build_seconds,
                report.storage_megabytes,
                report.height,
                report.num_clusters,
            )
        )
    return rows


def test_table5_report(benchmark):
    rows = benchmark.pedantic(_build_all, rounds=1, iterations=1)
    write_result(
        "table5_index",
        format_table(
            ["dataset", "nodes", "arcs", "time (s)", "size (MB)",
             "height", "# clusters"],
            rows,
            title=f"Table 5 [n={N} stand-ins]: RQ-tree statistics and "
            "index building time",
        ),
    )
    for name, n, m, seconds, size_mb, height, clusters in rows:
        # Binary recursion: exactly 2n - 1 clusters.
        assert clusters == 2 * n - 1, name
        # Balanced: height within a constant factor of log2(n)
        # (paper: height 11-15 for 78k-1M nodes).
        assert height <= 3 * math.log2(n), name
        # Build completes in reasonable time at this scale.
        assert seconds < 60, name
        assert size_mb > 0, name
