"""Table 4: RQ-tree vs the RHT-sampling baseline on the small datasets.

The paper could only run RHT on Last.FM and NetHEPT (it needs one
reliability-detection estimate *per node*), observing RQ-tree-MC about
2 and RQ-tree-LB up to 6 orders of magnitude faster, with RHT times
flat in eta.  This bench reproduces the comparison shape on the
synthetic stand-ins: RHT slowest by a wide margin, RQ-tree-LB fastest,
RHT runtime independent of eta.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import RQTreeEngine, load_dataset
from repro.eval.reporting import format_table
from repro.eval.workload import single_source_workload
from repro.reliability.rht import rht_reliability_search

from conftest import write_result

ETAS = (0.4, 0.6, 0.8)
N = 300           # RHT is O(n) detections per query: keep graphs small
QUERIES = 3


def _run_dataset(name: str):
    graph = load_dataset(name, n=N, seed=0)
    engine = RQTreeEngine.build(graph, seed=0)
    sources = single_source_workload(graph, QUERIES, seed=1)
    rows = []
    for eta in ETAS:
        times = {"rht": [], "rq-mc": [], "rq-lb": []}
        for i, s in enumerate(sources):
            start = time.perf_counter()
            rht_reliability_search(
                graph, s, eta, budget=32, fallback_samples=16, seed=i
            )
            times["rht"].append(time.perf_counter() - start)

            start = time.perf_counter()
            engine.query(s, eta, method="mc", num_samples=500, seed=i)
            times["rq-mc"].append(time.perf_counter() - start)

            start = time.perf_counter()
            engine.query(s, eta, method="lb")
            times["rq-lb"].append(time.perf_counter() - start)
        rows.append(
            (
                eta,
                statistics.fmean(times["rht"]),
                statistics.fmean(times["rq-mc"]),
                statistics.fmean(times["rq-lb"]),
            )
        )
    return rows


def test_table4_report(benchmark):
    results = benchmark.pedantic(
        lambda: {name: _run_dataset(name) for name in ("lastfm", "nethept")},
        rounds=1,
        iterations=1,
    )
    sections = []
    for name, rows in results.items():
        sections.append(
            format_table(
                ["eta", "RHT (s)", "RQ-tree-MC (s)", "RQ-tree-LB (s)"],
                rows,
                title=f"Table 4 [{name}-like, n={N}]: query time (sec)",
            )
        )
    write_result("table4_rht", "\n\n".join(sections))

    for name, rows in results.items():
        rht_times = [r[1] for r in rows]
        for eta, t_rht, t_mc, t_lb in rows:
            # Shape 1: RQ-tree-LB is the fastest method.
            assert t_lb < t_rht, (name, eta)
            assert t_lb <= t_mc, (name, eta)
            # Shape 2: RHT is slower than RQ-tree-MC.
            assert t_mc < t_rht, (name, eta)
        # Shape 3: RHT runtime roughly flat in eta (paper: identical).
        assert max(rht_times) < 5 * min(rht_times), name
