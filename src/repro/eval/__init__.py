"""Evaluation harness: metrics, workloads, runners, and reporting."""

from .metrics import precision, recall, f1_score, jaccard, PrecisionRecall
from .workload import single_source_workload, multi_source_workload
from .harness import (
    QueryRecord,
    AggregateRow,
    run_quality_experiment,
    mean_or_zero,
)
from .reporting import format_table, format_series, empirical_cdf
from .bootstrap import ConfidenceInterval, bootstrap_mean, bootstrap_statistic
from .comparison import MethodComparison, compare_methods, render_comparison

__all__ = [
    "precision",
    "recall",
    "f1_score",
    "jaccard",
    "PrecisionRecall",
    "single_source_workload",
    "multi_source_workload",
    "QueryRecord",
    "AggregateRow",
    "run_quality_experiment",
    "mean_or_zero",
    "format_table",
    "format_series",
    "empirical_cdf",
    "ConfidenceInterval",
    "bootstrap_mean",
    "bootstrap_statistic",
    "MethodComparison",
    "compare_methods",
    "render_comparison",
]
