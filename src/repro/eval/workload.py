"""Query-workload generation (paper, Section 7.1).

The paper's workloads are:

* **single-source**: a node selected uniformly at random;
* **multiple-source**: a set of nodes selected uniformly at random from a
  subgraph of bounded diameter ``d`` (d ∈ {2, 4, 6}), with set sizes from
  2 to 20 — query nodes in applications are near each other, and the
  diameter knob controls how near.

We realise the bounded-diameter subgraph as an undirected ball of radius
``ceil(d / 2)`` around a random center (any two ball members are within
``d`` hops of each other through the center), resampling centers whose
ball is too small.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import GraphError
from ..graph.traversal import induced_ball
from ..graph.uncertain import UncertainGraph

__all__ = ["single_source_workload", "multi_source_workload"]


def single_source_workload(
    graph: UncertainGraph,
    count: int,
    seed: Optional[int] = None,
    require_out_degree: bool = True,
) -> List[int]:
    """*count* uniformly random query nodes.

    With ``require_out_degree`` (the default) only nodes with at least
    one outgoing arc are drawn — a sourceless query answers trivially
    with itself and would only dilute timing comparisons.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    rng = random.Random(seed)
    if require_out_degree:
        pool = [u for u in graph.nodes() if graph.out_degree(u) > 0]
    else:
        pool = list(graph.nodes())
    if not pool:
        raise GraphError("graph has no eligible query nodes")
    return [rng.choice(pool) for _ in range(count)]


def multi_source_workload(
    graph: UncertainGraph,
    count: int,
    set_size: int,
    diameter: int,
    seed: Optional[int] = None,
    max_attempts: int = 200,
) -> List[List[int]]:
    """*count* source sets of *set_size* nodes from diameter-*d* balls.

    Each set is drawn uniformly from an undirected ball of radius
    ``ceil(diameter / 2)`` around a random center.  Centers whose ball
    holds fewer than *set_size* nodes are resampled; after
    *max_attempts* failures the largest ball seen is used (with
    replacement-free sampling of however many nodes it has) so the
    generator degrades gracefully on sparse graphs.
    """
    if count <= 0 or set_size <= 0:
        raise ValueError("count and set_size must be positive")
    if diameter < 1:
        raise ValueError(f"diameter must be >= 1, got {diameter}")
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    if not nodes:
        raise GraphError("cannot draw queries from an empty graph")
    radius = (diameter + 1) // 2
    workload: List[List[int]] = []
    for _ in range(count):
        best_ball: List[int] = []
        chosen: Optional[List[int]] = None
        for _ in range(max_attempts):
            center = rng.choice(nodes)
            ball = sorted(induced_ball(graph, center, radius))
            if len(ball) > len(best_ball):
                best_ball = ball
            if len(ball) >= set_size:
                chosen = rng.sample(ball, set_size)
                break
        if chosen is None:
            chosen = rng.sample(best_ball, min(set_size, len(best_ball)))
        workload.append(sorted(chosen))
    return workload
