"""Generic method-comparison runner with bootstrap confidence intervals.

Generalizes :mod:`repro.eval.harness` beyond the engine's built-in
methods: any callables with the :data:`repro.reliability.estimators.
SearchMethod` signature can be compared on a workload against a chosen
ground-truth method, with per-metric bootstrap confidence intervals
(`repro.eval.bootstrap`) attached — the reporting standard the
benchmark suite's smaller workloads call for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..graph.uncertain import UncertainGraph
from ..reliability.estimators import SearchMethod
from ..seeding import derive_seed
from .bootstrap import ConfidenceInterval, bootstrap_mean
from .metrics import precision, recall
from .reporting import format_table

__all__ = ["MethodComparison", "compare_methods"]


@dataclass
class MethodComparison:
    """Aggregated comparison of one method against the ground truth."""

    method: str
    precision_ci: ConfidenceInterval
    recall_ci: ConfidenceInterval
    seconds_ci: ConfidenceInterval
    per_query_precision: List[float] = field(default_factory=list)
    per_query_recall: List[float] = field(default_factory=list)
    per_query_seconds: List[float] = field(default_factory=list)

    def as_row(self) -> List[object]:
        """One table row: method, P [CI], R [CI], time [CI]."""
        return [
            self.method,
            f"{self.precision_ci.estimate:.3f} "
            f"[{self.precision_ci.low:.3f}, {self.precision_ci.high:.3f}]",
            f"{self.recall_ci.estimate:.3f} "
            f"[{self.recall_ci.low:.3f}, {self.recall_ci.high:.3f}]",
            f"{self.seconds_ci.estimate:.4g} "
            f"[{self.seconds_ci.low:.4g}, {self.seconds_ci.high:.4g}]",
        ]


def compare_methods(
    graph: UncertainGraph,
    methods: Dict[str, SearchMethod],
    workload: Sequence[Sequence[int]],
    eta: float,
    truth_method: str,
    confidence: float = 0.95,
    seed: int = 0,
) -> Dict[str, MethodComparison]:
    """Run every method on every query and score against *truth_method*.

    Parameters
    ----------
    methods:
        Name -> callable map (see
        :func:`repro.reliability.estimators.make_method_suite`).  Must
        contain *truth_method*.
    workload:
        A list of source-node lists.
    truth_method:
        The method whose answers serve as ground truth (scored 1.0 / 1.0
        against itself, with its own timing still measured).

    Returns
    -------
    dict:
        Name -> :class:`MethodComparison`, including the truth method.
    """
    if truth_method not in methods:
        raise KeyError(
            f"truth method {truth_method!r} missing from methods "
            f"{sorted(methods)}"
        )
    if not workload:
        raise ValueError("workload must contain at least one query")

    # Evaluate the ground truth once per query.
    truths = []
    truth_times = []
    for sources in workload:
        start = time.perf_counter()
        truths.append(methods[truth_method](graph, list(sources), eta))
        truth_times.append(time.perf_counter() - start)

    results: Dict[str, MethodComparison] = {}
    for name, method in methods.items():
        precisions: List[float] = []
        recalls: List[float] = []
        times: List[float] = []
        for index, sources in enumerate(workload):
            if name == truth_method:
                answer = truths[index]
                elapsed = truth_times[index]
            else:
                start = time.perf_counter()
                answer = method(graph, list(sources), eta)
                elapsed = time.perf_counter() - start
            precisions.append(precision(answer, truths[index]))
            recalls.append(recall(answer, truths[index]))
            times.append(elapsed)
        results[name] = MethodComparison(
            method=name,
            precision_ci=bootstrap_mean(
                precisions, confidence=confidence,
                seed=derive_seed(seed, "comparison.bootstrap", 0),
            ),
            recall_ci=bootstrap_mean(
                recalls, confidence=confidence,
                seed=derive_seed(seed, "comparison.bootstrap", 1),
            ),
            seconds_ci=bootstrap_mean(
                times, confidence=confidence,
                seed=derive_seed(seed, "comparison.bootstrap", 2),
            ),
            per_query_precision=precisions,
            per_query_recall=recalls,
            per_query_seconds=times,
        )
    return results


def render_comparison(
    results: Dict[str, MethodComparison], title: str = ""
) -> str:
    """Format a :func:`compare_methods` result as an aligned table."""
    rows = [results[name].as_row() for name in sorted(results)]
    return format_table(
        ["method", "precision [95% CI]", "recall [95% CI]",
         "time (s) [95% CI]"],
        rows,
        title=title,
    )
