"""Plain-text table/series rendering for the benchmark drivers.

The paper reports results as tables (Tables 4-8) and plotted series
(Figures 3-5).  Since the benchmark harness runs headless, figures are
rendered as aligned text series — the same rows/columns the paper plots,
suitable for diffing across runs and for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["format_table", "format_series", "empirical_cdf", "ascii_histogram"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned plain-text table.

    Floats are formatted with *float_format*; everything else with
    ``str``.  Column widths adapt to content.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) if i < len(widths) else cell
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def format_series(
    name: str,
    points: Sequence[Tuple[object, object]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as aligned ``x y`` pairs."""
    lines = [f"series: {name}  ({x_label} -> {y_label})"]
    for x, y in points:
        x_str = f"{x:.4g}" if isinstance(x, float) else str(x)
        y_str = f"{y:.4g}" if isinstance(y, float) else str(y)
        lines.append(f"  {x_str:>10}  {y_str}")
    return "\n".join(lines)


def ascii_histogram(
    bins: Sequence[Tuple[float, float, int]],
    width: int = 40,
    title: str = "",
) -> str:
    """Render ``(lo, hi, count)`` bins as horizontal ASCII bars.

    Used by the CLI ``stats`` command to visualise the arc-probability
    distribution (the textual Figure 3) without any plotting
    dependency.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    peak = max((count for _, _, count in bins), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for lo, hi, count in bins:
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"  [{lo:4.2f}, {hi:4.2f})  {count:>8}  {bar}")
    return "\n".join(lines)


def empirical_cdf(
    values: Sequence[float], grid: Sequence[float]
) -> List[Tuple[float, float]]:
    """Empirical cdf of *values* evaluated on *grid* (for Figure 3).

    Returns ``(x, F(x))`` pairs where ``F(x)`` is the fraction of
    values ``<= x``.
    """
    if not values:
        return [(x, 0.0) for x in grid]
    ordered = sorted(values)
    n = len(ordered)
    result: List[Tuple[float, float]] = []
    index = 0
    for x in sorted(grid):
        while index < n and ordered[index] <= x:
            index += 1
        result.append((x, index / n))
    return result
