"""Bootstrap confidence intervals for experiment metrics.

The paper reports point averages over 100 queries; with the smaller
workloads a pure-Python reproduction can afford, point averages alone
can mislead.  The benchmark reports therefore attach percentile
bootstrap confidence intervals to each aggregate: resample the
per-query metric values with replacement, recompute the mean, and take
empirical percentiles of the resampled means.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

__all__ = ["ConfidenceInterval", "bootstrap_mean", "bootstrap_statistic"]


@dataclass
class ConfidenceInterval:
    """A point estimate with a bootstrap percentile interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.estimate:.4g} "
            f"[{self.low:.4g}, {self.high:.4g}]@{self.confidence:.0%}"
        )

    @property
    def width(self) -> float:
        """Interval width — the uncertainty of the estimate."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether *value* lies inside the interval (inclusive)."""
        return self.low <= value <= self.high


def bootstrap_statistic(
    values: Sequence[float],
    statistic: Callable[[Sequence[float]], float],
    confidence: float = 0.95,
    num_resamples: int = 1000,
    seed: Optional[int] = None,
) -> ConfidenceInterval:
    """Percentile bootstrap interval for an arbitrary statistic.

    Parameters
    ----------
    values:
        The per-query observations (non-empty).
    statistic:
        Maps a sample to a scalar (e.g. ``statistics.fmean``).
    confidence:
        Two-sided coverage level in (0, 1).
    num_resamples:
        Bootstrap replicates; 1000 is plenty for reporting purposes.
    """
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if num_resamples <= 0:
        raise ValueError(
            f"num_resamples must be positive, got {num_resamples}"
        )
    rng = random.Random(seed)
    point = statistic(values)
    n = len(values)
    replicates: List[float] = []
    for _ in range(num_resamples):
        resample = [values[rng.randrange(n)] for _ in range(n)]
        replicates.append(statistic(resample))
    replicates.sort()
    alpha = (1.0 - confidence) / 2.0
    lo_index = max(0, min(n and len(replicates) - 1,
                          int(alpha * len(replicates))))
    hi_index = max(0, min(len(replicates) - 1,
                          int((1.0 - alpha) * len(replicates))))
    return ConfidenceInterval(
        estimate=point,
        low=replicates[lo_index],
        high=replicates[hi_index],
        confidence=confidence,
    )


def bootstrap_mean(
    values: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 1000,
    seed: Optional[int] = None,
) -> ConfidenceInterval:
    """Percentile bootstrap interval for the sample mean."""
    return bootstrap_statistic(
        values,
        statistics.fmean,
        confidence=confidence,
        num_resamples=num_resamples,
        seed=seed,
    )
