"""Accuracy metrics (paper, Section 7.1, "Accuracy assessment criteria").

The paper measures every method against the MC-Sampling answer set
``T*`` (treated as ground-truth proxy): ``precision = |T ∩ T*| / |T|``
and ``recall = |T ∩ T*| / |T*|``.  Empty denominators follow the usual
conventions (an empty prediction has precision 1; an empty truth set has
recall 1), so the degenerate cases that appear with very high ``η`` do
not crash the harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

__all__ = ["precision", "recall", "f1_score", "jaccard", "PrecisionRecall"]


def precision(predicted: Set[int], truth: Set[int]) -> float:
    """``|predicted ∩ truth| / |predicted|`` (1.0 when nothing predicted)."""
    if not predicted:
        return 1.0
    return len(predicted & truth) / len(predicted)


def recall(predicted: Set[int], truth: Set[int]) -> float:
    """``|predicted ∩ truth| / |truth|`` (1.0 when the truth set is empty)."""
    if not truth:
        return 1.0
    return len(predicted & truth) / len(truth)


def f1_score(predicted: Set[int], truth: Set[int]) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(predicted, truth)
    r = recall(predicted, truth)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def jaccard(predicted: Set[int], truth: Set[int]) -> float:
    """``|predicted ∩ truth| / |predicted ∪ truth|`` (1.0 for two empties)."""
    union = predicted | truth
    if not union:
        return 1.0
    return len(predicted & truth) / len(union)


@dataclass
class PrecisionRecall:
    """A bundled precision/recall pair with convenience constructors."""

    precision: float
    recall: float

    @classmethod
    def of(cls, predicted: Set[int], truth: Set[int]) -> "PrecisionRecall":
        return cls(precision(predicted, truth), recall(predicted, truth))

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return (
            2.0 * self.precision * self.recall
            / (self.precision + self.recall)
        )
