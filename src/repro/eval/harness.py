"""Experiment harness: run method suites over workloads and aggregate.

The benchmark drivers in ``benchmarks/`` regenerate the paper's tables
by composing three things: a dataset, a workload, and this harness.  The
harness runs each query through the RQ-tree methods and the MC proxy,
scores precision/recall against the proxy, and aggregates the per-query
instrumentation (times, pruning ratios) into the row format the paper
prints.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..core.engine import QueryResult, RQTreeEngine
from ..eval.metrics import precision, recall
from ..graph.uncertain import UncertainGraph
from ..reliability.montecarlo import mc_sampling_search
from ..seeding import derive_seed

__all__ = ["QueryRecord", "AggregateRow", "run_quality_experiment", "mean_or_zero"]


@dataclass
class QueryRecord:
    """Everything measured for one (query, method) pair."""

    sources: List[int]
    eta: float
    method: str
    answer: Set[int]
    truth: Set[int]
    seconds: float
    precision: float
    recall: float
    candidate_precision: float = 0.0
    candidate_ratio: float = 0.0
    height_ratio: float = 0.0
    candidate_seconds: float = 0.0


@dataclass
class AggregateRow:
    """Mean metrics across a workload (one table cell group)."""

    method: str
    eta: float
    precision: float
    recall: float
    seconds: float
    candidate_precision: float = 0.0
    candidate_ratio: float = 0.0
    height_ratio: float = 0.0
    candidate_seconds: float = 0.0
    mc_seconds: float = 0.0


def mean_or_zero(values: Sequence[float]) -> float:
    """Arithmetic mean, 0.0 for an empty sequence."""
    return statistics.fmean(values) if values else 0.0


def run_quality_experiment(
    engine: RQTreeEngine,
    workload: Sequence[Sequence[int]],
    eta: float,
    num_samples: int = 500,
    seed: int = 0,
    methods: Sequence[str] = ("lb", "mc"),
    multi_source_mode: str = "greedy",
) -> Dict[str, AggregateRow]:
    """Run the Table 6 protocol for one (dataset, eta) cell.

    For every query in *workload*: compute the MC-Sampling proxy answer
    on the full graph (timed — it doubles as the baseline runtime
    column), then each requested RQ-tree method, scoring against the
    proxy.  Returns one aggregate row per method plus the
    ``"mc-sampling"`` baseline row.
    """
    graph = engine.graph
    records: Dict[str, List[QueryRecord]] = {m: [] for m in methods}
    mc_times: List[float] = []
    for query_index, sources in enumerate(workload):
        source_list = list(sources)
        # Per-query seeds come from the documented SeedSequence scheme
        # (repro.seeding) — ad-hoc seed+i offsets would overlap between
        # nearby root seeds.
        query_seed = derive_seed(seed, "harness.query", query_index)
        proxy = mc_sampling_search(
            graph,
            source_list,
            eta,
            num_samples=num_samples,
            seed=query_seed,
        )
        mc_times.append(proxy.seconds)
        truth = proxy.nodes
        for method in methods:
            result: QueryResult = engine.query(
                source_list,
                eta,
                method=method,
                num_samples=num_samples,
                seed=query_seed,
                multi_source_mode=multi_source_mode,
            )
            candidates = result.candidate_result.candidates
            records[method].append(
                QueryRecord(
                    sources=source_list,
                    eta=eta,
                    method=method,
                    answer=result.nodes,
                    truth=truth,
                    seconds=result.total_seconds,
                    precision=precision(result.nodes, truth),
                    recall=recall(result.nodes, truth),
                    candidate_precision=precision(candidates, truth),
                    candidate_ratio=result.candidate_ratio,
                    height_ratio=result.height_ratio,
                    candidate_seconds=result.candidate_seconds,
                )
            )

    rows: Dict[str, AggregateRow] = {}
    for method, method_records in records.items():
        rows[method] = AggregateRow(
            method=method,
            eta=eta,
            precision=mean_or_zero([r.precision for r in method_records]),
            recall=mean_or_zero([r.recall for r in method_records]),
            seconds=mean_or_zero([r.seconds for r in method_records]),
            candidate_precision=mean_or_zero(
                [r.candidate_precision for r in method_records]
            ),
            candidate_ratio=mean_or_zero(
                [r.candidate_ratio for r in method_records]
            ),
            height_ratio=mean_or_zero(
                [r.height_ratio for r in method_records]
            ),
            candidate_seconds=mean_or_zero(
                [r.candidate_seconds for r in method_records]
            ),
            mc_seconds=mean_or_zero(mc_times),
        )
    rows["mc-sampling"] = AggregateRow(
        method="mc-sampling",
        eta=eta,
        precision=1.0,
        recall=1.0,
        seconds=mean_or_zero(mc_times),
        mc_seconds=mean_or_zero(mc_times),
    )
    return rows
