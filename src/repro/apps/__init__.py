"""Applications built on reliability search (beyond the paper's §7.7)."""

from .clustering import (
    ReliableClustering,
    reliable_kcenter,
    clustering_coverage,
)
from .hardening import HardeningPlan, greedy_hardening

__all__ = [
    "ReliableClustering",
    "reliable_kcenter",
    "clustering_coverage",
    "HardeningPlan",
    "greedy_hardening",
]
