"""Network hardening: where to spend a link-upgrade budget.

The device-network reliability literature the paper builds on
(Section 1) asks the inverse question too: given a budget of ``b`` link
upgrades (making a link's existence certain — a wired replacement, a
reinforced road), which upgrades most enlarge the set of reliably
reachable nodes from a source?  The objective ``|RS(S, η)|`` after
upgrading a set of arcs is monotone in the upgrade set, so the usual
greedy loop applies, and each candidate evaluation is one (cheap)
engine query on a conditioned graph — another workload pattern the
RQ-tree makes interactive.

The candidate pool defaults to the *frontier arcs* of the current
reliable set (arcs leaving it), which is where an upgrade can actually
change the answer; this keeps each greedy round to a handful of
queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..core.engine import RQTreeEngine
from ..graph.transforms import condition_graph
from ..graph.uncertain import UncertainGraph

__all__ = ["HardeningPlan", "greedy_hardening"]

Arc = Tuple[int, int]


@dataclass
class HardeningPlan:
    """Result of :func:`greedy_hardening`.

    ``upgrades[i]`` is the i-th chosen arc; ``reliable_sizes[i]`` the
    size of ``RS(S, eta)`` after applying the first ``i+1`` upgrades
    (``baseline_size`` before any).
    """

    upgrades: List[Arc]
    baseline_size: int
    reliable_sizes: List[int]
    eta: float
    seconds: float
    queries_issued: int = 0

    @property
    def gain(self) -> int:
        """Total growth of the reliable set over the baseline."""
        if not self.reliable_sizes:
            return 0
        return self.reliable_sizes[-1] - self.baseline_size


def _frontier_arcs(
    graph: UncertainGraph, reliable: Set[int]
) -> List[Arc]:
    """Arcs from the reliable set to outside it, weakest-first.

    Upgrading an arc wholly inside or wholly outside the current
    reliable set cannot add a newly reliable node at the margin, so the
    frontier is the only pool worth scanning each round.
    """
    frontier = [
        (u, v)
        for u in reliable
        for v, p in graph.successors(u).items()
        if v not in reliable and p < 1.0
    ]
    # Weakest arcs first: upgrading them changes the most.
    frontier.sort(key=lambda arc: graph.probability(*arc))
    return frontier


def greedy_hardening(
    graph: UncertainGraph,
    sources: Sequence[int],
    budget: int,
    eta: float,
    max_candidates_per_round: int = 16,
    engine_seed: int = 0,
) -> HardeningPlan:
    """Greedily choose *budget* arcs to upgrade to certainty.

    Each round evaluates up to *max_candidates_per_round* frontier arcs
    (one conditioned-graph engine query each) and commits the upgrade
    with the largest reliable-set gain; ties break toward the weakest
    arc.  Rounds stop early when no candidate improves the objective.
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    source_list = list(dict.fromkeys(sources))

    start = time.perf_counter()
    queries = 0
    current = graph
    engine = RQTreeEngine.build(current, seed=engine_seed)
    reliable = engine.query(source_list, eta).nodes
    queries += 1
    baseline = len(reliable)

    upgrades: List[Arc] = []
    sizes: List[int] = []
    for _ in range(budget):
        candidates = _frontier_arcs(current, reliable)[
            :max_candidates_per_round
        ]
        best_arc: Optional[Arc] = None
        best_size = len(reliable)
        best_reliable = reliable
        for arc in candidates:
            trial_graph = condition_graph(current, present=[arc])
            trial_engine = RQTreeEngine.build(trial_graph, seed=engine_seed)
            trial_reliable = trial_engine.query(source_list, eta).nodes
            queries += 1
            if len(trial_reliable) > best_size:
                best_size = len(trial_reliable)
                best_arc = arc
                best_reliable = trial_reliable
        if best_arc is None:
            break
        upgrades.append(best_arc)
        sizes.append(best_size)
        current = condition_graph(current, present=[best_arc])
        reliable = best_reliable
    return HardeningPlan(
        upgrades=upgrades,
        baseline_size=baseline,
        reliable_sizes=sizes,
        eta=eta,
        seconds=time.perf_counter() - start,
        queries_issued=queries,
    )
