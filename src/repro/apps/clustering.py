"""Reliable clustering on uncertain graphs (cf. Liu et al., ICDM 2012).

The paper's related work cites *reliable clustering* [27]: grouping the
nodes of an uncertain graph so that cluster members are reliably
connected to their cluster's representative.  With a reliability-search
engine, a natural greedy k-center formulation becomes practical:

1. every node's **reliable set** is ``RS({v}, η)`` — the nodes it
   reaches with probability ≥ η;
2. greedily pick the center whose reliable set covers the most
   still-uncovered nodes (classic max-coverage, (1 − 1/e)-approximate);
3. assign each covered node to the first center that covered it;
   nodes covered by no center (at the chosen η) become singletons.

Every step is a batch of RQ-tree queries, so the whole clustering costs
``O(k · n)`` *index* queries instead of ``O(k · n)`` sampling runs —
the same leverage the paper demonstrates for influence maximization.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..core.engine import RQTreeEngine

__all__ = ["ReliableClustering", "reliable_kcenter", "clustering_coverage"]


@dataclass
class ReliableClustering:
    """Result of :func:`reliable_kcenter`.

    Attributes
    ----------
    centers:
        The chosen representatives, in selection order.
    cluster_of:
        Map node -> center for every covered node; uncovered nodes are
        absent (they form implicit singletons).
    eta:
        The reliability threshold the clustering guarantees: every
        assigned node is reachable from its center with probability
        ≥ eta (up to the engine method's accuracy semantics).
    seconds:
        Wall time of the selection loop.
    """

    centers: List[int]
    cluster_of: Dict[int, int]
    eta: float
    seconds: float
    queries_issued: int = 0

    @property
    def covered(self) -> Set[int]:
        """All nodes assigned to some center."""
        return set(self.cluster_of)

    def members(self, center: int) -> Set[int]:
        """The nodes assigned to *center* (including itself)."""
        return {
            node
            for node, assigned in self.cluster_of.items()
            if assigned == center
        }


def reliable_kcenter(
    engine: RQTreeEngine,
    k: int,
    eta: float,
    method: str = "lb",
    num_samples: int = 500,
    seed: Optional[int] = None,
    candidates: Optional[Sequence[int]] = None,
) -> ReliableClustering:
    """Greedy max-coverage k-center clustering by reliability.

    Parameters
    ----------
    engine:
        A built reliability-search engine.
    k:
        Number of centers to select.
    eta:
        Membership threshold: a node joins a cluster only if reachable
        from the center with probability ≥ eta.
    method / num_samples / seed:
        Passed to the engine's queries (``"lb"`` gives certified
        memberships; ``"mc"`` gives better coverage).
    candidates:
        Optional center pool (default: all nodes).  Restricting the
        pool (e.g. to high-out-degree nodes) trades quality for speed
        exactly as in the influence-maximization examples.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    graph = engine.graph
    pool = list(candidates) if candidates is not None else list(graph.nodes())

    start = time.perf_counter()
    queries = 0
    # Pre-compute each pool node's reliable set once.
    reliable_sets: Dict[int, Set[int]] = {}
    for node in pool:
        reliable_sets[node] = engine.query(
            node, eta, method=method, num_samples=num_samples, seed=seed
        ).nodes
        queries += 1

    uncovered: Set[int] = set(graph.nodes())
    centers: List[int] = []
    cluster_of: Dict[int, int] = {}
    remaining = set(pool)
    for _ in range(min(k, len(pool))):
        best = None
        best_gain = 0
        for node in remaining:
            gain = len(reliable_sets[node] & uncovered)
            if gain > best_gain or (
                gain == best_gain and best is not None and node < best
                and gain > 0
            ):
                best = node
                best_gain = gain
        if best is None or best_gain == 0:
            break
        centers.append(best)
        remaining.discard(best)
        for node in reliable_sets[best] & uncovered:
            cluster_of[node] = best
        uncovered -= reliable_sets[best]
    return ReliableClustering(
        centers=centers,
        cluster_of=cluster_of,
        eta=eta,
        seconds=time.perf_counter() - start,
        queries_issued=queries,
    )


def clustering_coverage(
    clustering: ReliableClustering, num_nodes: int
) -> float:
    """Fraction of the graph assigned to a cluster (the quality axis)."""
    if num_nodes <= 0:
        return 0.0
    return len(clustering.cluster_of) / num_nodes
