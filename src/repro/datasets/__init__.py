"""Named dataset registry mirroring the paper's Table 3 line-up."""

from .registry import (
    DatasetSpec,
    DATASETS,
    load_dataset,
    dataset_names,
    paper_scale_note,
)

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "load_dataset",
    "dataset_names",
    "paper_scale_note",
]
