"""Registry of the paper's evaluation datasets (synthetic stand-ins).

Table 3 of the paper lists eight uncertain graphs (three DBLP variants,
Flickr, BioMine, Last.FM, WebGraph, NetHEPT).  The originals are not
redistributable, so each entry here binds a name to a seeded synthetic
generator that reproduces the dataset's probability model and degree
structure at benchmark-friendly scale (see DESIGN.md §4 for the
substitution rationale).  Benchmarks and examples refer to datasets
exclusively through :func:`load_dataset`, so swapping in the real data
later only requires changing this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..graph import generators
from ..graph.uncertain import UncertainGraph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "load_dataset",
    "dataset_names",
    "paper_scale_note",
]


@dataclass(frozen=True)
class DatasetSpec:
    """One named dataset: factory plus provenance documentation."""

    name: str
    factory: Callable[[int, int], UncertainGraph]  # (n, seed) -> graph
    default_n: int
    paper_nodes: int
    paper_arcs: int
    probability_model: str


def _dblp(mu: float) -> Callable[[int, int], UncertainGraph]:
    def factory(n: int, seed: int) -> UncertainGraph:
        return generators.dblp_like(n=n, mu=mu, seed=seed)

    return factory


DATASETS: Dict[str, DatasetSpec] = {
    "dblp2": DatasetSpec(
        "dblp2", _dblp(2.0), 2000, 684_911, 4_569_982,
        "p = 1 - exp(-c/2), c = #collaborations",
    ),
    "dblp5": DatasetSpec(
        "dblp5", _dblp(5.0), 2000, 684_911, 4_569_982,
        "p = 1 - exp(-c/5), c = #collaborations",
    ),
    "dblp10": DatasetSpec(
        "dblp10", _dblp(10.0), 2000, 684_911, 4_569_982,
        "p = 1 - exp(-c/10), c = #collaborations",
    ),
    "flickr": DatasetSpec(
        "flickr",
        lambda n, seed: generators.flickr_like(n=n, seed=seed),
        2000, 78_322, 20_343_018,
        "p = Jaccard coefficient of shared interest groups",
    ),
    "biomine": DatasetSpec(
        "biomine",
        lambda n, seed: generators.biomine_like(n=n, seed=seed),
        2000, 1_008_201, 13_445_048,
        "interaction strength; probabilities skewed high",
    ),
    "lastfm": DatasetSpec(
        "lastfm",
        lambda n, seed: generators.lastfm_like(n=n, seed=seed),
        1500, 6_899, 24_144,
        "weighted cascade: p(u,v) = 1 / outdeg(u)",
    ),
    "webgraph": DatasetSpec(
        "webgraph",
        lambda n, seed: generators.webgraph_like(n=n, seed=seed),
        10_000, 10_000_000, 174_918_788,
        "weighted cascade: p(u,v) = 1 / outdeg(u)",
    ),
    "nethept": DatasetSpec(
        "nethept",
        lambda n, seed: generators.nethept_like(n=n, seed=seed),
        1500, 15_235, 62_776,
        "constant p = 0.5",
    ),
}


def dataset_names() -> Tuple[str, ...]:
    """All registered dataset names, in Table 3 order."""
    return tuple(DATASETS)


def load_dataset(
    name: str, n: int = 0, seed: int = 0
) -> UncertainGraph:
    """Instantiate a named dataset.

    Parameters
    ----------
    name:
        A key of :data:`DATASETS` (case-insensitive).
    n:
        Node count; 0 selects the dataset's benchmark default.
    seed:
        Generator seed (datasets are deterministic given ``(n, seed)``).
    """
    spec = DATASETS.get(name.lower())
    if spec is None:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return spec.factory(n or spec.default_n, seed)


def paper_scale_note(name: str) -> str:
    """Human-readable provenance line for reports (EXPERIMENTS.md)."""
    spec = DATASETS.get(name.lower())
    if spec is None:
        raise KeyError(f"unknown dataset {name!r}")
    return (
        f"{spec.name}: paper used {spec.paper_nodes:,} nodes / "
        f"{spec.paper_arcs:,} arcs; reproduction default {spec.default_n:,} "
        f"nodes; probability model: {spec.probability_model}"
    )
