"""repro — reproduction of "Fast Reliability Search in Uncertain Graphs".

A. Khan, F. Bonchi, A. Gionis, F. Gullo, EDBT 2014.

The library answers **reliability-search queries** ``RS(S, η)`` — all
nodes reachable from a source set ``S`` with probability at least ``η``
in an uncertain (probabilistic) directed graph — through the paper's
RQ-tree index, with the two baselines (whole-graph Monte-Carlo sampling
and RHT-style recursive sampling) and the influence-maximization
application included.

Quickstart::

    from repro import UncertainGraph, RQTreeEngine

    g = UncertainGraph.from_arcs([(0, 1, 0.9), (1, 2, 0.8), (0, 3, 0.3)])
    engine = RQTreeEngine.build(g, seed=7)
    result = engine.query(0, eta=0.5)          # RQ-tree-LB
    print(sorted(result.nodes))                # -> [0, 1, 2]

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .errors import (
    ReproError,
    GraphError,
    InvalidProbabilityError,
    InvalidThresholdError,
    NodeNotFoundError,
    EmptySourceSetError,
    IndexCorruptionError,
    FlowError,
    InvalidCapacityError,
    PartitionError,
    QueryDeadlineError,
    InjectedFault,
    BackendUnavailableError,
    ShardUnavailableError,
    WorkerPoolRestartError,
)
from .resilience import (
    QueryBudget,
    BudgetClock,
    FaultPlan,
    CONFIRMED,
    REJECTED,
    UNVERIFIED,
)
from .graph.uncertain import UncertainGraph, SubgraphView
from .graph.exact import exact_reliability, exact_reliability_search
from .core.rqtree import RQTree, ClusterNode
from .core.builder import build_rqtree, BuildReport
from .core.engine import RQTreeEngine, QueryResult
from .core.candidates import (
    CandidateResult,
    generate_candidates,
    single_source_candidates,
    multi_source_candidates_greedy,
    multi_source_candidates_exact,
)
from .core.outreach import (
    outreach_upper_bound,
    general_outreach_upper_bound,
    combine_upper_bounds,
    OutreachComputation,
)
from .core.verification import (
    VerificationReport,
    verify_lower_bound,
    verify_lower_bound_packing,
    verify_lower_bound_report,
    verify_sampling,
    verify_sampling_report,
)
from .core.detection import (
    DetectionResult,
    detect_reliability,
    reliability_scores,
    top_k_reliable,
)
from .core.maintenance import DynamicRQTreeEngine, MaintenanceStats
from .core.caching import CachingRQTreeEngine, CacheStats
from .core.worldindex import WorldIndex
from .reliability.montecarlo import mc_sampling_search, mc_reliability
from .reliability.rht import rht_reliability, rht_reliability_search
from .reliability.variants import (
    k_terminal_reliability,
    all_terminal_reliability,
)
from .influence.spread import expected_spread_mc, expected_spread_histogram
from .influence.greedy import greedy_mc, greedy_rqtree, GreedyTrace
from .influence.ris import ris_influence_maximization, build_rr_sketch, RRSketch
from .graph.correlated import SharedFateModel, correlated_mc_search
from .shard import ShardPlan, build_shard_plan, ShardedRQTreeEngine
from .apps.clustering import reliable_kcenter, ReliableClustering
from .apps.hardening import greedy_hardening, HardeningPlan
from .datasets.registry import load_dataset, dataset_names

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphError",
    "InvalidProbabilityError",
    "InvalidThresholdError",
    "NodeNotFoundError",
    "EmptySourceSetError",
    "IndexCorruptionError",
    "FlowError",
    "InvalidCapacityError",
    "PartitionError",
    "QueryDeadlineError",
    "InjectedFault",
    "BackendUnavailableError",
    "ShardUnavailableError",
    "WorkerPoolRestartError",
    # resilience
    "QueryBudget",
    "BudgetClock",
    "FaultPlan",
    "CONFIRMED",
    "REJECTED",
    "UNVERIFIED",
    # graph
    "UncertainGraph",
    "SubgraphView",
    "exact_reliability",
    "exact_reliability_search",
    # index
    "RQTree",
    "ClusterNode",
    "build_rqtree",
    "BuildReport",
    "RQTreeEngine",
    "QueryResult",
    # query processing
    "CandidateResult",
    "generate_candidates",
    "single_source_candidates",
    "multi_source_candidates_greedy",
    "multi_source_candidates_exact",
    "outreach_upper_bound",
    "general_outreach_upper_bound",
    "combine_upper_bounds",
    "OutreachComputation",
    "VerificationReport",
    "verify_lower_bound",
    "verify_lower_bound_report",
    "verify_lower_bound_packing",
    "verify_sampling",
    "verify_sampling_report",
    "DetectionResult",
    "detect_reliability",
    "reliability_scores",
    "top_k_reliable",
    "DynamicRQTreeEngine",
    "MaintenanceStats",
    "CachingRQTreeEngine",
    "CacheStats",
    "WorldIndex",
    # sharded serving
    "ShardPlan",
    "build_shard_plan",
    "ShardedRQTreeEngine",
    # baselines
    "mc_sampling_search",
    "mc_reliability",
    "rht_reliability",
    "rht_reliability_search",
    "k_terminal_reliability",
    "all_terminal_reliability",
    # influence maximization
    "expected_spread_mc",
    "expected_spread_histogram",
    "greedy_mc",
    "greedy_rqtree",
    "GreedyTrace",
    "ris_influence_maximization",
    "build_rr_sketch",
    "RRSketch",
    "SharedFateModel",
    "correlated_mc_search",
    "reliable_kcenter",
    "ReliableClustering",
    "greedy_hardening",
    "HardeningPlan",
    # datasets
    "load_dataset",
    "dataset_names",
]
