"""Dinic's max-flow algorithm (level graph + blocking flow).

Dinic's algorithm runs in ``O(V^2 E)`` in general and much faster in
practice on the sparse, shallow networks produced by Algorithm 1 of the
paper (the cluster boundary subgraphs).  It is the library's default
max-flow engine; :mod:`repro.flow.push_relabel` provides the alternative
the paper cites (Goldberg–Tarjan) and an ablation benchmark compares the
two.

Infinite capacities are supported: an augmenting path with bottleneck
``inf`` indicates unbounded flow, reported as ``math.inf`` (this happens
when the source set touches the sink side through arcs with ``p = 1``;
the caller maps it back to ``U_out = 1.0``).
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Optional

from .network import EPSILON, FlowNetwork

__all__ = ["dinic_max_flow"]


def _build_levels(
    network: FlowNetwork, source: int, sink: int
) -> Optional[List[int]]:
    """BFS level assignment on positive-residual edges; None if sink unreached."""
    levels = [-1] * network.num_nodes
    levels[source] = 0
    queue: deque = deque([source])
    capacity = network.capacity
    edge_to = network.edge_to
    while queue:
        u = queue.popleft()
        for e in network.adjacency[u]:
            if capacity[e] > EPSILON:
                v = edge_to[e]
                if levels[v] == -1:
                    levels[v] = levels[u] + 1
                    queue.append(v)
    if levels[sink] == -1:
        return None
    return levels


def _blocking_flow(
    network: FlowNetwork,
    source: int,
    sink: int,
    levels: List[int],
    iterators: List[int],
) -> float:
    """One DFS augmentation along the level graph; returns pushed value."""
    capacity = network.capacity
    edge_to = network.edge_to
    adjacency = network.adjacency
    # Iterative DFS with per-node edge pointers (current-arc heuristic).
    path_edges: List[int] = []
    u = source
    while True:
        if u == sink:
            bottleneck = math.inf
            for e in path_edges:
                if capacity[e] < bottleneck:
                    bottleneck = capacity[e]
            if bottleneck is math.inf or math.isinf(bottleneck):
                return math.inf
            for e in path_edges:
                capacity[e] -= bottleneck
                capacity[e ^ 1] += bottleneck
            return bottleneck
        advanced = False
        while iterators[u] < len(adjacency[u]):
            e = adjacency[u][iterators[u]]
            v = edge_to[e]
            if capacity[e] > EPSILON and levels[v] == levels[u] + 1:
                path_edges.append(e)
                u = v
                advanced = True
                break
            iterators[u] += 1
        if advanced:
            continue
        # Dead end: retreat.
        levels[u] = -1
        if not path_edges:
            return 0.0
        last = path_edges.pop()
        u = edge_to[last ^ 1]
        iterators[u] += 1


def dinic_max_flow(network: FlowNetwork, source: int, sink: int) -> float:
    """Compute the max-flow value from *source* to *sink*.

    Mutates the network's residual capacities in place (callers that need
    to reuse the network should snapshot capacities first).  Returns
    ``math.inf`` when the flow is unbounded.
    """
    if source == sink:
        return math.inf
    total = 0.0
    while True:
        levels = _build_levels(network, source, sink)
        if levels is None:
            return total
        iterators = [0] * network.num_nodes
        while True:
            pushed = _blocking_flow(network, source, sink, levels, iterators)
            if pushed == 0.0:
                break
            if math.isinf(pushed):
                return math.inf
            total += pushed
