"""Min-cut extraction and the multi-source/multi-sink reduction.

The RQ-tree's outreach upper bound (paper, Theorems 1-2) is the value of
a minimum cut between the query sources ``S`` and the cluster boundary
``C̄'`` on the ``-log(1 - p)``-capacitated graph.  This module provides

* :func:`solve_max_flow` — dispatch between the two flow engines,
* :func:`multi_terminal_max_flow` — the paper's footnote-1 reduction:
  a dummy source connected to all of ``S`` and a dummy sink collecting
  all of ``T`` with infinite-capacity arcs,
* :func:`min_cut_arcs` / :func:`min_cut_partition` — recover the actual
  cut (used by tests to validate flow values and by diagnostics).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import FlowError
from .dinic import dinic_max_flow
from .network import EPSILON, FlowNetwork
from .push_relabel import push_relabel_max_flow

__all__ = [
    "solve_max_flow",
    "multi_terminal_max_flow",
    "min_cut_arcs",
    "min_cut_partition",
    "FLOW_ENGINES",
]

#: Registry of available max-flow engines.
FLOW_ENGINES = {
    "dinic": dinic_max_flow,
    "push_relabel": push_relabel_max_flow,
}


def solve_max_flow(
    network: FlowNetwork, source: int, sink: int, engine: str = "dinic"
) -> float:
    """Run the selected engine and return the max-flow value."""
    try:
        solver = FLOW_ENGINES[engine]
    except KeyError:
        raise FlowError(
            f"unknown flow engine {engine!r}; choose from {sorted(FLOW_ENGINES)}"
        ) from None
    return solver(network, source, sink)


def multi_terminal_max_flow(
    num_nodes: int,
    arcs: Iterable[Tuple[int, int, float]],
    sources: Iterable[int],
    sinks: Iterable[int],
    engine: str = "dinic",
) -> Tuple[float, FlowNetwork, int, int]:
    """Max-flow from a source *set* to a sink *set*.

    Implements the classic reduction the paper uses (footnote 1): attach
    a dummy source ``s0`` to every node of *sources* and every node of
    *sinks* to a dummy sink ``t0``, with infinite capacities on the dummy
    arcs.  Returns ``(flow_value, network, s0, t0)`` so callers can
    inspect the residual network (e.g. for cut extraction).

    ``sources`` and ``sinks`` may overlap; any shared node makes the flow
    infinite, consistent with the cut interpretation (no arc set can
    separate a node from itself).
    """
    source_list = list(dict.fromkeys(sources))
    sink_list = list(dict.fromkeys(sinks))
    network = FlowNetwork(num_nodes)
    for u, v, capacity in arcs:
        if capacity > EPSILON:
            network.add_edge(u, v, capacity)
    s0 = network.add_node()
    t0 = network.add_node()
    if set(source_list) & set(sink_list):
        return math.inf, network, s0, t0
    for s in source_list:
        network.add_edge(s0, s, math.inf)
    for t in sink_list:
        network.add_edge(t, t0, math.inf)
    if not source_list or not sink_list:
        return 0.0, network, s0, t0
    value = solve_max_flow(network, s0, t0, engine=engine)
    return value, network, s0, t0


def min_cut_partition(network: FlowNetwork, source: int) -> Set[int]:
    """Source side of a minimum cut, from a *solved* residual network."""
    reachable = network.residual_reachable(source)
    return {v for v, ok in enumerate(reachable) if ok}


def min_cut_arcs(
    network: FlowNetwork,
    source: int,
    original_arcs: Sequence[Tuple[int, int, float]],
) -> List[Tuple[int, int, float]]:
    """The arcs crossing the minimum cut, from a *solved* network.

    ``original_arcs`` must be the same ``(u, v, capacity)`` sequence (and
    order) passed to :func:`multi_terminal_max_flow`; the function maps
    the residual source side back onto it.
    """
    side = network.residual_reachable(source)
    cut: List[Tuple[int, int, float]] = []
    for u, v, capacity in original_arcs:
        if capacity > EPSILON and side[u] and not side[v]:
            cut.append((u, v, capacity))
    return cut
