"""Goldberg–Tarjan push–relabel max-flow (highest-label + gap heuristic).

The paper cites Goldberg and Tarjan [16] as "one of the fastest existing
max-flow algorithms" with running time ``O~(n m)``; this module implements
it with the two standard practical accelerations:

* **highest-label selection** — active nodes are processed in decreasing
  label order (bucket queue), which gives the ``O(V^2 sqrt(E))`` bound;
* **gap heuristic** — when a label value becomes empty, every node above
  the gap is lifted straight to ``V + 1`` (it can only ever route flow
  back to the source).

Infinite capacities are handled by substitution: ``inf`` is replaced by
``1 + sum of finite capacities``, a value no finite min cut can reach; if
the computed flow meets that bound the true flow is unbounded and
``math.inf`` is returned (matching :func:`repro.flow.dinic.dinic_max_flow`).
"""

from __future__ import annotations

import math
from typing import List

from .network import EPSILON, FlowNetwork

__all__ = ["push_relabel_max_flow"]


def push_relabel_max_flow(
    network: FlowNetwork, source: int, sink: int
) -> float:
    """Compute the max-flow value from *source* to *sink*.

    Mutates residual capacities in place.  Returns ``math.inf`` for
    unbounded flow.
    """
    if source == sink:
        return math.inf
    n = network.num_nodes
    capacity = network.capacity
    edge_to = network.edge_to
    adjacency = network.adjacency

    # Replace infinite capacities with an unreachable finite bound.
    finite_total = sum(c for c in capacity if not math.isinf(c))
    big = finite_total + 1.0
    inf_edges = [e for e, c in enumerate(capacity) if math.isinf(c)]
    for e in inf_edges:
        capacity[e] = big

    height = [0] * n
    excess = [0.0] * n
    height[source] = n

    # Count of nodes at each height for the gap heuristic.
    height_count = [0] * (2 * n + 1)
    height_count[0] = n - 1
    height_count[n] = 1

    # Bucket queue of active nodes by height.
    buckets: List[List[int]] = [[] for _ in range(2 * n + 1)]
    in_bucket = [False] * n
    highest = 0

    def activate(v: int) -> None:
        nonlocal highest
        if v != source and v != sink and not in_bucket[v] and excess[v] > EPSILON:
            in_bucket[v] = True
            buckets[height[v]].append(v)
            if height[v] > highest:
                highest = height[v]

    # Saturate all source edges.
    for e in adjacency[source]:
        delta = capacity[e]
        if delta > EPSILON:
            v = edge_to[e]
            capacity[e] = 0.0
            capacity[e ^ 1] += delta
            excess[v] += delta
            excess[source] -= delta
            activate(v)

    pointer = [0] * n  # current-arc pointers

    while highest >= 0:
        if not buckets[highest]:
            highest -= 1
            continue
        u = buckets[highest].pop()
        in_bucket[u] = False
        if excess[u] <= EPSILON:
            continue
        while excess[u] > EPSILON:
            if pointer[u] == len(adjacency[u]):
                # Relabel: lift u to one more than its lowest admissible
                # neighbour.
                old_height = height[u]
                min_height = 2 * n
                for e in adjacency[u]:
                    if capacity[e] > EPSILON:
                        h = height[edge_to[e]]
                        if h < min_height:
                            min_height = h
                height[u] = min_height + 1
                pointer[u] = 0
                height_count[old_height] -= 1
                if height_count[old_height] == 0 and old_height < n:
                    # Gap heuristic: nodes above the gap are disconnected
                    # from the sink; lift them past n.
                    for w in range(n):
                        if old_height < height[w] <= n and w != source:
                            height_count[height[w]] -= 1
                            height[w] = n + 1
                            height_count[n + 1] += 1
                if height[u] <= 2 * n:
                    height_count[height[u]] += 1
                if height[u] >= 2 * n:
                    break
                continue
            e = adjacency[u][pointer[u]]
            v = edge_to[e]
            if capacity[e] > EPSILON and height[u] == height[v] + 1:
                delta = min(excess[u], capacity[e])
                capacity[e] -= delta
                capacity[e ^ 1] += delta
                excess[u] -= delta
                excess[v] += delta
                activate(v)
            else:
                pointer[u] += 1
        if excess[u] > EPSILON and height[u] < 2 * n:
            activate(u)

    flow = excess[sink]
    if flow >= big - EPSILON:
        return math.inf
    return max(0.0, flow)
