"""Max-flow / min-cut substrate (Dinic and Goldberg–Tarjan push–relabel)."""

from .network import FlowNetwork, EPSILON
from .dinic import dinic_max_flow
from .push_relabel import push_relabel_max_flow
from .mincut import (
    solve_max_flow,
    multi_terminal_max_flow,
    min_cut_arcs,
    min_cut_partition,
    FLOW_ENGINES,
)

__all__ = [
    "FlowNetwork",
    "EPSILON",
    "dinic_max_flow",
    "push_relabel_max_flow",
    "solve_max_flow",
    "multi_terminal_max_flow",
    "min_cut_arcs",
    "min_cut_partition",
    "FLOW_ENGINES",
]
