"""Residual flow-network representation.

A compact adjacency-array residual network shared by both max-flow
implementations (:mod:`repro.flow.dinic`, :mod:`repro.flow.push_relabel`).
Every directed edge is stored together with its reverse edge at the
adjacent index (``e ^ 1``), the classic trick that makes residual updates
O(1) without hash lookups.

Capacities are floats and may be ``math.inf`` — the paper's reduction
(footnote 1, Section 4.1) attaches a dummy super-source and super-sink with
infinite-capacity arcs, and arcs with ``p(a) = 1`` map to infinite
capacity under ``c(a) = -log(1 - p(a))``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import InvalidCapacityError, FlowError

__all__ = ["FlowNetwork", "EPSILON"]

#: Tolerance used for float comparisons throughout the flow subsystem.
EPSILON = 1e-12


class FlowNetwork:
    """A directed flow network over nodes ``0 .. n-1``.

    Edges are appended with :meth:`add_edge`; each call creates the
    forward residual edge and a zero-capacity reverse edge.  After a
    max-flow run, :meth:`flow_on` reports per-edge flow and
    :meth:`residual_capacity` the remaining slack.
    """

    __slots__ = ("num_nodes", "edge_to", "capacity", "adjacency", "_frozen")

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise FlowError(f"node count must be non-negative: {num_nodes}")
        self.num_nodes = num_nodes
        self.edge_to: List[int] = []       # head node of each residual edge
        self.capacity: List[float] = []    # remaining capacity of each edge
        self.adjacency: List[List[int]] = [[] for _ in range(num_nodes)]
        self._frozen = False

    def add_node(self) -> int:
        """Append a fresh node (used for dummy source/sink) and return it."""
        self.adjacency.append([])
        self.num_nodes += 1
        return self.num_nodes - 1

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add edge ``u -> v`` with the given capacity; return its index.

        The reverse edge is created automatically at index ``returned ^ 1``.
        """
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise FlowError(f"edge ({u}, {v}) references missing nodes")
        if math.isnan(capacity) or capacity < 0:
            raise InvalidCapacityError(capacity)
        index = len(self.edge_to)
        self.edge_to.append(v)
        self.capacity.append(capacity)
        self.adjacency[u].append(index)
        self.edge_to.append(u)
        self.capacity.append(0.0)
        self.adjacency[v].append(index + 1)
        return index

    @property
    def num_edges(self) -> int:
        """Number of *forward* edges (excluding residual reverses)."""
        return len(self.edge_to) // 2

    def snapshot_capacities(self) -> List[float]:
        """Copy of the current residual capacities (for reuse/reset)."""
        return list(self.capacity)

    def restore_capacities(self, snapshot: Sequence[float]) -> None:
        """Restore capacities from :meth:`snapshot_capacities` output."""
        if len(snapshot) != len(self.capacity):
            raise FlowError("capacity snapshot does not match network")
        self.capacity = list(snapshot)

    def flow_on(self, edge_index: int, original_capacity: float) -> float:
        """Flow pushed on forward edge *edge_index* given its original cap."""
        return original_capacity - self.capacity[edge_index]

    def residual_capacity(self, edge_index: int) -> float:
        """Remaining capacity on a residual edge."""
        return self.capacity[edge_index]

    def residual_reachable(self, source: int) -> List[bool]:
        """Nodes reachable from *source* via positive-residual edges.

        After a max-flow computation this is the source side of a minimum
        cut (max-flow/min-cut theorem); :mod:`repro.flow.mincut` builds on
        it.
        """
        seen = [False] * self.num_nodes
        seen[source] = True
        stack = [source]
        capacity = self.capacity
        edge_to = self.edge_to
        while stack:
            u = stack.pop()
            for e in self.adjacency[u]:
                if capacity[e] > EPSILON:
                    v = edge_to[e]
                    if not seen[v]:
                        seen[v] = True
                        stack.append(v)
        return seen
