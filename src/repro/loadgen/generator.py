"""Deterministic expansion of a profile into a replayable schedule.

``generate_schedule(profile, ...)`` turns a
:class:`~repro.loadgen.profiles.WorkloadProfile` into a concrete
:class:`Schedule`: a time-ordered list of :class:`RequestSpec` entries,
each carrying the exact JSON body the driver will put on the wire.
Everything is drawn from one ``random.Random(seed)``, in one fixed
order, so the acceptance contract holds by construction: *same profile
+ same seed + same shape parameters → byte-identical request
sequence*.  A schedule also round-trips through JSON
(:func:`save_schedule` / :func:`load_schedule`) so a recorded run can
be replayed later — against a patched build, a different frontend, a
different shard count — with the traffic held rigorously constant.

Arrival times are open-loop: a non-homogeneous Poisson process whose
instantaneous rate is ``target_qps`` scaled by the profile's diurnal
curve.  The driver dispatches each request at its scheduled offset
whether or not earlier ones completed — that is what distinguishes a
load *generator* from a load *follower*, and what makes p99-under-
pressure an honest number.
"""

from __future__ import annotations

import bisect
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .profiles import StormSpec, WorkloadProfile, get_profile

__all__ = [
    "RequestSpec",
    "Schedule",
    "generate_schedule",
    "load_schedule",
    "save_schedule",
]

#: Schedule-file format version; bumped on incompatible changes.
SCHEDULE_VERSION = 1


@dataclass(frozen=True)
class RequestSpec:
    """One scheduled event: a query, an update batch, or a storm edge.

    *offset* is seconds from run start.  For ``kind="query"`` /
    ``"update"``, *body* is the exact JSON object posted to the
    frontend.  ``storm_start`` carries the seeded
    :class:`~repro.resilience.faultinject.FaultPlan` parameters in
    *body*; ``storm_end`` disarms it.
    """

    offset: float
    kind: str  # "query" | "update" | "storm_start" | "storm_end"
    body: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"offset": self.offset, "kind": self.kind, "body": self.body}


@dataclass(frozen=True)
class Schedule:
    """A fully materialized request stream plus its provenance."""

    profile: str
    seed: int
    duration_seconds: float
    target_qps: float
    num_nodes: int
    requests: Tuple[RequestSpec, ...]

    @property
    def offered_qps(self) -> float:
        """Scheduled query+update arrivals per second (storm edges are
        control events, not traffic)."""
        traffic = sum(
            1 for spec in self.requests
            if spec.kind in ("query", "update")
        )
        return traffic / self.duration_seconds if self.duration_seconds else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": SCHEDULE_VERSION,
            "profile": self.profile,
            "seed": self.seed,
            "duration_seconds": self.duration_seconds,
            "target_qps": self.target_qps,
            "num_nodes": self.num_nodes,
            "requests": [spec.as_dict() for spec in self.requests],
        }


class _ZipfRanks:
    """Seedable Zipf-skewed rank sampler over a finite population.

    Rank *k* (0-based) has weight ``1 / (k+1)^s``; a seeded permutation
    maps ranks onto node ids so the "hub" nodes are scattered across
    the id space instead of clustering at 0 (which would alias with
    shard 0 and flatter the cache).
    """

    def __init__(
        self, exponent: float, population: int, num_nodes: int,
        rng: random.Random,
    ) -> None:
        population = min(population, num_nodes)
        weights = [1.0 / (k + 1) ** exponent for k in range(population)]
        total = 0.0
        self._cumulative: List[float] = []
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total
        # Node-id permutation drawn once, up front, from the shared rng
        # (order matters for determinism: permutation first, draws
        # later).
        ids = list(range(num_nodes))
        rng.shuffle(ids)
        self._ids = ids[:population]

    def draw(self, rng: random.Random) -> int:
        mark = rng.random() * self._total
        rank = bisect.bisect_left(self._cumulative, mark)
        rank = min(rank, len(self._ids) - 1)
        return self._ids[rank]


def _weighted_choice(
    rng: random.Random, items: Sequence[Tuple[str, float]], total: float
) -> str:
    mark = rng.random() * total
    running = 0.0
    for name, weight in items:
        running += weight
        if mark < running:
            return name
    return items[-1][0]


def _query_body(
    rng: random.Random,
    profile: WorkloadProfile,
    ranks: _ZipfRanks,
    methods: Sequence[Tuple[str, float]],
    method_total: float,
    seed_stream: random.Random,
) -> Dict[str, object]:
    method = _weighted_choice(rng, methods, method_total)
    sources = [ranks.draw(rng)]
    if profile.multi_source_fraction and (
        rng.random() < profile.multi_source_fraction
    ):
        extra = ranks.draw(rng)
        if extra not in sources:
            sources.append(extra)
    body: Dict[str, object] = {
        "sources": sources,
        "eta": rng.choice(profile.eta_choices),
        "method": method,
    }
    sampling = method in ("mc", "rss", "lazy", "auto")
    if sampling:
        body["num_samples"] = rng.choice(profile.num_samples_choices)
        if rng.random() < profile.seeded_fraction:
            body["seed"] = seed_stream.randrange(2**31)
    if profile.budget_fraction and rng.random() < profile.budget_fraction:
        body["deadline_ms"] = rng.choice(profile.deadline_ms_choices)
    return body


def _update_body(
    rng: random.Random, profile: WorkloadProfile, num_nodes: int
) -> Dict[str, object]:
    ops: List[Dict[str, object]] = []
    while len(ops) < profile.update_batch_size:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v:
            continue
        if rng.random() < 0.8:
            ops.append({
                "op": "set", "u": u, "v": v,
                "p": round(rng.uniform(0.05, 0.6), 3),
            })
        else:
            # Deleting a possibly-absent arc is a documented no-op, so
            # blind deletes are safe — and they exercise the idempotent
            # branch of the update plane under real traffic.
            ops.append({"op": "delete", "u": u, "v": v})
    return {"updates": ops}


def generate_schedule(
    profile: Union[str, WorkloadProfile],
    *,
    seed: int,
    duration_seconds: float,
    target_qps: float,
    num_nodes: int,
) -> Schedule:
    """Expand *profile* into a deterministic open-loop schedule.

    All randomness flows from ``random.Random(seed)`` plus a derived
    seed stream for per-query MC seeds, consumed in a fixed order —
    identical inputs give an identical :class:`Schedule`, which the
    determinism test asserts structurally.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    if duration_seconds <= 0:
        raise ValueError(
            f"duration_seconds must be positive, got {duration_seconds}"
        )
    if target_qps <= 0:
        raise ValueError(f"target_qps must be positive, got {target_qps}")
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")

    rng = random.Random(seed)
    # MC seeds come from a separate stream so adding/removing one draw
    # elsewhere cannot shift every downstream query's world sampling.
    seed_stream = random.Random(rng.randrange(2**63))
    ranks = _ZipfRanks(
        profile.zipf_exponent, profile.population, num_nodes, rng
    )
    methods = sorted(profile.method_weights.items())
    method_total = sum(weight for _, weight in methods)
    update_share = (
        profile.update_weight / (1.0 + profile.update_weight)
        if profile.update_weight else 0.0
    )

    requests: List[RequestSpec] = []
    now = 0.0
    while True:
        fraction = min(now / duration_seconds, 1.0)
        rate = target_qps * profile.diurnal.rate_multiplier(fraction)
        rate = max(rate, 1e-9)
        now += rng.expovariate(rate)
        if now >= duration_seconds:
            break
        if update_share and rng.random() < update_share:
            body = _update_body(rng, profile, num_nodes)
            kind = "update"
        else:
            body = _query_body(
                rng, profile, ranks, methods, method_total, seed_stream
            )
            kind = "query"
        requests.append(RequestSpec(round(now, 6), kind, body))

    if profile.storm is not None:
        requests.extend(_storm_events(profile.storm, duration_seconds, seed))
    requests.sort(key=lambda spec: (spec.offset, spec.kind))

    return Schedule(
        profile=profile.name,
        seed=seed,
        duration_seconds=duration_seconds,
        target_qps=target_qps,
        num_nodes=num_nodes,
        requests=tuple(requests),
    )


def _storm_events(
    storm: StormSpec, duration_seconds: float, seed: int
) -> List[RequestSpec]:
    start = round(storm.start_fraction * duration_seconds, 6)
    end = round(storm.end_fraction * duration_seconds, 6)
    return [
        RequestSpec(start, "storm_start", {
            "points": list(storm.points),
            "probability": storm.probability,
            "seed": seed ^ 0x5EED,
        }),
        RequestSpec(end, "storm_end", {}),
    ]


def save_schedule(schedule: Schedule, path: Union[str, Path]) -> None:
    """Write a schedule as JSON for later ``--replay``."""
    Path(path).write_text(
        json.dumps(schedule.as_dict(), indent=2) + "\n", encoding="utf-8"
    )


def load_schedule(path: Union[str, Path]) -> Schedule:
    """Read a schedule saved by :func:`save_schedule`."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    version = raw.get("version")
    if version != SCHEDULE_VERSION:
        raise ValueError(
            f"unsupported schedule version {version!r} "
            f"(this build reads {SCHEDULE_VERSION})"
        )
    requests = tuple(
        RequestSpec(
            offset=float(spec["offset"]),
            kind=str(spec["kind"]),
            body=dict(spec.get("body", {})),
        )
        for spec in raw.get("requests", [])
    )
    return Schedule(
        profile=str(raw["profile"]),
        seed=int(raw["seed"]),
        duration_seconds=float(raw["duration_seconds"]),
        target_qps=float(raw["target_qps"]),
        num_nodes=int(raw["num_nodes"]),
        requests=requests,
    )
