"""Production traffic harness: profiles → schedules → driver → SLO report.

The package splits cleanly along the replay boundary:

* :mod:`~repro.loadgen.profiles` — traffic *shapes* as data
  (:class:`WorkloadProfile`, the named :data:`PROFILES` roster).
* :mod:`~repro.loadgen.generator` — deterministic expansion of a
  profile into a :class:`Schedule` of concrete request bodies
  (same profile + seed → identical stream), plus JSON save/load for
  ``--record`` / ``--replay``.
* :mod:`~repro.loadgen.driver` — the open-loop asyncio driver that
  holds scheduled arrival times against a running frontend.
* :mod:`~repro.loadgen.slo` — :class:`SLOTracker` folding per-response
  quality blocks and latencies into the structured run report, gated
  by :class:`SLOTargets`.

Imports are lazy (PEP 562) so ``import repro`` stays cheap for users
who never generate load.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "DiurnalCurve",
    "PROFILES",
    "Schedule",
    "SLOTargets",
    "SLOTracker",
    "StormSpec",
    "WorkloadProfile",
    "drive",
    "generate_schedule",
    "get_profile",
    "load_schedule",
    "save_schedule",
]

_EXPORTS = {
    "DiurnalCurve": "profiles",
    "PROFILES": "profiles",
    "StormSpec": "profiles",
    "WorkloadProfile": "profiles",
    "get_profile": "profiles",
    "Schedule": "generator",
    "generate_schedule": "generator",
    "load_schedule": "generator",
    "save_schedule": "generator",
    "drive": "driver",
    "SLOTargets": "slo",
    "SLOTracker": "slo",
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .driver import drive
    from .generator import (
        Schedule,
        generate_schedule,
        load_schedule,
        save_schedule,
    )
    from .profiles import (
        PROFILES,
        DiurnalCurve,
        StormSpec,
        WorkloadProfile,
        get_profile,
    )
    from .slo import SLOTargets, SLOTracker


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
