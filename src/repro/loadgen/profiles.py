"""Workload profiles: the *shape* of production traffic, as data.

A :class:`WorkloadProfile` describes a traffic mix the way an SRE would
describe the service's real callers: how skewed the popular sources are
(Zipf), how load breathes over the day (a diurnal rate curve), what
fraction of requests are updates vs queries, which methods / eta values
/ budgets the query population uses, and when a fault storm rips
through mid-run.  Profiles are pure data — the deterministic expansion
into a concrete request sequence lives in
:mod:`repro.loadgen.generator`, so the same profile replayed with the
same seed always yields the identical stream.

The named profiles in :data:`PROFILES` cover the evidence ROADMAP item
4 asks for:

* ``steady``       — uniform-rate single-method reads; the control run.
* ``mixed``        — the production stand-in: Zipf-skewed sources,
  diurnal breathing, every estimator method in play (including
  ``auto``), budgeted and unbudgeted queries, a 10% update stream, and
  a fault storm through the middle third of the run.
* ``read_heavy``   — cache-friendly repeats, no updates, no storms.
* ``update_heavy`` — a churning graph (30% updates) under moderate
  read load.
* ``storm``        — the ``mixed`` request population with a longer,
  harsher fault storm; the degraded-answer SLO's worst day.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["DiurnalCurve", "StormSpec", "WorkloadProfile", "PROFILES"]


@dataclass(frozen=True)
class DiurnalCurve:
    """A smooth rate multiplier over the run: ``1 + amplitude*sin(...)``.

    *cycles* full sine periods span the run (a duration-relative clock,
    not wall time — a 30-second bench and a 24-hour soak share the same
    shape).  *amplitude* in ``[0, 1)`` keeps the rate positive; 0 is a
    flat line.  *phase* shifts where in the "day" the run starts.
    """

    amplitude: float = 0.0
    cycles: float = 1.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )
        if self.cycles <= 0:
            raise ValueError(f"cycles must be positive, got {self.cycles}")

    def rate_multiplier(self, fraction: float) -> float:
        """The multiplier at *fraction* in ``[0, 1]`` of the run."""
        return 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * self.cycles * fraction + self.phase
        )


@dataclass(frozen=True)
class StormSpec:
    """A mid-run fault storm: which injection points, when, how hard.

    The generator turns this into ``storm_start`` / ``storm_end``
    control events inside the schedule; the driver arms a seeded
    :class:`~repro.resilience.faultinject.FaultPlan` between them.
    *start_fraction* / *end_fraction* are duration-relative, so the
    storm scales with ``--duration`` like everything else.
    """

    points: Tuple[str, ...] = ("mc.kernel.chunk",)
    probability: float = 0.3
    start_fraction: float = 0.4
    end_fraction: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if not 0.0 <= self.start_fraction < self.end_fraction <= 1.0:
            raise ValueError(
                "storm window must satisfy 0 <= start < end <= 1, got "
                f"[{self.start_fraction}, {self.end_fraction}]"
            )


@dataclass(frozen=True)
class WorkloadProfile:
    """One named traffic mix; see the module docstring for the roster.

    Weights are relative, not normalized — ``{"lb": 3, "mc": 1}`` means
    three lb queries per mc query in expectation.  ``eta_choices`` and
    ``num_samples_choices`` are drawn uniformly (production etas cluster
    on a few operator-chosen values, they are not continuous).
    """

    name: str
    description: str
    #: Zipf exponent for source/target rank draws; 0 = uniform.  Real
    #: query logs are heavily skewed (a few hub nodes absorb most
    #: traffic), which is what makes result caching worth measuring.
    zipf_exponent: float = 1.1
    #: How many distinct nodes the rank distribution covers; draws are
    #: mapped onto actual node ids modulo the graph size at issue time.
    population: int = 1024
    diurnal: DiurnalCurve = field(default_factory=DiurnalCurve)
    #: Relative weight of update batches vs queries (0 = read-only).
    update_weight: float = 0.0
    #: Arc-update ops per ``/update`` batch.
    update_batch_size: int = 16
    method_weights: Mapping[str, float] = field(
        default_factory=lambda: {"lb": 1.0}
    )
    eta_choices: Tuple[float, ...] = (0.3, 0.5, 0.7)
    num_samples_choices: Tuple[int, ...] = (256,)
    #: Fraction of queries carrying a deadline budget, and the deadline
    #: population (ms) they draw from.
    budget_fraction: float = 0.0
    deadline_ms_choices: Tuple[float, ...] = (50.0, 200.0)
    #: Fraction of queries with more than one source node.
    multi_source_fraction: float = 0.0
    #: Fraction of seeded (replay-identical, cacheable) mc queries; the
    #: rest of the mc traffic runs unseeded and uncacheable.
    seeded_fraction: float = 1.0
    storm: Optional[StormSpec] = None

    def __post_init__(self) -> None:
        if self.zipf_exponent < 0:
            raise ValueError(
                f"zipf_exponent must be >= 0, got {self.zipf_exponent}"
            )
        if self.population < 1:
            raise ValueError(
                f"population must be >= 1, got {self.population}"
            )
        if not self.method_weights:
            raise ValueError("method_weights must not be empty")
        for mapping_name, fraction in (
            ("update_weight", self.update_weight),
            ("budget_fraction", self.budget_fraction),
            ("multi_source_fraction", self.multi_source_fraction),
            ("seeded_fraction", self.seeded_fraction),
        ):
            if fraction < 0 or (
                mapping_name != "update_weight" and fraction > 1
            ):
                raise ValueError(
                    f"{mapping_name} out of range: {fraction}"
                )


def _mixed_methods() -> Dict[str, float]:
    return {"lb": 4.0, "lb+": 1.0, "auto": 2.0, "mc": 1.0, "rss": 0.5,
            "lazy": 0.5}


PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile(
            name="steady",
            description="uniform-rate lb reads; the control run",
            zipf_exponent=0.0,
            diurnal=DiurnalCurve(amplitude=0.0),
        ),
        WorkloadProfile(
            name="mixed",
            description=(
                "production stand-in: Zipf sources, diurnal load, all "
                "methods, 10% updates, mid-run fault storm"
            ),
            zipf_exponent=1.1,
            diurnal=DiurnalCurve(amplitude=0.5, cycles=1.0),
            update_weight=0.1,
            method_weights=_mixed_methods(),
            eta_choices=(0.3, 0.5, 0.7),
            num_samples_choices=(128, 256),
            budget_fraction=0.25,
            deadline_ms_choices=(50.0, 250.0),
            multi_source_fraction=0.1,
            seeded_fraction=0.7,
            storm=StormSpec(
                points=("mc.kernel.chunk", "shard.handle"),
                probability=0.25,
                start_fraction=0.4,
                end_fraction=0.6,
            ),
        ),
        WorkloadProfile(
            name="read_heavy",
            description="cache-friendly skewed repeats, no writes",
            zipf_exponent=1.4,
            population=128,
            diurnal=DiurnalCurve(amplitude=0.3),
            method_weights={"lb": 6.0, "lb+": 1.0, "mc": 1.0},
            seeded_fraction=1.0,
        ),
        WorkloadProfile(
            name="update_heavy",
            description="churning graph: 30% update batches",
            zipf_exponent=0.8,
            update_weight=0.3,
            update_batch_size=24,
            method_weights={"lb": 3.0, "auto": 1.0},
        ),
        WorkloadProfile(
            name="storm",
            description=(
                "mixed population under a long, harsh fault storm"
            ),
            zipf_exponent=1.1,
            diurnal=DiurnalCurve(amplitude=0.4),
            update_weight=0.1,
            method_weights=_mixed_methods(),
            budget_fraction=0.25,
            multi_source_fraction=0.1,
            seeded_fraction=0.7,
            storm=StormSpec(
                points=(
                    "mc.kernel.chunk", "shard.handle", "shard.update",
                ),
                probability=0.5,
                start_fraction=0.25,
                end_fraction=0.75,
            ),
        ),
    )
}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a named profile; raises ``KeyError`` with the roster."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; known: {sorted(PROFILES)}"
        ) from None
