"""Open-loop asyncio load driver: hold the schedule, record the truth.

:func:`drive` replays a :class:`~repro.loadgen.generator.Schedule`
against a running frontend (either :class:`AioGateway` or the threaded
``ServiceHTTPServer`` — both speak the same wire protocol) and folds
every response into an :class:`~repro.loadgen.slo.SLOTracker`.

The driver is **open-loop**: each request is dispatched at its
scheduled offset whether or not earlier requests have completed.  A
closed-loop client (send, wait, send) silently throttles itself when
the service slows down, which flatters tail latency exactly when it
matters most — the coordinated-omission trap.  Here, a slow service
accumulates in-flight requests instead, and the p99 in the report is
the p99 a real caller population would have seen.  The one concession
is ``max_in_flight``: a hard cap on concurrent sockets so a wedged
service exhausts a semaphore, not the fd table; time spent queued on
that semaphore still counts toward the request's latency, so the cap
cannot hide a stall.

Storm control events are handled inline: ``storm_start`` arms a seeded
:class:`~repro.resilience.faultinject.FaultPlan` (process-global, so it
only reaches a service running *in this process* — the CLI warns and
skips storms when pointed at a remote ``--url``), ``storm_end``
disarms it.  The service's metrics endpoint is snapshotted before and
after the run so the report's cache/shed numbers are deltas for this
run alone.

The transport is a deliberately minimal HTTP/1.1 client over
``asyncio.open_connection`` — one connection per request with
``Connection: close``.  No pooling: pooling couples request N's
latency to request N-1's socket state, and at bench scale a loopback
TCP handshake is noise.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from ..resilience.faultinject import FaultPlan
from .generator import Schedule
from .slo import SLOTargets, SLOTracker

__all__ = ["drive", "DriveError"]


class DriveError(RuntimeError):
    """The run could not produce a report (bad URL, nothing sent)."""


def _split_url(url: str) -> Tuple[str, int]:
    parts = urlsplit(url)
    if parts.scheme not in ("http", ""):
        raise DriveError(f"only http:// targets are supported, got {url!r}")
    host = parts.hostname
    if not host:
        raise DriveError(f"target URL has no host: {url!r}")
    return host, parts.port or 80


async def _http_exchange(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[bytes],
    timeout: float,
) -> Tuple[int, Optional[dict]]:
    """One request/response over a fresh connection; returns
    ``(status, parsed_json_or_None)``."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head + payload)
        await asyncio.wait_for(writer.drain(), timeout)

        status_line = await asyncio.wait_for(reader.readline(), timeout)
        if not status_line:
            raise ConnectionError("empty response")
        status = int(status_line.split()[1])
        content_length: Optional[int] = None
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length is not None:
            raw = await asyncio.wait_for(
                reader.readexactly(content_length), timeout
            )
        else:  # Connection: close framing
            raw = await asyncio.wait_for(reader.read(), timeout)
        try:
            parsed = json.loads(raw) if raw else None
        except ValueError:
            parsed = None
        return status, parsed if isinstance(parsed, dict) else None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def _drive_async(
    schedule: Schedule,
    url: str,
    tracker: SLOTracker,
    *,
    arm_storms: bool,
    timeout_seconds: float,
    max_in_flight: int,
) -> float:
    """Dispatch the schedule; returns wall seconds (start → last reply)."""
    host, port = _split_url(url)
    semaphore = asyncio.Semaphore(max_in_flight)
    loop = asyncio.get_running_loop()

    async def send_one(spec) -> None:
        path = "/update" if spec.kind == "update" else "/query"
        scheduled = start + spec.offset
        async with semaphore:
            # Lag is measured inside the semaphore: if the cap is what
            # delayed us, that *is* harness lag and must be visible.
            begun = loop.time()
            tracker.observe_lag(begun - scheduled)
            body = json.dumps(spec.body).encode("utf-8")
            try:
                status, payload = await _http_exchange(
                    host, port, "POST", path, body, timeout_seconds
                )
            except asyncio.TimeoutError:
                tracker.observe_error(spec.kind, "timeout")
                return
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                tracker.observe_error(spec.kind, "connection")
                return
            tracker.observe(
                spec.kind, loop.time() - begun, status, payload
            )

    metrics_before: Optional[dict] = None
    try:
        _, metrics_before = await _http_exchange(
            host, port, "GET", "/metrics", None, timeout_seconds
        )
    except (ConnectionError, OSError, asyncio.TimeoutError) as error:
        raise DriveError(
            f"target {url} is not answering /metrics: {error}"
        ) from error

    tasks: List[asyncio.Task] = []
    active_plan: Optional[FaultPlan] = None
    start = loop.time()
    try:
        for spec in schedule.requests:
            delay = (start + spec.offset) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if spec.kind == "storm_start":
                if not arm_storms or active_plan is not None:
                    continue
                plan = FaultPlan.seeded(
                    int(spec.body.get("seed", 0)),
                    [str(p) for p in spec.body.get("points", [])],
                    probability=float(spec.body.get("probability", 0.3)),
                )
                try:
                    plan.__enter__()
                except RuntimeError:
                    # Another plan (a test fixture, say) is already
                    # active; the storm yields rather than fights.
                    continue
                active_plan = plan
                tracker.note_storm(True)
            elif spec.kind == "storm_end":
                if active_plan is not None:
                    active_plan.__exit__(None, None, None)
                    active_plan = None
            else:
                tasks.append(asyncio.ensure_future(send_one(spec)))
        if tasks:
            await asyncio.gather(*tasks)
    finally:
        if active_plan is not None:
            active_plan.__exit__(None, None, None)
    wall = loop.time() - start

    metrics_after: Optional[dict] = None
    try:
        _, metrics_after = await _http_exchange(
            host, port, "GET", "/metrics", None, timeout_seconds
        )
    except (ConnectionError, OSError, asyncio.TimeoutError):
        pass  # the report just loses its cache/shed deltas
    tracker.set_metrics_window(metrics_before, metrics_after)
    return wall


def drive(
    schedule: Schedule,
    url: str,
    *,
    targets: Optional[SLOTargets] = None,
    tracker: Optional[SLOTracker] = None,
    arm_storms: bool = True,
    timeout_seconds: float = 30.0,
    max_in_flight: int = 128,
) -> Dict[str, object]:
    """Run *schedule* against *url*; returns the SLO run report.

    Blocking wrapper around the asyncio driver — callable from the CLI,
    benches, and tests without an event loop of their own.  *url* must
    point at a frontend speaking the shared wire protocol (either the
    asyncio gateway or the threaded server).
    """
    if max_in_flight < 1:
        raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
    tracker = tracker or SLOTracker()
    wall = asyncio.run(
        _drive_async(
            schedule,
            url,
            tracker,
            arm_storms=arm_storms,
            timeout_seconds=timeout_seconds,
            max_in_flight=max_in_flight,
        )
    )
    return tracker.report(
        wall_seconds=wall,
        targets=targets,
        schedule_meta={
            "profile": schedule.profile,
            "seed": schedule.seed,
            "duration_seconds": schedule.duration_seconds,
            "target_qps": schedule.target_qps,
            "offered_qps": round(schedule.offered_qps, 3),
            "num_nodes": schedule.num_nodes,
            "events": len(schedule.requests),
        },
    )
