"""SLO accounting: fold per-response quality into one run report.

The serving stack already tells every client how good its answer was —
the stable 8-key ``quality`` block on each wire response (PR 7's
telemetry contract).  :class:`SLOTracker` is the consumer side of that
contract: the load driver feeds it one observation per request
(latency, HTTP status, parsed reply) plus the service's metrics
snapshots from both ends of the run, and it folds everything into a
structured, JSON-stable :class:`report <SLOTracker.report>`:

* latency quantiles (p50/p90/p99/max) vs the declared targets;
* degraded-answer rate, broken down by ``degraded_reason`` — a shed
  query, an expired deadline, and a dead shard are different incidents
  even though all three are "degraded";
* cache hit rate and shed rate over the run window (metric deltas, so
  a long-lived service's history does not pollute the run);
* error-budget burn: how much of the allowed badness this run spent.

The report's shape is a contract of its own — ``schema_version`` plus
a fixed key set, pinned by ``tests/test_metrics.py`` — because the CI
gate and the bench trajectory check both read it mechanically.

Everything is also mirrored into the ``loadgen.*`` metric namespace so
a run shows up in ``GET /metrics`` next to the service's own signals.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..service.metrics import get_registry

__all__ = ["SLOTargets", "SLOTracker", "REPORT_SCHEMA_VERSION"]

#: Bumped whenever the report's key set changes incompatibly.
REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SLOTargets:
    """Declared service-level objectives; ``None`` disables a gate.

    *degraded_rate* doubles as the error-budget denominator: a target
    of 0.05 over 1000 requests grants a budget of 50 degraded answers,
    and the report's ``error_budget.burn`` says what fraction this run
    spent (>1.0 is a breach).
    """

    p50_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    degraded_rate: Optional[float] = None
    error_rate: Optional[float] = None
    min_qps: Optional[float] = None

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "degraded_rate": self.degraded_rate,
            "error_rate": self.error_rate,
            "min_qps": self.min_qps,
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


class SLOTracker:
    """Accumulates per-request observations; renders one run report.

    Thread-safe: the asyncio driver is single-threaded, but the CLI's
    in-process mode may feed observations from worker callbacks, and a
    lock per observation is cheap at request granularity.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: List[float] = []
        self._lags: List[float] = []
        self._counts: Dict[str, int] = {
            "query": 0, "update": 0, "errors": 0, "degraded": 0,
            "shed": 0, "recovered": 0,
        }
        self._degraded_reasons: Dict[str, int] = {}
        self._error_types: Dict[str, int] = {}
        self._worlds_used = 0
        self._backend_fallbacks = 0
        self._confidence_sum = 0.0
        self._confidence_n = 0
        self._storms = 0
        self._metrics_before: Optional[dict] = None
        self._metrics_after: Optional[dict] = None

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(
        self,
        kind: str,
        latency_seconds: float,
        status: int,
        payload: Optional[dict],
    ) -> None:
        """Record one completed exchange (the reply may be an error)."""
        registry = get_registry()
        registry.counter("loadgen.requests").inc()
        registry.histogram("loadgen.latency_seconds").observe(
            latency_seconds
        )
        quality = (payload or {}).get("quality") or {}
        degraded = bool(quality.get("degraded"))
        reason = quality.get("degraded_reason") or ""
        shed = degraded and str(reason).startswith("shed:")
        with self._lock:
            self._latencies.append(latency_seconds)
            if kind in self._counts:
                self._counts[kind] += 1
            if status >= 400 or (payload or {}).get("error"):
                self._counts["errors"] += 1
                label = f"http_{status}" if status >= 400 else "reply_error"
                self._error_types[label] = (
                    self._error_types.get(label, 0) + 1
                )
                registry.counter("loadgen.errors").inc()
                return
            if degraded:
                self._counts["degraded"] += 1
                key = str(reason) or "unspecified"
                self._degraded_reasons[key] = (
                    self._degraded_reasons.get(key, 0) + 1
                )
                registry.counter("loadgen.degraded").inc()
            if shed:
                self._counts["shed"] += 1
            self._counts["recovered"] += int(
                quality.get("shards_recovered") or 0
            )
            self._worlds_used += int(quality.get("worlds_used") or 0)
            # Not part of the 8-key quality block, but on every query
            # result: how often the numpy fast path died and the python
            # reference re-ran the batch.  Under a fault storm this is
            # the healed-not-degraded signal.
            self._backend_fallbacks += int(
                (payload or {}).get("backend_fallbacks") or 0
            )
            confidence = quality.get("achieved_confidence")
            if confidence is not None:
                self._confidence_sum += float(confidence)
                self._confidence_n += 1

    def observe_error(self, kind: str, error_type: str) -> None:
        """Record a transport-level failure (no HTTP reply at all)."""
        get_registry().counter("loadgen.errors").inc()
        with self._lock:
            if kind in self._counts:
                self._counts[kind] += 1
            self._counts["errors"] += 1
            self._error_types[error_type] = (
                self._error_types.get(error_type, 0) + 1
            )

    def observe_lag(self, seconds: float) -> None:
        """Dispatch lag: scheduled offset vs actual send time.  Large
        lags mean the *harness* fell behind — the open-loop promise
        broke and every latency after that point is suspect."""
        get_registry().histogram("loadgen.lag_seconds").observe(
            max(seconds, 0.0)
        )
        with self._lock:
            self._lags.append(max(seconds, 0.0))

    def note_storm(self, active: bool) -> None:
        if active:
            get_registry().counter("loadgen.storms").inc()
            with self._lock:
                self._storms += 1

    def set_metrics_window(
        self, before: Optional[dict], after: Optional[dict]
    ) -> None:
        """Service metrics snapshots bracketing the run (for deltas)."""
        with self._lock:
            self._metrics_before = before
            self._metrics_after = after

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @staticmethod
    def _cache_stats(snapshot: Optional[dict]) -> Dict[str, float]:
        service = (snapshot or {}).get("service") or {}
        stats = service.get("result_cache") or {}
        return {
            "hits": stats.get("hits", 0),
            "misses": stats.get("misses", 0),
        }

    @staticmethod
    def _counter(snapshot: Optional[dict], name: str) -> float:
        return ((snapshot or {}).get("counters") or {}).get(name, 0)

    def report(
        self,
        *,
        wall_seconds: float,
        targets: Optional[SLOTargets] = None,
        schedule_meta: Optional[dict] = None,
    ) -> Dict[str, object]:
        """The structured run report (see the module docstring)."""
        targets = targets or SLOTargets()
        with self._lock:
            latencies = sorted(self._latencies)
            lags = sorted(self._lags)
            counts = dict(self._counts)
            degraded_reasons = dict(
                sorted(self._degraded_reasons.items())
            )
            error_types = dict(sorted(self._error_types.items()))
            worlds_used = self._worlds_used
            backend_fallbacks = self._backend_fallbacks
            confidence_sum = self._confidence_sum
            confidence_n = self._confidence_n
            storms = self._storms
            before, after = self._metrics_before, self._metrics_after

        completed = len(latencies)
        achieved_qps = completed / wall_seconds if wall_seconds > 0 else 0.0
        degraded_rate = counts["degraded"] / completed if completed else 0.0
        error_rate = counts["errors"] / completed if completed else 0.0
        shed_rate = counts["shed"] / completed if completed else 0.0

        cache_before = self._cache_stats(before)
        cache_after = self._cache_stats(after)
        cache_hits = cache_after["hits"] - cache_before["hits"]
        cache_misses = cache_after["misses"] - cache_before["misses"]
        cache_total = cache_hits + cache_misses
        shed_served = (
            self._counter(after, "service.shed")
            - self._counter(before, "service.shed")
        )

        budget_target = targets.degraded_rate
        allowed_bad = (
            budget_target * completed if budget_target is not None else None
        )
        bad = counts["degraded"] + counts["errors"]
        burn = (
            bad / allowed_bad
            if allowed_bad
            else (None if allowed_bad is None else float(bad > 0))
        )

        report: Dict[str, object] = {
            "schema_version": REPORT_SCHEMA_VERSION,
            "schedule": schedule_meta or {},
            "wall_seconds": round(wall_seconds, 4),
            "requests": {
                "completed": completed,
                "queries": counts["query"],
                "updates": counts["update"],
                "errors": counts["errors"],
                "degraded": counts["degraded"],
                "shed": counts["shed"],
                "recovered_answers": counts["recovered"],
                "storms": storms,
            },
            "throughput": {
                "achieved_qps": round(achieved_qps, 3),
            },
            "latency_ms": {
                label: round(_percentile(latencies, q) * 1000.0, 3)
                for label, q in (
                    ("p50", 0.50), ("p90", 0.90), ("p99", 0.99),
                    ("max", 1.0),
                )
            },
            "open_loop": {
                "p99_lag_ms": round(
                    _percentile(lags, 0.99) * 1000.0, 3
                ),
                "max_lag_ms": round(
                    _percentile(lags, 1.0) * 1000.0, 3
                ),
            },
            "degraded": {
                "rate": round(degraded_rate, 5),
                "by_reason": degraded_reasons,
            },
            "errors": {
                "rate": round(error_rate, 5),
                "by_type": error_types,
            },
            "shed": {
                "rate": round(shed_rate, 5),
                "served_by_service": shed_served,
            },
            "cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": (
                    round(cache_hits / cache_total, 5) if cache_total else 0.0
                ),
            },
            "quality": {
                "worlds_used_total": worlds_used,
                "backend_fallbacks": backend_fallbacks,
                "mean_achieved_confidence": (
                    round(confidence_sum / confidence_n, 5)
                    if confidence_n else 0.0
                ),
            },
            "error_budget": {
                "target_degraded_rate": budget_target,
                "allowed_bad": allowed_bad,
                "spent_bad": bad,
                "burn": round(burn, 4) if burn is not None else None,
            },
        }
        report["gates"] = self._gates(report, targets)
        return report

    @staticmethod
    def _gates(
        report: Dict[str, object], targets: SLOTargets
    ) -> Dict[str, object]:
        """Evaluate every declared target against the report."""
        breaches: List[str] = []
        latency = report["latency_ms"]
        throughput = report["throughput"]
        checks = (
            ("p50_ms", targets.p50_ms, latency["p50"], "<="),
            ("p99_ms", targets.p99_ms, latency["p99"], "<="),
            (
                "degraded_rate", targets.degraded_rate,
                report["degraded"]["rate"], "<=",
            ),
            (
                "error_rate", targets.error_rate,
                report["errors"]["rate"], "<=",
            ),
            (
                "min_qps", targets.min_qps,
                throughput["achieved_qps"], ">=",
            ),
        )
        for name, target, actual, direction in checks:
            if target is None:
                continue
            ok = actual <= target if direction == "<=" else actual >= target
            if not ok:
                breaches.append(
                    f"{name}: {actual:g} violates {direction} {target:g}"
                )
        return {
            "targets": targets.as_dict(),
            "breaches": breaches,
            "ok": not breaches,
        }
