"""Deterministic seed derivation for fan-out workloads.

Whenever one user-supplied seed has to feed *several* random streams —
the per-query seeds of an evaluation workload, the per-rebuild seeds of
the dynamic index, the per-query verification streams of the serving
layer — deriving children as ``seed + i`` risks stream overlap: two
nearby root seeds (say 0 and 1) produce child sets that share almost
every member, so "independent" experiment repetitions silently reuse
most of their randomness.

This module fixes one scheme, used everywhere a seed fans out:

* The root entropy of a child stream is
  ``numpy.random.SeedSequence([root, *key])`` where ``key`` is a tuple
  of integers identifying the child (a namespace tag hashed to an int,
  then indices such as the query number).  ``SeedSequence`` mixes its
  entropy words through hashing, so children of *any* two distinct
  ``(root, key)`` pairs are statistically independent — no overlap
  between nearby roots, no correlation between adjacent indices.
* A *derived seed* is the first 64-bit word of
  ``SeedSequence.generate_state`` — a plain ``int`` usable by both
  ``random.Random`` and ``numpy.random.default_rng``, so python and
  numpy backends stay seedable by the same value.
* Bulk fan-out (:func:`spawn_seeds`) enumerates indices ``0..n-1``
  under one key, matching ``SeedSequence.spawn`` semantics (each child
  is keyed by its spawn position) while keeping the children
  individually re-derivable: ``spawn_seeds(root, n, tag)[i] ==
  derive_seed(root, tag, i)``.

The scheme is pinned by ``tests/test_seeding.py`` (stability across
calls and processes, no collisions across a large fan-out) and
documented in DESIGN.md ("Seed streams").

When numpy is unavailable the same interface is served by a SHA-256
fallback with the identical independence properties; the two
implementations produce *different* (both deterministic) streams, which
is acceptable because every environment runs exactly one of them.
"""

from __future__ import annotations

import hashlib
from typing import List, Union

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    _np = None  # type: ignore[assignment]

__all__ = ["derive_seed", "spawn_seeds"]

#: Derived seeds are 63-bit non-negative ints: valid for
#: ``random.Random``, ``numpy.random.default_rng`` and JSON round-trips.
_SEED_BITS = 63


def _key_word(part: Union[int, str]) -> int:
    """Map one key component to a non-negative entropy word.

    String tags (namespaces like ``"harness.query"``) are hashed with
    SHA-256 so the entropy word is stable across processes — python's
    built-in ``hash`` is salted per process and must not leak into
    seeds.
    """
    if isinstance(part, int):
        # SeedSequence entropy words must be non-negative; fold the
        # sign bit in a collision-free way.
        return part if part >= 0 else (abs(part) << 1) | 1
    digest = hashlib.sha256(part.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_seed(root: int, *key: Union[int, str]) -> int:
    """One child seed for stream ``key`` under *root*.

    ``key`` identifies the child stream: a string namespace tag
    followed by integer indices, e.g. ``derive_seed(seed,
    "harness.query", query_index)``.  Distinct ``(root, key)`` pairs
    give statistically independent streams; identical pairs always give
    the same seed.
    """
    words = [_key_word(root)] + [_key_word(part) for part in key]
    if _np is not None:
        state = _np.random.SeedSequence(words).generate_state(1, _np.uint64)
        return int(state[0]) & ((1 << _SEED_BITS) - 1)
    payload = b"repro.seeding\x00" + b"\x00".join(  # pragma: no cover
        word.to_bytes(16, "big") for word in words
    )
    digest = hashlib.sha256(payload).digest()  # pragma: no cover
    return int.from_bytes(digest[:8], "big") & (  # pragma: no cover
        (1 << _SEED_BITS) - 1
    )


def spawn_seeds(root: int, n: int, *key: Union[int, str]) -> List[int]:
    """*n* child seeds under ``key``, one per index ``0..n-1``.

    ``spawn_seeds(root, n, tag)[i] == derive_seed(root, tag, i)`` — the
    bulk form exists so call sites that fan out a whole workload read
    as one operation (mirroring ``SeedSequence.spawn``).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return [derive_seed(root, *key, index) for index in range(n)]
