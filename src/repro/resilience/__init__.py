"""Resilience: query budgets, graceful degradation, fault injection.

Production reliability search must degrade, not die.  This package
holds the three legs of that contract:

* :mod:`repro.resilience.budget` — :class:`QueryBudget` (wall-clock
  deadline, world cap, candidate-subgraph cap) and the per-node
  verification statuses (:data:`CONFIRMED` / :data:`REJECTED` /
  :data:`UNVERIFIED`) that budgeted queries report instead of raising;
* automatic backend fallback — the sampling estimator retries any
  failing numpy kernel chunk on the pure-Python reference path (see
  :class:`repro.graph.sampling.ReachabilityFrequencyEstimator`), so
  ``backend="auto"`` can never fail harder than the Python seed code;
* :mod:`repro.resilience.faultinject` — named, deterministic injection
  points (:class:`FaultPlan`) with which the test suite proves every
  degradation path end to end.
"""

from .budget import (
    CONFIRMED,
    REJECTED,
    UNVERIFIED,
    BudgetClock,
    QueryBudget,
    wilson_interval,
)
from .faultinject import INJECTION_POINTS, FaultPlan, fault_point

__all__ = [
    "CONFIRMED",
    "REJECTED",
    "UNVERIFIED",
    "QueryBudget",
    "BudgetClock",
    "wilson_interval",
    "INJECTION_POINTS",
    "FaultPlan",
    "fault_point",
]
