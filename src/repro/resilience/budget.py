"""Query budgets: bounded-cost execution with graceful degradation.

The paper's whole pitch is *bounded-cost* approximate reliability search
— exact reliability is #P-complete, so the RQ-tree trades accuracy for
speed.  :class:`QueryBudget` makes that trade-off explicit at the query
boundary: a wall-clock deadline, a world cap for the MC verifier, and a
cap on the candidate subgraph verification may process.  A budgeted
query never raises on expiry — it returns a partial result in which
every candidate carries one of three statuses:

* :data:`CONFIRMED` — certified (LB) or decided above ``eta`` (MC) to be
  an answer;
* :data:`REJECTED` — decided to fall below ``eta``;
* :data:`UNVERIFIED` — the budget ran out before a verdict; the node is
  still a *candidate* (candidate generation admits no false negatives),
  just an unscreened one.

Budgeted MC verification is chunked and uses the Wilson score interval
(:func:`wilson_interval`) to settle nodes early: once a node's interval
clears ``eta`` on either side at the budget's confidence level, its
verdict is final and sampling can stop as soon as no node is undecided.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = [
    "CONFIRMED",
    "REJECTED",
    "UNVERIFIED",
    "QueryBudget",
    "BudgetClock",
    "wilson_interval",
]

#: Per-node verification statuses reported by budgeted queries.
CONFIRMED = "confirmed"
REJECTED = "rejected"
UNVERIFIED = "unverified-candidate"

#: z-scores for the confidence levels budgeted MC supports out of the
#: box; other levels fall back to a rational approximation.
_Z_TABLE = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_score(confidence: float) -> float:
    try:
        return _Z_TABLE[round(confidence, 4)]
    except KeyError:
        pass
    # Beasley-Springer-Moro-lite: accurate to ~1e-3 over (0.5, 0.9995),
    # plenty for an early-stopping heuristic whose soundness does not
    # depend on the exact z.
    p = 1.0 - (1.0 - confidence) / 2.0
    t = math.sqrt(-2.0 * math.log(1.0 - p))
    return t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t)


def wilson_interval(hits: int, trials: int, confidence: float = 0.95
                    ) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because it behaves at the
    extremes (``hits`` near 0 or ``trials``) — exactly where reliability
    verification lives, most candidates being either solidly reachable
    or solidly not.
    """
    if trials <= 0:
        return 0.0, 1.0
    z = _z_score(confidence)
    p_hat = hits / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p_hat + z2 / (2.0 * trials)) / denom
    half = (z / denom) * math.sqrt(
        p_hat * (1.0 - p_hat) / trials + z2 / (4.0 * trials * trials)
    )
    return max(0.0, centre - half), min(1.0, centre + half)


@dataclass(frozen=True)
class QueryBudget:
    """Resource limits for one reliability-search query.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock budget for the whole query (filtering +
        verification).  ``None`` means unlimited.
    max_worlds:
        Cap on the number of possible worlds the MC verifier may
        sample, whatever ``num_samples`` asks for.
    max_candidate_nodes:
        Cap on the candidate-subgraph size verification will process.
        Candidates beyond the cap (sources are kept first, then
        ascending node id) are reported :data:`UNVERIFIED` instead of
        being verified.  The *candidate set itself* is never shrunk —
        that would break the no-false-negatives guarantee.
    confidence:
        Confidence level of the per-node early-stopping intervals in
        budgeted MC verification.
    """

    deadline_seconds: Optional[float] = None
    max_worlds: Optional[int] = None
    max_candidate_nodes: Optional[int] = None
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got {self.deadline_seconds}"
            )
        if self.max_worlds is not None and self.max_worlds < 1:
            raise ValueError(
                f"max_worlds must be >= 1, got {self.max_worlds}"
            )
        if self.max_candidate_nodes is not None and self.max_candidate_nodes < 1:
            raise ValueError(
                f"max_candidate_nodes must be >= 1, got {self.max_candidate_nodes}"
            )
        if not 0.5 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0.5, 1), got {self.confidence}"
            )

    def start(self) -> "BudgetClock":
        """Start the wall clock; the returned clock is what the pipeline
        threads through its phases, so the deadline spans all of them."""
        return BudgetClock(self)


class BudgetClock:
    """A started :class:`QueryBudget`: limits plus an anchored clock."""

    __slots__ = ("budget", "started_at")

    def __init__(self, budget: QueryBudget) -> None:
        self.budget = budget
        self.started_at = time.perf_counter()

    @staticmethod
    def ensure(
        budget: Union["QueryBudget", "BudgetClock", None]
    ) -> Optional["BudgetClock"]:
        """Normalize a ``budget=`` argument: accept a plain
        :class:`QueryBudget` (started now) or an already-running clock
        (shared across pipeline phases)."""
        if budget is None or isinstance(budget, BudgetClock):
            return budget
        return budget.start()

    def elapsed(self) -> float:
        """Seconds since the budget was started."""
        return time.perf_counter() - self.started_at

    def expired(self) -> bool:
        """Whether the wall-clock deadline has passed."""
        deadline = self.budget.deadline_seconds
        return deadline is not None and self.elapsed() >= deadline

    def remaining_seconds(self) -> float:
        """Seconds left before the deadline (``inf`` if none)."""
        deadline = self.budget.deadline_seconds
        if deadline is None:
            return math.inf
        return max(0.0, deadline - self.elapsed())
