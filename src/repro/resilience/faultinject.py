"""Deterministic fault injection for resilience testing.

The library's degradation machinery (backend fallback, partial results,
typed error surfaces) is only trustworthy if every path is *provoked*
under test, not just reasoned about.  This module compiles named
injection points into the hot paths — each one a single dict lookup when
no plan is active, so production cost is negligible — and lets tests arm
them deterministically:

    plan = FaultPlan({"mc.kernel.chunk": "always"})
    with plan:
        engine.query(0, eta=0.5, method="mc", backend="auto")
    assert plan.hits("mc.kernel.chunk") > 0

A trigger is either ``"always"`` (every hit raises), an integer ``N``
(only the Nth hit raises, 1-based), or a collection of hit numbers.
:meth:`FaultPlan.seeded` draws per-hit Bernoulli decisions from a seeded
``random.Random`` so stochastic fault storms are reproducible run to
run.

Plans are installed process-globally (the library's samplers and engines
share no handle a plan could ride on); nesting and threading are not
supported — this is a test harness, not a chaos-engineering service.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Mapping, Optional, Union

from ..errors import InjectedFault

__all__ = ["INJECTION_POINTS", "FaultPlan", "fault_point"]

#: Every injection point compiled into the library.  Arming an unknown
#: name is a hard error (it would silently never fire).
INJECTION_POINTS = frozenset(
    {
        # repro.accel.csr.csr_snapshot: building/fetching the cached CSR
        # snapshot the numpy kernels run on.
        "csr.snapshot",
        # repro.accel.mc_kernel.sample_reach_batch: once per world chunk
        # of the batched MC kernel ("always" kills every chunk).
        "mc.kernel.chunk",
        # repro.core.candidates.generate_candidates: entry of the
        # filtering phase.
        "candidates.generate",
        # repro.core.rqtree.RQTree.to_json / from_json: index
        # (de)serialization.
        "rqtree.serialize",
        "rqtree.deserialize",
        # repro.shard.runtime.ShardRuntime.handle: entry of one shard's
        # sub-query (plans are process-global, so this only reaches
        # inline-mode shards — see repro.shard.worker).
        "shard.handle",
        # repro.shard.runtime.ShardRuntime.apply_updates: entry of one
        # shard's update-slice application (live update plane).
        "shard.update",
        # repro.shard.supervisor.ShardSupervisor: the recovery
        # transitions of the per-shard state machine.  All four run in
        # the *gateway* process (monitor thread or waiting query
        # thread), so plans reach them in both shard modes.
        "supervisor.respawn",     # fails a respawn attempt (backoff/park)
        "supervisor.probe",       # fails the half-open probe (re-open)
        "supervisor.hedge",       # fails a hedged-lane promotion
        "supervisor.redispatch",  # fails an in-flight redispatch
    }
)

Trigger = Union[str, int, Iterable[int]]

#: The currently installed plan, if any (module-global by design).
_ACTIVE: Optional["FaultPlan"] = None


class FaultPlan:
    """A deterministic schedule of injected faults.

    Parameters
    ----------
    triggers:
        Maps injection-point names (members of
        :data:`INJECTION_POINTS`) to a trigger: ``"always"``, an int
        ``N`` (raise on the Nth hit only, counting from 1), or a
        collection of hit numbers.
    """

    def __init__(self, triggers: Mapping[str, Trigger]) -> None:
        unknown = set(triggers) - INJECTION_POINTS
        if unknown:
            raise ValueError(
                f"unknown injection point(s) {sorted(unknown)}; "
                f"known: {sorted(INJECTION_POINTS)}"
            )
        self._triggers: Dict[str, Trigger] = {}
        for name, trigger in triggers.items():
            if isinstance(trigger, str):
                if trigger != "always":
                    raise ValueError(
                        f"string trigger for {name!r} must be 'always', "
                        f"got {trigger!r}"
                    )
                self._triggers[name] = trigger
            elif isinstance(trigger, int):
                if trigger < 1:
                    raise ValueError(
                        f"hit number for {name!r} must be >= 1, got {trigger}"
                    )
                self._triggers[name] = trigger
            else:
                self._triggers[name] = frozenset(int(n) for n in trigger)
        self._hit_counts: Dict[str, int] = {}

    @classmethod
    def seeded(
        cls,
        seed: int,
        points: Iterable[str],
        probability: float = 0.5,
        horizon: int = 10_000,
    ) -> "FaultPlan":
        """A reproducible random storm: each of the first *horizon* hits
        of every point in *points* fails independently with
        *probability*, decided once up front by ``random.Random(seed)``
        so the schedule is identical on every run.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        rng = random.Random(seed)
        triggers: Dict[str, Trigger] = {}
        for name in points:
            triggers[name] = frozenset(
                hit for hit in range(1, horizon + 1)
                if rng.random() < probability
            )
        return cls(triggers)

    # ------------------------------------------------------------------
    # Introspection (for test assertions)
    # ------------------------------------------------------------------
    def hits(self, name: str) -> int:
        """How many times injection point *name* was reached so far."""
        return self._hit_counts.get(name, 0)

    def reset(self) -> None:
        """Zero the hit counters (the trigger schedule is unchanged)."""
        self._hit_counts.clear()

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultPlan":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a FaultPlan is already active; nesting "
                               "is not supported")
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = None

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def _observe(self, name: str) -> None:
        hit = self._hit_counts.get(name, 0) + 1
        self._hit_counts[name] = hit
        trigger = self._triggers.get(name)
        if trigger is None:
            return
        if trigger == "always":
            raise InjectedFault(name, hit)
        if isinstance(trigger, int):
            if hit == trigger:
                raise InjectedFault(name, hit)
        elif hit in trigger:
            raise InjectedFault(name, hit)


def fault_point(name: str) -> None:
    """Declare an injection point; raises :class:`InjectedFault` when an
    active :class:`FaultPlan` schedules a fault for this hit.

    A no-op (one global read) when no plan is installed, so the library
    sprinkles these on hot paths freely.
    """
    plan = _ACTIVE
    if plan is not None:
        plan._observe(name)
