"""The sampled-worlds index: the "other" pre-computation strategy.

The RQ-tree spends its offline budget on *structure* (a hierarchy of
cuts) and keeps probability evaluation online.  The obvious competing
design spends the offline budget on *probability* instead: sample ``K``
possible worlds once, store them, and answer every query by determinis-
tic reachability over the stored worlds.  This is the pre-computed
variant of the MC-Sampling baseline — same estimates, no sampling at
query time, fully deterministic and repeatable answers.

Trade-offs versus the RQ-tree (measured in
``benchmarks/bench_worldindex.py``):

* storage is ``O(K · E[world arcs])`` — orders of magnitude above the
  RQ-tree's ``O(n log n)`` member lists at useful ``K``;
* query time is ``O(K (ñ_w))`` where ``ñ_w`` is the reached set per
  world — like online MC, it does not enjoy the RQ-tree's locality;
* accuracy equals MC-Sampling with the same ``K`` by construction;
* any world-measurable query (hop bounds, counting, spread) is
  answerable from the same stored worlds.

Keeping both designs in the library makes the paper's central bet
concrete: *structure beats stored samples when queries are local*.
"""

from __future__ import annotations

import json
import random
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Union

from ..errors import (
    EmptySourceSetError,
    GraphError,
    InvalidThresholdError,
    NodeNotFoundError,
)
from ..graph.uncertain import UncertainGraph

__all__ = ["WorldIndex"]

PathLike = Union[str, Path]


class WorldIndex:
    """A reliability-search index of ``K`` pre-sampled possible worlds.

    Parameters
    ----------
    graph:
        The uncertain graph (kept only for node count validation).
    num_worlds:
        How many worlds to sample and store (the accuracy knob, like
        the MC baseline's ``K``).
    seed:
        Sampling seed; the index is deterministic given it.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        num_worlds: int = 1000,
        seed: int = 0,
    ) -> None:
        if num_worlds <= 0:
            raise ValueError(f"num_worlds must be positive, got {num_worlds}")
        self.num_nodes = graph.num_nodes
        self.num_worlds = num_worlds
        self.seed = seed
        rng = random.Random(seed)
        arcs = list(graph.arcs())
        # worlds[w] is a successor map {u: [v, ...]} holding only the
        # arcs that exist in world w.
        self.worlds: List[Dict[int, List[int]]] = []
        for _ in range(num_worlds):
            adjacency: Dict[int, List[int]] = {}
            rng_random = rng.random
            for u, v, p in arcs:
                if rng_random() < p:
                    adjacency.setdefault(u, []).append(v)
            self.worlds.append(adjacency)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _count_reached(
        self,
        sources: Sequence[int],
        max_hops: Optional[int],
    ) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for adjacency in self.worlds:
            frontier = list(dict.fromkeys(sources))
            seen = set(frontier)
            depth = 0
            while frontier:
                if max_hops is not None and depth >= max_hops:
                    break
                next_frontier: List[int] = []
                for u in frontier:
                    for v in adjacency.get(u, ()):
                        if v not in seen:
                            seen.add(v)
                            next_frontier.append(v)
                frontier = next_frontier
                depth += 1
            for node in seen:
                counts[node] = counts.get(node, 0) + 1
        return counts

    def _normalize(self, sources: Union[int, Sequence[int]]) -> List[int]:
        source_list = (
            [sources] if isinstance(sources, int)
            else list(dict.fromkeys(sources))
        )
        if not source_list:
            raise EmptySourceSetError()
        for s in source_list:
            if not 0 <= s < self.num_nodes:
                raise NodeNotFoundError(s)
        return source_list

    def query(
        self,
        sources: Union[int, Sequence[int]],
        eta: float,
        max_hops: Optional[int] = None,
    ) -> Set[int]:
        """Answer ``RS(S, eta)`` over the stored worlds (deterministic)."""
        import math

        if math.isnan(eta) or not 0.0 < eta < 1.0:
            raise InvalidThresholdError(eta)
        source_list = self._normalize(sources)
        counts = self._count_reached(source_list, max_hops)
        threshold = eta * self.num_worlds
        return {node for node, count in counts.items() if count >= threshold}

    def reliability(
        self,
        sources: Union[int, Sequence[int]],
        target: int,
        max_hops: Optional[int] = None,
    ) -> float:
        """Estimated ``R(S, t)`` (the stored-worlds hit frequency)."""
        source_list = self._normalize(sources)
        if not 0 <= target < self.num_nodes:
            raise NodeNotFoundError(target)
        counts = self._count_reached(source_list, max_hops)
        return counts.get(target, 0) / self.num_worlds

    def expected_spread(self, seeds: Union[int, Sequence[int]]) -> float:
        """IC-model expected spread over the stored worlds."""
        seed_list = self._normalize(seeds)
        counts = self._count_reached(seed_list, None)
        return sum(counts.values()) / self.num_worlds

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    def storage_size_estimate(self) -> int:
        """Approximate index footprint in bytes (8 bytes per stored arc)."""
        stored_arcs = sum(
            len(successors)
            for adjacency in self.worlds
            for successors in adjacency.values()
        )
        return 8 * stored_arcs + 16 * sum(len(w) for w in self.worlds)

    def to_json(self) -> dict:
        """JSON-serializable representation (arcs per world)."""
        return {
            "format": "repro-world-index",
            "version": 1,
            "num_nodes": self.num_nodes,
            "num_worlds": self.num_worlds,
            "seed": self.seed,
            "worlds": [
                sorted(
                    (u, v)
                    for u, successors in adjacency.items()
                    for v in successors
                )
                for adjacency in self.worlds
            ],
        }

    @classmethod
    def from_json(cls, document: dict) -> "WorldIndex":
        """Rebuild an index from :meth:`to_json` output."""
        if document.get("format") != "repro-world-index":
            raise GraphError(
                f"unrecognized index format {document.get('format')!r}"
            )
        index = cls.__new__(cls)
        index.num_nodes = int(document["num_nodes"])
        index.num_worlds = int(document["num_worlds"])
        index.seed = int(document["seed"])
        index.worlds = []
        for world in document["worlds"]:
            adjacency: Dict[int, List[int]] = {}
            for u, v in world:
                adjacency.setdefault(int(u), []).append(int(v))
            index.worlds.append(adjacency)
        if len(index.worlds) != index.num_worlds:
            raise GraphError("world count mismatch in serialized index")
        return index

    def save(self, destination: PathLike) -> None:
        """Write the index as JSON."""
        with Path(destination).open("w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle)

    @classmethod
    def load(cls, source: PathLike) -> "WorldIndex":
        """Read an index written by :meth:`save`."""
        with Path(source).open("r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorldIndex(n={self.num_nodes}, K={self.num_worlds})"
        )
