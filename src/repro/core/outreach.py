"""Outreach-probability upper bound ``U_out`` (paper, Section 4.1).

The outreach probability ``R_out(S, C)`` (Definition 1) is the probability
that the source set ``S ⊆ C`` reaches at least one node outside the
cluster ``C``.  Theorems 1-2 bound it by the *most-likely cut*:

.. math::

    R_out(S, C) \\le U_out(S, C) = 1 - \\exp(-f^*),

where ``f*`` is the max-flow from ``S`` to the cluster's outside boundary
on the graph with capacities ``c(a) = -log(1 - p(a))``.  Observation 3
restricts the computation to the subgraph induced by ``C`` plus its
one-hop outside boundary ``C̄'``, which is what makes candidate
generation fast (the ``ñ, m̃ ≪ n, m`` of Table 1).

This module also provides the *general* upper bound of Theorem 5
(:func:`general_outreach_upper_bound`) used by the index builder, and the
Lemma 1 combination rule (:func:`combine_upper_bounds`) used by
multi-source candidate generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import EmptySourceSetError, NodeNotFoundError
from ..flow.mincut import multi_terminal_max_flow
from ..graph.uncertain import UncertainGraph

__all__ = [
    "OutreachComputation",
    "capacity_of",
    "outreach_upper_bound",
    "general_outreach_upper_bound",
    "combine_upper_bounds",
]


def _inflate(bound: float) -> float:
    """Nudge a computed upper bound up past float round-off.

    ``U_out`` travels through a log/exp round trip (capacities are
    ``-log(1-p)``, the bound is ``1 - exp(-f*)``), which can land the
    result one ulp *below* the mathematically exact value.  The
    no-false-negative guarantee (Observation 1) requires a true upper
    bound, so every computed bound is inflated by a tiny relative
    epsilon before comparisons against eta.
    """
    return min(1.0, bound * (1.0 + 1e-9) + 1e-12)


def capacity_of(p: float) -> float:
    """Arc capacity ``-log(1 - p)``; ``p = 1`` maps to infinity."""
    if p >= 1.0:
        return math.inf
    return -math.log(1.0 - p)


@dataclass
class OutreachComputation:
    """Result of one Algorithm-1 invocation, with instrumentation.

    Attributes
    ----------
    upper_bound:
        The value ``U_out(S, C)`` (or the cheaper Theorem-5 bound when
        it already fell below the early-accept threshold).
    max_flow:
        The raw max-flow value ``f*`` (``inf`` when ``U_out = 1``;
        ``nan`` when the flow was skipped via the cheap bound).
    subgraph_nodes / subgraph_arcs:
        The ``ñ`` and ``m̃`` of Table 1: the size of the boundary
        subgraph the flow ran on (or would have run on).
    used_flow:
        Whether a max-flow was actually solved.
    """

    upper_bound: float
    max_flow: float
    subgraph_nodes: int
    subgraph_arcs: int
    used_flow: bool = True


def outreach_upper_bound(
    graph: UncertainGraph,
    sources: Sequence[int],
    cluster: "Set[int] | frozenset",
    engine: str = "dinic",
    cheap_accept_below: Optional[float] = None,
) -> OutreachComputation:
    """Algorithm 1: compute ``U_out(S, C)`` via max-flow.

    Parameters
    ----------
    graph:
        The full uncertain graph.
    sources:
        Query sources; must all lie inside *cluster*.
    cluster:
        The cluster ``C`` as a set of node ids.
    engine:
        Max-flow engine name (``"dinic"`` or ``"push_relabel"``).
    cheap_accept_below:
        Optional early-accept threshold (normally the query's ``η``):
        while scanning the boundary, the source-independent Theorem-5
        bound ``Ū_out(C) ≥ U_out(S, C)`` is accumulated, and if it ends
        up below this value the max-flow solve is skipped and the cheap
        bound returned.  Any upper bound below ``η`` certifies the
        cluster (Observation 1), so candidate generation stays sound —
        only the *reported* bound is looser.

    Notes
    -----
    Algorithm 1 builds the subgraph on ``C ∪ C̄'`` where
    ``C̄' = {v ∉ C : ∃ u ∈ C, (u, v) ∈ A}``.  We include exactly the
    arcs with tail in ``C`` (and head in ``C ∪ C̄'``): arcs between two
    boundary nodes or re-entering ``C`` from the boundary cannot carry
    any flow towards the sink (boundary nodes drain straight into the
    dummy sink through infinite-capacity arcs), so dropping them leaves
    ``f*`` unchanged while shrinking ``m̃``.
    """
    source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise EmptySourceSetError()
    for s in source_list:
        if s not in graph:
            raise NodeNotFoundError(s)
        if s not in cluster:
            raise ValueError(f"source {s} must lie inside the cluster")

    # Line 1: the outside boundary C̄' (accumulating the Theorem-5 bound
    # as we go).
    boundary: Set[int] = set()
    arcs: List[Tuple[int, int, float]] = []
    boundary_log_survive = 0.0
    for u in cluster:
        for v, p in graph.successors(u).items():
            if v not in cluster:
                boundary.add(v)
                boundary_log_survive += math.log(max(1.0 - p, 1e-300))
            arcs.append((u, v, p))
    if not boundary:
        # The cluster has no outgoing arcs (e.g. it is the whole node
        # set): nothing outside is ever reachable.
        return OutreachComputation(0.0, 0.0, len(cluster), len(arcs))
    if cheap_accept_below is not None:
        cheap_bound = _inflate(1.0 - math.exp(boundary_log_survive))
        if cheap_bound < cheap_accept_below:
            return OutreachComputation(
                upper_bound=cheap_bound,
                max_flow=math.nan,
                subgraph_nodes=len(cluster) + len(boundary),
                subgraph_arcs=len(arcs),
                used_flow=False,
            )

    # Lines 2-4: relabel C ∪ C̄' densely and capacitate.
    involved = list(cluster) + list(boundary)
    local_of: Dict[int, int] = {node: i for i, node in enumerate(involved)}
    capacitated = [
        (local_of[u], local_of[v], capacity_of(p)) for u, v, p in arcs
    ]

    # Lines 5-6: max-flow from S to C̄' (dummy source/sink reduction).
    flow_value, _, _, _ = multi_terminal_max_flow(
        len(involved),
        capacitated,
        [local_of[s] for s in source_list],
        [local_of[b] for b in boundary],
        engine=engine,
    )
    if math.isinf(flow_value):
        upper = 1.0
    else:
        upper = _inflate(1.0 - math.exp(-flow_value))
    return OutreachComputation(
        upper_bound=upper,
        max_flow=flow_value,
        subgraph_nodes=len(involved),
        subgraph_arcs=len(arcs),
    )


def general_outreach_upper_bound(
    graph: UncertainGraph, cluster: Iterable[int]
) -> float:
    """Theorem 5: source-independent bound ``Ū_out(C)``.

    ``Ū_out(C) = 1 - Π over outgoing arcs (u, v), u ∈ C, v ∉ C of
    (1 - p(u, v))`` — valid for *every* source subset of ``C``.  The
    index builder minimizes this quantity (through the ratio-cut
    reduction of Theorem 6); it is also a handy cheap screen in tests.
    """
    cluster_set = set(cluster)
    log_survive = 0.0
    for u in cluster_set:
        for v, p in graph.successors(u).items():
            if v not in cluster_set:
                if p >= 1.0:
                    return 1.0
                log_survive += math.log(1.0 - p)
    return 1.0 - math.exp(log_survive)


def combine_upper_bounds(upper_bounds: Iterable[float]) -> float:
    """Lemma 1 / Theorem 3 combination for multi-source candidates.

    ``U_out(S_∪, C_∪) ≤ 1 - Π_i (1 - U_out(S_i, C_i))``: the combined
    bound used to decide when a set of per-cluster traversal cursors may
    stop.
    """
    survive = 1.0
    for u in upper_bounds:
        survive *= 1.0 - u
    return 1.0 - survive
