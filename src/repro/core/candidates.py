"""Candidate generation — the filtering phase (paper, Section 4).

Given a query ``RS(S, η)`` and an RQ-tree, candidate generation returns a
node set ``C*`` guaranteed to contain every true answer (no false
negatives are pruned; Observations 1-2, Theorem 3) while being as small
as the index's ``U_out`` bounds allow.

Three strategies are provided:

* :func:`single_source_candidates` — the bottom-up leaf-to-root walk of
  Section 4.2, stopping at the first cluster with ``U_out({s}, C) < η``;
* :func:`multi_source_candidates_greedy` — the round-robin multi-cursor
  heuristic of Section 4.3;
* :func:`multi_source_candidates_exact` — the exact optimum of
  Problem 2 via a Pareto-frontier dynamic program over the tree (the
  paper mentions an ``O(|S| n log n)``-flow DP; ours enumerates
  non-dominated (bound, size) combinations, which is exact and
  practical on RQ-trees because each source path contributes at most
  ``height`` clusters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..errors import EmptySourceSetError, InvalidThresholdError, NodeNotFoundError
from ..graph.uncertain import UncertainGraph
from ..resilience.budget import BudgetClock, QueryBudget
from ..resilience.faultinject import fault_point
from .bounds_cache import ClusterBoundsCache
from .outreach import (
    OutreachComputation,
    combine_upper_bounds,
    outreach_upper_bound,
)
from .rqtree import ClusterNode, RQTree

__all__ = [
    "CandidateResult",
    "TraversalStep",
    "single_source_candidates",
    "multi_source_candidates_greedy",
    "multi_source_candidates_exact",
    "generate_candidates",
]


def _check_eta(eta: float) -> float:
    if not isinstance(eta, (int, float)) or math.isnan(eta) or not 0.0 < eta < 1.0:
        raise InvalidThresholdError(eta)
    return float(eta)


@dataclass
class TraversalStep:
    """One cluster evaluation during candidate generation (for explain()).

    ``bound`` is the upper bound that was compared against the stopping
    threshold; ``via`` records how it was obtained (``"cache"``,
    ``"cheap"`` for the inline Theorem-5 scan, ``"flow"`` for a full
    Algorithm-1 max-flow); ``accepted`` marks the cluster that ended
    the traversal (or, multi-source, a cursor's final cluster).
    """

    cluster_index: int
    cluster_size: int
    depth: int
    bound: float
    via: str
    accepted: bool = False


@dataclass
class CandidateResult:
    """Outcome of the candidate-generation phase, with instrumentation.

    Attributes
    ----------
    candidates:
        The candidate node set ``C*`` (always a superset of the true
        answer set).
    clusters_visited:
        Number of tree clusters whose ``U_out`` was evaluated — the
        numerator of the paper's *height ratio* metric (Section 7.4).
    flow_calls:
        Number of max-flow computations performed.
    final_upper_bound:
        The (combined) ``U_out`` value that allowed the traversal to
        stop (``< η``).
    max_subgraph_nodes / max_subgraph_arcs:
        Largest boundary subgraph any flow ran on — the empirical
        ``ñ`` / ``m̃`` of Table 1.
    selected_clusters:
        The tree indices of the clusters whose union is the candidate
        set (one for single-source queries).
    degraded / degraded_reason:
        Set when a query budget expired mid-traversal and the walk fell
        back to the root cluster (the whole node set) — still sound
        (never prunes a true answer), just unpruned.
    """

    candidates: Set[int]
    clusters_visited: int
    flow_calls: int
    final_upper_bound: float
    max_subgraph_nodes: int = 0
    max_subgraph_arcs: int = 0
    selected_clusters: List[int] = field(default_factory=list)
    trace: List[TraversalStep] = field(default_factory=list)
    degraded: bool = False
    degraded_reason: Optional[str] = None

    def explain(self) -> str:
        """Human-readable account of the filtering traversal."""
        lines = [
            f"candidate generation: {self.clusters_visited} cluster(s) "
            f"evaluated, {self.flow_calls} max-flow solve(s), "
            f"|C*| = {len(self.candidates)}"
            + (f" [DEGRADED: {self.degraded_reason}]" if self.degraded else "")
        ]
        for step in self.trace:
            marker = " <-- accepted" if step.accepted else ""
            lines.append(
                f"  depth {step.depth:>3}  |C| = {step.cluster_size:>7}  "
                f"U_out <= {step.bound:.4f}  [{step.via}]{marker}"
            )
        return "\n".join(lines)


def _root_fallback(
    tree: RQTree,
    reason: str,
    visited: int,
    flow_calls: int,
    max_nodes: int,
    max_arcs: int,
    trace: List[TraversalStep],
) -> CandidateResult:
    """Degraded-but-sound answer when the budget expires mid-traversal.

    The root cluster (the whole node set) is always a valid candidate
    set — ``U_out(S, N) = 0`` — so falling back to it can never prune a
    true answer; it merely forfeits the pruning the walk was buying.
    """
    root = tree.clusters[tree.root]
    return CandidateResult(
        candidates=set(root.members),
        clusters_visited=visited,
        flow_calls=flow_calls,
        final_upper_bound=0.0,
        max_subgraph_nodes=max_nodes,
        max_subgraph_arcs=max_arcs,
        selected_clusters=[tree.root],
        trace=trace,
        degraded=True,
        degraded_reason=reason,
    )


def single_source_candidates(
    graph: UncertainGraph,
    tree: RQTree,
    source: int,
    eta: float,
    engine: str = "dinic",
    bounds_cache: Optional[ClusterBoundsCache] = None,
    budget: Optional[Union[QueryBudget, BudgetClock]] = None,
) -> CandidateResult:
    """Section 4.2: bottom-up traversal from the leaf of *source*.

    Walks the unique leaf-to-root path, lazily evaluating
    ``U_out({s}, C)`` with Algorithm 1, and stops at the first cluster
    whose bound drops below ``eta``.  The root always qualifies
    (``U_out(S, N) = 0``), so the walk terminates.

    With a *budget* whose deadline expires mid-walk, the traversal
    degrades to the root cluster (see :func:`_root_fallback`) instead of
    finishing the climb.
    """
    eta = _check_eta(eta)
    if source not in graph:
        raise NodeNotFoundError(source)
    clock = BudgetClock.ensure(budget)
    visited = 0
    flow_calls = 0
    max_nodes = 0
    max_arcs = 0
    trace: List[TraversalStep] = []
    for cluster in tree.path_to_root(source):
        if clock is not None and clock.expired():
            return _root_fallback(
                tree, "deadline expired during candidate generation",
                visited, flow_calls, max_nodes, max_arcs, trace,
            )
        visited += 1
        if bounds_cache is not None:
            # Source-independent Theorem-5 bound, computed once per
            # cluster across all queries.  A cached accept reports the
            # cluster size as the subgraph size (the scan was skipped).
            cached = bounds_cache.get(graph, cluster)
            if cached < eta:
                trace.append(TraversalStep(
                    cluster.index, cluster.size, cluster.depth,
                    cached, "cache", accepted=True,
                ))
                return CandidateResult(
                    candidates=set(cluster.members),
                    clusters_visited=visited,
                    flow_calls=flow_calls,
                    final_upper_bound=cached,
                    max_subgraph_nodes=max(max_nodes, cluster.size),
                    max_subgraph_arcs=max_arcs,
                    selected_clusters=[cluster.index],
                    trace=trace,
                )
        computation = outreach_upper_bound(
            graph,
            [source],
            cluster.members,
            engine=engine,
            cheap_accept_below=eta,
        )
        if computation.used_flow:
            flow_calls += 1
        max_nodes = max(max_nodes, computation.subgraph_nodes)
        max_arcs = max(max_arcs, computation.subgraph_arcs)
        accepted = computation.upper_bound < eta
        trace.append(TraversalStep(
            cluster.index, cluster.size, cluster.depth,
            computation.upper_bound,
            "flow" if computation.used_flow else "cheap",
            accepted=accepted,
        ))
        if accepted:
            return CandidateResult(
                candidates=set(cluster.members),
                clusters_visited=visited,
                flow_calls=flow_calls,
                final_upper_bound=computation.upper_bound,
                max_subgraph_nodes=max_nodes,
                max_subgraph_arcs=max_arcs,
                selected_clusters=[cluster.index],
                trace=trace,
            )
    raise AssertionError(
        "unreachable: the root cluster always has U_out = 0 < eta"
    )


@dataclass
class _Cursor:
    """One bottom-up traversal cursor of the greedy multi-source heuristic."""

    cluster: ClusterNode
    sources: Set[int]
    bound: float  # U_out(cluster ∩ S, cluster)


def multi_source_candidates_greedy(
    graph: UncertainGraph,
    tree: RQTree,
    sources: Sequence[int],
    eta: float,
    engine: str = "dinic",
    bounds_cache: Optional[ClusterBoundsCache] = None,
    budget: Optional[Union[QueryBudget, BudgetClock]] = None,
) -> CandidateResult:
    """Section 4.3: round-robin multi-cursor heuristic.

    One cursor per source starts at its leaf; cursors sharing a cluster
    merge.  In round-robin order each cursor moves to its parent cluster
    and recomputes ``U_out(C_i ∩ S, C_i)``; after every move the
    stopping condition of Theorem 3,
    ``1 - Π_i (1 - U_out(C_i ∩ S, C_i)) < η``, is tested.  The returned
    candidate set is the union of the cursors' clusters.

    With a *budget* whose deadline expires before the stopping condition
    holds, the traversal degrades to the root cluster — stopping with
    the cursors' current union would be *unsound* (the Theorem-3 bound
    has not yet dropped below ``eta``, so answers could hide outside).
    """
    eta = _check_eta(eta)
    source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise EmptySourceSetError()
    for s in source_list:
        if s not in graph:
            raise NodeNotFoundError(s)
    clock = BudgetClock.ensure(budget)

    visited = 0
    flow_calls = 0
    max_nodes = 0
    max_arcs = 0

    per_cursor_accept = 1.0 - (1.0 - eta) ** 0.5

    trace: List[TraversalStep] = []

    def evaluate(cluster: ClusterNode, members_sources: Set[int]) -> float:
        nonlocal visited, flow_calls, max_nodes, max_arcs
        visited += 1
        if bounds_cache is not None:
            cached = bounds_cache.get(graph, cluster)
            if cached < per_cursor_accept:
                max_nodes = max(max_nodes, cluster.size)
                trace.append(TraversalStep(
                    cluster.index, cluster.size, cluster.depth,
                    cached, "cache",
                ))
                return cached
        computation = outreach_upper_bound(
            graph,
            sorted(members_sources),
            cluster.members,
            engine=engine,
            cheap_accept_below=1.0 - (1.0 - eta) ** 0.5,
        )
        if computation.used_flow:
            flow_calls += 1
        max_nodes = max(max_nodes, computation.subgraph_nodes)
        max_arcs = max(max_arcs, computation.subgraph_arcs)
        trace.append(TraversalStep(
            cluster.index, cluster.size, cluster.depth,
            computation.upper_bound,
            "flow" if computation.used_flow else "cheap",
        ))
        return computation.upper_bound

    # Initialize one cursor per source at its leaf, merging duplicates.
    cursors: Dict[int, _Cursor] = {}
    for s in source_list:
        leaf = tree.clusters[tree.leaf_of(s)]
        if leaf.index in cursors:
            cursors[leaf.index].sources.add(s)
        else:
            cursors[leaf.index] = _Cursor(leaf, {s}, 0.0)
    for cursor in cursors.values():
        cursor.bound = evaluate(cursor.cluster, cursor.sources)

    def combined_bound() -> float:
        return combine_upper_bounds(c.bound for c in cursors.values())

    while combined_bound() >= eta:
        if clock is not None and clock.expired():
            return _root_fallback(
                tree, "deadline expired during candidate generation",
                visited, flow_calls, max_nodes, max_arcs, trace,
            )
        # Round-robin: advance the shallowest-progress cursor first so all
        # cursors climb at a similar rate (the paper's parallel traversal);
        # ties broken towards the largest bound (the weakest link).
        movable = [c for c in cursors.values() if c.cluster.parent is not None]
        if not movable:
            break  # every cursor is at the root; combined bound is 0
        cursor = max(movable, key=lambda c: (c.cluster.depth, c.bound))
        parent = tree.clusters[cursor.cluster.parent]
        # Remove this cursor, then merge into an existing cursor on the
        # parent cluster if one exists.
        del cursors[cursor.cluster.index]
        if parent.index in cursors:
            target = cursors[parent.index]
            target.sources |= cursor.sources
            target.bound = evaluate(parent, target.sources)
        else:
            # Other cursors positioned strictly below the parent whose
            # cluster is *nested inside* the parent must merge too, or the
            # union would double-count their sources in the product.
            absorbed = [
                c
                for c in cursors.values()
                if c.cluster.members <= parent.members
            ]
            merged_sources = set(cursor.sources)
            for other in absorbed:
                merged_sources |= other.sources
                del cursors[other.cluster.index]
            new_cursor = _Cursor(parent, merged_sources, 0.0)
            new_cursor.bound = evaluate(parent, merged_sources)
            cursors[parent.index] = new_cursor

    union: Set[int] = set()
    selected = sorted(c.cluster.index for c in cursors.values())
    for cursor in cursors.values():
        union |= cursor.cluster.members
    for step in trace:
        if step.cluster_index in selected:
            step.accepted = True
    return CandidateResult(
        candidates=union,
        clusters_visited=visited,
        flow_calls=flow_calls,
        final_upper_bound=combined_bound(),
        max_subgraph_nodes=max_nodes,
        max_subgraph_arcs=max_arcs,
        selected_clusters=selected,
        trace=trace,
    )


def multi_source_candidates_exact(
    graph: UncertainGraph,
    tree: RQTree,
    sources: Sequence[int],
    eta: float,
    engine: str = "dinic",
    max_frontier: int = 256,
    budget: Optional[Union[QueryBudget, BudgetClock]] = None,
) -> CandidateResult:
    """Problem 2 solved exactly by Pareto dynamic programming.

    For every tree cluster ``C`` containing at least one source, two
    families of solutions cover ``C``'s sources: take ``C`` itself
    (cost ``-log(1 - U_out(C ∩ S, C))``, size ``|C|``), or combine
    solutions of the source-containing children.  The DP keeps, per
    cluster, the set of non-dominated ``(cost, size)`` pairs; at the
    root, the cheapest *size* with ``cost < -log(1 - η)`` wins and the
    chosen clusters are recovered by backtracking.

    ``max_frontier`` caps the per-cluster Pareto set (dropping
    highest-cost entries first); with the default the DP is exact on all
    RQ-trees we build (frontier sizes stay tiny because only clusters on
    the ``|S|`` leaf paths participate).
    """
    eta = _check_eta(eta)
    source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise EmptySourceSetError()
    for s in source_list:
        if s not in graph:
            raise NodeNotFoundError(s)
    source_set = set(source_list)
    clock = BudgetClock.ensure(budget)

    visited = 0
    flow_calls = 0
    max_nodes = 0
    max_arcs = 0

    budget = -math.log(1.0 - eta)

    # Clusters on the leaf-to-root paths of the sources.
    relevant: Set[int] = set()
    for s in source_list:
        for cluster in tree.path_to_root(s):
            relevant.add(cluster.index)

    # Option = (cost, size, chosen cluster indices).
    Option = Tuple[float, int, Tuple[int, ...]]
    table: Dict[int, List[Option]] = {}

    def pareto(options: List[Option]) -> List[Option]:
        options.sort(key=lambda o: (o[0], o[1]))
        kept: List[Option] = []
        best_size = math.inf
        for cost, size, chosen in options:
            if size < best_size:
                kept.append((cost, size, chosen))
                best_size = size
        return kept[:max_frontier]

    # Process relevant clusters deepest-first so children precede parents.
    for index in sorted(relevant, key=lambda i: -tree.clusters[i].depth):
        if clock is not None and clock.expired():
            return _root_fallback(
                tree, "deadline expired during candidate generation",
                visited, flow_calls, max_nodes, max_arcs, [],
            )
        cluster = tree.clusters[index]
        cluster_sources = source_set & cluster.members
        # Option A: take the cluster itself.
        nonlocal_sources = sorted(cluster_sources)
        computation = outreach_upper_bound(
            graph, nonlocal_sources, cluster.members, engine=engine
        )
        visited += 1
        flow_calls += 1  # the exact DP always needs the tight bound
        max_nodes = max(max_nodes, computation.subgraph_nodes)
        max_arcs = max(max_arcs, computation.subgraph_arcs)
        if computation.upper_bound >= 1.0:
            take_cost = math.inf
        else:
            take_cost = -math.log(1.0 - computation.upper_bound)
        options: List[Option] = [(take_cost, cluster.size, (index,))]
        # Option B: combine the source-containing children.
        child_tables = [
            table[c] for c in cluster.children if c in relevant and c in table
        ]
        if child_tables and sum(
            len(source_set & tree.clusters[c].members)
            for c in cluster.children
            if c in relevant
        ) == len(cluster_sources):
            combined: List[Option] = [(0.0, 0, ())]
            for child_options in child_tables:
                combined = [
                    (c1 + c2, s1 + s2, t1 + t2)
                    for c1, s1, t1 in combined
                    for c2, s2, t2 in child_options
                ]
                combined = pareto(combined)
            options.extend(combined)
        table[index] = pareto(options)

    root_options = table[tree.root]
    feasible = [o for o in root_options if o[0] < budget]
    if not feasible:
        # The root-only option has cost 0 (U_out(root) = 0) and is always
        # feasible; reaching here indicates an internal error.
        raise AssertionError("root option must be feasible")
    best = min(feasible, key=lambda o: (o[1], o[0]))
    union: Set[int] = set()
    for cluster_index in best[2]:
        union |= tree.clusters[cluster_index].members
    combined_upper = 1.0 - math.exp(-best[0]) if best[0] < math.inf else 1.0
    return CandidateResult(
        candidates=union,
        clusters_visited=visited,
        flow_calls=flow_calls,
        final_upper_bound=combined_upper,
        max_subgraph_nodes=max_nodes,
        max_subgraph_arcs=max_arcs,
        selected_clusters=sorted(best[2]),
    )


def generate_candidates(
    graph: UncertainGraph,
    tree: RQTree,
    sources: Sequence[int],
    eta: float,
    engine: str = "dinic",
    multi_source_mode: str = "greedy",
    bounds_cache: Optional[ClusterBoundsCache] = None,
    budget: Optional[Union[QueryBudget, BudgetClock]] = None,
) -> CandidateResult:
    """Dispatch to the appropriate candidate-generation strategy.

    Single-node source sets use the Section 4.2 walk; larger sets use
    the greedy heuristic (default) or the exact DP
    (``multi_source_mode="exact"``).  *budget* (a
    :class:`~repro.resilience.QueryBudget` or a running clock shared
    with the rest of the query) bounds the traversal's wall time; on
    expiry the result degrades to the root cluster, which is sound but
    unpruned.
    """
    fault_point("candidates.generate")
    source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise EmptySourceSetError()
    if len(source_list) == 1:
        result = single_source_candidates(
            graph, tree, source_list[0], eta,
            engine=engine, bounds_cache=bounds_cache, budget=budget,
        )
    elif multi_source_mode == "greedy":
        result = multi_source_candidates_greedy(
            graph, tree, source_list, eta,
            engine=engine, bounds_cache=bounds_cache, budget=budget,
        )
    elif multi_source_mode == "exact":
        result = multi_source_candidates_exact(
            graph, tree, source_list, eta, engine=engine, budget=budget
        )
    else:
        raise ValueError(
            f"unknown multi_source_mode {multi_source_mode!r}; "
            "expected 'greedy' or 'exact'"
        )
    _record_candidate_metrics(result)
    return result


def _record_candidate_metrics(result: CandidateResult) -> None:
    """Count one filtering pass in the service metrics registry."""
    from ..service.metrics import get_registry

    registry = get_registry()
    registry.counter("candidates.passes").inc()
    registry.counter("candidates.flow_calls").inc(result.flow_calls)
    registry.counter("candidates.clusters_visited").inc(
        result.clusters_visited
    )
