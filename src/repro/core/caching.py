"""Query-result caching for repeated reliability-search workloads.

The paper's applications issue reliability-search queries at a high
rate, often with repeating source sets (the influence-maximization loop
of Section 7.7 re-evaluates ``RS(S ∪ {w}, η_i)`` for overlapping seed
sets; monitoring workloads poll the same sources).  The index itself is
read-only at query time, so answers are safely memoizable until the
graph changes.

:class:`CachingRQTreeEngine` wraps any engine with an LRU cache keyed on
the full query signature.  Cacheability is decided by the estimator
registry (:func:`repro.estimators.is_cacheable`): deterministic
estimators (``lb``, ``lb+``, ``exact``) are always cacheable, sampling
estimators (and ``auto``, which may pick one) only under an explicit
seed.  Unseeded sampling queries bypass the cache because their answers
are intentionally non-deterministic.  Mutating the graph must be
followed by :meth:`invalidate`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from ..estimators import is_cacheable
from .engine import QueryResult, RQTreeEngine

__all__ = ["CacheStats", "CachingRQTreeEngine"]


@dataclass
class CacheStats:
    """Hit/miss counters for a query-result cache.

    Shared by :class:`CachingRQTreeEngine` and the serving layer's
    :class:`repro.service.cache.TTLResultCache`, so ``repro stats`` and
    the service metrics snapshot report both through one schema.
    """

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    evictions: int = 0
    #: Entries dropped because their TTL lapsed (always 0 for the
    #: un-TTL'd LRU cache).
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of cacheable queries answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-able snapshot (used by the service metrics endpoint)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": self.hit_rate,
        }

    def as_rows(self):
        """``(metric, value)`` rows for the CLI's table renderer."""
        return list(self.as_dict().items())


class CachingRQTreeEngine:
    """LRU-cached facade over an :class:`RQTreeEngine`.

    Parameters
    ----------
    engine:
        The underlying engine (shared, not copied).
    capacity:
        Maximum number of cached query results; least-recently-used
        entries are evicted beyond it.
    """

    def __init__(self, engine: RQTreeEngine, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._engine = engine
        self._capacity = capacity
        self._cache: "OrderedDict[Tuple, QueryResult]" = OrderedDict()
        self.stats = CacheStats()

    @property
    def engine(self) -> RQTreeEngine:
        """The wrapped engine."""
        return self._engine

    @property
    def graph(self):
        """The underlying graph (convenience passthrough)."""
        return self._engine.graph

    @property
    def tree(self):
        """The underlying index tree (convenience passthrough)."""
        return self._engine.tree

    def __len__(self) -> int:
        return len(self._cache)

    def query(
        self,
        sources: Union[int, Sequence[int]],
        eta: float,
        method: str = "lb",
        num_samples: int = 1000,
        seed: Optional[int] = None,
        multi_source_mode: str = "greedy",
        max_hops: Optional[int] = None,
        backend: str = "auto",
    ) -> QueryResult:
        """Answer a query, serving repeats from the cache.

        The cache key covers every parameter that affects the answer.
        Unseeded Monte-Carlo queries are never cached (their answers
        are fresh random draws by contract).
        """
        source_key = (
            (sources,) if isinstance(sources, int)
            else tuple(sorted(set(sources)))
        )
        cacheable = is_cacheable(method, seed)
        if not cacheable:
            self.stats.bypasses += 1
            return self._engine.query(
                sources, eta, method=method, num_samples=num_samples,
                seed=seed, multi_source_mode=multi_source_mode,
                max_hops=max_hops, backend=backend,
            )
        key = (
            source_key, eta, method, num_samples, seed,
            multi_source_mode, max_hops, backend,
        )
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        result = self._engine.query(
            sources, eta, method=method, num_samples=num_samples,
            seed=seed, multi_source_mode=multi_source_mode,
            max_hops=max_hops, backend=backend,
        )
        self._cache[key] = result
        if len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
            self.stats.evictions += 1
        return result

    def invalidate(self) -> None:
        """Drop every cached answer (call after any graph mutation)."""
        self._cache.clear()
