"""Reliability detection and top-k search on top of the RQ-tree engine.

Section 2 of the paper observes that reliability *search* generalizes
two-terminal reliability *detection*: "a simple reduction ... exists.
The idea is to estimate the answer to a given instance of the former
problem by performing a binary search on the threshold η."  This module
implements that reduction — :func:`detect_reliability` brackets
``R(S, t)`` by repeatedly asking whether ``t ∈ RS(S, η)`` — plus two
DB-style conveniences the index makes cheap:

* :func:`reliability_scores` — per-candidate reliability estimates
  (most-likely-path probabilities for the LB method, sampled
  frequencies for MC), the scoring primitive behind ranking;
* :func:`top_k_reliable` — the ``k`` most reliable nodes from a source
  set, found by lowering η geometrically until enough candidates
  qualify and ranking them by score.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import EmptySourceSetError, NodeNotFoundError
from .engine import RQTreeEngine

__all__ = [
    "DetectionResult",
    "detect_reliability",
    "reliability_scores",
    "top_k_reliable",
]


@dataclass
class DetectionResult:
    """A bracketed two-terminal reliability estimate.

    ``low <= R_est(S, t) < high`` where the estimate is with respect to
    the chosen query method (exact lower-bound semantics for ``"lb"``,
    sampling semantics for ``"mc"``).
    """

    low: float
    high: float
    queries_issued: int

    @property
    def midpoint(self) -> float:
        """The center of the bracket — the point estimate."""
        return (self.low + self.high) / 2.0

    @property
    def width(self) -> float:
        """Bracket width (the achieved tolerance)."""
        return self.high - self.low


def detect_reliability(
    engine: RQTreeEngine,
    sources: Union[int, Sequence[int]],
    target: int,
    tolerance: float = 0.05,
    method: str = "mc",
    num_samples: int = 1000,
    seed: Optional[int] = None,
    backend: str = "auto",
) -> DetectionResult:
    """Estimate ``R(S, t)`` by binary search on the threshold (§2).

    Each probe asks one reliability-search query ``RS(S, η)`` and tests
    target membership; the bracket halves until its width drops below
    *tolerance*.  With ``method="lb"`` the bracketed quantity is the
    most-likely-path lower bound ``L_R(S, t)`` (deterministic, never
    exceeding the true reliability); with ``method="mc"`` it is the
    sampled reliability estimate.

    Note: this costs ``O(log 1/tolerance)`` index queries, so it is the
    right tool when a *few* pairs must be checked against an existing
    index; bulk detection should use :func:`reliability_scores` once.
    """
    if not 0.0 < tolerance < 1.0:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    if target not in engine.graph:
        raise NodeNotFoundError(target)
    source_list = (
        [sources] if isinstance(sources, int) else list(dict.fromkeys(sources))
    )
    if not source_list:
        raise EmptySourceSetError()
    if target in source_list:
        return DetectionResult(low=1.0, high=1.0, queries_issued=0)

    low, high = 0.0, 1.0
    queries = 0
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if not 0.0 < mid < 1.0:  # defensive; cannot occur with tol<1
            break
        answer = engine.query(
            source_list, mid, method=method,
            num_samples=num_samples, seed=seed, backend=backend,
        ).nodes
        queries += 1
        if target in answer:
            low = mid
        else:
            high = mid
    return DetectionResult(low=low, high=high, queries_issued=queries)


def reliability_scores(
    engine: RQTreeEngine,
    sources: Union[int, Sequence[int]],
    eta: float,
    method: str = "lb",
    num_samples: int = 1000,
    seed: Optional[int] = None,
    max_hops: Optional[int] = None,
    backend: str = "auto",
) -> Dict[int, float]:
    """Per-node reliability scores over the candidate set at *eta*.

    Runs candidate generation once, then scores every candidate with
    the chosen estimator (any registered ``method``, or ``"auto"`` to
    let the engine's planner pick): the score is the estimator's
    per-node estimate — a certified lower bound for ``lb``/``lb+``, a
    sampled frequency for the sampling estimators, the true subgraph
    reliability for ``exact``.

    Scores of candidates the estimator did not confirm at *eta* are
    filtered, matching query semantics; sources score 1.0.  Unknown
    methods raise :class:`repro.errors.InvalidMethodError`.
    """
    from ..estimators import AUTO, EstimateRequest, get_estimator, validate_method
    from ..resilience.budget import CONFIRMED

    source_list = (
        [sources] if isinstance(sources, int) else list(dict.fromkeys(sources))
    )
    if not source_list:
        raise EmptySourceSetError()
    validate_method(method, max_hops=max_hops)
    candidate_result = engine.candidates(source_list, eta)
    request = EstimateRequest(
        graph=engine.graph,
        sources=source_list,
        eta=eta,
        candidates=candidate_result.candidates,
        num_samples=num_samples,
        seed=seed,
        max_hops=max_hops,
        backend=backend,
        config=engine.planner.config,
    )
    if method == AUTO:
        name = engine.planner.plan(request).estimator
    else:
        name = method
    report = get_estimator(name).estimate(request)
    scores = {
        node: report.estimates.get(node, eta)
        for node, status in report.statuses.items()
        if status == CONFIRMED
    }
    for s in source_list:
        scores[s] = 1.0
    return scores


def top_k_reliable(
    engine: RQTreeEngine,
    sources: Union[int, Sequence[int]],
    k: int,
    method: str = "lb",
    num_samples: int = 1000,
    seed: Optional[int] = None,
    eta_floor: float = 0.01,
    include_sources: bool = False,
    backend: str = "auto",
) -> List[Tuple[int, float]]:
    """The *k* most reliable nodes from the source set, with scores.

    Lowers the threshold geometrically (0.5, 0.25, ...) until at least
    ``k`` non-source nodes qualify or the floor is reached, then ranks
    by score.  Returns at most ``k`` ``(node, score)`` pairs, best
    first (ties broken by node id for determinism).

    This is the k-nearest-neighbours-style query of Potamias et al.
    (cited as [28] in the paper) answered through the RQ-tree.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    source_list = (
        [sources] if isinstance(sources, int) else list(dict.fromkeys(sources))
    )
    if not source_list:
        raise EmptySourceSetError()
    source_set = set(source_list)

    eta = 0.5
    scores: Dict[int, float] = {}
    while True:
        scores = reliability_scores(
            engine, source_list, eta,
            method=method, num_samples=num_samples, seed=seed,
            backend=backend,
        )
        hits = [n for n in scores if include_sources or n not in source_set]
        if len(hits) >= k or eta <= eta_floor:
            break
        eta = max(eta_floor, eta / 2.0)

    ranked = sorted(
        (
            (node, score)
            for node, score in scores.items()
            if include_sources or node not in source_set
        ),
        key=lambda item: (-item[1], item[0]),
    )
    return ranked[:k]
