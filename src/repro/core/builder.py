"""RQ-tree construction (paper, Section 6, Algorithm 2).

The builder recursively splits clusters, starting from the full node
set, until every cluster is a singleton.  Each split solves (a
heuristic for) Problem 3 — the balanced ratio-cut objective on weights
``-log(1 - p(a))`` (Theorem 6) — through the multilevel partitioner in
:mod:`repro.partition` (our METIS substitute).

The paper fixes the branching factor to 2 "for simplicity"; this builder
generalizes to any ``branching >= 2`` by recursive bisection inside each
split (k-way splits trade tree height against per-level pruning
granularity — see ``benchmarks/bench_branching.py`` for the ablation).

Because each level of the recursion touches every node/arc once and the
tree is balanced, index construction costs ``O((n + m) log n)`` and the
resulting tree stores ``O(n log n)`` member ids, matching the paper's
accounting (Section 6, "Index building time" / "Index storage space").

:func:`rebuild_subtree` re-partitions one cluster's branch against the
*current* graph, which is the repair primitive behind incremental index
maintenance (:mod:`repro.core.maintenance`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..graph.uncertain import UncertainGraph
from ..partition.bipartition import bisect_uncertain_cluster
from .rqtree import RQTree

__all__ = ["BuildReport", "build_rqtree", "split_cluster", "rebuild_subtree"]


@dataclass
class BuildReport:
    """Construction statistics, mirroring Table 5 of the paper."""

    build_seconds: float
    num_clusters: int
    height: int
    storage_bytes: int

    @property
    def storage_megabytes(self) -> float:
        """Index size in MB (Table 5 column "size (MB)")."""
        return self.storage_bytes / (1024 * 1024)


def split_cluster(
    graph: UncertainGraph,
    members: Set[int],
    branching: int,
    max_imbalance: float,
    seed: int,
    strategy: str,
) -> List[Set[int]]:
    """Split *members* into up to *branching* balanced parts.

    Implemented by recursive bisection (the standard reduction from
    k-way to 2-way partitioning): the cluster is halved, then the
    halves are halved again until *branching* parts exist or parts
    become singletons.  For ``branching=2`` this is exactly one call to
    the Problem-3 bisection.
    """
    parts: List[Set[int]] = [set(members)]
    sub_seed = seed
    while len(parts) < branching:
        # Split the largest current part (keeps parts balanced).
        largest_index = max(
            range(len(parts)), key=lambda i: len(parts[i])
        )
        largest = parts[largest_index]
        if len(largest) <= 1:
            break
        first, second = bisect_uncertain_cluster(
            graph,
            sorted(largest),
            max_imbalance=max_imbalance,
            seed=sub_seed,
            strategy=strategy,
        )
        sub_seed = (sub_seed * 16_777_619 + 1) & 0x7FFFFFFF
        parts[largest_index] = first
        parts.append(second)
    return [part for part in parts if part]


def build_rqtree(
    graph: UncertainGraph,
    max_imbalance: float = 0.1,
    seed: int = 0,
    strategy: str = "multilevel",
    branching: int = 2,
    validate: bool = True,
) -> "Tuple[RQTree, BuildReport]":
    """Build an RQ-tree index for *graph* (Algorithm 2).

    Parameters
    ----------
    graph:
        The uncertain graph to index.
    max_imbalance:
        Balance slack passed to the partitioner: each side of every
        bisection holds ``50% ± max_imbalance`` of the cluster.
    seed:
        Seed for the partitioner's randomized phases; builds are
        deterministic given the seed.
    strategy:
        Bisection strategy: ``"multilevel"`` (the paper's METIS-style
        choice) or ``"random"`` (balanced random splits — the ablation
        baseline showing how much the minimum-cut criterion matters).
    branching:
        Children per internal cluster (paper: 2).  Larger values give
        shorter trees whose per-level clusters shrink faster.
    validate:
        Run the tree invariant checker after construction.

    Returns
    -------
    (tree, report):
        The index and its construction statistics.
    """
    if branching < 2:
        raise ValueError(f"branching factor must be >= 2, got {branching}")
    start = time.perf_counter()
    tree = RQTree(graph.num_nodes)
    if graph.num_nodes == 0:
        report = BuildReport(time.perf_counter() - start, 0, 0, 0)
        return tree, report

    root_members: Set[int] = set(graph.nodes())
    root_index = tree.add_cluster(None, root_members)
    _expand(
        graph, tree, root_index, root_members,
        max_imbalance=max_imbalance, seed=seed,
        strategy=strategy, branching=branching,
    )

    if validate:
        tree.validate()
    report = BuildReport(
        build_seconds=time.perf_counter() - start,
        num_clusters=tree.num_clusters,
        height=tree.height,
        storage_bytes=tree.storage_size_estimate(),
    )
    return tree, report


def _expand(
    graph: UncertainGraph,
    tree: RQTree,
    start_index: int,
    start_members: Set[int],
    max_imbalance: float,
    seed: int,
    strategy: str,
    branching: int,
) -> None:
    """Algorithm 2's repeat-loop below *start_index* (iterative)."""
    stack = [(start_index, start_members)]
    split_counter = 0
    while stack:
        cluster_index, members = stack.pop()
        if len(members) <= 1:
            continue
        # Derive a per-split seed so sibling splits are decorrelated but
        # the whole build stays reproducible.
        split_seed = (seed * 1_000_003 + split_counter) & 0x7FFFFFFF
        split_counter += 1
        parts = split_cluster(
            graph, members, branching, max_imbalance, split_seed, strategy
        )
        for part in parts:
            child_index = tree.add_cluster(cluster_index, part)
            if len(part) > 1:
                stack.append((child_index, part))


def rebuild_subtree(
    graph: UncertainGraph,
    tree: RQTree,
    cluster_index: int,
    max_imbalance: float = 0.1,
    seed: int = 0,
    strategy: str = "multilevel",
    branching: int = 2,
) -> RQTree:
    """Re-partition one cluster's branch against the current graph.

    Returns a **new** tree in which the subtree rooted at
    *cluster_index* has been rebuilt by Algorithm 2 while every other
    cluster is copied verbatim.  This is how incremental maintenance
    repairs locally degraded cut quality after arc updates without
    paying a full ``O((n+m) log n)`` rebuild: the cost is
    ``O((n_C + m_C) log n_C)`` for the affected cluster only.

    Rebuilding the root is equivalent to a full rebuild.
    """
    if not 0 <= cluster_index < tree.num_clusters:
        raise ValueError(f"no cluster with index {cluster_index}")
    new_tree = RQTree(tree.num_graph_nodes)

    # Root-first DFS copy; the rebuilt branch is expanded in place of
    # the copied one.
    stack: List[Tuple[int, Optional[int]]] = []
    if tree.root is not None:
        stack.append((tree.root, None))
    while stack:
        old_index, new_parent = stack.pop()
        old_cluster = tree.clusters[old_index]
        new_index = new_tree.add_cluster(new_parent, set(old_cluster.members))
        if old_index == cluster_index:
            _expand(
                graph, new_tree, new_index, set(old_cluster.members),
                max_imbalance=max_imbalance, seed=seed,
                strategy=strategy, branching=branching,
            )
            continue  # descendants replaced, do not copy the old ones
        for child in old_cluster.children:
            stack.append((child, new_index))
    new_tree.validate()
    return new_tree
