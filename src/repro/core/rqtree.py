"""The RQ-tree index structure (paper, Section 3).

An RQ-tree ``T`` over an uncertain graph ``G = (N, A, p)`` is a
hierarchical clustering of ``N``:

* the **root** cluster contains all of ``N``;
* every non-singleton cluster is partitioned into (two, Section 6)
  children;
* **leaves** are singletons, so each node ``s`` has a unique leaf and a
  unique leaf-to-root path of nested clusters — the path the
  candidate-generation phase walks bottom-up.

This module holds the pure data structure (construction from an explicit
hierarchy, navigation, validation, serialization, statistics); the
builder that *chooses* the hierarchy lives in
:mod:`repro.core.builder`, and query processing in
:mod:`repro.core.candidates` / :mod:`repro.core.verification`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Union

from ..errors import IndexCorruptionError, NodeNotFoundError
from ..resilience.faultinject import fault_point

__all__ = ["ClusterNode", "RQTree"]

PathLike = Union[str, Path]


class ClusterNode:
    """One cluster in the RQ-tree.

    Attributes
    ----------
    index:
        Position of this cluster in :attr:`RQTree.clusters`.
    parent:
        Index of the parent cluster, or ``None`` for the root.
    children:
        Indices of child clusters (empty for leaves).
    members:
        Frozen set of graph-node ids contained in the cluster.
    depth:
        Distance from the root (root has depth 0).
    """

    __slots__ = ("index", "parent", "children", "members", "depth")

    def __init__(
        self,
        index: int,
        parent: Optional[int],
        members: FrozenSet[int],
        depth: int,
    ) -> None:
        self.index = index
        self.parent = parent
        self.children: List[int] = []
        self.members = members
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        """Whether this cluster has no children."""
        return not self.children

    @property
    def size(self) -> int:
        """Number of graph nodes in the cluster."""
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterNode(index={self.index}, depth={self.depth}, "
            f"size={self.size}, leaf={self.is_leaf})"
        )


class RQTree:
    """Hierarchical clustering index over node ids ``0 .. n-1``.

    Instances are normally produced by :func:`repro.core.builder.build_rqtree`;
    the constructor here accepts an explicit parent/members description so
    that tests and the serializer can create trees directly.
    """

    def __init__(self, num_graph_nodes: int) -> None:
        self.num_graph_nodes = num_graph_nodes
        self.clusters: List[ClusterNode] = []
        self.root: Optional[int] = None
        # leaf_of[v] = index of the singleton cluster containing graph node v.
        self._leaf_of: List[Optional[int]] = [None] * num_graph_nodes

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_cluster(
        self, parent: Optional[int], members: Set[int]
    ) -> int:
        """Append a cluster and return its index.

        The root must be added first (``parent=None``); children must
        reference existing parents and be subsets of them.
        """
        members_frozen = frozenset(members)
        for member in members_frozen:
            if not 0 <= member < self.num_graph_nodes:
                raise IndexCorruptionError(
                    f"cluster member {member} is outside the graph's "
                    f"node range 0..{self.num_graph_nodes - 1}"
                )
        if parent is None:
            if self.root is not None:
                raise IndexCorruptionError("an RQ-tree has exactly one root")
            depth = 0
        else:
            if not 0 <= parent < len(self.clusters):
                raise IndexCorruptionError(f"parent {parent} does not exist")
            parent_node = self.clusters[parent]
            if not members_frozen <= parent_node.members:
                raise IndexCorruptionError(
                    "child cluster must be a subset of its parent"
                )
            depth = parent_node.depth + 1
        index = len(self.clusters)
        node = ClusterNode(index, parent, members_frozen, depth)
        self.clusters.append(node)
        if parent is None:
            self.root = index
        else:
            self.clusters[parent].children.append(index)
        if len(members_frozen) == 1:
            (graph_node,) = members_frozen
            self._leaf_of[graph_node] = index
        return index

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def leaf_of(self, graph_node: int) -> int:
        """Index of the singleton leaf cluster of *graph_node*."""
        if not 0 <= graph_node < self.num_graph_nodes:
            raise NodeNotFoundError(graph_node)
        leaf = self._leaf_of[graph_node]
        if leaf is None:
            raise IndexCorruptionError(
                f"graph node {graph_node} has no leaf cluster"
            )
        return leaf

    def path_to_root(self, graph_node: int) -> Iterator[ClusterNode]:
        """Clusters on the leaf-to-root path of *graph_node* (leaf first).

        This is the traversal order of the single-source candidate
        generation (paper, Section 4.2).
        """
        index: Optional[int] = self.leaf_of(graph_node)
        while index is not None:
            node = self.clusters[index]
            yield node
            index = node.parent

    def parent_of(self, cluster_index: int) -> Optional[ClusterNode]:
        """Parent cluster object, or ``None`` at the root."""
        parent = self.clusters[cluster_index].parent
        return None if parent is None else self.clusters[parent]

    def smallest_cluster_containing(self, nodes: Sequence[int]) -> ClusterNode:
        """The smallest cluster whose members include all of *nodes*.

        Implemented as the lowest common ancestor of the nodes' leaves —
        the "single cluster common to all source nodes" the paper
        discusses (and rejects as too coarse) for multi-source queries.
        """
        nodes = list(nodes)
        if not nodes:
            raise ValueError("nodes must be non-empty")
        # Walk up from the deepest leaf until all nodes are covered.
        current = self.clusters[self.leaf_of(nodes[0])]
        targets = set(nodes)
        while not targets <= current.members:
            if current.parent is None:
                raise IndexCorruptionError(
                    "root does not contain all requested nodes"
                )
            current = self.clusters[current.parent]
        return current

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        """Total number of clusters (tree nodes)."""
        return len(self.clusters)

    @property
    def height(self) -> int:
        """Maximum depth over all clusters (root = 0)."""
        return max((c.depth for c in self.clusters), default=0)

    def leaves(self) -> Iterator[ClusterNode]:
        """Iterate over all leaf clusters."""
        return (c for c in self.clusters if c.is_leaf)

    def storage_size_estimate(self) -> int:
        """Rough index footprint in bytes (member ids at 8 bytes each).

        Matches the paper's ``O(n log n)`` storage accounting (Table 5
        reports megabytes): every cluster stores its member ids.
        """
        return sum(8 * c.size for c in self.clusters) + 32 * len(self.clusters)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check all RQ-tree invariants; raise on violation.

        * exactly one root whose members are all graph nodes,
        * children partition their parent,
        * every leaf is reachable from the root,
        * every graph node has a singleton leaf.
        """
        if self.root is None:
            raise IndexCorruptionError("tree has no root")
        root = self.clusters[self.root]
        if root.members != frozenset(range(self.num_graph_nodes)):
            raise IndexCorruptionError("root must contain every graph node")
        for cluster in self.clusters:
            if cluster.children:
                union: Set[int] = set()
                total = 0
                for child_index in cluster.children:
                    child = self.clusters[child_index]
                    if child.parent != cluster.index:
                        raise IndexCorruptionError(
                            f"child {child_index} has wrong parent pointer"
                        )
                    union |= child.members
                    total += child.size
                if union != set(cluster.members) or total != cluster.size:
                    raise IndexCorruptionError(
                        f"children of cluster {cluster.index} do not "
                        f"partition it"
                    )
            else:
                if cluster.size != 1:
                    raise IndexCorruptionError(
                        f"leaf cluster {cluster.index} is not a singleton"
                    )
        for graph_node in range(self.num_graph_nodes):
            leaf = self._leaf_of[graph_node]
            if leaf is None:
                raise IndexCorruptionError(
                    f"graph node {graph_node} has no leaf"
                )
            if self.clusters[leaf].members != frozenset({graph_node}):
                raise IndexCorruptionError(
                    f"leaf of node {graph_node} is not its singleton"
                )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """JSON-serializable description (parents + leaf members only).

        Internal members are reconstructed bottom-up on load, which keeps
        the document size ``O(n + #clusters)`` instead of ``O(n log n)``.
        """
        fault_point("rqtree.serialize")
        return {
            "format": "repro-rqtree",
            "version": 1,
            "num_graph_nodes": self.num_graph_nodes,
            "root": self.root,
            "parents": [c.parent for c in self.clusters],
            "leaf_members": [
                sorted(c.members) if c.is_leaf else None for c in self.clusters
            ],
        }

    @classmethod
    def from_json(cls, document: dict) -> "RQTree":
        """Rebuild a tree from :meth:`to_json` output and validate it."""
        fault_point("rqtree.deserialize")
        if document.get("format") != "repro-rqtree":
            raise IndexCorruptionError(
                f"unrecognized index format {document.get('format')!r}"
            )
        num_graph_nodes = int(document["num_graph_nodes"])
        parents: List[Optional[int]] = document["parents"]
        leaf_members: List[Optional[List[int]]] = document["leaf_members"]
        if len(parents) != len(leaf_members):
            raise IndexCorruptionError("parents/leaf_members length mismatch")
        count = len(parents)
        # Reconstruct member sets bottom-up.
        members: List[Set[int]] = [set() for _ in range(count)]
        children: List[List[int]] = [[] for _ in range(count)]
        for index, parent in enumerate(parents):
            if parent is not None:
                children[parent].append(index)
        for index in range(count):
            leaf = leaf_members[index]
            if leaf is not None:
                members[index] = set(leaf)
        # Process in reverse topological (children created after parents by
        # the builder, but serialized trees may not preserve that; do an
        # explicit post-order accumulation instead).
        order: List[int] = []
        root = document["root"]
        if root is None:
            raise IndexCorruptionError("serialized tree has no root")
        stack = [int(root)]
        while stack:
            index = stack.pop()
            order.append(index)
            stack.extend(children[index])
        for index in reversed(order):
            for child in children[index]:
                members[index] |= members[child]
        tree = cls(num_graph_nodes)
        # Re-add clusters in an order where parents precede children,
        # remembering the index remap.
        remap: Dict[int, int] = {}
        for index in order:  # root-first DFS order: parents precede children
            parent = parents[index]
            new_parent = None if parent is None else remap[parent]
            remap[index] = tree.add_cluster(new_parent, members[index])
        tree.validate()
        return tree

    def save(self, destination: PathLike) -> None:
        """Write the tree as JSON to *destination*."""
        path = Path(destination)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle)

    @classmethod
    def load(cls, source: PathLike) -> "RQTree":
        """Read a tree previously written by :meth:`save`."""
        path = Path(source)
        with path.open("r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RQTree(n={self.num_graph_nodes}, clusters={self.num_clusters}, "
            f"height={self.height})"
        )
