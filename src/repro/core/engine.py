"""The query engine facade: RQ-tree + filtering + verification.

:class:`RQTreeEngine` bundles an uncertain graph with its RQ-tree index
and exposes the paper's two query-evaluation strategies:

* ``method="lb"`` — **RQ-tree-LB**: candidate generation followed by the
  most-likely-path lower-bound verification (perfect precision, no
  sampling; Section 5.1);
* ``method="mc"`` — **RQ-tree-MC**: candidate generation followed by
  Monte-Carlo verification on the candidate subgraph (better recall;
  Section 5.2).

Every query returns a :class:`QueryResult` carrying the answer set plus
the instrumentation the paper's evaluation reports: per-phase wall times,
the *height ratio* and *candidate ratio* pruning metrics of Section 7.4,
and the boundary-subgraph sizes of Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

from ..errors import EmptySourceSetError
from ..estimators import (
    AUTO,
    EstimateRequest,
    PlanDecision,
    PortfolioConfig,
    QueryPlanner,
    get_estimator,
    validate_method,
)
from ..graph.uncertain import UncertainGraph
from ..resilience.budget import UNVERIFIED, QueryBudget
from .builder import BuildReport, build_rqtree
from .bounds_cache import ClusterBoundsCache
from .candidates import CandidateResult, generate_candidates
from .rqtree import RQTree

__all__ = ["QueryResult", "RQTreeEngine"]


@dataclass
class QueryResult:
    """Answer and instrumentation of one reliability-search query."""

    nodes: Set[int]
    eta: float
    sources: List[int]
    method: str
    candidate_result: CandidateResult
    candidate_seconds: float
    verification_seconds: float
    tree_height: int
    num_graph_nodes: int

    @property
    def total_seconds(self) -> float:
        """End-to-end query time (candidate generation + verification)."""
        return self.candidate_seconds + self.verification_seconds

    #: Depth (distance from the root) of the shallowest cluster selected
    #: by candidate generation; 0 means some cursor climbed to the root.
    min_selected_depth: int = 0

    #: Per-candidate verification statuses (``confirmed`` / ``rejected``
    #: / ``unverified-candidate``).  ``nodes`` is exactly the confirmed
    #: set; unverified entries appear only in budgeted queries.
    statuses: Dict[int, str] = field(default_factory=dict)

    #: True when a query budget forced a partial answer: the deadline
    #: expired (candidate generation fell back to the root, or
    #: verification left candidates undecided) or the candidate-subgraph
    #: cap left candidates unscreened.  The answer set is still sound —
    #: every confirmed node satisfies the query at the budget's
    #: confidence — it may just be incomplete.
    degraded: bool = False
    degraded_reason: Optional[str] = None

    #: Worlds actually sampled by MC verification (0 for "lb"/"lb+").
    worlds_used: int = 0

    #: Fraction of candidates that received a definitive verdict
    #: (1.0 for unbudgeted queries).
    achieved_confidence: float = 1.0

    #: Numpy-kernel batches retried on the Python reference path after a
    #: kernel failure (see the fallback ladder in :mod:`repro.accel`).
    backend_fallbacks: int = 0

    #: Shards whose answer for *this query* arrived only after the
    #: supervisor respawned the worker holding it (sharded engine with
    #: supervision only; see :mod:`repro.shard.supervisor`).  Non-zero
    #: means the query survived a worker crash without degrading.
    shards_recovered: int = 0

    #: The estimator that actually verified the batch.  Equals
    #: ``method`` for explicit methods unless the estimator fell back
    #: (e.g. ``exact`` past its treewidth cap runs seeded ``mc``);
    #: for ``method="auto"`` it is the planner's choice.
    estimator: str = ""

    #: Why this estimator ran: the planner's decision rationale for
    #: ``auto``, an "explicit method" note otherwise, with any fallback
    #: annotation appended.
    planner_reason: Optional[str] = None

    #: Per-node reliability estimates / bounds where the estimator
    #: produces them (frequencies for samplers, path bounds for lb,
    #: exact values for exact); empty otherwise.
    estimates: Dict[int, float] = field(default_factory=dict)

    #: Graph epoch this query was answered against (the live update
    #: plane's published-generation counter; 0 for a frozen graph).
    #: Under :mod:`repro.live` a query is admitted at one epoch and
    #: served against exactly that epoch's snapshot — this field is the
    #: proof, and the ``quality`` wire block surfaces it.
    epoch: int = 0

    @property
    def unverified(self) -> Set[int]:
        """Candidates the budget ran out on (empty when not degraded)."""
        return {n for n, s in self.statuses.items() if s == UNVERIFIED}

    @property
    def height_ratio(self) -> float:
        """How far up the tree candidate generation had to climb.

        The paper's Section 7.4 metric: the number of tree levels
        traversed over the total height.  A query whose qualifying
        cluster sits just above the leaves scores near ``1/height``;
        one that climbed to the root scores 1.  For multi-source
        queries the *highest* cursor defines the ratio (the paper's
        Table 7 values rise towards 1 as source sets spread).
        """
        if self.tree_height == 0:
            return 0.0
        climbed = self.tree_height - self.min_selected_depth + 1
        return min(1.0, max(0.0, climbed / (self.tree_height + 1)))

    def explain(self) -> str:
        """A human-readable account of how this query was answered.

        Shows the candidate-generation traversal (clusters visited,
        the bound at each, how it was computed, where it stopped) and
        the verification outcome — the query-plan view of the paper's
        two-phase pipeline.
        """
        lines = [
            f"RS(S={sorted(self.sources)}, eta={self.eta}) "
            f"via rq-tree-{self.method}",
            self.candidate_result.explain(),
            (
                f"verification [{self.method}]: kept {len(self.nodes)} of "
                f"{len(self.candidate_result.candidates)} candidates "
                f"in {self.verification_seconds * 1000:.2f} ms"
            ),
        ]
        if self.degraded:
            lines.append(
                f"DEGRADED: {self.degraded_reason or 'budget exhausted'} "
                f"({len(self.unverified)} unverified candidate(s), "
                f"achieved confidence {self.achieved_confidence:.0%})"
            )
        return "\n".join(lines)

    @property
    def candidate_ratio(self) -> float:
        """Candidate-set size over graph size (paper, Section 7.4)."""
        if self.num_graph_nodes == 0:
            return 0.0
        return len(self.candidate_result.candidates) / self.num_graph_nodes


class RQTreeEngine:
    """Reliability-search query engine backed by an RQ-tree index.

    Build an engine either from a pre-built tree or directly from a
    graph (the index is constructed on the spot)::

        engine = RQTreeEngine.build(graph, seed=7)
        result = engine.query([source], eta=0.6)          # RQ-tree-LB
        result = engine.query([source], eta=0.6, method="mc")
    """

    def __init__(
        self,
        graph: UncertainGraph,
        tree: RQTree,
        build_report: Optional[BuildReport] = None,
        flow_engine: str = "dinic",
        planner_config: Optional[PortfolioConfig] = None,
    ) -> None:
        if tree.num_graph_nodes != graph.num_nodes:
            raise ValueError(
                "index and graph disagree on the number of nodes: "
                f"{tree.num_graph_nodes} vs {graph.num_nodes}"
            )
        self.graph = graph
        self.tree = tree
        self.build_report = build_report
        self.flow_engine = flow_engine
        # Source-independent Theorem-5 bounds, shared across queries.
        # Callers that mutate the graph must invalidate it (the dynamic
        # engine does so automatically).
        self.bounds_cache = ClusterBoundsCache()
        #: Cost-based estimator selection for ``method="auto"``; its
        #: config also caps the exact estimator for explicit
        #: ``method="exact"`` queries.
        self.planner = QueryPlanner(planner_config)

    @classmethod
    def build(
        cls,
        graph: UncertainGraph,
        max_imbalance: float = 0.1,
        seed: int = 0,
        strategy: str = "multilevel",
        flow_engine: str = "dinic",
        planner_config: Optional[PortfolioConfig] = None,
    ) -> "RQTreeEngine":
        """Construct the RQ-tree index for *graph* and wrap it."""
        tree, report = build_rqtree(
            graph, max_imbalance=max_imbalance, seed=seed, strategy=strategy
        )
        return cls(
            graph,
            tree,
            build_report=report,
            flow_engine=flow_engine,
            planner_config=planner_config,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def candidates(
        self,
        sources: Union[int, Sequence[int]],
        eta: float,
        multi_source_mode: str = "greedy",
    ) -> CandidateResult:
        """Run candidate generation only (the filtering phase)."""
        source_list = self._normalize_sources(sources)
        return generate_candidates(
            self.graph,
            self.tree,
            source_list,
            eta,
            engine=self.flow_engine,
            multi_source_mode=multi_source_mode,
            bounds_cache=self.bounds_cache,
        )

    def query(
        self,
        sources: Union[int, Sequence[int]],
        eta: float,
        method: str = "lb",
        num_samples: int = 1000,
        seed: Optional[int] = None,
        multi_source_mode: str = "greedy",
        max_hops: Optional[int] = None,
        backend: str = "auto",
        budget: Optional[QueryBudget] = None,
        coin_source=None,
    ) -> QueryResult:
        """Answer the reliability-search query ``RS(S, eta)``.

        Parameters
        ----------
        sources:
            A node id or a sequence of node ids.
        eta:
            Probability threshold in (0, 1).
        method:
            Any estimator in :func:`repro.estimators.available_methods`:
            ``"lb"`` (RQ-tree-LB, perfect precision), ``"lb+"`` (edge
            packing: perfect precision, better recall; hop budgets
            unsupported), ``"mc"`` (chunked Monte-Carlo), ``"rss"``
            (recursive stratified sampling), ``"lazy"`` (lazy
            BFS-sharing batch sampling), ``"exact"`` (treewidth-gated
            exact answers, deterministic sampling fallback past the
            cap), or ``"auto"`` — the cost-based
            :class:`~repro.estimators.QueryPlanner` picks per batch.
        num_samples:
            Worlds sampled by the sampling estimators (ignored for
            ``"lb"``/``"lb+"``/``"exact"``).
        seed:
            Seed for the sampling estimators (ignored for ``"lb"``).
        multi_source_mode:
            ``"greedy"`` (Section 4.3 heuristic) or ``"exact"``
            (Problem 2 Pareto DP); ignored for single-source queries.
        max_hops:
            Optional hop budget: answer the *distance-constrained*
            reliability-search query (only nodes within ``max_hops``
            arcs with probability >= eta count; Jin et al. [20]).  The
            unconstrained candidate set remains valid because hop
            bounds only shrink reachability events, so no new candidate
            machinery is needed — only verification changes.
        backend:
            Sampling backend for the MC verifier
            (``"auto"``/``"python"``/``"numpy"``; see
            :mod:`repro.accel`).  Ignored for ``"lb"``/``"lb+"``,
            which never sample.
        budget:
            Optional :class:`~repro.resilience.QueryBudget` bounding the
            whole query (wall-clock deadline spanning filtering *and*
            verification, world cap, candidate-subgraph cap).  A
            budgeted query never raises on expiry: it returns a partial
            :class:`QueryResult` with ``degraded=True`` and a per-node
            status for every candidate.  ``budget=None`` reproduces the
            unbudgeted (seed) behaviour exactly.
        coin_source:
            Optional :class:`repro.accel.coins.CoinBlock` supplying the
            MC verifier's packed arc coins from a shared, replayable
            stream (the serving layer's cross-query world batching).
            Never changes the answer: the block's bits are exactly what
            a private draw at *seed* would produce.  Ignored for
            non-sampling methods and on the pure-python path.
        """
        source_list = self._normalize_sources(sources)
        validate_method(method, max_hops=max_hops)
        clock = budget.start() if budget is not None else None
        start = time.perf_counter()
        candidate_result = generate_candidates(
            self.graph,
            self.tree,
            source_list,
            eta,
            engine=self.flow_engine,
            multi_source_mode=multi_source_mode,
            bounds_cache=self.bounds_cache,
            budget=clock,
        )
        candidate_seconds = time.perf_counter() - start

        start = time.perf_counter()
        request = EstimateRequest(
            graph=self.graph,
            sources=source_list,
            eta=eta,
            candidates=candidate_result.candidates,
            num_samples=num_samples,
            seed=seed,
            max_hops=max_hops,
            backend=backend,
            clock=clock,
            coin_source=coin_source,
            config=self.planner.config,
        )
        if method == AUTO:
            decision = self.planner.plan(request)
        else:
            decision = PlanDecision(
                estimator=method, reason=f"explicit method {method!r}"
            )
        report = get_estimator(decision.estimator).estimate(request)
        verification_seconds = time.perf_counter() - start
        if method == AUTO:
            self.planner.record_outcome(decision, verification_seconds)
        estimator_used = report.estimator or decision.estimator
        planner_reason = (
            f"{decision.reason}; {report.notes}"
            if report.notes
            else decision.reason
        )

        min_depth = min(
            (
                self.tree.clusters[index].depth
                for index in candidate_result.selected_clusters
            ),
            default=0,
        )
        degraded = candidate_result.degraded or report.degraded
        degraded_reason = candidate_result.degraded_reason or report.degraded_reason
        self._record_query_metrics(
            method,
            estimator_used,
            candidate_seconds,
            verification_seconds,
            degraded,
        )
        return QueryResult(
            nodes=report.kept,
            eta=eta,
            sources=source_list,
            method=method,
            candidate_result=candidate_result,
            candidate_seconds=candidate_seconds,
            verification_seconds=verification_seconds,
            tree_height=self.tree.height,
            num_graph_nodes=self.graph.num_nodes,
            min_selected_depth=min_depth,
            statuses=report.statuses,
            degraded=degraded,
            degraded_reason=degraded_reason,
            worlds_used=report.worlds_used,
            achieved_confidence=report.achieved_confidence,
            backend_fallbacks=report.backend_fallbacks,
            estimator=estimator_used,
            planner_reason=planner_reason,
            estimates=report.estimates,
            epoch=self.graph.epoch,
        )

    @staticmethod
    def _record_query_metrics(
        method: str,
        estimator_used: str,
        candidate_seconds: float,
        verification_seconds: float,
        degraded: bool,
    ) -> None:
        """Per-stage timers and query counters for the serving layer."""
        from ..service.metrics import get_registry

        registry = get_registry()
        registry.counter("engine.queries").inc()
        registry.counter(f"engine.queries.{method}").inc()
        if degraded:
            registry.counter("engine.degraded").inc()
        registry.histogram("engine.filter_seconds").observe(candidate_seconds)
        registry.histogram("engine.verify_seconds").observe(
            verification_seconds
        )
        # Per-estimator latency: keyed by what actually ran, so a
        # treewidth-cap fallback shows up under "mc", not "exact".
        registry.histogram(f"estimator.{estimator_used}.seconds").observe(
            verification_seconds
        )

    @staticmethod
    def _normalize_sources(sources: Union[int, Sequence[int]]) -> List[int]:
        if isinstance(sources, int):
            return [sources]
        source_list = list(dict.fromkeys(sources))
        if not source_list:
            raise EmptySourceSetError()
        return source_list
