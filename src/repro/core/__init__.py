"""The paper's primary contribution: the RQ-tree index and query engine."""

from .rqtree import RQTree, ClusterNode
from .builder import build_rqtree, BuildReport, split_cluster, rebuild_subtree
from .outreach import (
    OutreachComputation,
    outreach_upper_bound,
    general_outreach_upper_bound,
    combine_upper_bounds,
    capacity_of,
)
from .candidates import (
    CandidateResult,
    TraversalStep,
    single_source_candidates,
    multi_source_candidates_greedy,
    multi_source_candidates_exact,
    generate_candidates,
)
from .verification import (
    VerificationReport,
    verify_lower_bound,
    verify_lower_bound_packing,
    verify_lower_bound_report,
    verify_sampling,
    verify_sampling_report,
)
from .engine import RQTreeEngine, QueryResult
from .detection import (
    DetectionResult,
    detect_reliability,
    reliability_scores,
    top_k_reliable,
)
from .maintenance import DynamicRQTreeEngine, MaintenanceStats
from .caching import CachingRQTreeEngine, CacheStats
from .bounds_cache import ClusterBoundsCache
from .worldindex import WorldIndex

__all__ = [
    "RQTree",
    "ClusterNode",
    "build_rqtree",
    "BuildReport",
    "split_cluster",
    "rebuild_subtree",
    "OutreachComputation",
    "outreach_upper_bound",
    "general_outreach_upper_bound",
    "combine_upper_bounds",
    "capacity_of",
    "CandidateResult",
    "TraversalStep",
    "single_source_candidates",
    "multi_source_candidates_greedy",
    "multi_source_candidates_exact",
    "generate_candidates",
    "VerificationReport",
    "verify_lower_bound",
    "verify_lower_bound_report",
    "verify_lower_bound_packing",
    "verify_sampling",
    "verify_sampling_report",
    "RQTreeEngine",
    "QueryResult",
    "DetectionResult",
    "detect_reliability",
    "reliability_scores",
    "top_k_reliable",
    "DynamicRQTreeEngine",
    "MaintenanceStats",
    "CachingRQTreeEngine",
    "CacheStats",
    "ClusterBoundsCache",
    "WorldIndex",
]
