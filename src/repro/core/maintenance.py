"""Incremental index maintenance under graph updates.

The paper builds the RQ-tree once over a static graph.  Real deployments
(social networks, interaction databases) mutate: arcs appear, disappear,
and change probability.  A key structural fact makes maintenance
tractable:

    **Any hierarchical partition is a correct RQ-tree.**  Soundness of
    candidate generation rests only on the ``U_out`` bounds, which are
    computed *online* against the current graph (Algorithm 1).  The
    clustering merely decides how *tight* those bounds are — i.e. how
    much gets pruned.  An arc update therefore never makes the index
    wrong; it can only erode pruning quality where the update crosses
    cluster boundaries.

:class:`DynamicRQTreeEngine` exploits this: updates are applied to the
graph immediately (queries stay correct at all times), while *damage* is
tracked per cluster — an inserted/strengthened arc crossing a cluster's
boundary increases that cluster's outreach mass, loosening its bound.
When a cluster's accumulated damage exceeds a configurable fraction of
its size, its subtree is re-partitioned in place via
:func:`repro.core.builder.rebuild_subtree` (cost proportional to the
cluster, not the graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..graph.uncertain import UncertainGraph
from ..seeding import derive_seed
from .builder import rebuild_subtree
from .engine import QueryResult, RQTreeEngine
from .rqtree import RQTree

__all__ = ["MaintenanceStats", "DynamicRQTreeEngine"]


@dataclass
class MaintenanceStats:
    """Counters describing maintenance activity so far."""

    arcs_added: int = 0
    arcs_removed: int = 0
    subtree_rebuilds: int = 0
    nodes_repartitioned: int = 0


class DynamicRQTreeEngine:
    """An RQ-tree engine that stays usable while the graph changes.

    Parameters
    ----------
    graph:
        The uncertain graph (mutated in place by updates).
    damage_threshold:
        A cluster's subtree is rebuilt when its accumulated damage
        exceeds ``damage_threshold * cluster_size``.  Damage is counted
        as one unit per update whose endpoints straddle the cluster's
        boundary at some tree level (i.e. per update that loosens the
        cluster's cut).  Lower values rebuild more eagerly.
    min_rebuild_size:
        Clusters smaller than this never trigger a rebuild on their
        own: every inserted arc trivially crosses its endpoints' leaf
        boundaries, and re-partitioning a handful of nodes cannot
        improve pruning.  Damage on small clusters still propagates to
        their (large) ancestors through the per-level charging.
    rebuild_seed / strategy / branching / max_imbalance:
        Passed through to the builder for both the initial build and
        subtree rebuilds.

    Example
    -------
    ::

        dyn = DynamicRQTreeEngine(graph, seed=3)
        dyn.add_arc(10, 99, 0.7)          # index remains queryable
        result = dyn.query(10, eta=0.5)   # correct against current graph
    """

    def __init__(
        self,
        graph: UncertainGraph,
        damage_threshold: float = 0.25,
        seed: int = 0,
        strategy: str = "multilevel",
        branching: int = 2,
        max_imbalance: float = 0.1,
        min_rebuild_size: int = 8,
    ) -> None:
        if damage_threshold <= 0:
            raise ValueError(
                f"damage_threshold must be positive, got {damage_threshold}"
            )
        if min_rebuild_size < 2:
            raise ValueError(
                f"min_rebuild_size must be >= 2, got {min_rebuild_size}"
            )
        self.min_rebuild_size = min_rebuild_size
        self.graph = graph
        self.damage_threshold = damage_threshold
        self._seed = seed
        self._strategy = strategy
        self._branching = branching
        self._max_imbalance = max_imbalance
        self._engine = RQTreeEngine.build(
            graph,
            max_imbalance=max_imbalance,
            seed=seed,
            strategy=strategy,
        )
        # damage[cluster_index] accumulates boundary-crossing updates.
        self._damage: Dict[int, int] = {}
        self.stats = MaintenanceStats()

    @classmethod
    def from_engine(
        cls,
        engine: RQTreeEngine,
        damage_threshold: float = 0.25,
        seed: int = 0,
        strategy: str = "multilevel",
        branching: int = 2,
        max_imbalance: float = 0.1,
        min_rebuild_size: int = 8,
    ) -> "DynamicRQTreeEngine":
        """Wrap an *existing* engine without rebuilding its index.

        The shard runtime uses this to retrofit maintenance onto the
        engine it deserialized (or rebuilt from ``tree_json``) at init:
        the tree is adopted as-is — correct by the structural fact in
        the module docstring — and only accrues damage from updates
        applied after the wrap.
        """
        self = cls.__new__(cls)
        if damage_threshold <= 0:
            raise ValueError(
                f"damage_threshold must be positive, got {damage_threshold}"
            )
        if min_rebuild_size < 2:
            raise ValueError(
                f"min_rebuild_size must be >= 2, got {min_rebuild_size}"
            )
        self.min_rebuild_size = min_rebuild_size
        self.graph = engine.graph
        self.damage_threshold = damage_threshold
        self._seed = seed
        self._strategy = strategy
        self._branching = branching
        self._max_imbalance = max_imbalance
        self._engine = engine
        self._damage = {}
        self.stats = MaintenanceStats()
        return self

    # ------------------------------------------------------------------
    # Delegation
    # ------------------------------------------------------------------
    @property
    def tree(self) -> RQTree:
        """The current index tree (replaced wholesale on rebuilds)."""
        return self._engine.tree

    @property
    def engine(self) -> RQTreeEngine:
        """The wrapped static engine (replaced wholesale on rebuilds)."""
        return self._engine

    def query(self, *args, **kwargs) -> QueryResult:
        """Answer a reliability-search query (see RQTreeEngine.query)."""
        return self._engine.query(*args, **kwargs)

    def candidates(self, *args, **kwargs):
        """Candidate generation only (see RQTreeEngine.candidates)."""
        return self._engine.candidates(*args, **kwargs)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_arc(self, u: int, v: int, p: float) -> None:
        """Insert (or noisy-or strengthen) the arc ``(u, v)``.

        The graph is updated immediately; cluster damage is recorded
        for every tree cluster whose boundary the new arc crosses, and
        an over-damaged cluster triggers a local subtree rebuild.
        """
        self.graph.add_arc(u, v, p)
        self.stats.arcs_added += 1
        self._record_damage(u, v)

    def remove_arc(self, u: int, v: int) -> None:
        """Delete the arc ``(u, v)``.

        Removal can only *tighten* cuts, but it still invalidates the
        balance/quality the partitioner optimized for, so it counts as
        (half) damage against the same clusters.
        """
        self.graph.remove_arc(u, v)
        self.stats.arcs_removed += 1
        self._record_damage(u, v)

    def update_probability(self, u: int, v: int, p: float) -> None:
        """Set the probability of an existing arc to *p* exactly."""
        self.graph.remove_arc(u, v)
        self.graph.add_arc(u, v, p)
        self._record_damage(u, v)

    def apply(self, ops: Sequence) -> int:
        """Apply a batch of updates; returns the number applied.

        Each op is either an ``(op, u, v, p)`` tuple with ``op`` one of
        ``"set"`` / ``"insert"`` / ``"delete"`` (``p`` ignored for
        deletes) or any object with ``op`` / ``u`` / ``v`` / ``p``
        attributes (the live plane's :class:`repro.live.ArcUpdate`).

        Semantics are upsert-friendly so a slice replayed against a
        shard that already saw part of the batch stays idempotent-ish:
        ``"set"`` on a missing arc inserts it, ``"insert"`` on an
        existing arc sets it exactly (no noisy-or double counting —
        the update plane's contract is "the arc's probability is now
        p"), and ``"delete"`` on a missing arc is a no-op.
        """
        applied = 0
        for item in ops:
            if isinstance(item, tuple):
                op, u, v = item[0], item[1], item[2]
                p = item[3] if len(item) > 3 else None
            else:
                op, u, v, p = item.op, item.u, item.v, item.p
            if op == "delete":
                if self.graph.has_arc(u, v):
                    self.remove_arc(u, v)
                    applied += 1
                continue
            if op not in ("set", "insert"):
                raise ValueError(f"unknown update op {op!r}")
            if self.graph.has_arc(u, v):
                self.update_probability(u, v, p)
            else:
                self.add_arc(u, v, p)
            applied += 1
        return applied

    # ------------------------------------------------------------------
    # Damage accounting and repair
    # ------------------------------------------------------------------
    def _record_damage(self, u: int, v: int) -> None:
        """Charge the clusters whose boundary the arc (u, v) crosses.

        Walking up from ``u``'s leaf, the arc is a boundary arc of every
        cluster on the path that does not yet contain ``v``; it becomes
        internal at the least common ancestor.  Each such cluster takes
        one damage unit; the most-damaged cluster relative to its size
        is rebuilt when it exceeds the threshold.
        """
        tree = self._engine.tree
        worst: Optional[int] = None
        worst_score = 0.0
        for cluster in tree.path_to_root(u):
            if v in cluster.members:
                break  # arc is internal from here up
            index = cluster.index
            self._engine.bounds_cache.invalidate((index,))
            self._damage[index] = self._damage.get(index, 0) + 1
            if cluster.size < self.min_rebuild_size:
                continue  # too small for re-partitioning to pay off
            score = self._damage[index] / cluster.size
            if score > worst_score:
                worst_score = score
                worst = index
        if worst is not None and worst_score > self.damage_threshold:
            self._rebuild(worst)

    def _rebuild(self, cluster_index: int) -> None:
        """Re-partition the damaged cluster's parent branch.

        Rebuilding the *parent* (when one exists) lets the repartition
        move nodes across the damaged boundary, which rebuilding the
        damaged cluster alone could not.
        """
        tree = self._engine.tree
        target = tree.clusters[cluster_index]
        if target.parent is not None:
            target = tree.clusters[target.parent]
        new_tree = rebuild_subtree(
            self.graph,
            tree,
            target.index,
            max_imbalance=self._max_imbalance,
            seed=derive_seed(
                self._seed, "maintenance.rebuild", self.stats.subtree_rebuilds
            ),
            strategy=self._strategy,
            branching=self._branching,
        )
        self._engine = RQTreeEngine(
            self.graph, new_tree, flow_engine=self._engine.flow_engine
        )
        self.stats.subtree_rebuilds += 1
        self.stats.nodes_repartitioned += target.size
        # Cluster indices changed wholesale; damage bookkeeping restarts.
        self._damage.clear()

    def force_rebuild(self) -> None:
        """Rebuild the entire index now (e.g. after a bulk load)."""
        self._engine = RQTreeEngine.build(
            self.graph,
            max_imbalance=self._max_imbalance,
            seed=self._seed,
            strategy=self._strategy,
        )
        self._damage.clear()
        self.stats.subtree_rebuilds += 1
        self.stats.nodes_repartitioned += self.graph.num_nodes
