"""Verification — the screening phase (paper, Section 5).

The candidate set contains no false negatives but may contain false
positives; verification filters them:

* :func:`verify_lower_bound` (Section 5.1, ``RQ-tree-LB``) keeps only
  candidates whose *most-likely-path* probability from the sources is at
  least ``η`` (Theorem 4).  Since ``L_R(S, t) ≤ R(S, t)``, every kept
  node truly satisfies the query — **perfect precision** — and the
  computation is one multi-source Dijkstra on the candidate-induced
  subgraph: no sampling at all.

* :func:`verify_sampling` (Section 5.2, ``RQ-tree-MC``) Monte-Carlo
  samples the candidate-induced subgraph only, keeping candidates
  reached in at least ``η K`` of ``K`` worlds.  Better recall than the
  lower bound, small (bounded) loss of precision, cost tunable through
  ``K``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Set

from ..errors import EmptySourceSetError, InvalidThresholdError
from ..graph.paths import (
    hop_bounded_path_probabilities,
    most_likely_path,
    most_likely_path_probabilities,
)
from ..graph.sampling import ReachabilityFrequencyEstimator
from ..graph.uncertain import UncertainGraph

__all__ = [
    "verify_lower_bound",
    "verify_lower_bound_packing",
    "verify_sampling",
]

#: Relative tolerance when comparing a path probability against eta;
#: compensates for the exp(log(...)) round trip in the Dijkstra weights.
_ETA_SLACK = 1e-9


def _check(eta: float, sources: Sequence[int]) -> Set[int]:
    if math.isnan(eta) or not 0.0 < eta < 1.0:
        raise InvalidThresholdError(eta)
    source_set = set(sources)
    if not source_set:
        raise EmptySourceSetError()
    return source_set


def verify_lower_bound(
    graph: UncertainGraph,
    sources: Sequence[int],
    eta: float,
    candidates: Set[int],
    max_hops: Optional[int] = None,
) -> Set[int]:
    """Keep candidates whose most-likely-path probability is >= eta.

    Paths are restricted to the candidate set: the candidate-generation
    guarantee makes every pruned node's reliability (and hence every
    path through it that the verifier could have used) fall below
    ``eta``, so the restriction loses nothing (Section 5.1).

    Source nodes inside the candidate set are always kept
    (``R(S, s) = 1``).

    With *max_hops* set, the verifier answers the distance-constrained
    variant (Jin et al. [20]): only paths of at most *max_hops* arcs
    count, computed by a layered hop-bounded relaxation instead of
    Dijkstra.  The lower-bound property (Theorem 4) carries over
    verbatim because a length-bounded path is still a single path.
    """
    source_set = _check(eta, sources)
    cutoff = eta * (1.0 - _ETA_SLACK)
    if max_hops is None:
        probabilities = most_likely_path_probabilities(
            graph,
            source_set & candidates,
            allowed=candidates,
            min_probability=cutoff,
        )
    else:
        probabilities = hop_bounded_path_probabilities(
            graph,
            source_set & candidates,
            max_hops,
            allowed=candidates,
            min_probability=cutoff,
        )
    threshold = eta * (1.0 - _ETA_SLACK)
    return {
        node
        for node, probability in probabilities.items()
        if probability >= threshold
    }


def verify_lower_bound_packing(
    graph: UncertainGraph,
    sources: Sequence[int],
    eta: float,
    candidates: Set[int],
    max_paths: int = 3,
) -> Set[int]:
    """Edge-packing verification: RQ-tree-LB with better recall.

    An extension of the Section 5.1 verifier using the classical
    edge-packing lower bound (Brecht & Colbourn; cited by the paper as
    too expensive on the *whole* network, but cheap on candidate
    subgraphs): for each candidate, greedily extract up to *max_paths*
    **arc-disjoint** most-likely paths from ``S``.  Arc-disjoint paths
    depend on disjoint sets of independent coins, so their existence
    events are independent and

    .. math::

        R(S, t) \\ge 1 - \\prod_i (1 - \\prod_{a \\in P_i} p(a))

    is a certified lower bound that dominates the single-path bound —
    every node RQ-tree-LB keeps is kept, plus multipath-reliable nodes
    the single path misses.  Precision remains perfect.

    Cost: up to ``max_paths`` Dijkstra runs per *undecided* candidate
    (nodes already certified by the bulk single-path pass are skipped),
    all restricted to the candidate subgraph.
    """
    source_set = _check(eta, sources)
    if max_paths < 1:
        raise ValueError(f"max_paths must be >= 1, got {max_paths}")
    threshold = eta * (1.0 - _ETA_SLACK)
    present_sources = source_set & candidates
    # Bulk single-path pass first (cheap); also yields the best single
    # path probability of every undecided candidate.
    single = most_likely_path_probabilities(
        graph, present_sources, allowed=candidates
    )
    kept = {t for t, p in single.items() if p >= threshold}
    if max_paths == 1:
        return kept
    for t in sorted(candidates - kept):
        best = single.get(t, 0.0)
        if best <= 0.0:
            continue  # unreachable inside the candidate set
        # Sound skip: every packed path is at most as likely as the best
        # single path, so the packing bound cannot exceed
        # 1 - (1 - best)^max_paths; candidates that fall short even in
        # that optimistic case need no Dijkstra at all.
        if 1.0 - (1.0 - best) ** max_paths < threshold:
            continue
        failure = 1.0
        banned: Set[tuple] = set()
        for _ in range(max_paths):
            probability, path = most_likely_path(
                graph,
                present_sources,
                t,
                allowed=candidates,
                banned_arcs=banned,
            )
            if probability <= 0.0:
                break
            failure *= 1.0 - probability
            if 1.0 - failure >= threshold:
                break
            banned.update(zip(path, path[1:]))
        if 1.0 - failure >= threshold:
            kept.add(t)
    return kept


def verify_sampling(
    graph: UncertainGraph,
    sources: Sequence[int],
    eta: float,
    candidates: Set[int],
    num_samples: int = 1000,
    seed: Optional[int] = None,
    max_hops: Optional[int] = None,
    backend: str = "auto",
) -> Set[int]:
    """Monte-Carlo verification on the candidate-induced subgraph.

    Samples ``num_samples`` worlds lazily (BFS-coupled) without ever
    leaving the candidate set, and keeps candidates reached in at least
    ``eta * num_samples`` worlds.  The sample count is the paper's
    efficiency/accuracy knob (Section 5.2); the paper's experiments use
    ``K = 1000``.  *backend* selects the sampling implementation
    (:mod:`repro.accel`); ``"auto"`` counts the candidate set, not the
    whole graph, when deciding whether the batched kernel pays off.
    """
    source_set = _check(eta, sources)
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    estimator = ReachabilityFrequencyEstimator(
        graph,
        sorted(source_set & candidates),
        seed=seed,
        allowed=candidates,
        max_hops=max_hops,
        backend=backend,
    )
    estimator.run(num_samples)
    return estimator.nodes_above(eta)
