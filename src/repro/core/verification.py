"""Verification — the screening phase (paper, Section 5).

The candidate set contains no false negatives but may contain false
positives; verification filters them:

* :func:`verify_lower_bound` (Section 5.1, ``RQ-tree-LB``) keeps only
  candidates whose *most-likely-path* probability from the sources is at
  least ``η`` (Theorem 4).  Since ``L_R(S, t) ≤ R(S, t)``, every kept
  node truly satisfies the query — **perfect precision** — and the
  computation is one multi-source Dijkstra on the candidate-induced
  subgraph: no sampling at all.

* :func:`verify_sampling` (Section 5.2, ``RQ-tree-MC``) Monte-Carlo
  samples the candidate-induced subgraph only, keeping candidates
  reached in at least ``η K`` of ``K`` worlds.  Better recall than the
  lower bound, small (bounded) loss of precision, cost tunable through
  ``K``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple, Union

from ..errors import (
    EmptySourceSetError,
    InvalidThresholdError,
    QueryDeadlineError,
)
from ..graph.paths import (
    hop_bounded_path_probabilities,
    most_likely_path,
    most_likely_path_probabilities,
)
from ..graph.sampling import ReachabilityFrequencyEstimator
from ..graph.uncertain import UncertainGraph
from ..resilience.budget import (
    CONFIRMED,
    REJECTED,
    UNVERIFIED,
    BudgetClock,
    QueryBudget,
    wilson_interval,
)

__all__ = [
    "VerificationReport",
    "verify_lower_bound",
    "verify_lower_bound_report",
    "verify_lower_bound_packing",
    "packing_bounds",
    "verify_sampling",
    "verify_sampling_report",
]

#: Worlds per chunk of budgeted MC verification: a multiple of the
#: numpy kernel's 8-world byte lanes, small enough that deadline checks
#: and early-stopping tests run every few milliseconds of sampling.
_BUDGET_CHUNK_WORLDS = 256

#: Relative tolerance when comparing a path probability against eta;
#: compensates for the exp(log(...)) round trip in the Dijkstra weights.
_ETA_SLACK = 1e-9


def _record_verify_metrics(worlds: int, fallbacks: int) -> None:
    """Count one MC verification pass in the service metrics registry."""
    from ..service.metrics import get_registry

    registry = get_registry()
    registry.counter("verify.mc_passes").inc()
    registry.counter("verify.worlds").inc(worlds)
    if fallbacks:
        registry.counter("verify.backend_fallbacks").inc(fallbacks)


def _check(eta: float, sources: Sequence[int]) -> Set[int]:
    if math.isnan(eta) or not 0.0 < eta < 1.0:
        raise InvalidThresholdError(eta, context="verification")
    source_set = set(sources)
    if not source_set:
        raise EmptySourceSetError()
    return source_set


@dataclass
class VerificationReport:
    """Outcome of one verification phase, with per-node statuses.

    Attributes
    ----------
    kept:
        The answer set — exactly the nodes whose status is
        :data:`~repro.resilience.CONFIRMED`.
    statuses:
        Every candidate mapped to ``confirmed`` / ``rejected`` /
        ``unverified-candidate``.  Unverified nodes only appear under a
        budget (deadline expiry or the candidate-subgraph cap); they
        are still candidates — filtering admits no false negatives —
        just unscreened ones.
    degraded / degraded_reason:
        Whether the budget forced a partial answer, and why.
    worlds_used:
        Worlds actually sampled (MC only; 0 for the lower-bound
        verifiers).
    backend_fallbacks:
        Numpy-kernel batches that were retried on the Python reference
        path (see :mod:`repro.accel`).
    estimates:
        Optional per-node reliability point estimates or certified
        lower bounds (estimator-dependent; empty when the verifier does
        not produce them).  MC-style verifiers report observed
        frequencies, the lower-bound pass reports path-probability
        bounds for nodes above the cutoff, and the exact estimator
        reports exact subgraph reliabilities.
    """

    kept: Set[int]
    statuses: Dict[int, str] = field(default_factory=dict)
    degraded: bool = False
    degraded_reason: Optional[str] = None
    worlds_used: int = 0
    backend_fallbacks: int = 0
    estimates: Dict[int, float] = field(default_factory=dict)
    #: Name of the estimator that actually produced this report (set by
    #: the :mod:`repro.estimators` layer; ``""`` when a verifier was
    #: called directly).  Differs from the requested method when an
    #: estimator fell back — see ``notes``.
    estimator: str = ""
    #: Free-form annotation of non-degrading events (e.g. the exact
    #: estimator's treewidth-cap fallback to sampling).
    notes: Optional[str] = None

    @property
    def unverified(self) -> Set[int]:
        """Candidates the budget ran out on."""
        return {n for n, s in self.statuses.items() if s == UNVERIFIED}

    @property
    def achieved_confidence(self) -> float:
        """Fraction of candidates that received a definitive verdict
        (1.0 for unbudgeted runs)."""
        if not self.statuses:
            return 1.0
        decided = sum(1 for s in self.statuses.values() if s != UNVERIFIED)
        return decided / len(self.statuses)


def _verification_subset(
    source_set: Set[int],
    candidates: Set[int],
    clock: Optional[BudgetClock],
) -> Tuple[Set[int], Set[int]]:
    """Apply the budget's candidate-subgraph cap.

    Returns ``(subset, dropped)``: the nodes verification will process
    and the overflow reported as unverified.  Sources are kept first
    (they are answers by definition), then ascending node id — a
    deterministic choice so budgeted queries are reproducible.
    """
    cap = None if clock is None else clock.budget.max_candidate_nodes
    if cap is None or len(candidates) <= cap:
        return candidates, set()
    subset = set(source_set & candidates)
    for node in sorted(candidates):
        if len(subset) >= cap:
            break
        subset.add(node)
    return subset, candidates - subset


def _raise_if_partial(
    report: VerificationReport, clock: Optional[BudgetClock]
) -> Set[int]:
    """Guard for the set-returning verifiers: a plain ``Set[int]``
    cannot distinguish *rejected* from *ran out of budget*, so a partial
    report raises :class:`QueryDeadlineError` instead of silently
    under-answering.  (The engine uses the ``*_report`` variants, which
    degrade gracefully.)"""
    if report.unverified:
        elapsed = 0.0 if clock is None else clock.elapsed()
        deadline = (
            math.inf
            if clock is None or clock.budget.deadline_seconds is None
            else clock.budget.deadline_seconds
        )
        raise QueryDeadlineError(elapsed, deadline)
    return report.kept


def verify_lower_bound(
    graph: UncertainGraph,
    sources: Sequence[int],
    eta: float,
    candidates: Set[int],
    max_hops: Optional[int] = None,
    budget: Optional[Union[QueryBudget, BudgetClock]] = None,
) -> Set[int]:
    """Keep candidates whose most-likely-path probability is >= eta.

    Paths are restricted to the candidate set: the candidate-generation
    guarantee makes every pruned node's reliability (and hence every
    path through it that the verifier could have used) fall below
    ``eta``, so the restriction loses nothing (Section 5.1).

    Source nodes inside the candidate set are always kept
    (``R(S, s) = 1``).

    With *max_hops* set, the verifier answers the distance-constrained
    variant (Jin et al. [20]): only paths of at most *max_hops* arcs
    count, computed by a layered hop-bounded relaxation instead of
    Dijkstra.  The lower-bound property (Theorem 4) carries over
    verbatim because a length-bounded path is still a single path.

    With a *budget* that runs out before every candidate is screened,
    this set-returning form raises :class:`QueryDeadlineError` (it has
    no way to flag the unscreened rest); use
    :func:`verify_lower_bound_report` for graceful partial answers.
    """
    clock = BudgetClock.ensure(budget)
    report = verify_lower_bound_report(
        graph, sources, eta, candidates, max_hops=max_hops, budget=clock
    )
    return _raise_if_partial(report, clock)


def verify_lower_bound_report(
    graph: UncertainGraph,
    sources: Sequence[int],
    eta: float,
    candidates: Set[int],
    max_hops: Optional[int] = None,
    budget: Optional[Union[QueryBudget, BudgetClock]] = None,
) -> VerificationReport:
    """:func:`verify_lower_bound` with per-node statuses and graceful
    budget handling.

    The most-likely-path pass is one bulk multi-source Dijkstra — too
    coarse to interrupt — so the deadline is honoured at phase
    granularity: an already-expired budget skips the pass entirely and
    reports every non-source candidate :data:`UNVERIFIED` (sources stay
    :data:`CONFIRMED`; ``R(S, s) = 1`` needs no computation).  The
    budget's ``max_candidate_nodes`` cap restricts the Dijkstra to a
    subset, which keeps the bound sound (fewer paths available, so the
    bound can only shrink) — capped-out candidates are likewise
    reported unverified rather than rejected.
    """
    source_set = _check(eta, sources)
    clock = BudgetClock.ensure(budget)
    subset, dropped = _verification_subset(source_set, candidates, clock)
    statuses: Dict[int, str] = {node: UNVERIFIED for node in dropped}

    if clock is not None and clock.expired():
        for node in subset:
            statuses[node] = (
                CONFIRMED if node in source_set else UNVERIFIED
            )
        kept = {n for n, s in statuses.items() if s == CONFIRMED}
        return VerificationReport(
            kept=kept,
            statuses=statuses,
            degraded=True,
            degraded_reason="deadline expired before verification",
        )

    cutoff = eta * (1.0 - _ETA_SLACK)
    if max_hops is None:
        probabilities = most_likely_path_probabilities(
            graph,
            source_set & subset,
            allowed=subset,
            min_probability=cutoff,
        )
    else:
        probabilities = hop_bounded_path_probabilities(
            graph,
            source_set & subset,
            max_hops,
            allowed=subset,
            min_probability=cutoff,
        )
    kept = {
        node
        for node, probability in probabilities.items()
        if probability >= cutoff
    }
    for node in subset:
        statuses[node] = CONFIRMED if node in kept else REJECTED
    return VerificationReport(
        kept=kept,
        statuses=statuses,
        degraded=bool(dropped),
        degraded_reason=(
            "candidate-subgraph cap left candidates unverified"
            if dropped else None
        ),
        estimates=dict(probabilities),
    )


def verify_lower_bound_packing(
    graph: UncertainGraph,
    sources: Sequence[int],
    eta: float,
    candidates: Set[int],
    max_paths: int = 3,
) -> Set[int]:
    """Edge-packing verification: RQ-tree-LB with better recall.

    An extension of the Section 5.1 verifier using the classical
    edge-packing lower bound (Brecht & Colbourn; cited by the paper as
    too expensive on the *whole* network, but cheap on candidate
    subgraphs): for each candidate, greedily extract up to *max_paths*
    **arc-disjoint** most-likely paths from ``S``.  Arc-disjoint paths
    depend on disjoint sets of independent coins, so their existence
    events are independent and

    .. math::

        R(S, t) \\ge 1 - \\prod_i (1 - \\prod_{a \\in P_i} p(a))

    is a certified lower bound that dominates the single-path bound —
    every node RQ-tree-LB keeps is kept, plus multipath-reliable nodes
    the single path misses.  Precision remains perfect.

    Cost: up to ``max_paths`` Dijkstra runs per *undecided* candidate
    (nodes already certified by the bulk single-path pass are skipped),
    all restricted to the candidate subgraph.
    """
    kept, _ = packing_bounds(graph, sources, eta, candidates, max_paths)
    return kept


def packing_bounds(
    graph: UncertainGraph,
    sources: Sequence[int],
    eta: float,
    candidates: Set[int],
    max_paths: int = 3,
) -> Tuple[Set[int], Dict[int, float]]:
    """Packing verification plus the per-node certified lower bounds.

    Same algorithm as :func:`verify_lower_bound_packing`; additionally
    returns the best certified bound computed for each candidate (the
    single-path probability, improved to the packing bound wherever the
    packing pass ran).  Skipped candidates keep their single-path value
    — still a valid lower bound, just not the tightest one the packing
    could prove.
    """
    source_set = _check(eta, sources)
    if max_paths < 1:
        raise ValueError(f"max_paths must be >= 1, got {max_paths}")
    threshold = eta * (1.0 - _ETA_SLACK)
    present_sources = source_set & candidates
    # Bulk single-path pass first (cheap); also yields the best single
    # path probability of every undecided candidate.
    single = most_likely_path_probabilities(
        graph, present_sources, allowed=candidates
    )
    bounds = {t: single.get(t, 0.0) for t in candidates}
    kept = {t for t, p in single.items() if p >= threshold}
    if max_paths == 1:
        return kept, bounds
    for t in sorted(candidates - kept):
        best = single.get(t, 0.0)
        if best <= 0.0:
            continue  # unreachable inside the candidate set
        # Sound skip: every packed path is at most as likely as the best
        # single path, so the packing bound cannot exceed
        # 1 - (1 - best)^max_paths; candidates that fall short even in
        # that optimistic case need no Dijkstra at all.
        if 1.0 - (1.0 - best) ** max_paths < threshold:
            continue
        failure = 1.0
        banned: Set[tuple] = set()
        for _ in range(max_paths):
            probability, path = most_likely_path(
                graph,
                present_sources,
                t,
                allowed=candidates,
                banned_arcs=banned,
            )
            if probability <= 0.0:
                break
            failure *= 1.0 - probability
            if 1.0 - failure >= threshold:
                break
            banned.update(zip(path, path[1:]))
        bounds[t] = max(bounds[t], 1.0 - failure)
        if 1.0 - failure >= threshold:
            kept.add(t)
    return kept, bounds


def verify_sampling(
    graph: UncertainGraph,
    sources: Sequence[int],
    eta: float,
    candidates: Set[int],
    num_samples: int = 1000,
    seed: Optional[int] = None,
    max_hops: Optional[int] = None,
    backend: str = "auto",
    budget: Optional[Union[QueryBudget, BudgetClock]] = None,
    coin_source=None,
) -> Set[int]:
    """Monte-Carlo verification on the candidate-induced subgraph.

    Samples ``num_samples`` worlds lazily (BFS-coupled) without ever
    leaving the candidate set, and keeps candidates reached in at least
    ``eta * num_samples`` worlds.  The sample count is the paper's
    efficiency/accuracy knob (Section 5.2); the paper's experiments use
    ``K = 1000``.  *backend* selects the sampling implementation
    (:mod:`repro.accel`); ``"auto"`` counts the candidate set, not the
    whole graph, when deciding whether the batched kernel pays off.

    With a *budget* that runs out before every candidate is decided,
    this set-returning form raises :class:`QueryDeadlineError`; use
    :func:`verify_sampling_report` for graceful partial answers.
    """
    clock = BudgetClock.ensure(budget)
    report = verify_sampling_report(
        graph, sources, eta, candidates,
        num_samples=num_samples, seed=seed, max_hops=max_hops,
        backend=backend, budget=clock, coin_source=coin_source,
    )
    return _raise_if_partial(report, clock)


def verify_sampling_report(
    graph: UncertainGraph,
    sources: Sequence[int],
    eta: float,
    candidates: Set[int],
    num_samples: int = 1000,
    seed: Optional[int] = None,
    max_hops: Optional[int] = None,
    backend: str = "auto",
    budget: Optional[Union[QueryBudget, BudgetClock]] = None,
    coin_source=None,
) -> VerificationReport:
    """:func:`verify_sampling` with per-node statuses, chunked sampling,
    early stopping, and graceful budget handling.

    Without a budget this is *exactly* the seed behaviour: one
    ``estimator.run(K)`` call (so the random stream is consumed
    identically) thresholded at ``eta * K``, every candidate reported
    confirmed or rejected.

    With a budget, sampling proceeds in chunks of
    :data:`_BUDGET_CHUNK_WORLDS` worlds on one continuous estimator
    stream (the numpy kernel's byte lanes are reused across chunks).
    After each chunk every still-undecided candidate's Wilson score
    interval (at the budget's confidence level) is tested against
    ``eta``: an interval clear of ``eta`` settles the node early, and
    sampling stops as soon as no node is undecided — reliabilities far
    from the threshold are typically settled within a chunk or two.
    On deadline expiry (or the ``max_worlds`` cap) the loop stops where
    it is; decided nodes keep their verdicts, the rest are reported
    :data:`UNVERIFIED`, and the report is marked degraded.  A run whose
    world cap is exhausted *without* the deadline expiring settles the
    remaining undecided nodes by the seed's count-threshold rule — that
    is a completed (coarser) estimate, not a partial one.

    *coin_source* forwards to the estimator (cross-query world sharing;
    see :class:`repro.graph.sampling.ReachabilityFrequencyEstimator`).
    The serving layer only supplies it for unbudgeted queries — a
    budgeted run's chunk partition depends on wall-clock load, so its
    coins would not line up across queries.
    """
    source_set = _check(eta, sources)
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    clock = BudgetClock.ensure(budget)
    subset, dropped = _verification_subset(source_set, candidates, clock)
    statuses: Dict[int, str] = {node: UNVERIFIED for node in dropped}
    present_sources = source_set & subset
    estimator = ReachabilityFrequencyEstimator(
        graph,
        sorted(present_sources),
        seed=seed,
        allowed=subset,
        max_hops=max_hops,
        backend=backend,
        coin_source=coin_source,
    )

    if clock is None:
        estimator.run(num_samples)
        kept = estimator.nodes_above(eta)
        for node in subset:
            statuses[node] = CONFIRMED if node in kept else REJECTED
        _record_verify_metrics(num_samples, estimator.fallbacks)
        return VerificationReport(
            kept=kept,
            statuses=statuses,
            worlds_used=num_samples,
            backend_fallbacks=estimator.fallbacks,
            estimates=estimator.frequencies(),
        )

    target = num_samples
    if clock.budget.max_worlds is not None:
        target = min(target, clock.budget.max_worlds)
    confidence = clock.budget.confidence
    undecided = set(subset)
    # Sources are answers by definition (R(S, s) = 1): confirm them up
    # front so a zero-world degraded run still reports them correctly.
    for node in present_sources:
        statuses[node] = CONFIRMED
        undecided.discard(node)
    done = 0
    while done < target and undecided and not clock.expired():
        step = min(_BUDGET_CHUNK_WORLDS, target - done)
        estimator.run(step)
        done += step
        counts = estimator.counts()
        for node in list(undecided):
            low, high = wilson_interval(
                counts.get(node, 0), done, confidence
            )
            if low > eta:
                statuses[node] = CONFIRMED
                undecided.discard(node)
            elif high < eta:
                statuses[node] = REJECTED
                undecided.discard(node)

    degraded_reason: Optional[str] = None
    if undecided:
        if done >= target:
            # World budget exhausted with time to spare: fall back to
            # the seed's count-threshold rule — a completed estimate at
            # reduced sample size, not a partial answer.
            counts = estimator.counts()
            threshold = eta * done
            for node in undecided:
                statuses[node] = (
                    CONFIRMED if counts.get(node, 0) >= threshold
                    else REJECTED
                )
            undecided = set()
        else:
            for node in undecided:
                statuses[node] = UNVERIFIED
            degraded_reason = (
                "deadline expired during MC verification "
                f"({done}/{target} worlds)"
            )
    if dropped and degraded_reason is None:
        degraded_reason = "candidate-subgraph cap left candidates unverified"
    kept = {n for n, s in statuses.items() if s == CONFIRMED}
    _record_verify_metrics(done, estimator.fallbacks)
    return VerificationReport(
        kept=kept,
        statuses=statuses,
        degraded=bool(undecided) or bool(dropped),
        degraded_reason=degraded_reason,
        worlds_used=done,
        backend_fallbacks=estimator.fallbacks,
        estimates=estimator.frequencies() if done > 0 else {},
    )
