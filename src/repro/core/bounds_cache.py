"""Cache of source-independent cluster bounds (Theorem 5).

``Ū_out(C)`` (Theorem 5) depends only on the cluster and the graph —
not on the query — so it can be computed once per cluster and reused
across queries.  Candidate generation consults the cache before doing
any work: a cached ``Ū_out(C) < η`` accepts the cluster immediately,
skipping both the boundary scan and the max-flow solve.  Since the
early-accept already dominates on the *largest* cluster a traversal
touches (the last, most expensive one), the cache removes the single
most expensive scan from every repeat visit to a cluster.

The cache is graph-version-sensitive: any mutation must be followed by
:meth:`ClusterBoundsCache.invalidate` (per cluster) or
:meth:`ClusterBoundsCache.clear`; :class:`repro.core.maintenance.
DynamicRQTreeEngine` wires this automatically.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from ..graph.uncertain import UncertainGraph
from .rqtree import ClusterNode

__all__ = ["ClusterBoundsCache"]


class ClusterBoundsCache:
    """Lazily computed ``Ū_out`` per RQ-tree cluster.

    Keys are cluster indices of one fixed tree; a tree swap (subtree
    rebuild) requires :meth:`clear`.
    """

    def __init__(self) -> None:
        self._bounds: Dict[int, float] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._bounds)

    def get(self, graph: UncertainGraph, cluster: ClusterNode) -> float:
        """The Theorem-5 bound of *cluster*, computed at most once."""
        cached = self._bounds.get(cluster.index)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        members = cluster.members
        log_survive = 0.0
        for u in members:
            for v, p in graph.successors(u).items():
                if v not in members:
                    log_survive += math.log(max(1.0 - p, 1e-300))
        # Match the query path's conservative inflation (outreach._inflate)
        # so a cache hit can never accept a cluster the direct
        # computation would have rejected.
        bound = min(1.0, (1.0 - math.exp(log_survive)) * (1.0 + 1e-9) + 1e-12)
        self._bounds[cluster.index] = bound
        return bound

    def peek(self, cluster_index: int) -> Optional[float]:
        """The cached bound if present, without computing."""
        return self._bounds.get(cluster_index)

    def invalidate(self, cluster_indices: Iterable[int]) -> None:
        """Drop cached bounds for specific clusters (after arc updates)."""
        for index in cluster_indices:
            self._bounds.pop(index, None)

    def clear(self) -> None:
        """Drop every cached bound (after a tree swap or bulk update)."""
        self._bounds.clear()
