"""Command-line interface: ``python -m repro <command> ...``.

The CLI covers the offline/online split of the paper's system:

* ``generate``     — materialize a synthetic dataset as an edge list;
* ``build-index``  — build an RQ-tree offline and save it as JSON;
* ``stats``        — graph and/or index statistics (Table 5-style);
* ``query``        — answer a reliability-search query online;
* ``top-k``        — the k most reliable nodes from a source set;
* ``detect``       — two-terminal reliability detection via binary
  search on the threshold (paper, Section 2 reduction);
* ``transform``    — what-if graph transformations (scale / power /
  backbone extraction);
* ``serve``        — run the concurrent query-serving layer behind a
  stdlib HTTP/JSON frontend (:mod:`repro.service`);
* ``bench-serve``  — load-generate against a running server (or an
  in-process service) and report throughput/latency.

Everything round-trips through the text/JSON formats in
:mod:`repro.graph.io` and :meth:`repro.core.rqtree.RQTree.save`, so an
index built once is reusable across invocations — the pre-computation
model of the paper.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from . import __version__
from .core.detection import detect_reliability, top_k_reliable
from .core.builder import build_rqtree
from .core.engine import RQTreeEngine
from .core.rqtree import RQTree
from .datasets.registry import dataset_names, load_dataset
from .estimators import available_methods
from .errors import ReproError
from .resilience import QueryBudget
from .eval.reporting import format_table
from .graph.io import read_edge_list, write_edge_list
from .graph.transforms import (
    power_probabilities,
    scale_probabilities,
    threshold_backbone,
)

__all__ = ["main", "build_parser"]


def _parse_sources(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"sources must be comma-separated integers, got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RQ-tree reliability search in uncertain graphs "
        "(Khan et al., EDBT 2014 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic dataset as an edge list"
    )
    generate.add_argument(
        "--dataset", required=True, choices=sorted(dataset_names())
    )
    generate.add_argument("--nodes", type=int, default=0,
                          help="node count (0 = dataset default)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True,
                          help="edge-list file to write")

    build = commands.add_parser(
        "build-index", help="build an RQ-tree index offline"
    )
    build.add_argument("--graph", required=True, help="edge-list file")
    build.add_argument("--output", required=True, help="index JSON to write")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--strategy", choices=("multilevel", "random"), default="multilevel"
    )
    build.add_argument("--branching", type=int, default=2)
    build.add_argument("--max-imbalance", type=float, default=0.1)

    stats = commands.add_parser(
        "stats", help="print graph, index and/or service statistics"
    )
    stats.add_argument("--graph", default=None)
    stats.add_argument("--index", default=None)
    stats.add_argument(
        "--metrics", default=None,
        help="service metrics snapshot JSON (from 'bench-serve "
        "--metrics-out' or GET /metrics) to summarize",
    )

    query = commands.add_parser(
        "query", help="answer a reliability-search query RS(S, eta)"
    )
    query.add_argument("--graph", required=True)
    query.add_argument("--index", default=None,
                       help="prebuilt index JSON (otherwise built on the fly)")
    query.add_argument("--sources", required=True, type=_parse_sources,
                       help="comma-separated node ids")
    query.add_argument("--eta", required=True, type=float)
    query.add_argument(
        "--method", choices=available_methods(), default="lb"
    )
    query.add_argument("--samples", type=int, default=1000)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--backend", choices=("auto", "python", "numpy"), default="auto",
        help="sampling backend for MC verification"
    )
    query.add_argument("--max-hops", type=int, default=None,
                       help="distance-constrained variant")
    query.add_argument(
        "--multi-source-mode", choices=("greedy", "exact"), default="greedy"
    )
    query.add_argument(
        "--deadline-ms", type=float, default=None,
        help="wall-clock budget for the query; on expiry a partial "
        "(DEGRADED) answer is printed instead of failing",
    )
    query.add_argument(
        "--max-worlds", type=int, default=None,
        help="cap on MC verification worlds (budgeted queries only)",
    )
    query.add_argument(
        "--max-candidate-nodes", type=int, default=None,
        help="cap on the candidate subgraph verification may process",
    )

    topk = commands.add_parser(
        "top-k", help="the k most reliable nodes from the source set"
    )
    topk.add_argument("--graph", required=True)
    topk.add_argument("--index", default=None)
    topk.add_argument("--sources", required=True, type=_parse_sources)
    topk.add_argument("-k", type=int, required=True)
    topk.add_argument(
        "--method", choices=available_methods(), default="lb"
    )
    topk.add_argument("--samples", type=int, default=1000)
    topk.add_argument("--seed", type=int, default=0)
    topk.add_argument(
        "--backend", choices=("auto", "python", "numpy"), default="auto",
        help="sampling backend for MC scoring"
    )

    transform = commands.add_parser(
        "transform",
        help="what-if transformation of a graph (scale/power/backbone)",
    )
    transform.add_argument("--graph", required=True)
    transform.add_argument("--output", required=True)
    transform.add_argument("--scale", type=float, default=None,
                           help="multiply every probability by this factor")
    transform.add_argument("--power", type=float, default=None,
                           help="raise every probability to this exponent")
    transform.add_argument("--backbone", type=float, default=None,
                           help="keep only arcs with p >= this threshold")

    serve = commands.add_parser(
        "serve",
        help="serve reliability queries over HTTP (see repro.service)",
    )
    serve.add_argument("--graph", required=True)
    serve.add_argument("--index", default=None,
                       help="prebuilt index JSON (otherwise built on the fly)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--max-in-flight", type=int, default=64,
                       help="admission limit; excess queries are shed "
                       "with a degraded answer")
    serve.add_argument("--queue-deadline-ms", type=float, default=None,
                       help="shed queries that waited longer than this "
                       "in the queue")
    serve.add_argument("--cache-ttl", type=float, default=30.0,
                       help="result-cache TTL in seconds")
    serve.add_argument("--cache-capacity", type=int, default=1024)
    serve.add_argument("--no-batching", action="store_true",
                       help="disable cross-query world batching (A/B)")
    serve.add_argument("--shards", type=int, default=None,
                       help="split the graph into K partition-aligned "
                       "shards, one engine process each")
    serve.add_argument("--shard-mode", choices=("process", "inline"),
                       default="process",
                       help="run shard engines in worker processes or "
                       "inline (debugging)")
    serve.add_argument("--shard-transport", choices=("shm", "pickle"),
                       default="shm",
                       help="how shard subgraphs reach their workers: "
                       "shared-memory CSR segments (zero-copy) or "
                       "pickled arc lists")
    serve.add_argument("--shard-respawn", action="store_true",
                       help="supervise shard workers: liveness pings, "
                       "respawn on crash, per-shard circuit breakers, "
                       "redispatch of in-flight requests")
    serve.add_argument("--shard-retry-timeout-ms", type=float,
                       default=None,
                       help="per-shard attempt timeout; a sub-query "
                       "over it gets its worker recycled and one "
                       "redispatch (needs --shard-respawn)")
    serve.add_argument("--hedge-after-ms", type=float, default=None,
                       help="duplicate a slow sub-query to a standby "
                       "worker after this delay, first answer wins; "
                       "0 derives the delay from the shard's p99 "
                       "(needs --shard-respawn)")
    serve.add_argument("--frontend", choices=("aio", "thread"),
                       default="aio",
                       help="asyncio gateway (default) or the legacy "
                       "thread-per-connection server")
    serve.add_argument("--max-connections", type=int, default=None,
                       help="aio frontend connection cap; beyond it "
                       "clients get 503 + Retry-After (default: "
                       "8 x --max-in-flight)")
    serve.add_argument("--live", action="store_true",
                       help="enable the update plane (POST /update): "
                       "epoch-versioned snapshots, streaming arc "
                       "updates, incremental index maintenance")

    update = commands.add_parser(
        "update",
        help="stream arc updates to a running 'repro serve --live'",
    )
    update.add_argument("--url", required=True,
                        help="base URL of the running server")
    update.add_argument("--set", nargs=3, action="append", default=[],
                        metavar=("U", "V", "P"),
                        help="upsert arc u->v with probability p "
                        "(repeatable)")
    update.add_argument("--delete", nargs=2, action="append", default=[],
                        metavar=("U", "V"),
                        help="delete arc u->v (repeatable)")
    update.add_argument("--file", default=None,
                        help="JSON file with an array of update ops "
                        "('-' = stdin); combined with --set/--delete")

    bench_serve = commands.add_parser(
        "bench-serve",
        help="load-generate against a server (--url) or in-process "
        "service (--graph)",
    )
    bench_serve.add_argument("--url", default=None,
                             help="base URL of a running 'repro serve'")
    bench_serve.add_argument("--graph", default=None,
                             help="edge-list file for an in-process service")
    bench_serve.add_argument("--index", default=None)
    bench_serve.add_argument("--workers", type=int, default=4,
                             help="in-process service workers "
                             "(ignored with --url)")
    bench_serve.add_argument("--queries", type=int, default=50)
    bench_serve.add_argument("--concurrency", type=int, default=8,
                             help="client threads issuing queries")
    bench_serve.add_argument("--eta", type=float, default=0.5)
    bench_serve.add_argument("--method", choices=available_methods(),
                             default="mc")
    bench_serve.add_argument("--samples", type=int, default=1000)
    bench_serve.add_argument("--seed", type=int, default=0)
    bench_serve.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any query errored or degraded",
    )
    bench_serve.add_argument(
        "--metrics-out", default=None,
        help="write the service's metrics snapshot JSON here",
    )
    bench_serve.add_argument("--shards", type=int, default=None,
                             help="shard the in-process service's graph "
                             "K ways (ignored with --url)")
    bench_serve.add_argument("--shard-mode", choices=("process", "inline"),
                             default="process")
    bench_serve.add_argument("--shard-transport", choices=("shm", "pickle"),
                             default="shm",
                             help="shard payload transport for the "
                             "in-process service (ignored with --url)")
    bench_serve.add_argument("--shard-respawn", action="store_true",
                             help="supervise the in-process service's "
                             "shard workers (ignored with --url)")
    bench_serve.add_argument("--shard-retry-timeout-ms", type=float,
                             default=None,
                             help="per-shard attempt timeout for the "
                             "in-process service (needs --shard-respawn)")
    bench_serve.add_argument("--hedge-after-ms", type=float, default=None,
                             help="hedged-dispatch delay for the "
                             "in-process service; 0 = p99-derived "
                             "(needs --shard-respawn)")

    loadgen = commands.add_parser(
        "loadgen",
        help="replayable production-traffic harness with an SLO report "
        "(see repro.loadgen)",
    )
    loadgen.add_argument("--profile", default="mixed",
                         help="workload profile name (see "
                         "repro.loadgen.PROFILES); ignored with --replay")
    loadgen.add_argument("--duration", type=float, default=10.0,
                         help="run length in seconds; ignored with --replay")
    loadgen.add_argument("--target-qps", type=float, default=20.0,
                         help="mean open-loop arrival rate; the diurnal "
                         "curve breathes around it; ignored with --replay")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="schedule seed: same profile + seed + shape "
                         "gives the identical request stream")
    loadgen.add_argument("--replay", default=None,
                         help="replay a schedule JSON written by --record "
                         "instead of generating one")
    loadgen.add_argument("--record", default=None,
                         help="write the generated schedule JSON here for "
                         "later --replay")
    loadgen.add_argument("--url", default=None,
                         help="drive a running server (storms are skipped: "
                         "fault injection is process-local)")
    loadgen.add_argument("--graph", default=None,
                         help="edge-list file: build an in-process service "
                         "+ frontend and drive it over loopback")
    loadgen.add_argument("--index", default=None,
                         help="prebuilt index JSON for --graph")
    loadgen.add_argument("--frontend", choices=("aio", "thread"),
                         default="aio",
                         help="in-process frontend flavour")
    loadgen.add_argument("--workers", type=int, default=4,
                         help="in-process service workers")
    loadgen.add_argument("--max-in-flight", type=int, default=64,
                         help="in-process service admission limit")
    loadgen.add_argument("--shards", type=int, default=None,
                         help="shard the in-process service's graph K ways")
    loadgen.add_argument("--shard-mode", choices=("process", "inline"),
                         default="process")
    loadgen.add_argument("--no-live", action="store_true",
                         help="disable the in-process update plane "
                         "(update traffic will then 400)")
    loadgen.add_argument("--max-client-in-flight", type=int, default=128,
                         help="driver-side concurrent-socket cap; queue "
                         "time behind it still counts as latency")
    loadgen.add_argument("--timeout", type=float, default=30.0,
                         help="per-request client timeout in seconds")
    loadgen.add_argument("--report-out", default=None,
                         help="write the SLO run report JSON here")
    loadgen.add_argument("--gate-p50-ms", type=float, default=None,
                         help="fail (exit 1) if p50 latency exceeds this")
    loadgen.add_argument("--gate-p99-ms", type=float, default=None,
                         help="fail (exit 1) if p99 latency exceeds this")
    loadgen.add_argument("--gate-degraded-rate", type=float, default=None,
                         help="fail (exit 1) if the degraded-answer rate "
                         "exceeds this (also sets the error budget)")
    loadgen.add_argument("--gate-error-rate", type=float, default=None,
                         help="fail (exit 1) if the HTTP/transport error "
                         "rate exceeds this")
    loadgen.add_argument("--gate-min-qps", type=float, default=None,
                         help="fail (exit 1) if achieved qps falls below")

    detect = commands.add_parser(
        "detect",
        help="two-terminal reliability detection (binary search on eta)",
    )
    detect.add_argument("--graph", required=True)
    detect.add_argument("--index", default=None)
    detect.add_argument("--source", type=int, required=True)
    detect.add_argument("--target", type=int, required=True)
    detect.add_argument("--tolerance", type=float, default=0.05)
    detect.add_argument(
        "--method", choices=available_methods(), default="mc"
    )
    detect.add_argument("--samples", type=int, default=1000)
    detect.add_argument("--seed", type=int, default=0)
    detect.add_argument(
        "--backend", choices=("auto", "python", "numpy"), default="auto",
        help="sampling backend for MC probes"
    )

    return parser


def _load_engine(graph_path: str, index_path: Optional[str]) -> RQTreeEngine:
    graph = read_edge_list(graph_path)
    if index_path:
        tree = RQTree.load(index_path)
        return RQTreeEngine(graph, tree)
    return RQTreeEngine.build(graph)


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, n=args.nodes, seed=args.seed)
    write_edge_list(graph, args.output)
    print(
        f"wrote {args.dataset} stand-in: {graph.num_nodes} nodes, "
        f"{graph.num_arcs} arcs -> {args.output}"
    )
    return 0


def _cmd_build_index(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph)
    tree, report = build_rqtree(
        graph,
        max_imbalance=args.max_imbalance,
        seed=args.seed,
        strategy=args.strategy,
        branching=args.branching,
    )
    tree.save(args.output)
    print(
        format_table(
            ["metric", "value"],
            [
                ("nodes", graph.num_nodes),
                ("arcs", graph.num_arcs),
                ("build time (s)", report.build_seconds),
                ("index size (MB)", report.storage_megabytes),
                ("height", report.height),
                ("# clusters", report.num_clusters),
            ],
            title=f"RQ-tree written to {args.output}",
        )
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .eval.reporting import ascii_histogram
    from .graph.statistics import probability_histogram, summarize

    if args.graph is None and args.metrics is None:
        print(
            "at least one of --graph / --metrics is required",
            file=sys.stderr,
        )
        return 2
    if args.graph is not None:
        graph = read_edge_list(args.graph)
        rows = list(summarize(graph).as_rows())
        if args.index:
            tree = RQTree.load(args.index)
            rows += [
                ("index height", tree.height),
                ("index clusters", tree.num_clusters),
                ("index size (MB)", tree.storage_size_estimate() / 2**20),
            ]
        print(format_table(["metric", "value"], rows, title="statistics"))
        if graph.num_arcs:
            print()
            print(
                ascii_histogram(
                    probability_histogram(graph, num_bins=10),
                    title="arc-probability distribution",
                )
            )
    if args.metrics is not None:
        import json

        with open(args.metrics, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        if args.graph is not None:
            print()
        _print_metrics_snapshot(snapshot)
    return 0


def _print_metrics_snapshot(snapshot: dict) -> None:
    """Pretty-print a service metrics snapshot (``GET /metrics`` JSON)."""
    counters = snapshot.get("counters", {})
    if counters:
        print(
            format_table(
                ["counter", "value"],
                sorted(counters.items()),
                title="service counters",
            )
        )
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = [
            (
                name,
                summary.get("count", 0),
                f"{summary.get('p50', 0.0):.6f}",
                f"{summary.get('p90', 0.0):.6f}",
                f"{summary.get('p99', 0.0):.6f}",
            )
            for name, summary in sorted(histograms.items())
        ]
        print()
        print(
            format_table(
                ["histogram", "count", "p50 (s)", "p90 (s)", "p99 (s)"],
                rows,
                title="service latency histograms",
            )
        )
    service = snapshot.get("service", {})
    for label, key in (
        ("result cache", "result_cache"),
        ("engine cache", "engine_cache"),
    ):
        cache_stats = service.get(key)
        if cache_stats:
            print()
            print(
                format_table(
                    ["metric", "value"],
                    sorted(cache_stats.items()),
                    title=f"{label} statistics",
                )
            )


def _cmd_query(args: argparse.Namespace) -> int:
    engine = _load_engine(args.graph, args.index)
    budget = None
    if (
        args.deadline_ms is not None
        or args.max_worlds is not None
        or args.max_candidate_nodes is not None
    ):
        budget = QueryBudget(
            deadline_seconds=(
                None if args.deadline_ms is None else args.deadline_ms / 1000.0
            ),
            max_worlds=args.max_worlds,
            max_candidate_nodes=args.max_candidate_nodes,
        )
    start = time.perf_counter()
    result = engine.query(
        args.sources,
        args.eta,
        method=args.method,
        num_samples=args.samples,
        seed=args.seed,
        multi_source_mode=args.multi_source_mode,
        max_hops=args.max_hops,
        backend=args.backend,
        budget=budget,
    )
    elapsed = time.perf_counter() - start
    rows = [
        ("answer size", len(result.nodes)),
        ("candidates", len(result.candidate_result.candidates)),
        ("height ratio", result.height_ratio),
        ("candidate ratio", result.candidate_ratio),
        ("query time (s)", elapsed),
        ("estimator", result.estimator or args.method),
    ]
    if budget is not None:
        rows += [
            ("worlds used", result.worlds_used),
            ("achieved confidence", result.achieved_confidence),
            ("unverified", len(result.unverified)),
        ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"RS({args.sources}, {args.eta}) via rq-tree-{args.method}",
        )
    )
    print("nodes:", " ".join(str(n) for n in sorted(result.nodes)))
    if args.method == "auto" and result.planner_reason:
        print(f"planner: {result.planner_reason}")
    if result.degraded:
        # Deadline-expired queries are a *successful* degraded answer:
        # exit 0, but mark the output unmistakably.
        print(
            f"DEGRADED: {result.degraded_reason or 'budget exhausted'}"
        )
    return 0


def _cmd_top_k(args: argparse.Namespace) -> int:
    engine = _load_engine(args.graph, args.index)
    ranked = top_k_reliable(
        engine,
        args.sources,
        args.k,
        method=args.method,
        num_samples=args.samples,
        seed=args.seed,
        backend=args.backend,
    )
    print(
        format_table(
            ["rank", "node", "score"],
            [(i + 1, node, score) for i, (node, score) in enumerate(ranked)],
            title=f"top-{args.k} most reliable nodes from {args.sources}",
        )
    )
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    engine = _load_engine(args.graph, args.index)
    result = detect_reliability(
        engine,
        args.source,
        args.target,
        tolerance=args.tolerance,
        method=args.method,
        num_samples=args.samples,
        seed=args.seed,
        backend=args.backend,
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ("R lower bracket", result.low),
                ("R upper bracket", result.high),
                ("point estimate", result.midpoint),
                ("index queries", result.queries_issued),
            ],
            title=f"two-terminal reliability R({args.source}, {args.target})",
        )
    )
    return 0


def _cmd_transform(args: argparse.Namespace) -> int:
    chosen = [
        opt for opt in (args.scale, args.power, args.backbone)
        if opt is not None
    ]
    if len(chosen) != 1:
        print(
            "exactly one of --scale / --power / --backbone is required",
            file=sys.stderr,
        )
        return 2
    graph = read_edge_list(args.graph)
    if args.scale is not None:
        result = scale_probabilities(graph, args.scale)
        action = f"scaled by {args.scale}"
    elif args.power is not None:
        result = power_probabilities(graph, args.power)
        action = f"raised to power {args.power}"
    else:
        result = threshold_backbone(graph, args.backbone)
        action = f"backbone at tau = {args.backbone}"
    write_edge_list(result, args.output)
    print(
        f"{action}: {result.num_nodes} nodes, {result.num_arcs} arcs "
        f"-> {args.output}"
    )
    return 0


def _build_service(args: argparse.Namespace):
    from .service.cache import TTLResultCache
    from .service.pool import AdmissionPolicy
    from .service.server import ReliabilityService

    engine = _load_engine(args.graph, args.index)
    admission = AdmissionPolicy(
        max_in_flight=getattr(args, "max_in_flight", 64),
        queue_deadline_seconds=(
            None
            if getattr(args, "queue_deadline_ms", None) is None
            else args.queue_deadline_ms / 1000.0
        ),
    )
    cache = TTLResultCache(
        capacity=getattr(args, "cache_capacity", 1024),
        ttl_seconds=getattr(args, "cache_ttl", 30.0),
    )
    return ReliabilityService(
        engine,
        workers=args.workers,
        admission=admission,
        cache=cache,
        enable_batching=not getattr(args, "no_batching", False),
        shards=getattr(args, "shards", None),
        shard_mode=getattr(args, "shard_mode", "process"),
        shard_transport=getattr(args, "shard_transport", "shm"),
        shard_respawn=getattr(args, "shard_respawn", False),
        shard_retry_timeout_ms=getattr(args, "shard_retry_timeout_ms", None),
        shard_hedge_after_ms=getattr(args, "hedge_after_ms", None),
        live=getattr(args, "live", False),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    service = _build_service(args)
    if getattr(args, "frontend", "aio") == "thread":
        from .service.http_api import ServiceHTTPServer

        server = ServiceHTTPServer(service, host=args.host, port=args.port)
    else:
        from .service.aio_gateway import AioGateway

        server = AioGateway(
            service, host=args.host, port=args.port,
            max_connections=getattr(args, "max_connections", None),
        ).start()
    host, port = server.address
    engine = service.engine
    shards = getattr(engine, "num_shards", None)
    shard_note = "" if shards is None else f", {shards} shards"
    live_note = ", live updates" if getattr(args, "live", False) else ""
    print(
        f"serving {engine.graph.num_nodes} nodes / "
        f"{engine.graph.num_arcs} arcs on http://{host}:{port} "
        f"({service.workers} workers{shard_note}{live_note}, "
        f"{getattr(args, 'frontend', 'aio')} frontend)",
        flush=True,
    )
    server.serve_forever()
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    import json
    from urllib.error import HTTPError
    from urllib.request import Request, urlopen

    ops: List[dict] = []
    if args.file is not None:
        raw = (
            sys.stdin.read()
            if args.file == "-"
            else open(args.file, "r", encoding="utf-8").read()
        )
        loaded = json.loads(raw)
        if isinstance(loaded, dict):
            loaded = loaded.get("updates", [])
        ops.extend(loaded)
    for u, v, p in args.set:
        ops.append({"op": "set", "u": int(u), "v": int(v), "p": float(p)})
    for u, v in args.delete:
        ops.append({"op": "delete", "u": int(u), "v": int(v)})
    if not ops:
        print("no updates given (use --set/--delete/--file)", file=sys.stderr)
        return 2

    request = Request(
        f"{args.url.rstrip('/')}/update",
        data=json.dumps({"updates": ops}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urlopen(request, timeout=300) as response:
            reply = json.loads(response.read())
    except HTTPError as error:
        detail = error.read().decode("utf-8", "replace")
        print(f"update rejected ({error.code}): {detail}", file=sys.stderr)
        return 1
    print(
        f"applied {reply.get('ops', len(ops))} ops; "
        f"serving epoch {reply.get('epoch')}"
    )
    return 0


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import json
    import threading

    if (args.url is None) == (args.graph is None):
        print(
            "exactly one of --url / --graph is required", file=sys.stderr
        )
        return 2

    if args.url is not None:
        from urllib.request import Request, urlopen

        base = args.url.rstrip("/")
        with urlopen(f"{base}/healthz", timeout=30) as response:
            num_nodes = json.load(response)["nodes"]

        def run_query(body: dict) -> dict:
            request = Request(
                f"{base}/query",
                data=json.dumps(body).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urlopen(request, timeout=120) as response:
                return json.load(response)

        def fetch_metrics() -> dict:
            with urlopen(f"{base}/metrics", timeout=30) as response:
                return json.load(response)

        service = None
    else:
        service = _build_service(args).start()
        num_nodes = service.engine.graph.num_nodes

        def run_query(body: dict) -> dict:
            from .service.http_api import result_to_json

            result = service.query(
                body["sources"], body["eta"],
                method=body["method"], num_samples=body["num_samples"],
                seed=body["seed"],
            )
            return result_to_json(result)

        def fetch_metrics() -> dict:
            return service.metrics_snapshot()

    if num_nodes == 0:
        print("graph has no nodes; nothing to query", file=sys.stderr)
        return 2

    bodies = [
        {
            "sources": [i % num_nodes],
            "eta": args.eta,
            "method": args.method,
            "num_samples": args.samples,
            "seed": args.seed,
        }
        for i in range(args.queries)
    ]
    latencies: List[float] = []
    errors: List[str] = []
    degraded = 0
    lock = threading.Lock()
    cursor = iter(range(args.queries))

    def worker() -> None:
        nonlocal degraded
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            begin = time.perf_counter()
            try:
                reply = run_query(bodies[index])
            except Exception as error:  # noqa: BLE001 - reported below
                with lock:
                    errors.append(f"query {index}: {error}")
                continue
            elapsed = time.perf_counter() - begin
            with lock:
                latencies.append(elapsed)
                if reply.get("degraded"):
                    degraded += 1

    start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(max(1, args.concurrency))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(fetch_metrics(), handle, indent=2, sort_keys=True)
    if service is not None:
        service.stop()

    latencies.sort()
    completed = len(latencies)
    print(
        format_table(
            ["metric", "value"],
            [
                ("queries", args.queries),
                ("completed", completed),
                ("errors", len(errors)),
                ("degraded", degraded),
                ("concurrency", args.concurrency),
                ("wall time (s)", wall),
                ("throughput (q/s)", completed / wall if wall > 0 else 0.0),
                ("p50 latency (s)", _percentile(latencies, 0.50)),
                ("p95 latency (s)", _percentile(latencies, 0.95)),
            ],
            title="bench-serve",
        )
    )
    for message in errors[:5]:
        print(f"error: {message}", file=sys.stderr)
    if args.check and (errors or degraded):
        print(
            f"check failed: {len(errors)} error(s), {degraded} degraded",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json
    from urllib.request import urlopen

    from .loadgen import SLOTargets, drive, generate_schedule
    from .loadgen.driver import DriveError
    from .loadgen.generator import load_schedule, save_schedule

    if args.url is None and args.graph is None:
        print("need --graph (in-process) or --url", file=sys.stderr)
        return 2

    server = None
    try:
        if args.url is not None:
            url = args.url.rstrip("/")
            with urlopen(f"{url}/healthz", timeout=30) as response:
                num_nodes = int(json.loads(response.read())["nodes"])
            arm_storms = False
        else:
            args.live = not args.no_live
            service = _build_service(args)
            if args.frontend == "thread":
                from .service.http_api import ServiceHTTPServer

                server = ServiceHTTPServer(
                    service, host="127.0.0.1", port=0
                ).start()
            else:
                from .service.aio_gateway import AioGateway

                server = AioGateway(
                    service, host="127.0.0.1", port=0
                ).start()
            url = server.url
            num_nodes = service.engine.graph.num_nodes
            arm_storms = True

        if args.replay is not None:
            schedule = load_schedule(args.replay)
        else:
            schedule = generate_schedule(
                args.profile,
                seed=args.seed,
                duration_seconds=args.duration,
                target_qps=args.target_qps,
                num_nodes=num_nodes,
            )
        if args.record is not None:
            save_schedule(schedule, args.record)
            print(f"recorded schedule -> {args.record}")
        has_storm = any(
            spec.kind == "storm_start" for spec in schedule.requests
        )
        if has_storm and not arm_storms:
            print(
                "note: fault storms are process-local; skipped against "
                "a remote --url",
                file=sys.stderr,
            )

        targets = SLOTargets(
            p50_ms=args.gate_p50_ms,
            p99_ms=args.gate_p99_ms,
            degraded_rate=args.gate_degraded_rate,
            error_rate=args.gate_error_rate,
            min_qps=args.gate_min_qps,
        )
        try:
            report = drive(
                schedule,
                url,
                targets=targets,
                arm_storms=arm_storms,
                timeout_seconds=args.timeout,
                max_in_flight=args.max_client_in_flight,
            )
        except DriveError as error:
            print(f"loadgen failed: {error}", file=sys.stderr)
            return 2
    finally:
        if server is not None:
            server.stop()

    if args.report_out is not None:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    requests = report["requests"]
    latency = report["latency_ms"]
    print(
        format_table(
            ["metric", "value"],
            [
                ("profile", schedule.profile),
                ("completed", requests["completed"]),
                ("achieved qps", report["throughput"]["achieved_qps"]),
                ("p50 ms", latency["p50"]),
                ("p99 ms", latency["p99"]),
                ("degraded rate", report["degraded"]["rate"]),
                ("error rate", report["errors"]["rate"]),
                ("shed rate", report["shed"]["rate"]),
                ("cache hit rate", report["cache"]["hit_rate"]),
                ("storms", requests["storms"]),
            ],
        )
    )
    gates = report["gates"]
    if not gates["ok"]:
        for breach in gates["breaches"]:
            print(f"SLO BREACH: {breach}", file=sys.stderr)
        return 1
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "build-index": _cmd_build_index,
    "stats": _cmd_stats,
    "query": _cmd_query,
    "top-k": _cmd_top_k,
    "detect": _cmd_detect,
    "transform": _cmd_transform,
    "serve": _cmd_serve,
    "update": _cmd_update,
    "bench-serve": _cmd_bench_serve,
    "loadgen": _cmd_loadgen,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library failures (:class:`ReproError`) are reported as a one-line
    message on stderr with exit code 2 — never a raw traceback.  A
    deadline-expired query is *not* a failure: it prints its partial
    answer with a ``DEGRADED`` marker and exits 0.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
