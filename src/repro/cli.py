"""Command-line interface: ``python -m repro <command> ...``.

The CLI covers the offline/online split of the paper's system:

* ``generate``     — materialize a synthetic dataset as an edge list;
* ``build-index``  — build an RQ-tree offline and save it as JSON;
* ``stats``        — graph and/or index statistics (Table 5-style);
* ``query``        — answer a reliability-search query online;
* ``top-k``        — the k most reliable nodes from a source set;
* ``detect``       — two-terminal reliability detection via binary
  search on the threshold (paper, Section 2 reduction);
* ``transform``    — what-if graph transformations (scale / power /
  backbone extraction).

Everything round-trips through the text/JSON formats in
:mod:`repro.graph.io` and :meth:`repro.core.rqtree.RQTree.save`, so an
index built once is reusable across invocations — the pre-computation
model of the paper.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from . import __version__
from .core.detection import detect_reliability, top_k_reliable
from .core.builder import build_rqtree
from .core.engine import RQTreeEngine
from .core.rqtree import RQTree
from .datasets.registry import dataset_names, load_dataset
from .errors import ReproError
from .resilience import QueryBudget
from .eval.reporting import format_table
from .graph.io import read_edge_list, write_edge_list
from .graph.transforms import (
    power_probabilities,
    scale_probabilities,
    threshold_backbone,
)

__all__ = ["main", "build_parser"]


def _parse_sources(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"sources must be comma-separated integers, got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RQ-tree reliability search in uncertain graphs "
        "(Khan et al., EDBT 2014 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic dataset as an edge list"
    )
    generate.add_argument(
        "--dataset", required=True, choices=sorted(dataset_names())
    )
    generate.add_argument("--nodes", type=int, default=0,
                          help="node count (0 = dataset default)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True,
                          help="edge-list file to write")

    build = commands.add_parser(
        "build-index", help="build an RQ-tree index offline"
    )
    build.add_argument("--graph", required=True, help="edge-list file")
    build.add_argument("--output", required=True, help="index JSON to write")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--strategy", choices=("multilevel", "random"), default="multilevel"
    )
    build.add_argument("--branching", type=int, default=2)
    build.add_argument("--max-imbalance", type=float, default=0.1)

    stats = commands.add_parser(
        "stats", help="print graph and/or index statistics"
    )
    stats.add_argument("--graph", required=True)
    stats.add_argument("--index", default=None)

    query = commands.add_parser(
        "query", help="answer a reliability-search query RS(S, eta)"
    )
    query.add_argument("--graph", required=True)
    query.add_argument("--index", default=None,
                       help="prebuilt index JSON (otherwise built on the fly)")
    query.add_argument("--sources", required=True, type=_parse_sources,
                       help="comma-separated node ids")
    query.add_argument("--eta", required=True, type=float)
    query.add_argument("--method", choices=("lb", "mc"), default="lb")
    query.add_argument("--samples", type=int, default=1000)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--backend", choices=("auto", "python", "numpy"), default="auto",
        help="sampling backend for MC verification"
    )
    query.add_argument("--max-hops", type=int, default=None,
                       help="distance-constrained variant")
    query.add_argument(
        "--multi-source-mode", choices=("greedy", "exact"), default="greedy"
    )
    query.add_argument(
        "--deadline-ms", type=float, default=None,
        help="wall-clock budget for the query; on expiry a partial "
        "(DEGRADED) answer is printed instead of failing",
    )
    query.add_argument(
        "--max-worlds", type=int, default=None,
        help="cap on MC verification worlds (budgeted queries only)",
    )
    query.add_argument(
        "--max-candidate-nodes", type=int, default=None,
        help="cap on the candidate subgraph verification may process",
    )

    topk = commands.add_parser(
        "top-k", help="the k most reliable nodes from the source set"
    )
    topk.add_argument("--graph", required=True)
    topk.add_argument("--index", default=None)
    topk.add_argument("--sources", required=True, type=_parse_sources)
    topk.add_argument("-k", type=int, required=True)
    topk.add_argument("--method", choices=("lb", "mc"), default="lb")
    topk.add_argument("--samples", type=int, default=1000)
    topk.add_argument("--seed", type=int, default=0)
    topk.add_argument(
        "--backend", choices=("auto", "python", "numpy"), default="auto",
        help="sampling backend for MC scoring"
    )

    transform = commands.add_parser(
        "transform",
        help="what-if transformation of a graph (scale/power/backbone)",
    )
    transform.add_argument("--graph", required=True)
    transform.add_argument("--output", required=True)
    transform.add_argument("--scale", type=float, default=None,
                           help="multiply every probability by this factor")
    transform.add_argument("--power", type=float, default=None,
                           help="raise every probability to this exponent")
    transform.add_argument("--backbone", type=float, default=None,
                           help="keep only arcs with p >= this threshold")

    detect = commands.add_parser(
        "detect",
        help="two-terminal reliability detection (binary search on eta)",
    )
    detect.add_argument("--graph", required=True)
    detect.add_argument("--index", default=None)
    detect.add_argument("--source", type=int, required=True)
    detect.add_argument("--target", type=int, required=True)
    detect.add_argument("--tolerance", type=float, default=0.05)
    detect.add_argument("--method", choices=("lb", "mc"), default="mc")
    detect.add_argument("--samples", type=int, default=1000)
    detect.add_argument("--seed", type=int, default=0)
    detect.add_argument(
        "--backend", choices=("auto", "python", "numpy"), default="auto",
        help="sampling backend for MC probes"
    )

    return parser


def _load_engine(graph_path: str, index_path: Optional[str]) -> RQTreeEngine:
    graph = read_edge_list(graph_path)
    if index_path:
        tree = RQTree.load(index_path)
        return RQTreeEngine(graph, tree)
    return RQTreeEngine.build(graph)


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, n=args.nodes, seed=args.seed)
    write_edge_list(graph, args.output)
    print(
        f"wrote {args.dataset} stand-in: {graph.num_nodes} nodes, "
        f"{graph.num_arcs} arcs -> {args.output}"
    )
    return 0


def _cmd_build_index(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph)
    tree, report = build_rqtree(
        graph,
        max_imbalance=args.max_imbalance,
        seed=args.seed,
        strategy=args.strategy,
        branching=args.branching,
    )
    tree.save(args.output)
    print(
        format_table(
            ["metric", "value"],
            [
                ("nodes", graph.num_nodes),
                ("arcs", graph.num_arcs),
                ("build time (s)", report.build_seconds),
                ("index size (MB)", report.storage_megabytes),
                ("height", report.height),
                ("# clusters", report.num_clusters),
            ],
            title=f"RQ-tree written to {args.output}",
        )
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .eval.reporting import ascii_histogram
    from .graph.statistics import probability_histogram, summarize

    graph = read_edge_list(args.graph)
    rows = list(summarize(graph).as_rows())
    if args.index:
        tree = RQTree.load(args.index)
        rows += [
            ("index height", tree.height),
            ("index clusters", tree.num_clusters),
            ("index size (MB)", tree.storage_size_estimate() / 2**20),
        ]
    print(format_table(["metric", "value"], rows, title="statistics"))
    if graph.num_arcs:
        print()
        print(
            ascii_histogram(
                probability_histogram(graph, num_bins=10),
                title="arc-probability distribution",
            )
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    engine = _load_engine(args.graph, args.index)
    budget = None
    if (
        args.deadline_ms is not None
        or args.max_worlds is not None
        or args.max_candidate_nodes is not None
    ):
        budget = QueryBudget(
            deadline_seconds=(
                None if args.deadline_ms is None else args.deadline_ms / 1000.0
            ),
            max_worlds=args.max_worlds,
            max_candidate_nodes=args.max_candidate_nodes,
        )
    start = time.perf_counter()
    result = engine.query(
        args.sources,
        args.eta,
        method=args.method,
        num_samples=args.samples,
        seed=args.seed,
        multi_source_mode=args.multi_source_mode,
        max_hops=args.max_hops,
        backend=args.backend,
        budget=budget,
    )
    elapsed = time.perf_counter() - start
    rows = [
        ("answer size", len(result.nodes)),
        ("candidates", len(result.candidate_result.candidates)),
        ("height ratio", result.height_ratio),
        ("candidate ratio", result.candidate_ratio),
        ("query time (s)", elapsed),
    ]
    if budget is not None:
        rows += [
            ("worlds used", result.worlds_used),
            ("achieved confidence", result.achieved_confidence),
            ("unverified", len(result.unverified)),
        ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"RS({args.sources}, {args.eta}) via rq-tree-{args.method}",
        )
    )
    print("nodes:", " ".join(str(n) for n in sorted(result.nodes)))
    if result.degraded:
        # Deadline-expired queries are a *successful* degraded answer:
        # exit 0, but mark the output unmistakably.
        print(
            f"DEGRADED: {result.degraded_reason or 'budget exhausted'}"
        )
    return 0


def _cmd_top_k(args: argparse.Namespace) -> int:
    engine = _load_engine(args.graph, args.index)
    ranked = top_k_reliable(
        engine,
        args.sources,
        args.k,
        method=args.method,
        num_samples=args.samples,
        seed=args.seed,
        backend=args.backend,
    )
    print(
        format_table(
            ["rank", "node", "score"],
            [(i + 1, node, score) for i, (node, score) in enumerate(ranked)],
            title=f"top-{args.k} most reliable nodes from {args.sources}",
        )
    )
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    engine = _load_engine(args.graph, args.index)
    result = detect_reliability(
        engine,
        args.source,
        args.target,
        tolerance=args.tolerance,
        method=args.method,
        num_samples=args.samples,
        seed=args.seed,
        backend=args.backend,
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ("R lower bracket", result.low),
                ("R upper bracket", result.high),
                ("point estimate", result.midpoint),
                ("index queries", result.queries_issued),
            ],
            title=f"two-terminal reliability R({args.source}, {args.target})",
        )
    )
    return 0


def _cmd_transform(args: argparse.Namespace) -> int:
    chosen = [
        opt for opt in (args.scale, args.power, args.backbone)
        if opt is not None
    ]
    if len(chosen) != 1:
        print(
            "exactly one of --scale / --power / --backbone is required",
            file=sys.stderr,
        )
        return 2
    graph = read_edge_list(args.graph)
    if args.scale is not None:
        result = scale_probabilities(graph, args.scale)
        action = f"scaled by {args.scale}"
    elif args.power is not None:
        result = power_probabilities(graph, args.power)
        action = f"raised to power {args.power}"
    else:
        result = threshold_backbone(graph, args.backbone)
        action = f"backbone at tau = {args.backbone}"
    write_edge_list(result, args.output)
    print(
        f"{action}: {result.num_nodes} nodes, {result.num_arcs} arcs "
        f"-> {args.output}"
    )
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "build-index": _cmd_build_index,
    "stats": _cmd_stats,
    "query": _cmd_query,
    "top-k": _cmd_top_k,
    "detect": _cmd_detect,
    "transform": _cmd_transform,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library failures (:class:`ReproError`) are reported as a one-line
    message on stderr with exit code 2 — never a raw traceback.  A
    deadline-expired query is *not* a failure: it prints its partial
    answer with a ``DEGRADED`` marker and exits 0.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
