"""The uncertain (probabilistic) graph data structure.

An uncertain graph ``G = (N, A, p)`` (paper, Section 2) is a directed graph
whose arcs carry independent existence probabilities ``p: A -> (0, 1]``.
Under possible-world semantics, ``G`` defines a distribution over the
``2^|A|`` deterministic subgraphs obtained by keeping each arc ``a``
independently with probability ``p(a)``.

:class:`UncertainGraph` is the central substrate of this library: the
RQ-tree index (:mod:`repro.core`), the sampling estimators
(:mod:`repro.reliability`), and the influence-maximization application
(:mod:`repro.influence`) all operate on it.

Design notes
------------
* Nodes are dense integer ids ``0 .. n-1``.  Dense ids keep per-level
  cluster-membership arrays in the RQ-tree O(1)-addressable and make the
  lazy possible-world BFS allocation-free.
* Both forward and reverse adjacency lists are maintained, because
  Algorithm 1 of the paper needs out-neighbours of a cluster while the
  partitioner and several bounds need the undirected view.
* Parallel arcs are merged at insertion time with the noisy-or rule
  ``p = 1 - (1-p1)(1-p2)``: under independence, two parallel arcs are
  equivalent (for any reachability event) to a single arc that exists when
  at least one of them does.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import (
    GraphError,
    InvalidProbabilityError,
    NodeNotFoundError,
)

Arc = Tuple[int, int]
WeightedArc = Tuple[int, int, float]

__all__ = ["UncertainGraph", "Arc", "WeightedArc"]


def _check_probability(value: float, arc: Optional[Arc] = None) -> float:
    """Validate that *value* is a probability in (0, 1] and return it."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise InvalidProbabilityError(value, arc) from None
    if math.isnan(value) or not 0.0 < value <= 1.0:
        raise InvalidProbabilityError(value, arc)
    return value


class UncertainGraph:
    """A directed graph whose arcs exist with independent probabilities.

    Parameters
    ----------
    n:
        Number of nodes; nodes are the integers ``0 .. n-1``.

    Examples
    --------
    The run-through example of the paper (Figure 1)::

        >>> g = UncertainGraph(5)           # s, u, v, w, t = 0, 1, 2, 3, 4
        >>> g.add_arc(0, 3, 0.6)            # s -> w
        >>> g.add_arc(0, 1, 0.5)            # s -> u
        >>> g.add_arc(3, 1, 0.5)            # w -> u
        >>> g.num_arcs
        3
    """

    __slots__ = (
        "_succ", "_pred", "_num_arcs", "_version", "_epoch",
        "_csr_cache", "_csr_lock",
    )

    def __init__(self, n: int = 0) -> None:
        if n < 0:
            raise GraphError(f"number of nodes must be non-negative, got {n}")
        # _succ[u] maps v -> p(u, v); _pred[v] maps u -> p(u, v).
        self._succ: List[Dict[int, float]] = [dict() for _ in range(n)]
        self._pred: List[Dict[int, float]] = [dict() for _ in range(n)]
        self._num_arcs = 0
        # Mutation counter: bumped by every structural change.  Derived
        # snapshots (the CSR arrays in :mod:`repro.accel.csr`, the arc
        # list cached by :class:`~repro.graph.sampling.WorldSampler`)
        # record the version they were built at and rebuild when it no
        # longer matches.
        self._version = 0
        # Epoch counter: bumped only by the live update plane
        # (:mod:`repro.live`) when a batch of updates is committed and a
        # new snapshot is published.  Unlike ``_version`` (which counts
        # individual mutations), the epoch identifies a *published
        # generation* of the graph — queries are admitted against one
        # epoch and served against exactly that epoch's snapshot.
        self._epoch = 0
        # Slot for the cached CSR snapshot (owned by repro.accel.csr).
        # The lock serializes snapshot build/evict across threads — the
        # serving layer snapshots one shared graph from many workers.
        self._csr_cache = None
        self._csr_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_arcs(
        cls,
        arcs: Iterable[WeightedArc],
        n: Optional[int] = None,
    ) -> "UncertainGraph":
        """Build a graph from an iterable of ``(u, v, p)`` triples.

        If *n* is omitted, the node count is ``1 + max node id`` seen.
        Parallel arcs are merged with the noisy-or rule; self-loops are
        ignored because they never affect reachability.
        """
        arc_list = [(int(u), int(v), p) for u, v, p in arcs]
        if n is None:
            n = 1 + max(
                (max(u, v) for u, v, _ in arc_list), default=-1
            )
        graph = cls(n)
        for u, v, p in arc_list:
            graph.add_arc(u, v, p)
        return graph

    def add_node(self) -> int:
        """Append a fresh isolated node and return its id."""
        self._succ.append({})
        self._pred.append({})
        self._version += 1
        return len(self._succ) - 1

    def add_arc(self, u: int, v: int, p: float) -> None:
        """Insert the arc ``(u, v)`` with existence probability *p*.

        Self-loops are silently dropped (they cannot change any
        reachability event).  If the arc already exists, the two
        probabilities are combined with the noisy-or rule.
        """
        p = _check_probability(p, (u, v))
        self._require_node(u)
        self._require_node(v)
        if u == v:
            return
        existing = self._succ[u].get(v)
        if existing is None:
            self._num_arcs += 1
        else:
            # Noisy-or merge: the combined arc exists when at least one of
            # the parallel arcs exists.
            p = 1.0 - (1.0 - existing) * (1.0 - p)
            p = min(p, 1.0)
        self._succ[u][v] = p
        self._pred[v][u] = p
        self._version += 1

    def remove_arc(self, u: int, v: int) -> None:
        """Delete the arc ``(u, v)``; raise :class:`GraphError` if absent."""
        self._require_node(u)
        self._require_node(v)
        if v not in self._succ[u]:
            raise GraphError(f"arc ({u}, {v}) is not in the graph")
        del self._succ[u][v]
        del self._pred[v][u]
        self._num_arcs -= 1
        self._version += 1

    def _require_node(self, node: int) -> None:
        if not 0 <= node < len(self._succ):
            raise NodeNotFoundError(node)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return len(self._succ)

    @property
    def num_arcs(self) -> int:
        """Number of distinct directed arcs ``m``."""
        return self._num_arcs

    @property
    def version(self) -> int:
        """Monotonic mutation counter; changes whenever the graph does.

        Derived caches (CSR snapshots, samplers' arc lists) compare the
        version they were built at against the current one to decide
        whether they are still valid.
        """
        return self._version

    @property
    def epoch(self) -> int:
        """Published-generation counter for the live update plane.

        Bumped by :meth:`advance_epoch` when a committed update batch is
        published as a new snapshot.  Two graphs with the same
        ``(version, epoch)`` pair are byte-identical from the data
        plane's point of view: derived caches key on the pair so a
        copy-on-write epoch snapshot never aliases its parent's CSR.
        """
        return self._epoch

    def advance_epoch(self) -> int:
        """Bump the epoch counter and return the new value.

        Called by the update plane after a batch commit; plain
        mutations (``add_arc`` etc.) never touch the epoch.
        """
        self._epoch += 1
        return self._epoch

    def set_epoch(self, epoch: int) -> None:
        """Stamp this graph as belonging to *epoch* (snapshots only).

        Used when materializing a copy-on-write snapshot of a given
        generation; the epoch may only move forward.
        """
        if epoch < self._epoch:
            raise GraphError(
                f"epoch may not move backwards: {self._epoch} -> {epoch}"
            )
        self._epoch = epoch

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: int) -> bool:
        return 0 <= node < len(self._succ)

    def nodes(self) -> range:
        """All node ids as a range object."""
        return range(len(self._succ))

    def has_arc(self, u: int, v: int) -> bool:
        """Whether the directed arc ``(u, v)`` is present."""
        self._require_node(u)
        self._require_node(v)
        return v in self._succ[u]

    def probability(self, u: int, v: int) -> float:
        """Existence probability of the arc ``(u, v)``."""
        self._require_node(u)
        if v not in self._succ[u]:
            raise GraphError(f"arc ({u}, {v}) is not in the graph")
        return self._succ[u][v]

    def arcs(self) -> Iterator[WeightedArc]:
        """Iterate over all arcs as ``(u, v, p)`` triples."""
        for u, nbrs in enumerate(self._succ):
            for v, p in nbrs.items():
                yield (u, v, p)

    def successors(self, u: int) -> Dict[int, float]:
        """Out-neighbour map ``{v: p(u, v)}`` of node *u* (do not mutate)."""
        self._require_node(u)
        return self._succ[u]

    def predecessors(self, v: int) -> Dict[int, float]:
        """In-neighbour map ``{u: p(u, v)}`` of node *v* (do not mutate)."""
        self._require_node(v)
        return self._pred[v]

    def out_degree(self, u: int) -> int:
        """Number of out-neighbours of *u*."""
        self._require_node(u)
        return len(self._succ[u])

    def in_degree(self, v: int) -> int:
        """Number of in-neighbours of *v*."""
        self._require_node(v)
        return len(self._pred[v])

    def degree(self, u: int) -> int:
        """Total (in + out) degree of *u*."""
        return self.out_degree(u) + self.in_degree(u)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[int]) -> "SubgraphView":
        """Return a light-weight induced-subgraph view on *nodes*.

        The view shares storage with the parent graph and restricts
        adjacency iteration to arcs with both endpoints inside *nodes*.
        This is the workhorse of candidate-restricted verification
        (paper, Section 5), where sampling and shortest paths must only
        ever see the candidate-induced subgraph.
        """
        return SubgraphView(self, nodes)

    def reversed(self) -> "UncertainGraph":
        """A new graph with every arc direction flipped."""
        rev = UncertainGraph(self.num_nodes)
        for u, v, p in self.arcs():
            rev.add_arc(v, u, p)
        return rev

    def copy(self, preserve_versioning: bool = False) -> "UncertainGraph":
        """A deep, independent copy of this graph.

        By default the copy starts with a fresh ``version``/``epoch`` of
        0 (it is a new graph).  The live update plane passes
        ``preserve_versioning=True`` when materializing copy-on-write
        epoch snapshots, so the snapshot inherits the generation it was
        taken at and derived caches keyed on ``(version, epoch)``
        remain distinguishable across epochs.
        """
        dup = UncertainGraph(self.num_nodes)
        for u, nbrs in enumerate(self._succ):
            dup._succ[u] = dict(nbrs)
        for v, nbrs in enumerate(self._pred):
            dup._pred[v] = dict(nbrs)
        dup._num_arcs = self._num_arcs
        if preserve_versioning:
            dup._version = self._version
            dup._epoch = self._epoch
        return dup

    def undirected_weights(self) -> Dict[Tuple[int, int], float]:
        """Undirected arc weights ``w(u,v) = -log(1 - p)`` for partitioning.

        The RQ-tree builder (paper, Theorem 6) works on the undirected
        view of the graph with weight ``-log(1 - p(a))`` per arc;
        antiparallel arc pairs accumulate both weights.  Arcs with
        ``p = 1`` would have infinite weight; they are clamped to the
        weight of ``p = 1 - 1e-12`` so the ratio-cut objective stays
        finite (such an arc should essentially never be cut).
        """
        weights: Dict[Tuple[int, int], float] = {}
        for u, v, p in self.arcs():
            key = (u, v) if u < v else (v, u)
            w = -math.log(max(1.0 - p, 1e-12))
            weights[key] = weights.get(key, 0.0) + w
        return weights

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def total_probability_mass(self) -> float:
        """Sum of all arc probabilities (useful as a cheap fingerprint)."""
        return sum(p for _, _, p in self.arcs())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UncertainGraph(n={self.num_nodes}, m={self.num_arcs})"
        )


class SubgraphView:
    """Read-only induced-subgraph view over an :class:`UncertainGraph`.

    Iteration over successors/predecessors is filtered to the member set;
    node ids are unchanged (no re-labelling), which lets callers mix
    results from the view and the parent graph freely.
    """

    __slots__ = ("_parent", "_members")

    def __init__(self, parent: UncertainGraph, nodes: Iterable[int]) -> None:
        self._parent = parent
        members: Set[int] = set()
        for node in nodes:
            parent._require_node(node)
            members.add(node)
        self._members = members

    @property
    def parent(self) -> UncertainGraph:
        """The underlying full graph."""
        return self._parent

    @property
    def members(self) -> Set[int]:
        """The set of node ids included in the view (do not mutate)."""
        return self._members

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the view."""
        return len(self._members)

    @property
    def num_arcs(self) -> int:
        """Number of arcs with both endpoints in the view (recomputed)."""
        return sum(1 for _ in self.arcs())

    def __contains__(self, node: int) -> bool:
        return node in self._members

    def nodes(self) -> Iterator[int]:
        """Iterate over member node ids."""
        return iter(self._members)

    def arcs(self) -> Iterator[WeightedArc]:
        """Iterate over induced arcs as ``(u, v, p)`` triples."""
        for u in self._members:
            for v, p in self._parent.successors(u).items():
                if v in self._members:
                    yield (u, v, p)

    def successors(self, u: int) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(v, p)`` for member out-neighbours of *u*."""
        if u not in self._members:
            raise NodeNotFoundError(u)
        for v, p in self._parent.successors(u).items():
            if v in self._members:
                yield (v, p)

    def predecessors(self, v: int) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(u, p)`` for member in-neighbours of *v*."""
        if v not in self._members:
            raise NodeNotFoundError(v)
        for u, p in self._parent.predecessors(v).items():
            if u in self._members:
                yield (u, p)

    def materialize(self) -> Tuple[UncertainGraph, Dict[int, int]]:
        """Copy the view into a standalone graph with dense relabelled ids.

        Returns the new graph and a mapping ``old_id -> new_id``.
        """
        ordering = sorted(self._members)
        relabel = {old: new for new, old in enumerate(ordering)}
        graph = UncertainGraph(len(ordering))
        for u, v, p in self.arcs():
            graph.add_arc(relabel[u], relabel[v], p)
        return graph, relabel

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SubgraphView(n={len(self._members)})"
