"""Synthetic uncertain-graph generators.

The paper evaluates on six real datasets (DBLP, Flickr, BioMine, Last.FM,
WebGraph, NetHEPT) that are not redistributable here.  Each generator in
this module reproduces the corresponding dataset's *probability model*
(documented per function, with the paper's Section 7.1 description) on a
synthetic topology with a comparable degree structure, scaled down to
sizes a pure-Python reproduction can benchmark.  All generators are
deterministic given a seed.

The module also provides small structured generators (paths, grids, DAGs,
G(n,p)) used throughout the test-suite, plus :func:`figure1_graph`, the
paper's run-through example.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .uncertain import UncertainGraph

__all__ = [
    "figure1_graph",
    "uncertain_gnp",
    "uncertain_path",
    "uncertain_cycle",
    "uncertain_grid",
    "uncertain_random_dag",
    "hierarchical_community_arcs",
    "preferential_attachment_arcs",
    "dblp_like",
    "flickr_like",
    "biomine_like",
    "lastfm_like",
    "webgraph_like",
    "nethept_like",
]


def figure1_graph() -> Tuple[UncertainGraph, Dict[str, int]]:
    """The run-through example of the paper (Figure 1).

    Returns the graph and a name->id map for nodes ``s, u, v, w, t``.
    Arc set (read off the figure together with Examples 1-2):

    * ``s -> w`` 0.6, ``s -> u`` 0.5  (direct reach of w; u reachable
      directly or via w with combined probability 0.65, Example 1)
    * ``w -> u`` 0.5, ``w -> v`` 0.2
    * ``u -> t`` 0.1, ``u -> v`` 0.3
    * ``v -> t`` 0.7, ``t -> v`` 0.5

    With these probabilities ``U_out({s},{s,w}) = 1-(1-.6)(1-.5) = 0.8``
    and ``U_out({s},{s,u,w}) = 1-(1-.1)(1-.3)(1-.2) = 0.496``, matching
    the bounds displayed in Figure 2, and
    ``RS({s}, 0.5) = {s, u, w}`` as in Example 1.
    """
    names = {"s": 0, "u": 1, "v": 2, "w": 3, "t": 4}
    g = UncertainGraph(5)
    g.add_arc(names["s"], names["w"], 0.6)
    g.add_arc(names["s"], names["u"], 0.5)
    g.add_arc(names["w"], names["u"], 0.5)
    g.add_arc(names["w"], names["v"], 0.2)
    g.add_arc(names["u"], names["t"], 0.1)
    g.add_arc(names["u"], names["v"], 0.3)
    g.add_arc(names["v"], names["t"], 0.7)
    g.add_arc(names["t"], names["v"], 0.5)
    return g, names


# ----------------------------------------------------------------------
# Structured generators for tests
# ----------------------------------------------------------------------
def uncertain_gnp(
    n: int,
    arc_probability: float,
    existence_range: Tuple[float, float] = (0.1, 0.9),
    seed: Optional[int] = None,
) -> UncertainGraph:
    """Directed G(n, p) with uniform random existence probabilities.

    ``arc_probability`` controls topology density; each present arc gets
    an existence probability drawn uniformly from *existence_range*.
    """
    rng = random.Random(seed)
    lo, hi = existence_range
    g = UncertainGraph(n)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < arc_probability:
                g.add_arc(u, v, rng.uniform(lo, hi))
    return g


def uncertain_path(probabilities: Sequence[float]) -> UncertainGraph:
    """A directed path ``0 -> 1 -> ... -> k`` with the given arc probs."""
    g = UncertainGraph(len(probabilities) + 1)
    for i, p in enumerate(probabilities):
        g.add_arc(i, i + 1, p)
    return g


def uncertain_cycle(n: int, p: float) -> UncertainGraph:
    """A directed cycle on *n* nodes, every arc with probability *p*."""
    g = UncertainGraph(n)
    for i in range(n):
        g.add_arc(i, (i + 1) % n, p)
    return g


def uncertain_grid(
    rows: int,
    cols: int,
    p: float,
    bidirectional: bool = True,
) -> UncertainGraph:
    """A grid graph with constant arc probability *p*.

    Node ``(r, c)`` has id ``r * cols + c``.  Grids give the partitioner
    a predictable balanced-cut structure, which several tests exploit.
    """
    g = UncertainGraph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_arc(u, u + 1, p)
                if bidirectional:
                    g.add_arc(u + 1, u, p)
            if r + 1 < rows:
                g.add_arc(u, u + cols, p)
                if bidirectional:
                    g.add_arc(u + cols, u, p)
    return g


def uncertain_random_dag(
    n: int,
    avg_out_degree: float,
    existence_range: Tuple[float, float] = (0.2, 0.9),
    seed: Optional[int] = None,
) -> UncertainGraph:
    """A random DAG: arcs only go from lower to higher node ids."""
    rng = random.Random(seed)
    lo, hi = existence_range
    g = UncertainGraph(n)
    if n < 2:
        return g
    arc_prob = min(1.0, avg_out_degree / max(1, (n - 1) / 2))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < arc_prob:
                g.add_arc(u, v, rng.uniform(lo, hi))
    return g


# ----------------------------------------------------------------------
# Topology helpers
# ----------------------------------------------------------------------
def hierarchical_community_arcs(
    n: int,
    avg_degree: float,
    rng: random.Random,
    decay: float = 0.4,
) -> List[Tuple[int, int]]:
    """Undirected edge list with hierarchical community structure.

    Nodes are leaves of an implicit binary hierarchy (node ids double as
    positions).  Each edge picks an endpoint ``u`` uniformly and a level
    ``ℓ ≥ 1`` with probability proportional to ``decay^ℓ``, then joins
    ``u`` to a random node in the *sibling half* of its level-``ℓ``
    block — so an edge at level ``ℓ`` crosses exactly the level-``ℓ``
    community boundary.  Small ``decay`` means most edges stay local
    (tight communities, sparse high-level cuts).

    This is the topology shared by the dataset stand-ins: real
    co-authorship, social, and biological networks are hierarchically
    clustered, which is precisely the structure the RQ-tree's
    balanced-minimum-cut criterion exploits (paper, Section 6).  A
    structureless topology (e.g. pure preferential attachment) would
    make every cluster boundary heavy and neuter the index — for the
    same reason it would on the real datasets' shuffled counterparts.
    """
    if n < 2:
        return []
    num_edges = max(1, int(n * avg_degree / 2.0))
    num_levels = max(1, (n - 1).bit_length())
    weights = [decay ** level for level in range(1, num_levels + 1)]
    total_weight = sum(weights)
    arcs: List[Tuple[int, int]] = []
    for _ in range(num_edges):
        u = rng.randrange(n)
        x = rng.random() * total_weight
        level = num_levels
        acc = 0.0
        for candidate_level, w in enumerate(weights, start=1):
            acc += w
            if x <= acc:
                level = candidate_level
                break
        block = 1 << level
        half = block >> 1
        base = (u // block) * block
        # Partner in the sibling half of u's level-`level` block.  Ids
        # beyond n-1 (partial blocks at the top of the id range) are
        # resampled so boundary nodes are not systematically sparser.
        if (u - base) < half:
            lo = base + half
        else:
            lo = base
        for _ in range(8):
            v = lo + rng.randrange(half)
            if v < n and v != u:
                arcs.append((u, v))
                break
    return arcs


def preferential_attachment_arcs(
    n: int, arcs_per_node: int, rng: random.Random
) -> List[Tuple[int, int]]:
    """Barabási–Albert-style arc list (directed, new -> existing).

    Produces the heavy-tailed degree distribution shared by all the
    paper's real datasets (co-authorship, social, web, biological
    networks are all scale-free).  Uses the standard repeated-nodes
    trick: attachment targets are drawn from a list containing each node
    once per unit of degree.
    """
    if n <= 0:
        return []
    arcs: List[Tuple[int, int]] = []
    # Start from a small seed clique so early nodes have targets.
    seed_size = min(n, max(2, arcs_per_node))
    repeated: List[int] = []
    for u in range(seed_size):
        for v in range(seed_size):
            if u != v:
                arcs.append((u, v))
                repeated.append(v)
    for u in range(seed_size, n):
        targets: Set[int] = set()
        attempts = 0
        while len(targets) < arcs_per_node and attempts < 10 * arcs_per_node:
            t = rng.choice(repeated)
            attempts += 1
            if t != u:
                targets.add(t)
        for t in targets:
            arcs.append((u, t))
            repeated.append(t)
            repeated.append(u)
    return arcs


# ----------------------------------------------------------------------
# Dataset stand-ins (paper Section 7.1)
# ----------------------------------------------------------------------
def _dedupe_undirected(
    arcs: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Collapse duplicate undirected edges (keeping a sorted, stable order).

    The topology sampler can emit the same pair twice; dataset models
    that assign one probability per *relationship* (a collaboration, a
    tie) must not noisy-or duplicates together, so generators dedupe
    before assigning probabilities.
    """
    return sorted({(min(u, v), max(u, v)) for u, v in arcs})


def dblp_like(
    n: int = 2000,
    mu: float = 5.0,
    avg_degree: float = 4.0,
    max_collaborations: int = 20,
    decay: float = 0.5,
    seed: int = 0,
) -> UncertainGraph:
    """DBLP-like co-authorship graph.

    Paper model: the probability of an arc between two authors with
    ``c`` joint papers is ``1 - exp(-c / mu)`` (exponential cdf of mean
    ``mu``).  Higher ``mu`` (2 -> 5 -> 10) yields *smaller*
    probabilities for the same collaboration counts, which is the knob
    the paper turns in Table 6 and Figure 4.

    Topology: hierarchical communities (research groups nested in
    sub-fields nested in fields); each undirected collaboration
    produces arcs in both directions, as in the paper's directed
    rendering of DBLP.  Collaboration counts are Pareto-tailed: most
    author pairs share 1-2 papers, but a visible tail of strong ties
    exists, matching the probability cdf of Figure 3.
    """
    rng = random.Random(seed)
    g = UncertainGraph(n)
    edges = _dedupe_undirected(
        hierarchical_community_arcs(n, avg_degree, rng, decay=decay)
    )
    for u, v in edges:
        c = max(1, min(max_collaborations, int(rng.paretovariate(1.3))))
        p = 1.0 - math.exp(-c / mu)
        g.add_arc(u, v, p)
        g.add_arc(v, u, p)
    return g


def flickr_like(
    n: int = 2000,
    n_groups: int = 64,
    groups_per_user: int = 5,
    avg_degree: float = 8.0,
    decay: float = 0.5,
    seed: int = 0,
) -> UncertainGraph:
    """Flickr-like homophily graph.

    Paper model: arc probability between two users is the Jaccard
    coefficient of their interest-group memberships.  Group membership
    is correlated with community position (users in the same community
    share interests), so the Jaccard probabilities reinforce the
    hierarchical topology — as homophily does on the real Flickr.
    """
    rng = random.Random(seed)
    # Each community block of 64 nodes prefers a handful of groups.
    block_size = 64
    num_blocks = (n + block_size - 1) // block_size
    preferred: List[List[int]] = [
        [rng.randrange(n_groups) for _ in range(4)] for _ in range(num_blocks)
    ]
    memberships: List[Set[int]] = []
    for u in range(n):
        block = u // block_size
        groups: Set[int] = set()
        k = max(1, int(rng.gauss(groups_per_user, 1.5)))
        for _ in range(k):
            if rng.random() < 0.7:
                groups.add(rng.choice(preferred[block]))
            else:
                groups.add(rng.randrange(n_groups))
        memberships.append(groups)

    g = UncertainGraph(n)
    edges = _dedupe_undirected(
        hierarchical_community_arcs(n, avg_degree, rng, decay=decay)
    )
    for u, v in edges:
        inter = len(memberships[u] & memberships[v])
        union = len(memberships[u] | memberships[v])
        p = inter / union if union else 0.0
        p = max(p, 0.02)  # floor: measured ties always have some weight
        g.add_arc(u, v, min(p, 1.0))
        g.add_arc(v, u, min(p, 1.0))
    return g


def biomine_like(
    n: int = 2000,
    avg_degree: float = 6.0,
    decay: float = 0.45,
    seed: int = 0,
) -> UncertainGraph:
    """BioMine-like biological interaction graph.

    The paper notes BioMine exhibits *higher* arc probabilities than the
    other datasets (Figure 3), which is why sampling-based methods are
    slowest there (Section 7.3).  We skew existence probabilities high
    with a Beta(5, 2) draw on a hierarchical-module topology (biological
    networks are strongly modular: complexes within pathways within
    processes).
    """
    rng = random.Random(seed)
    g = UncertainGraph(n)
    edges = _dedupe_undirected(
        hierarchical_community_arcs(n, avg_degree, rng, decay=decay)
    )
    for u, v in edges:
        p = min(max(rng.betavariate(5.0, 2.0), 0.05), 1.0)
        g.add_arc(u, v, p)
        if rng.random() < 0.3:  # some interactions are symmetric
            g.add_arc(v, u, min(max(rng.betavariate(5.0, 2.0), 0.05), 1.0))
    return g


def _influence_probabilities(g: UncertainGraph) -> UncertainGraph:
    """Rewrite every arc probability to ``1 / out_degree(u)``.

    This is the weighted-cascade model used by the paper for Last.FM and
    WebGraph: "the probability on any arc corresponds to the inverse of
    the out-degree of the node from which that arc is outgoing".
    """
    out = UncertainGraph(g.num_nodes)
    for u in g.nodes():
        deg = g.out_degree(u)
        if deg == 0:
            continue
        p = 1.0 / deg
        for v in g.successors(u):
            out.add_arc(u, v, p)
    return out


def lastfm_like(
    n: int = 1500,
    avg_degree: float = 4.0,
    decay: float = 0.45,
    seed: int = 0,
) -> UncertainGraph:
    """Last.FM-like social influence graph.

    Directed communication graph over music-taste communities with
    weighted-cascade influence probabilities ``p(u, v) = 1 / outdeg(u)``
    (paper Section 7.1).
    """
    rng = random.Random(seed)
    base = UncertainGraph(n)
    for u, v in hierarchical_community_arcs(n, avg_degree, rng, decay=decay):
        base.add_arc(u, v, 0.5)
        if rng.random() < 0.5:  # communication is often mutual
            base.add_arc(v, u, 0.5)
    return _influence_probabilities(base)


def webgraph_like(
    n: int = 10000,
    avg_degree: float = 4.0,
    decay: float = 0.45,
    seed: int = 0,
) -> UncertainGraph:
    """WebGraph-like hyperlink graph with influence probabilities.

    The paper uses the uk-2007-05 crawl with weighted-cascade
    probabilities.  Web graphs are hierarchically organized (pages
    within sites within domains), which the hierarchical-community
    topology mirrors; probabilities follow the same ``1 / outdeg``
    model.  The scalability experiment (Table 8) sweeps ``n``.
    """
    rng = random.Random(seed)
    base = UncertainGraph(n)
    for u, v in hierarchical_community_arcs(n, avg_degree, rng, decay=decay):
        base.add_arc(u, v, 0.5)
    return _influence_probabilities(base)


def nethept_like(
    n: int = 1500,
    avg_degree: float = 3.0,
    p: float = 0.5,
    decay: float = 0.45,
    seed: int = 0,
) -> UncertainGraph:
    """NetHEPT-like co-authorship graph with constant probability.

    The paper's NetHEPT uses constant arc probabilities (0.5) on a
    physics co-authorship network; co-authorship arcs run both ways.
    """
    rng = random.Random(seed)
    g = UncertainGraph(n)
    edges = _dedupe_undirected(
        hierarchical_community_arcs(n, avg_degree, rng, decay=decay)
    )
    for u, v in edges:
        g.add_arc(u, v, p)
        g.add_arc(v, u, p)
    return g
