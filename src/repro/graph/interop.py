"""Interoperability with networkx.

Downstream users overwhelmingly hold graphs as ``networkx`` objects;
these adapters convert to and from :class:`UncertainGraph` without
making networkx a hard dependency (it is imported lazily and a clear
error is raised when absent).

Conventions:

* arc probability is read from an edge attribute (default
  ``"probability"``; a float fallback lets plain weighted graphs map
  their ``"weight"`` attribute instead);
* node labels of any hashable type are densified to ``0..n-1``; the
  mapping is returned so results can be translated back;
* undirected networkx graphs become bidirectional arc pairs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..errors import GraphError
from .uncertain import UncertainGraph

__all__ = ["from_networkx", "to_networkx"]


def _require_networkx():
    try:
        import networkx
    except ImportError as error:  # pragma: no cover - env without networkx
        raise GraphError(
            "networkx is not installed; the interop adapters require it"
        ) from error
    return networkx


def from_networkx(
    nx_graph: Any,
    probability_attribute: str = "probability",
    default_probability: Optional[float] = None,
) -> Tuple[UncertainGraph, Dict[Any, int]]:
    """Convert a networkx (Di)Graph into an :class:`UncertainGraph`.

    Parameters
    ----------
    nx_graph:
        A ``networkx.Graph`` or ``networkx.DiGraph`` (multigraphs work
        too — parallel edges noisy-or merge, matching this library's
        semantics).
    probability_attribute:
        Edge attribute holding the existence probability.
    default_probability:
        Used for edges missing the attribute; ``None`` makes a missing
        attribute an error.

    Returns
    -------
    (graph, node_index):
        The converted graph and the mapping from original node labels
        to dense integer ids.
    """
    _require_networkx()
    node_index: Dict[Any, int] = {
        label: index for index, label in enumerate(nx_graph.nodes())
    }
    graph = UncertainGraph(len(node_index))
    directed = nx_graph.is_directed()
    for u_label, v_label, data in nx_graph.edges(data=True):
        probability = data.get(probability_attribute, default_probability)
        if probability is None:
            raise GraphError(
                f"edge ({u_label!r}, {v_label!r}) lacks the "
                f"{probability_attribute!r} attribute and no default was given"
            )
        u = node_index[u_label]
        v = node_index[v_label]
        graph.add_arc(u, v, float(probability))
        if not directed:
            graph.add_arc(v, u, float(probability))
    return graph, node_index


def to_networkx(
    graph: UncertainGraph,
    probability_attribute: str = "probability",
) -> Any:
    """Convert an :class:`UncertainGraph` into a ``networkx.DiGraph``.

    Every node id becomes a node (including isolated ones); each arc
    carries its probability under *probability_attribute*.
    """
    networkx = _require_networkx()
    nx_graph = networkx.DiGraph()
    nx_graph.add_nodes_from(graph.nodes())
    for u, v, p in graph.arcs():
        nx_graph.add_edge(u, v, **{probability_attribute: p})
    return nx_graph
