"""Uncertain-graph substrate: data structure, traversal, sampling, I/O."""

from .uncertain import UncertainGraph, SubgraphView
from .traversal import (
    bfs_reachable,
    bfs_layers,
    bfs_distances,
    reachable_within,
    weakly_connected_components,
    strongly_connected_components,
    estimate_diameter,
    induced_ball,
)
from .paths import (
    most_likely_path,
    most_likely_path_probabilities,
    prob_to_distance,
    distance_to_prob,
)
from .sampling import (
    WorldSampler,
    sample_reachable,
    ReachabilityFrequencyEstimator,
)
from .exact import (
    exact_reliability,
    exact_reliability_bruteforce,
    exact_outreach,
    exact_reliability_search,
)
from .statistics import (
    GraphSummary,
    degree_histogram,
    probability_histogram,
    expected_num_arcs,
    expected_out_degree,
    summarize,
)
from .correlated import (
    SharedFateModel,
    correlated_mc_search,
    exact_correlated_reliability,
)
from .transforms import (
    condition_graph,
    map_probabilities,
    scale_probabilities,
    power_probabilities,
    threshold_backbone,
    make_undirected,
    weighted_cascade,
)
from .condense import Condensation, contract_certain_sccs
from .interop import from_networkx, to_networkx
from . import generators, io

__all__ = [
    "UncertainGraph",
    "SubgraphView",
    "bfs_reachable",
    "bfs_layers",
    "bfs_distances",
    "reachable_within",
    "weakly_connected_components",
    "strongly_connected_components",
    "estimate_diameter",
    "induced_ball",
    "most_likely_path",
    "most_likely_path_probabilities",
    "prob_to_distance",
    "distance_to_prob",
    "WorldSampler",
    "sample_reachable",
    "ReachabilityFrequencyEstimator",
    "exact_reliability",
    "exact_reliability_bruteforce",
    "exact_outreach",
    "exact_reliability_search",
    "generators",
    "io",
    "GraphSummary",
    "degree_histogram",
    "probability_histogram",
    "expected_num_arcs",
    "expected_out_degree",
    "summarize",
    "SharedFateModel",
    "correlated_mc_search",
    "exact_correlated_reliability",
    "condition_graph",
    "map_probabilities",
    "scale_probabilities",
    "power_probabilities",
    "threshold_backbone",
    "make_undirected",
    "weighted_cascade",
    "Condensation",
    "contract_certain_sccs",
    "from_networkx",
    "to_networkx",
]
