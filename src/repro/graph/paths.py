"""Most-likely paths and probability-weighted shortest paths.

The verification lower bound of the paper (Section 5.1, Theorem 4) is the
probability of the *most-likely path* from the source set ``S`` to a target
``t``:

.. math::

    R(S, t) \\ge L_R(S, t) = \\prod_{a \\in P^*(S,t)} p(a),

where ``P*`` maximizes the product of arc probabilities over all paths
starting at any ``s in S``.  Maximizing a product of probabilities is the
same as minimizing the sum of ``-log p(a)`` weights, so the bound reduces
to a multi-source Dijkstra run (the paper's "simple variant of the standard
Dijkstra's algorithm where the distance vector is initialized with the set
of source nodes").
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import NodeNotFoundError
from .uncertain import UncertainGraph

__all__ = [
    "most_likely_path_probabilities",
    "hop_bounded_path_probabilities",
    "most_likely_path",
    "prob_to_distance",
    "distance_to_prob",
]


def prob_to_distance(p: float) -> float:
    """Map an arc probability to its additive Dijkstra weight ``-log p``."""
    if p >= 1.0:
        return 0.0
    return -math.log(p)


def distance_to_prob(distance: float) -> float:
    """Inverse of :func:`prob_to_distance`: ``exp(-distance)``."""
    if distance == math.inf:
        return 0.0
    return math.exp(-distance)


def most_likely_path_probabilities(
    graph: UncertainGraph,
    sources: Iterable[int],
    allowed: Optional[Set[int]] = None,
    min_probability: float = 0.0,
) -> Dict[int, float]:
    """Most-likely-path probability from a source set to every node.

    Runs multi-source Dijkstra on ``-log p`` weights and returns a map
    ``t -> L_R(S, t)``.  Source nodes map to probability ``1.0`` (the empty
    path).  Nodes unreachable from the sources are omitted.

    Parameters
    ----------
    graph:
        The uncertain graph.
    sources:
        Non-empty set of source nodes.
    allowed:
        If given, paths are restricted to nodes inside this set
        (candidate-restricted verification, paper Section 5.1: paths
        through pruned nodes can be ignored because their probability is
        below the threshold anyway).
    min_probability:
        Early-exit cutoff: nodes whose best path probability falls below
        this value are not expanded or reported.  Passing the query
        threshold ``eta`` here prunes the search frontier exactly at the
        verification boundary.
    """
    max_distance = (
        math.inf if min_probability <= 0.0 else -math.log(min_probability)
    )
    dist: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = []
    for s in sources:
        if s not in graph:
            raise NodeNotFoundError(s)
        if allowed is not None and s not in allowed:
            continue
        if dist.get(s, math.inf) > 0.0:
            dist[s] = 0.0
            heapq.heappush(heap, (0.0, s))
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        for v, p in graph.successors(u).items():
            if allowed is not None and v not in allowed:
                continue
            nd = d + prob_to_distance(p)
            if nd > max_distance:
                continue
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    # A tiny epsilon guard: exp(-(-log p)) can come back as p +/- 1 ulp;
    # clamping keeps the result a valid probability.
    return {t: min(1.0, distance_to_prob(d)) for t, d in dist.items()}


def hop_bounded_path_probabilities(
    graph: UncertainGraph,
    sources: Iterable[int],
    max_hops: int,
    allowed: Optional[Set[int]] = None,
    min_probability: float = 0.0,
) -> Dict[int, float]:
    """Most-likely-path probability using at most *max_hops* arcs.

    The hop-bounded analogue of
    :func:`most_likely_path_probabilities`, supporting
    distance-constrained reliability search (the query class of Jin et
    al. [20], which the RQ-tree engine exposes through its ``max_hops``
    parameter).  A hop budget breaks Dijkstra's greedy argument, so
    this runs a Bellman–Ford-style layered relaxation instead:
    ``best[k][v]`` is the largest path probability reaching ``v`` with
    at most ``k`` arcs, computed frontier-by-frontier in
    ``O(max_hops * m)``.

    Returns ``t -> L_R^h(S, t)``; sources map to 1.0, nodes not
    reachable within the budget (or below *min_probability*) are
    omitted.
    """
    if max_hops < 0:
        raise ValueError(f"max_hops must be non-negative, got {max_hops}")
    best: Dict[int, float] = {}
    frontier: Dict[int, float] = {}
    for s in sources:
        if s not in graph:
            raise NodeNotFoundError(s)
        if allowed is not None and s not in allowed:
            continue
        best[s] = 1.0
        frontier[s] = 1.0
    for _ in range(max_hops):
        next_frontier: Dict[int, float] = {}
        for u, prob_u in frontier.items():
            for v, p in graph.successors(u).items():
                if allowed is not None and v not in allowed:
                    continue
                candidate = prob_u * p
                if candidate < min_probability:
                    continue
                if candidate > best.get(v, 0.0):
                    best[v] = candidate
                    next_frontier[v] = candidate
        if not next_frontier:
            break
        frontier = next_frontier
    if min_probability > 0.0:
        return {t: pr for t, pr in best.items() if pr >= min_probability}
    return dict(best)


def most_likely_path(
    graph: UncertainGraph,
    sources: Iterable[int],
    target: int,
    allowed: Optional[Set[int]] = None,
    banned_arcs: Optional[Set[Tuple[int, int]]] = None,
) -> Tuple[float, List[int]]:
    """The most-likely path itself, as ``(probability, [nodes...])``.

    Returns ``(0.0, [])`` when the target is unreachable.  Used by the
    RHT baseline (path factoring), the edge-packing verifier (which
    passes *banned_arcs* to enforce arc-disjointness between successive
    paths), and diagnostics; the bulk verification hot path uses
    :func:`most_likely_path_probabilities` which avoids storing parents.
    """
    if target not in graph:
        raise NodeNotFoundError(target)
    source_set = set(sources)
    dist: Dict[int, float] = {}
    parent: Dict[int, Optional[int]] = {}
    heap: List[Tuple[float, int]] = []
    for s in source_set:
        if s not in graph:
            raise NodeNotFoundError(s)
        if allowed is not None and s not in allowed:
            continue
        dist[s] = 0.0
        parent[s] = None
        heapq.heappush(heap, (0.0, s))
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, math.inf):
            continue
        if u == target:
            break
        for v, p in graph.successors(u).items():
            if allowed is not None and v not in allowed:
                continue
            if banned_arcs is not None and (u, v) in banned_arcs:
                continue
            nd = d + prob_to_distance(p)
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    if target not in dist:
        return 0.0, []
    path: List[int] = []
    node: Optional[int] = target
    while node is not None:
        path.append(node)
        node = parent[node]
    path.reverse()
    return min(1.0, distance_to_prob(dist[target])), path
